//! MapReduce-style parallel assessment (§3.2.1, §4.2.4).
//!
//! "A master node distributes portions of rounds to worker nodes. Each
//! worker node performs the route-and-check for the assigned rounds. The
//! master node then gathers the results from each worker node to compute
//! the overall reliability score."
//!
//! This engine reproduces that structure in-process: the master encodes a
//! [`crate::wire::JobFrame`] (the plan under test) and per-chunk
//! [`crate::wire::TaskFrame`]s, workers decode them, build their own
//! assessment context (sampler, state matrices, router — the §4.2.4
//! "context setup"), run the chunks, and answer with encoded
//! [`crate::wire::ResultFrame`]s that the master reduces. All frames cross
//! in-repo MPMC channels ([`recloud_sampling::sync`]) as raw bytes,
//! standing in for the paper's network transport.
//!
//! Chunk seeds are derived exactly as in the serial [`Assessor`], so a
//! parallel assessment returns **bit-identical** scores to the serial one
//! regardless of worker count or scheduling — the property the
//! equivalence tests pin down.

use crate::assessor::{Assessment, Assessor, BatchWidth, SamplerKind, Timings};
use crate::check::StructureChecker;
use crate::driver::AssessmentDriver;
use crate::wire::{JobFrame, ResultFrame, TaskFrame};
use recloud_apps::{ApplicationSpec, DeploymentPlan};
use recloud_faults::FaultModel;
use recloud_sampling::sync::{channel, scoped_workers};
use recloud_sampling::wire::Bytes;
use recloud_sampling::ResultAccumulator;
use recloud_topology::{ComponentId, Topology};
use std::time::{Duration, Instant};

/// Master/worker assessment engine.
pub struct ParallelAssessor {
    topology: Topology,
    model: FaultModel,
    kind: SamplerKind,
    workers: usize,
    /// Kernel lane width of every worker engine: 256-lane wide by default;
    /// the narrower paths exist for equivalence tests and benchmarking.
    /// Chunks are lane-width aligned (the serial engine's layout), so full
    /// chunks decompose into whole wide words on every worker.
    width: BatchWidth,
}

impl ParallelAssessor {
    /// Creates an engine with `workers` worker nodes (threads).
    ///
    /// # Panics
    /// Panics if `workers` is zero.
    pub fn new(topology: &Topology, model: FaultModel, workers: usize) -> Self {
        Self::with_sampler(topology, model, workers, SamplerKind::ExtendedDagger)
    }

    /// Creates an engine with an explicit sampler choice.
    pub fn with_sampler(
        topology: &Topology,
        model: FaultModel,
        workers: usize,
        kind: SamplerKind,
    ) -> Self {
        assert!(workers >= 1, "need at least one worker");
        ParallelAssessor {
            topology: topology.clone(),
            model,
            kind,
            workers,
            width: BatchWidth::Wide256,
        }
    }

    /// Selects the batched (wide) or scalar route-and-check path in every
    /// worker engine. Both produce bit-identical assessments.
    pub fn set_batched(&mut self, batched: bool) {
        self.width = if batched { BatchWidth::Wide256 } else { BatchWidth::Scalar };
    }

    /// Selects an explicit kernel lane width for every worker engine.
    pub fn set_width(&mut self, width: BatchWidth) {
        self.width = width;
    }

    /// Assesses a plan over `rounds` rounds, distributing chunks over the
    /// workers. Deterministic per seed and identical to the serial result.
    pub fn assess(
        &self,
        spec: &ApplicationSpec,
        plan: &DeploymentPlan,
        rounds: usize,
        seed: u64,
    ) -> Assessment {
        assert!(rounds > 0, "cannot assess over zero rounds");
        let t0 = Instant::now();

        // The master serializes the job once; every worker gets a copy of
        // the bytes, exactly as a network fan-out would.
        let job = JobFrame {
            rounds_total: rounds as u64,
            assignments: (0..spec.num_components())
                .map(|c| plan.hosts_of(c).iter().map(|h| h.0).collect())
                .collect(),
        }
        .encode();

        // Chunk layout and seeding must match the serial engine's, so the
        // master runs the same AssessmentDriver every other path uses —
        // its task hand-out becomes the wire-encoded fan-out.
        let probe = Assessor::with_sampler(&self.topology, self.model.clone(), self.kind);
        let mut driver = AssessmentDriver::new(probe.chunk_layout(rounds), seed, None);
        drop(probe);

        let (task_tx, task_rx) = channel::<Bytes>();
        let (result_tx, result_rx) = channel::<Bytes>();
        while let Some(task) = driver.next_task() {
            let frame =
                TaskFrame { chunk: task.chunk, seed: task.seed, rounds: task.rounds as u32 };
            task_tx.send(frame.encode()).expect("task channel open");
        }
        drop(task_tx); // workers drain until empty
        scoped_workers(self.workers, |_worker_id| {
            // Worker-side job setup: deserialize the plan and build the
            // full assessment context. Each worker decodes its own copy of
            // the job bytes, exactly as a remote node would.
            let job = JobFrame::decode(job.clone()).expect("master sent a valid job frame");
            let assignments: Vec<Vec<ComponentId>> = job
                .assignments
                .iter()
                .map(|c| c.iter().map(|&h| ComponentId(h)).collect())
                .collect();
            let plan = DeploymentPlan::new(spec, assignments);
            // One engine per worker: its chunk arena (and router) are
            // built once here and reused for every chunk the worker
            // drains, so steady-state workers allocate nothing.
            let mut engine = Assessor::with_sampler(&self.topology, self.model.clone(), self.kind);
            engine.set_width(self.width);
            let mut checker = StructureChecker::new(spec, &plan);
            while let Ok(task) = task_rx.recv() {
                let task = TaskFrame::decode(task).expect("master sent a valid task");
                let mut local = ResultAccumulator::new();
                let t = engine.run_chunk(&mut checker, task.seed, task.rounds as usize, &mut local);
                let frame = ResultFrame {
                    chunk: task.chunk,
                    rounds: local.rounds(),
                    successes: local.successes(),
                    sampling_ns: t.sampling.as_nanos() as u64,
                    collapse_ns: t.collapse.as_nanos() as u64,
                    check_ns: t.check.as_nanos() as u64,
                    total_ns: t.total.as_nanos() as u64,
                };
                result_tx.send(frame.encode()).expect("result channel open");
            }
        });
        drop(result_tx);
        // Master-side reduce: decoded result frames feed the shared
        // driver. All workers have joined, so every result frame is
        // queued; chunk arrival order is irrelevant because the driver's
        // estimate is a pure function of the accumulated totals.
        while !driver.is_complete() {
            let frame = result_rx.recv().expect("every chunk produces a result");
            let r = ResultFrame::decode(frame).expect("workers send valid results");
            let timings = Timings {
                sampling: Duration::from_nanos(r.sampling_ns),
                collapse: Duration::from_nanos(r.collapse_ns),
                check: Duration::from_nanos(r.check_ns),
                total: Duration::from_nanos(r.total_ns),
            };
            driver.feed(r.chunk, r.rounds, r.successes, &timings);
        }
        // Stage timings are summed CPU time across workers; `total` is the
        // master's wall clock (what Fig 12 plots).
        driver.set_total(t0.elapsed());
        Assessment {
            estimate: driver.estimate(),
            timings: driver.timings(),
            sampler: self.kind.name(),
        }
    }

    /// Worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recloud_apps::ApplicationSpec;
    use recloud_sampling::Rng;
    use recloud_topology::FatTreeParams;

    fn setup() -> (Topology, FaultModel, ApplicationSpec, DeploymentPlan) {
        let t = FatTreeParams::new(4).build();
        let model = FaultModel::paper_default(&t, 3);
        let spec = ApplicationSpec::k_of_n(2, 4);
        let mut rng = Rng::new(8);
        let plan = DeploymentPlan::random(&spec, t.hosts(), &mut rng);
        (t, model, spec, plan)
    }

    #[test]
    fn parallel_equals_serial_exactly() {
        let (t, model, spec, plan) = setup();
        let serial = Assessor::new(&t, model.clone()).assess(&spec, &plan, 12_000, 77);
        for workers in [1, 2, 4] {
            let par = ParallelAssessor::new(&t, model.clone(), workers);
            let r = par.assess(&spec, &plan, 12_000, 77);
            assert_eq!(
                (r.estimate.successes, r.estimate.rounds),
                (serial.estimate.successes, serial.estimate.rounds),
                "workers={workers}"
            );
        }
    }

    #[test]
    fn batched_parallel_equals_scalar_serial() {
        let (t, model, spec, plan) = setup();
        let mut scalar = Assessor::new(&t, model.clone());
        scalar.set_batched(false);
        let reference = scalar.assess(&spec, &plan, 9_000, 13);
        for workers in [1, 2, 4] {
            let par = ParallelAssessor::new(&t, model.clone(), workers);
            let r = par.assess(&spec, &plan, 9_000, 13);
            assert_eq!(
                (r.estimate.successes, r.estimate.rounds),
                (reference.estimate.successes, reference.estimate.rounds),
                "workers={workers}"
            );
        }
        // And the explicit scalar parallel path matches too.
        let mut par = ParallelAssessor::new(&t, model, 2);
        par.set_batched(false);
        let r = par.assess(&spec, &plan, 9_000, 13);
        assert_eq!(r.estimate.successes, reference.estimate.successes);
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let (t, model, spec, plan) = setup();
        let a = ParallelAssessor::new(&t, model.clone(), 2).assess(&spec, &plan, 8_000, 5);
        let b = ParallelAssessor::new(&t, model, 3).assess(&spec, &plan, 8_000, 5);
        assert_eq!(a.estimate.successes, b.estimate.successes);
    }

    #[test]
    fn monte_carlo_parallel_also_deterministic() {
        let (t, model, spec, plan) = setup();
        let a = ParallelAssessor::with_sampler(&t, model.clone(), 2, SamplerKind::MonteCarlo)
            .assess(&spec, &plan, 6_000, 9);
        let b = Assessor::with_sampler(&t, model, SamplerKind::MonteCarlo)
            .assess(&spec, &plan, 6_000, 9);
        assert_eq!(a.estimate.successes, b.estimate.successes);
        assert_eq!(a.sampler, "monte-carlo");
    }

    #[test]
    fn timings_total_is_wall_clock() {
        let (t, model, spec, plan) = setup();
        let r = ParallelAssessor::new(&t, model, 4).assess(&spec, &plan, 10_000, 1);
        assert!(r.timings.total > Duration::ZERO);
        assert_eq!(r.estimate.rounds, 10_000);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let (t, model, _, _) = setup();
        ParallelAssessor::new(&t, model, 0);
    }
}
