//! INDaaS-style qualitative risk-group analysis.
//!
//! INDaaS (Zhai et al., OSDI '14) — the paper's closest prior system —
//! ranks given deployment plans by *structural independence*: it
//! enumerates shared risk groups (sets of components whose joint failure
//! takes the application down) and prefers plans with fewer/larger
//! minimal groups. It produces **no probabilities**, which is the paper's
//! first criticism ("does not produce a quantitative assessment ...
//! required for service quality auditing and compliance").
//!
//! This module reproduces that qualitative analysis so the two systems
//! can be compared head-to-head on the same plans:
//!
//! * a **fatal singleton** is one event whose failure alone breaks the
//!   application's requirement (a size-1 risk group);
//! * a **fatal pair** is a pair of events, neither fatal alone, that
//!   breaks it jointly (a size-2 minimal risk group).
//!
//! [`risk_profile`] computes both by exact single/double fault injection
//! through the full fault-tree + route-and-check pipeline (no sampling);
//! [`rank_by_risk`] orders plans the way INDaaS would — lexicographically
//! by (fatal singletons, fatal pairs). The integration tests show where
//! this agrees with the quantitative ranking and where it cannot
//! distinguish plans that reCloud's probabilistic assessment separates.

use crate::check::StructureChecker;
use recloud_apps::{ApplicationSpec, DeploymentPlan};
use recloud_faults::FaultModel;
use recloud_routing::make_router;
use recloud_sampling::BitMatrix;
use recloud_topology::{ComponentId, Topology};

/// The qualitative risk structure of one plan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RiskProfile {
    /// Events whose failure alone breaks the requirement.
    pub fatal_singletons: Vec<ComponentId>,
    /// Minimal size-2 risk groups (neither member fatal alone).
    pub fatal_pairs: Vec<(ComponentId, ComponentId)>,
    /// Events that degrade the plan (break at least one instance's
    /// reachability) without being fatal — the candidates from which
    /// pairs were formed.
    pub impactful: Vec<ComponentId>,
}

impl RiskProfile {
    /// INDaaS-style sort key: fewer fatal singletons first, then fewer
    /// fatal pairs.
    pub fn rank_key(&self) -> (usize, usize) {
        (self.fatal_singletons.len(), self.fatal_pairs.len())
    }
}

/// Computes the exact size-1 and size-2 risk groups of a plan.
///
/// Single events are tested exhaustively. Pair enumeration is restricted
/// to a candidate set: the *impactful* events (those that alone degrade
/// at least one instance's reachability) plus every basic event of the
/// plan hosts' dependency trees. The latter widening matters for AND
/// gates — one member of a redundant supply pair degrades nothing alone
/// yet forms a minimal risk group with its sibling.
pub fn risk_profile(
    topology: &Topology,
    model: &FaultModel,
    spec: &ApplicationSpec,
    plan: &DeploymentPlan,
) -> RiskProfile {
    let mut raw = BitMatrix::new(model.num_events(), 1);
    let mut collapsed = BitMatrix::new(model.num_topology_components(), 1);
    let mut router = make_router(topology);
    let mut checker = StructureChecker::new(spec, plan);

    // Baseline sanity: the healthy world must satisfy the requirement.
    model.collapse_into(&raw, &mut collapsed);
    router.begin_round(&collapsed, 0);
    assert!(
        checker.round_reliable(router.as_mut(), &collapsed, 0),
        "plan does not satisfy its requirement even with everything alive"
    );

    let mut check_world =
        |raw: &mut BitMatrix, collapsed: &mut BitMatrix, events: &[ComponentId]| -> (bool, bool) {
            for &e in events {
                raw.set(e.index(), 0);
            }
            model.collapse_into(raw, collapsed);
            router.begin_round(collapsed, 0);
            let ok = checker.round_reliable(router.as_mut(), collapsed, 0);
            // Degradation check: any plan host unreachable?
            let mut degraded = false;
            for c in 0..plan.num_components() {
                for &h in plan.hosts_of(c) {
                    if !router.external_reaches(collapsed, h) {
                        degraded = true;
                        break;
                    }
                }
            }
            for &e in events {
                raw.unset(e.index(), 0);
            }
            (ok, degraded)
        };

    let mut fatal_singletons = Vec::new();
    let mut impactful = Vec::new();
    for e in 0..model.num_events() {
        let event = ComponentId::from_index(e);
        let (ok, degraded) = check_world(&mut raw, &mut collapsed, &[event]);
        if !ok {
            fatal_singletons.push(event);
        } else if degraded {
            impactful.push(event);
        }
    }
    // Widen the pair-candidate set with AND-gate members: basic events of
    // the plan hosts' dependency trees that were individually harmless.
    let mut candidates = impactful.clone();
    for h in plan.all_hosts() {
        if let Some(tree) = model.tree_of(h) {
            for e in tree.basic_events() {
                if !candidates.contains(&e)
                    && !fatal_singletons.contains(&e)
                    && !impactful.contains(&e)
                {
                    candidates.push(e);
                }
            }
        }
    }

    let mut fatal_pairs = Vec::new();
    for i in 0..candidates.len() {
        for j in (i + 1)..candidates.len() {
            let (ok, _) = check_world(&mut raw, &mut collapsed, &[candidates[i], candidates[j]]);
            if !ok {
                fatal_pairs.push((candidates[i], candidates[j]));
            }
        }
    }
    RiskProfile { fatal_singletons, fatal_pairs, impactful }
}

/// Ranks plans the way INDaaS would: ascending by (fatal singletons,
/// fatal pairs). Returns indices into `plans`, best first. Ties keep
/// input order — INDaaS has no way to break them, which is exactly the
/// limitation the quantitative assessment removes.
pub fn rank_by_risk(
    topology: &Topology,
    model: &FaultModel,
    spec: &ApplicationSpec,
    plans: &[DeploymentPlan],
) -> Vec<(usize, RiskProfile)> {
    assert!(!plans.is_empty(), "need at least one plan to rank");
    let mut out: Vec<(usize, RiskProfile)> = plans
        .iter()
        .enumerate()
        .map(|(i, p)| (i, risk_profile(topology, model, spec, p)))
        .collect();
    out.sort_by_key(|(i, r)| (r.rank_key(), *i));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use recloud_faults::ProbabilityConfig;
    use recloud_topology::FatTreeParams;

    fn env() -> (Topology, FaultModel) {
        let t = FatTreeParams::new(4).build();
        let m = FaultModel::paper_default(&t, 1);
        (t, m)
    }

    #[test]
    fn stacked_plan_has_fatal_singletons() {
        // 2-of-2 under one edge switch: the edge, the group supply and the
        // edge's supply are all single points of failure, as are both
        // hosts themselves.
        let (t, m) = env();
        let meta = t.fat_tree().unwrap();
        let spec = ApplicationSpec::k_of_n(2, 2);
        let plan = DeploymentPlan::new(&spec, vec![meta.hosts_under_edge(0, 0).take(2).collect()]);
        let profile = risk_profile(&t, &m, &spec, &plan);
        let edge = meta.edge(0, 0);
        assert!(profile.fatal_singletons.contains(&edge));
        let group_supply = t.power_of(meta.host(0, 0, 0)).unwrap();
        assert!(profile.fatal_singletons.contains(&group_supply));
        // Both hosts are fatal singletons for a 2-of-2 requirement.
        for h in plan.all_hosts() {
            assert!(profile.fatal_singletons.contains(&h));
        }
    }

    #[test]
    fn diverse_1_of_2_has_no_fatal_singleton_but_fatal_pairs() {
        // Without shared power (pure network model), two hosts in
        // different pods have no single point of failure on a fat-tree,
        // and the host pair itself is a minimal risk group. (With the
        // §4.1 power wiring on the tiny k=4 fabric, a single supply CAN
        // sever a pod's whole uplink — the stacked-plan test covers that
        // regime.)
        let t = FatTreeParams::new(4).build();
        let m = FaultModel::new(&t, &ProbabilityConfig::PaperDefault, 1);
        let meta = t.fat_tree().unwrap();
        let spec = ApplicationSpec::k_of_n(1, 2);
        let h1 = meta.host(0, 0, 0);
        let h2 = meta.host(1, 0, 0);
        let plan = DeploymentPlan::new(&spec, vec![vec![h1, h2]]);
        let profile = risk_profile(&t, &m, &spec, &plan);
        assert!(
            profile.fatal_singletons.is_empty(),
            "diverse 1-of-2 must have no single point of failure: {:?}",
            profile.fatal_singletons
        );
        // The two hosts together are a minimal risk group.
        assert!(
            profile.fatal_pairs.iter().any(|&(a, b)| (a == h1 && b == h2) || (a == h2 && b == h1)),
            "the host pair must be a fatal pair: {:?}",
            profile.fatal_pairs
        );
        // So are the two edge switches.
        let (e1, e2) = (meta.edge(0, 0), meta.edge(1, 0));
        assert!(profile
            .fatal_pairs
            .iter()
            .any(|&(a, b)| (a == e1 && b == e2) || (a == e2 && b == e1)));
    }

    #[test]
    fn indaas_ranking_prefers_structurally_diverse_plans() {
        let (t, m) = env();
        let meta = t.fat_tree().unwrap();
        let spec = ApplicationSpec::k_of_n(1, 2);
        let stacked =
            DeploymentPlan::new(&spec, vec![meta.hosts_under_edge(0, 0).take(2).collect()]);
        let h1 = meta.host(0, 0, 0);
        let h2 = t
            .hosts()
            .iter()
            .copied()
            .find(|&h| meta.host_position(h).pod != 0 && t.power_of(h) != t.power_of(h1))
            .unwrap();
        let diverse = DeploymentPlan::new(&spec, vec![vec![h1, h2]]);
        let ranked = rank_by_risk(&t, &m, &spec, &[stacked, diverse]);
        assert_eq!(ranked[0].0, 1, "INDaaS must prefer the diverse plan");
        assert!(ranked[0].1.rank_key() < ranked[1].1.rank_key());
    }

    #[test]
    fn and_gate_members_surface_as_pairs() {
        // Redundant power (AND gate): each supply alone is harmless, the
        // pair is fatal — the candidate-widening path must catch it.
        let t = FatTreeParams::new(4).build();
        let mut m = FaultModel::new(&t, &ProbabilityConfig::PaperDefault, 1);
        let events = recloud_faults::Fig5Template::default().apply(&t, &mut m);
        let meta = t.fat_tree().unwrap();
        let spec = ApplicationSpec::k_of_n(1, 1);
        let host = meta.host(0, 0, 0);
        let plan = DeploymentPlan::new(&spec, vec![vec![host]]);
        let profile = risk_profile(&t, &m, &spec, &plan);
        let primary = t.power_of(host).unwrap();
        let backup = events.backup_power;
        assert!(
            !profile.fatal_singletons.contains(&primary),
            "redundant primary is not a singleton"
        );
        assert!(
            profile
                .fatal_pairs
                .iter()
                .any(|&(a, b)| (a == primary && b == backup) || (a == backup && b == primary)),
            "the (primary, backup) supply pair must be a minimal risk group: {:?}",
            profile.fatal_pairs
        );
    }

    #[test]
    #[should_panic(expected = "does not satisfy its requirement")]
    fn impossible_plan_rejected() {
        // A host that is physically disconnected from the border switch
        // cannot satisfy any requirement even with everything alive; the
        // analysis must refuse instead of reporting risk groups for a
        // plan that never worked.
        use recloud_topology::{ComponentKind, TopologyBuilder};
        let mut b = TopologyBuilder::new();
        b.external();
        let sw = b.add(ComponentKind::BorderSwitch);
        b.mark_border(sw);
        let h = b.add(ComponentKind::Host); // never connected to sw!
        let t = b.build();
        let m = FaultModel::new(&t, &ProbabilityConfig::Uniform(0.01), 0);
        let spec = ApplicationSpec::k_of_n(1, 1);
        let plan = DeploymentPlan::new(&spec, vec![vec![h]]);
        risk_profile(&t, &m, &spec, &plan);
    }
}
