//! Dependency-sensitivity analysis: conditional reliability given a
//! forced failure.
//!
//! "Which shared dependency hurts this plan most?" is the question an
//! operator asks right after seeing a reliability score. For each
//! candidate event we force it failed in *every* round (through the same
//! injection + fault-tree + route-and-check pipeline as the unconditional
//! assessment) and report the conditional reliability
//! `R | event down` next to the event's blast radius. A plan whose
//! conditional reliability collapses for some supply has all of its
//! redundancy hostage to that supply — exactly the situation the paper's
//! motivating outages describe.

use crate::assessor::Assessor;
use recloud_apps::{ApplicationSpec, DeploymentPlan};
use recloud_faults::FaultInjector;
use recloud_topology::ComponentId;

/// Sensitivity of one plan to one forced event failure.
#[derive(Clone, Debug)]
pub struct SensitivityRow {
    /// The forced event.
    pub event: ComponentId,
    /// Reliability of the plan conditioned on the event being down.
    pub conditional_reliability: f64,
    /// Number of topology components that fail with this event
    /// (its blast radius, including itself).
    pub blast_radius: usize,
}

/// A full sensitivity report, rows sorted by ascending conditional
/// reliability (most dangerous dependency first).
#[derive(Clone, Debug)]
pub struct SensitivityReport {
    /// The plan's unconditional reliability (baseline).
    pub baseline: f64,
    /// One row per analyzed event.
    pub rows: Vec<SensitivityRow>,
}

impl SensitivityReport {
    /// The most dangerous event (first row).
    pub fn worst(&self) -> &SensitivityRow {
        &self.rows[0]
    }

    /// Events whose forced failure alone makes the plan unreliable in
    /// more than half of all rounds — "single points of catastrophe".
    pub fn critical_events(&self) -> Vec<ComponentId> {
        self.rows.iter().filter(|r| r.conditional_reliability < 0.5).map(|r| r.event).collect()
    }
}

/// Computes the sensitivity of `plan` to each event in `events`
/// (typically the power supplies, or any shared dependencies of
/// interest). Restores the assessor's injector to `None` afterwards.
///
/// # Panics
/// Panics if `events` is empty.
pub fn dependency_sensitivity(
    assessor: &mut Assessor,
    spec: &ApplicationSpec,
    plan: &DeploymentPlan,
    events: &[ComponentId],
    rounds: usize,
    seed: u64,
) -> SensitivityReport {
    assert!(!events.is_empty(), "need at least one event to analyze");
    assessor.set_injector(None);
    let baseline = assessor.assess(spec, plan, rounds, seed).estimate.score;
    let mut rows: Vec<SensitivityRow> = events
        .iter()
        .map(|&event| {
            let mut injector = FaultInjector::new();
            injector.fail(event);
            assessor.set_injector(Some(injector));
            let conditional = assessor.assess(spec, plan, rounds, seed).estimate.score;
            SensitivityRow {
                event,
                conditional_reliability: conditional,
                blast_radius: assessor.model().blast_radius(event).len(),
            }
        })
        .collect();
    assessor.set_injector(None);
    rows.sort_by(|a, b| {
        a.conditional_reliability
            .partial_cmp(&b.conditional_reliability)
            .expect("scores are finite")
            .then(a.event.cmp(&b.event))
    });
    SensitivityReport { baseline, rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recloud_faults::FaultModel;
    use recloud_topology::FatTreeParams;

    #[test]
    fn shared_supply_is_the_worst_dependency_for_a_stacked_plan() {
        let t = FatTreeParams::new(8).build();
        let model = FaultModel::paper_default(&t, 3);
        let meta = t.fat_tree().unwrap();
        let spec = recloud_apps::ApplicationSpec::k_of_n(2, 3);
        // All three instances under one edge switch: the rack's group
        // supply takes everything down at once.
        let plan = DeploymentPlan::new(&spec, vec![meta.hosts_under_edge(0, 0).take(3).collect()]);
        let group_supply = t.power_of(meta.host(0, 0, 0)).unwrap();
        let mut assessor = Assessor::new(&t, model);
        let report =
            dependency_sensitivity(&mut assessor, &spec, &plan, t.power_supplies(), 4_000, 7);
        assert_eq!(report.worst().event, group_supply);
        assert_eq!(report.worst().conditional_reliability, 0.0);
        assert!(report.critical_events().contains(&group_supply));
        assert!(report.baseline > 0.9);
        // Rows are sorted ascending.
        for w in report.rows.windows(2) {
            assert!(w[0].conditional_reliability <= w[1].conditional_reliability);
        }
        // Every supply has a sizable blast radius under §4.1 wiring.
        for r in &report.rows {
            assert!(r.blast_radius > 10, "{:?}", r);
        }
    }

    #[test]
    fn diverse_plan_survives_any_single_supply() {
        let t = FatTreeParams::new(8).build();
        let model = FaultModel::paper_default(&t, 3);
        let spec = recloud_apps::ApplicationSpec::k_of_n(1, 3);
        // Three hosts with pairwise distinct group supplies.
        let mut hosts = Vec::new();
        for &h in t.hosts() {
            if hosts.iter().all(|&x: &recloud_topology::ComponentId| t.power_of(x) != t.power_of(h))
            {
                hosts.push(h);
            }
            if hosts.len() == 3 {
                break;
            }
        }
        let plan = DeploymentPlan::new(&spec, vec![hosts]);
        let mut assessor = Assessor::new(&t, model);
        let report =
            dependency_sensitivity(&mut assessor, &spec, &plan, t.power_supplies(), 4_000, 7);
        assert!(report.critical_events().is_empty(), "{:?}", report.rows);
        // 1-of-3 with distinct supplies: even the worst supply leaves the
        // plan mostly fine.
        assert!(report.worst().conditional_reliability > 0.8);
    }

    #[test]
    fn injector_is_restored_after_analysis() {
        let t = FatTreeParams::new(4).build();
        let model = FaultModel::paper_default(&t, 1);
        let spec = recloud_apps::ApplicationSpec::k_of_n(1, 2);
        let plan = DeploymentPlan::new(&spec, vec![t.hosts()[..2].to_vec()]);
        let mut assessor = Assessor::new(&t, model);
        let before = assessor.assess(&spec, &plan, 2_000, 5).estimate.score;
        let _ = dependency_sensitivity(&mut assessor, &spec, &plan, t.power_supplies(), 500, 5);
        let after = assessor.assess(&spec, &plan, 2_000, 5).estimate.score;
        assert_eq!(before, after, "analysis must not leave injections behind");
    }

    #[test]
    #[should_panic(expected = "at least one event")]
    fn empty_event_list_rejected() {
        let t = FatTreeParams::new(4).build();
        let model = FaultModel::paper_default(&t, 1);
        let spec = recloud_apps::ApplicationSpec::k_of_n(1, 2);
        let plan = DeploymentPlan::new(&spec, vec![t.hosts()[..2].to_vec()]);
        let mut assessor = Assessor::new(&t, model);
        dependency_sensitivity(&mut assessor, &spec, &plan, &[], 100, 0);
    }
}
