//! Plan comparison — the INDaaS-style service, upgraded.
//!
//! INDaaS (the paper's closest prior system) "compares the reliability of
//! an application's *given* deployment plans, and selects the most
//! reliable plan". reCloud subsumes that service: this module assesses a
//! list of candidate plans quantitatively (which INDaaS could not do) and
//! ranks them with error bounds, flagging ties whose confidence intervals
//! overlap — the honest answer INDaaS's qualitative ranking hides.

use crate::assessor::{Assessment, Assessor};
use recloud_apps::{ApplicationSpec, DeploymentPlan};

/// One ranked candidate.
#[derive(Clone, Debug)]
pub struct RankedPlan {
    /// Position of the plan in the caller's input list.
    pub input_index: usize,
    /// The plan's assessment.
    pub assessment: Assessment,
    /// True when this plan's confidence interval overlaps the winner's —
    /// i.e. the data cannot actually distinguish them at 95%.
    pub tied_with_best: bool,
}

/// The comparison verdict.
#[derive(Clone, Debug)]
pub struct Comparison {
    /// Candidates sorted by descending reliability score.
    pub ranking: Vec<RankedPlan>,
}

impl Comparison {
    /// The winner's input index.
    pub fn best_index(&self) -> usize {
        self.ranking[0].input_index
    }

    /// Indices of every plan statistically indistinguishable from the
    /// winner (always includes the winner itself).
    pub fn statistical_winners(&self) -> Vec<usize> {
        self.ranking.iter().filter(|r| r.tied_with_best).map(|r| r.input_index).collect()
    }
}

/// Assesses every candidate over `rounds` rounds and ranks them.
///
/// # Panics
/// Panics if `plans` is empty.
pub fn compare_plans(
    assessor: &mut Assessor,
    spec: &ApplicationSpec,
    plans: &[DeploymentPlan],
    rounds: usize,
    seed: u64,
) -> Comparison {
    assert!(!plans.is_empty(), "need at least one candidate plan");
    let mut ranking: Vec<RankedPlan> = plans
        .iter()
        .enumerate()
        .map(|(input_index, plan)| RankedPlan {
            input_index,
            // Independent sampling seed per candidate: comparing plans on
            // *common* random numbers would be a variance-reduction trick,
            // but error bounds below assume independence.
            assessment: assessor.assess(spec, plan, rounds, seed ^ (input_index as u64) << 17),
            tied_with_best: false,
        })
        .collect();
    ranking.sort_by(|a, b| {
        b.assessment
            .estimate
            .score
            .partial_cmp(&a.assessment.estimate.score)
            .expect("scores are finite")
            .then(a.input_index.cmp(&b.input_index))
    });
    let best = ranking[0].assessment.estimate;
    for r in &mut ranking {
        let e = r.assessment.estimate;
        // Overlapping 95% intervals: |Δscore| <= half-widths summed.
        r.tied_with_best = (best.score - e.score).abs() <= (best.ciw95() + e.ciw95()) / 2.0;
    }
    Comparison { ranking }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recloud_faults::{FaultModel, ProbabilityConfig};
    use recloud_topology::{ComponentKind, FatTreeParams};

    #[test]
    fn ranks_by_reliability_and_flags_ties() {
        // Plan A: both instances behind one edge switch (correlated).
        // Plan B: instances in different pods (independent-ish).
        // Plan C: same as B but other pods — a statistical tie with B.
        let t = FatTreeParams::new(4).build();
        let model = FaultModel::new(
            &t,
            &ProbabilityConfig::PerKind {
                table: vec![(ComponentKind::EdgeSwitch, 0.05), (ComponentKind::Host, 0.02)],
                default: 0.0,
            },
            0,
        );
        let m = t.fat_tree().unwrap();
        let spec = ApplicationSpec::k_of_n(1, 2);
        let same_edge = DeploymentPlan::new(&spec, vec![vec![m.host(0, 0, 0), m.host(0, 0, 1)]]);
        let cross_pod_1 = DeploymentPlan::new(&spec, vec![vec![m.host(0, 0, 0), m.host(1, 0, 0)]]);
        let cross_pod_2 = DeploymentPlan::new(&spec, vec![vec![m.host(1, 1, 0), m.host(2, 0, 0)]]);
        let mut assessor = Assessor::new(&t, model);
        let cmp =
            compare_plans(&mut assessor, &spec, &[same_edge, cross_pod_1, cross_pod_2], 60_000, 9);
        // A cross-pod plan must win; the two cross-pod plans tie.
        assert_ne!(cmp.best_index(), 0, "the correlated plan cannot win");
        let winners = cmp.statistical_winners();
        assert!(winners.contains(&1) && winners.contains(&2), "{winners:?}");
        assert!(!winners.contains(&0));
        // Ranking is sorted descending.
        for w in cmp.ranking.windows(2) {
            assert!(w[0].assessment.estimate.score >= w[1].assessment.estimate.score);
        }
    }

    #[test]
    fn single_candidate_wins_trivially() {
        let t = FatTreeParams::new(4).build();
        let model = FaultModel::paper_default(&t, 1);
        let spec = ApplicationSpec::k_of_n(1, 2);
        let plan = DeploymentPlan::new(&spec, vec![t.hosts()[..2].to_vec()]);
        let mut assessor = Assessor::new(&t, model);
        let cmp = compare_plans(&mut assessor, &spec, &[plan], 1_000, 1);
        assert_eq!(cmp.best_index(), 0);
        assert_eq!(cmp.statistical_winners(), vec![0]);
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn empty_candidates_rejected() {
        let t = FatTreeParams::new(4).build();
        let model = FaultModel::paper_default(&t, 1);
        let spec = ApplicationSpec::k_of_n(1, 2);
        let mut assessor = Assessor::new(&t, model);
        compare_plans(&mut assessor, &spec, &[], 100, 0);
    }
}
