//! Hand-rolled binary wire codec for the parallel engine.
//!
//! The paper's implementation distributes route-and-check over a
//! MapReduce-style engine, and §4.2.4 explicitly attributes part of the
//! parallel cost to "data serialization/transmission/deserialization". To
//! preserve that cost structure, our master/worker engine moves every job
//! descriptor, task and result through this codec as length-prefixed byte
//! frames — the same bytes a TCP transport would carry.
//!
//! Format (all little-endian):
//!
//! ```text
//! frame   := magic:u32 ("RCW1") kind:u8 payload
//! job     := kind 0x01, rounds_total:u64, n_components:u32,
//!            { n_hosts:u32, host:u32... }...
//! task    := kind 0x02, chunk:u32, seed:u64, rounds:u32
//! result  := kind 0x03, chunk:u32, rounds:u64, successes:u64,
//!            sampling_ns:u64, collapse_ns:u64, check_ns:u64, total_ns:u64
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

const MAGIC: u32 = 0x5243_5731; // "RCW1"

/// Decoding failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Frame shorter than its header or declared payload.
    Truncated,
    /// Magic number mismatch.
    BadMagic(u32),
    /// Unknown or unexpected frame kind.
    BadKind(u8),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated frame"),
            WireError::BadMagic(m) => write!(f, "bad magic 0x{m:08x}"),
            WireError::BadKind(k) => write!(f, "bad frame kind 0x{k:02x}"),
        }
    }
}

impl std::error::Error for WireError {}

fn check_header(buf: &mut Bytes, kind: u8) -> Result<(), WireError> {
    if buf.remaining() < 5 {
        return Err(WireError::Truncated);
    }
    let magic = buf.get_u32_le();
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let k = buf.get_u8();
    if k != kind {
        return Err(WireError::BadKind(k));
    }
    Ok(())
}

fn need(buf: &Bytes, n: usize) -> Result<(), WireError> {
    if buf.remaining() < n {
        Err(WireError::Truncated)
    } else {
        Ok(())
    }
}

/// Job setup shipped to every worker once per assessment: the deployment
/// plan under test plus the total round budget.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobFrame {
    /// Total rounds in the job (informational; tasks carry the split).
    pub rounds_total: u64,
    /// Raw host ids per application component.
    pub assignments: Vec<Vec<u32>>,
}

impl JobFrame {
    /// Encodes the frame.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(
            16 + self.assignments.iter().map(|a| 4 + 4 * a.len()).sum::<usize>(),
        );
        b.put_u32_le(MAGIC);
        b.put_u8(0x01);
        b.put_u64_le(self.rounds_total);
        b.put_u32_le(self.assignments.len() as u32);
        for comp in &self.assignments {
            b.put_u32_le(comp.len() as u32);
            for &h in comp {
                b.put_u32_le(h);
            }
        }
        b.freeze()
    }

    /// Decodes a frame.
    pub fn decode(mut buf: Bytes) -> Result<Self, WireError> {
        check_header(&mut buf, 0x01)?;
        need(&buf, 12)?;
        let rounds_total = buf.get_u64_le();
        let n_comp = buf.get_u32_le() as usize;
        let mut assignments = Vec::with_capacity(n_comp);
        for _ in 0..n_comp {
            need(&buf, 4)?;
            let n = buf.get_u32_le() as usize;
            need(&buf, 4 * n)?;
            assignments.push((0..n).map(|_| buf.get_u32_le()).collect());
        }
        Ok(JobFrame { rounds_total, assignments })
    }
}

/// One chunk of rounds assigned to a worker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TaskFrame {
    /// Chunk index within the job.
    pub chunk: u32,
    /// Sampler seed for the chunk (derived from the master seed).
    pub seed: u64,
    /// Rounds in this chunk.
    pub rounds: u32,
}

impl TaskFrame {
    /// Encodes the frame.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(21);
        b.put_u32_le(MAGIC);
        b.put_u8(0x02);
        b.put_u32_le(self.chunk);
        b.put_u64_le(self.seed);
        b.put_u32_le(self.rounds);
        b.freeze()
    }

    /// Decodes a frame.
    pub fn decode(mut buf: Bytes) -> Result<Self, WireError> {
        check_header(&mut buf, 0x02)?;
        need(&buf, 16)?;
        Ok(TaskFrame { chunk: buf.get_u32_le(), seed: buf.get_u64_le(), rounds: buf.get_u32_le() })
    }
}

/// A worker's per-chunk verdict counts and timings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResultFrame {
    /// Chunk index this result answers.
    pub chunk: u32,
    /// Rounds checked.
    pub rounds: u64,
    /// Rounds in which the plan was reliable.
    pub successes: u64,
    /// Stage timings in nanoseconds.
    pub sampling_ns: u64,
    /// Fault-tree collapse time.
    pub collapse_ns: u64,
    /// Route-and-check time.
    pub check_ns: u64,
    /// Whole-chunk time.
    pub total_ns: u64,
}

impl ResultFrame {
    /// Encodes the frame.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(53);
        b.put_u32_le(MAGIC);
        b.put_u8(0x03);
        b.put_u32_le(self.chunk);
        b.put_u64_le(self.rounds);
        b.put_u64_le(self.successes);
        b.put_u64_le(self.sampling_ns);
        b.put_u64_le(self.collapse_ns);
        b.put_u64_le(self.check_ns);
        b.put_u64_le(self.total_ns);
        b.freeze()
    }

    /// Decodes a frame.
    pub fn decode(mut buf: Bytes) -> Result<Self, WireError> {
        check_header(&mut buf, 0x03)?;
        need(&buf, 52)?;
        Ok(ResultFrame {
            chunk: buf.get_u32_le(),
            rounds: buf.get_u64_le(),
            successes: buf.get_u64_le(),
            sampling_ns: buf.get_u64_le(),
            collapse_ns: buf.get_u64_le(),
            check_ns: buf.get_u64_le(),
            total_ns: buf.get_u64_le(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_roundtrip() {
        let f = JobFrame {
            rounds_total: 10_000,
            assignments: vec![vec![1, 2, 3], vec![], vec![42]],
        };
        assert_eq!(JobFrame::decode(f.encode()).unwrap(), f);
    }

    #[test]
    fn task_roundtrip() {
        let f = TaskFrame { chunk: 7, seed: u64::MAX, rounds: 2_500 };
        assert_eq!(TaskFrame::decode(f.encode()).unwrap(), f);
    }

    #[test]
    fn result_roundtrip() {
        let f = ResultFrame {
            chunk: 3,
            rounds: 2_500,
            successes: 2_498,
            sampling_ns: 123,
            collapse_ns: 456,
            check_ns: 789,
            total_ns: 1_500,
        };
        assert_eq!(ResultFrame::decode(f.encode()).unwrap(), f);
    }

    #[test]
    fn truncated_frames_rejected() {
        let f = TaskFrame { chunk: 1, seed: 2, rounds: 3 };
        let whole = f.encode();
        for cut in 0..whole.len() {
            let part = whole.slice(..cut);
            assert_eq!(TaskFrame::decode(part), Err(WireError::Truncated), "cut={cut}");
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let mut b = BytesMut::new();
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u8(0x02);
        b.put_bytes(0, 16);
        assert!(matches!(TaskFrame::decode(b.freeze()), Err(WireError::BadMagic(_))));
    }

    #[test]
    fn kind_confusion_rejected() {
        let task = TaskFrame { chunk: 1, seed: 2, rounds: 3 }.encode();
        assert!(matches!(ResultFrame::decode(task), Err(WireError::BadKind(0x02))));
    }

    #[test]
    fn errors_display() {
        assert_eq!(WireError::Truncated.to_string(), "truncated frame");
        assert!(WireError::BadMagic(7).to_string().contains("magic"));
        assert!(WireError::BadKind(9).to_string().contains("kind"));
    }
}
