//! Hand-rolled binary wire codec for the parallel engine.
//!
//! The paper's implementation distributes route-and-check over a
//! MapReduce-style engine, and §4.2.4 explicitly attributes part of the
//! parallel cost to "data serialization/transmission/deserialization". To
//! preserve that cost structure, our master/worker engine moves every job
//! descriptor, task and result through this codec as length-prefixed byte
//! frames — the same bytes a TCP transport would carry. The buffers
//! themselves come from the in-repo [`recloud_sampling::wire`] substrate
//! (no external `bytes` crate), keeping the build hermetic.
//!
//! Format (all little-endian):
//!
//! ```text
//! frame   := magic:u32 ("RCW1") kind:u8 payload
//! job     := kind 0x01, rounds_total:u64, n_components:u32,
//!            { n_hosts:u32, host:u32... }...
//! task    := kind 0x02, chunk:u32, seed:u64, rounds:u32
//! result  := kind 0x03, chunk:u32, rounds:u64, successes:u64,
//!            sampling_ns:u64, collapse_ns:u64, check_ns:u64, total_ns:u64
//! ```
//!
//! Every `encode` reserves its exact frame size up front (the
//! `*_FRAME_LEN` constants below), so hot-path encodes — worker replies in
//! particular — are a single allocation; the `encoded_lengths_*` tests pin
//! the constants to the layout above.

use recloud_sampling::wire::{ByteReader, ByteWriter, Bytes};
use std::fmt;

const MAGIC: u32 = 0x5243_5731; // "RCW1"

/// Bytes in the common frame header: magic (4) + kind (1).
pub const HEADER_LEN: usize = 5;
/// Exact encoded size of a [`TaskFrame`]: header + chunk + seed + rounds.
pub const TASK_FRAME_LEN: usize = HEADER_LEN + 4 + 8 + 4;
/// Exact encoded size of a [`ResultFrame`]: header + chunk + six u64
/// counters (rounds, successes, four timings).
pub const RESULT_FRAME_LEN: usize = HEADER_LEN + 4 + 6 * 8;
/// Fixed prefix of a [`JobFrame`]: header + rounds_total + n_components;
/// each component then adds `4 + 4 * hosts`.
pub const JOB_FRAME_PREFIX_LEN: usize = HEADER_LEN + 8 + 4;

/// Decoding failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Frame shorter than its header or declared payload.
    Truncated,
    /// Magic number mismatch.
    BadMagic(u32),
    /// Unknown or unexpected frame kind.
    BadKind(u8),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated frame"),
            WireError::BadMagic(m) => write!(f, "bad magic 0x{m:08x}"),
            WireError::BadKind(k) => write!(f, "bad frame kind 0x{k:02x}"),
        }
    }
}

impl std::error::Error for WireError {}

fn put_header(w: &mut ByteWriter, kind: u8) {
    w.put_u32_le(MAGIC);
    w.put_u8(kind);
}

fn check_header(r: &mut ByteReader, kind: u8) -> Result<(), WireError> {
    let magic = r.get_u32_le().ok_or(WireError::Truncated)?;
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let k = r.get_u8().ok_or(WireError::Truncated)?;
    if k != kind {
        return Err(WireError::BadKind(k));
    }
    Ok(())
}

/// Job setup shipped to every worker once per assessment: the deployment
/// plan under test plus the total round budget.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobFrame {
    /// Total rounds in the job (informational; tasks carry the split).
    pub rounds_total: u64,
    /// Raw host ids per application component.
    pub assignments: Vec<Vec<u32>>,
}

impl JobFrame {
    /// Exact encoded size of this frame.
    pub fn encoded_len(&self) -> usize {
        JOB_FRAME_PREFIX_LEN + self.assignments.iter().map(|a| 4 + 4 * a.len()).sum::<usize>()
    }

    /// Encodes the frame in a single allocation.
    pub fn encode(&self) -> Bytes {
        let mut b = ByteWriter::with_capacity(self.encoded_len());
        put_header(&mut b, 0x01);
        b.put_u64_le(self.rounds_total);
        b.put_u32_le(self.assignments.len() as u32);
        for comp in &self.assignments {
            b.put_u32_le(comp.len() as u32);
            for &h in comp {
                b.put_u32_le(h);
            }
        }
        debug_assert_eq!(b.len(), self.encoded_len());
        b.freeze()
    }

    /// Decodes a frame.
    pub fn decode(buf: Bytes) -> Result<Self, WireError> {
        let mut r = ByteReader::new(buf);
        check_header(&mut r, 0x01)?;
        let rounds_total = r.get_u64_le().ok_or(WireError::Truncated)?;
        let n_comp = r.get_u32_le().ok_or(WireError::Truncated)? as usize;
        let mut assignments = Vec::with_capacity(n_comp.min(1 << 16));
        for _ in 0..n_comp {
            let n = r.get_u32_le().ok_or(WireError::Truncated)? as usize;
            if r.remaining() < 4 * n {
                return Err(WireError::Truncated);
            }
            assignments.push((0..n).map(|_| r.get_u32_le().unwrap()).collect());
        }
        Ok(JobFrame { rounds_total, assignments })
    }
}

/// One chunk of rounds assigned to a worker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TaskFrame {
    /// Chunk index within the job.
    pub chunk: u32,
    /// Sampler seed for the chunk (derived from the master seed).
    pub seed: u64,
    /// Rounds in this chunk.
    pub rounds: u32,
}

impl TaskFrame {
    /// Encodes the frame in a single allocation of [`TASK_FRAME_LEN`].
    pub fn encode(&self) -> Bytes {
        let mut b = ByteWriter::with_capacity(TASK_FRAME_LEN);
        put_header(&mut b, 0x02);
        b.put_u32_le(self.chunk);
        b.put_u64_le(self.seed);
        b.put_u32_le(self.rounds);
        debug_assert_eq!(b.len(), TASK_FRAME_LEN);
        b.freeze()
    }

    /// Decodes a frame.
    pub fn decode(buf: Bytes) -> Result<Self, WireError> {
        let mut r = ByteReader::new(buf);
        check_header(&mut r, 0x02)?;
        Ok(TaskFrame {
            chunk: r.get_u32_le().ok_or(WireError::Truncated)?,
            seed: r.get_u64_le().ok_or(WireError::Truncated)?,
            rounds: r.get_u32_le().ok_or(WireError::Truncated)?,
        })
    }
}

/// A worker's per-chunk verdict counts and timings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResultFrame {
    /// Chunk index this result answers.
    pub chunk: u32,
    /// Rounds checked.
    pub rounds: u64,
    /// Rounds in which the plan was reliable.
    pub successes: u64,
    /// Stage timings in nanoseconds.
    pub sampling_ns: u64,
    /// Fault-tree collapse time.
    pub collapse_ns: u64,
    /// Route-and-check time.
    pub check_ns: u64,
    /// Whole-chunk time.
    pub total_ns: u64,
}

impl ResultFrame {
    /// Encodes the frame in a single allocation of [`RESULT_FRAME_LEN`].
    ///
    /// This is the hot worker-reply path: one frame per chunk per
    /// assessment. The reservation was historically 53 bytes against a
    /// 57-byte layout, forcing a reallocation on every reply; the
    /// [`RESULT_FRAME_LEN`] constant keeps it exact now.
    pub fn encode(&self) -> Bytes {
        let mut b = ByteWriter::with_capacity(RESULT_FRAME_LEN);
        put_header(&mut b, 0x03);
        b.put_u32_le(self.chunk);
        b.put_u64_le(self.rounds);
        b.put_u64_le(self.successes);
        b.put_u64_le(self.sampling_ns);
        b.put_u64_le(self.collapse_ns);
        b.put_u64_le(self.check_ns);
        b.put_u64_le(self.total_ns);
        debug_assert_eq!(b.len(), RESULT_FRAME_LEN);
        b.freeze()
    }

    /// Decodes a frame.
    pub fn decode(buf: Bytes) -> Result<Self, WireError> {
        let mut r = ByteReader::new(buf);
        check_header(&mut r, 0x03)?;
        let chunk = r.get_u32_le().ok_or(WireError::Truncated)?;
        let mut next = || r.get_u64_le().ok_or(WireError::Truncated);
        Ok(ResultFrame {
            chunk,
            rounds: next()?,
            successes: next()?,
            sampling_ns: next()?,
            collapse_ns: next()?,
            check_ns: next()?,
            total_ns: next()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recloud_sampling::wire::ByteWriter;

    #[test]
    fn job_roundtrip() {
        let f =
            JobFrame { rounds_total: 10_000, assignments: vec![vec![1, 2, 3], vec![], vec![42]] };
        assert_eq!(JobFrame::decode(f.encode()).unwrap(), f);
    }

    #[test]
    fn task_roundtrip() {
        let f = TaskFrame { chunk: 7, seed: u64::MAX, rounds: 2_500 };
        assert_eq!(TaskFrame::decode(f.encode()).unwrap(), f);
    }

    #[test]
    fn result_roundtrip() {
        let f = ResultFrame {
            chunk: 3,
            rounds: 2_500,
            successes: 2_498,
            sampling_ns: 123,
            collapse_ns: 456,
            check_ns: 789,
            total_ns: 1_500,
        };
        assert_eq!(ResultFrame::decode(f.encode()).unwrap(), f);
    }

    /// The documented layout: task = 5 + 4 + 8 + 4, result = 5 + 4 + 6×8,
    /// job = 5 + 8 + 4 + Σ(4 + 4·hosts). Pins both the constants and the
    /// actual bytes produced.
    #[test]
    fn encoded_lengths_match_documented_layout() {
        let task = TaskFrame { chunk: 1, seed: 2, rounds: 3 };
        assert_eq!(TASK_FRAME_LEN, 21);
        assert_eq!(task.encode().len(), TASK_FRAME_LEN);

        let result = ResultFrame {
            chunk: 1,
            rounds: 2,
            successes: 3,
            sampling_ns: 4,
            collapse_ns: 5,
            check_ns: 6,
            total_ns: 7,
        };
        assert_eq!(RESULT_FRAME_LEN, 57);
        assert_eq!(result.encode().len(), RESULT_FRAME_LEN);

        let job = JobFrame { rounds_total: 9, assignments: vec![vec![1, 2], vec![3]] };
        assert_eq!(JOB_FRAME_PREFIX_LEN, 17);
        assert_eq!(job.encoded_len(), 17 + (4 + 8) + (4 + 4));
        assert_eq!(job.encode().len(), job.encoded_len());
    }

    /// Encoding must reserve its exact size: a writer pre-sized with the
    /// frame constant must not grow while the frame is written (the former
    /// 53-byte reservation for the 57-byte result frame reallocated on
    /// every worker reply).
    #[test]
    fn encode_reservations_are_exact() {
        let mut w = ByteWriter::with_capacity(RESULT_FRAME_LEN);
        let cap = w.capacity();
        w.put_u32_le(MAGIC);
        w.put_u8(0x03);
        w.put_u32_le(1);
        for v in [2u64, 3, 4, 5, 6, 7] {
            w.put_u64_le(v);
        }
        assert_eq!(w.len(), RESULT_FRAME_LEN);
        assert_eq!(w.capacity(), cap, "result encode must not reallocate");
    }

    #[test]
    fn truncated_frames_rejected() {
        let f = TaskFrame { chunk: 1, seed: 2, rounds: 3 };
        let whole = f.encode();
        for cut in 0..whole.len() {
            let part = whole.slice(..cut);
            assert_eq!(TaskFrame::decode(part), Err(WireError::Truncated), "cut={cut}");
        }
    }

    #[test]
    fn truncated_result_and_job_frames_rejected_on_every_prefix() {
        let result = ResultFrame {
            chunk: 1,
            rounds: 2,
            successes: 3,
            sampling_ns: 4,
            collapse_ns: 5,
            check_ns: 6,
            total_ns: 7,
        }
        .encode();
        for cut in 0..result.len() {
            assert_eq!(
                ResultFrame::decode(result.slice(..cut)),
                Err(WireError::Truncated),
                "result cut={cut}"
            );
        }
        let job = JobFrame { rounds_total: 8, assignments: vec![vec![1], vec![2, 3]] }.encode();
        for cut in 0..job.len() {
            assert_eq!(
                JobFrame::decode(job.slice(..cut)),
                Err(WireError::Truncated),
                "job cut={cut}"
            );
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let mut b = ByteWriter::new();
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u8(0x02);
        b.put_bytes(0, 16);
        assert!(matches!(TaskFrame::decode(b.freeze()), Err(WireError::BadMagic(_))));
    }

    #[test]
    fn kind_confusion_rejected() {
        let task = TaskFrame { chunk: 1, seed: 2, rounds: 3 }.encode();
        assert!(matches!(ResultFrame::decode(task), Err(WireError::BadKind(0x02))));
    }

    #[test]
    fn errors_display() {
        assert_eq!(WireError::Truncated.to_string(), "truncated frame");
        assert!(WireError::BadMagic(7).to_string().contains("magic"));
        assert!(WireError::BadKind(9).to_string().contains("kind"));
    }
}
