//! Exact reliability by weighted exhaustive enumeration.
//!
//! The paper notes "it is extremely hard, if not impossible, to get the
//! ground-truth reliability of a deployment plan" at data-center scale —
//! the underlying problem is NP-hard [Ball '86]. For *small* models,
//! though, the ground truth is computable: enumerate every failure state
//! of the fallible events, weight it by its probability, and run the exact
//! same collapse + route-and-check the sampled pipeline uses.
//!
//! The test suite uses this to validate (a) that both samplers converge to
//! the true value and (b) that the Eq 3 confidence interval actually
//! covers it — a stronger accuracy check than the paper could perform.
//!
//! States are evaluated in blocks of 64 so the word-parallel fault-tree
//! collapse is exercised too.

use crate::check::StructureChecker;
use recloud_apps::{ApplicationSpec, DeploymentPlan};
use recloud_faults::FaultModel;
use recloud_routing::make_router;
use recloud_sampling::BitMatrix;
use recloud_topology::Topology;

/// Hard cap on fallible events: 2²² states ≈ 4M evaluations.
pub const MAX_FALLIBLE: usize = 22;

/// Computes the exact reliability of a plan under the fault model.
///
/// # Panics
/// Panics if more than [`MAX_FALLIBLE`] events have nonzero failure
/// probability — use sampling for anything bigger; that is the point of
/// the paper.
pub fn exact_reliability(
    topology: &Topology,
    model: &FaultModel,
    spec: &ApplicationSpec,
    plan: &DeploymentPlan,
) -> f64 {
    let fallible: Vec<(usize, f64)> =
        model.probs().iter().enumerate().filter(|(_, &p)| p > 0.0).map(|(i, &p)| (i, p)).collect();
    assert!(
        fallible.len() <= MAX_FALLIBLE,
        "{} fallible events exceed the exact-enumeration cap of {MAX_FALLIBLE}",
        fallible.len()
    );
    let total: u64 = 1u64 << fallible.len();

    let mut raw = BitMatrix::new(model.num_events(), 64);
    let mut collapsed = BitMatrix::new(model.num_topology_components(), 64);
    let mut router = make_router(topology);
    let mut checker = StructureChecker::new(spec, plan);

    let mut reliability = 0.0f64;
    let mut base = 0u64;
    while base < total {
        let block = ((total - base) as usize).min(64);
        raw.clear();
        for j in 0..block {
            let state = base + j as u64;
            for (bit, &(event, _)) in fallible.iter().enumerate() {
                if (state >> bit) & 1 == 1 {
                    raw.set(event, j);
                }
            }
        }
        model.collapse_into(&raw, &mut collapsed);
        for j in 0..block {
            router.begin_round(&collapsed, j);
            if checker.round_reliable(router.as_mut(), &collapsed, j) {
                let state = base + j as u64;
                let mut w = 1.0f64;
                for (bit, &(_, p)) in fallible.iter().enumerate() {
                    w *= if (state >> bit) & 1 == 1 { p } else { 1.0 - p };
                }
                reliability += w;
            }
        }
        base += block as u64;
    }
    reliability
}

#[cfg(test)]
mod tests {
    use super::*;
    use recloud_faults::ProbabilityConfig;
    use recloud_topology::{ComponentId, ComponentKind, TopologyBuilder};

    /// ext - border - {h1, h2}; only the three named components can fail.
    fn star(p_border: f64, p_host: f64) -> (Topology, FaultModel, Vec<ComponentId>) {
        let mut b = TopologyBuilder::new();
        b.external();
        let sw = b.add(ComponentKind::BorderSwitch);
        b.mark_border(sw);
        let hosts = b.add_hosts(2);
        for &h in &hosts {
            b.connect(sw, h);
        }
        let t = b.build();
        let model = FaultModel::new(
            &t,
            &ProbabilityConfig::PerKind {
                table: vec![(ComponentKind::BorderSwitch, p_border), (ComponentKind::Host, p_host)],
                default: 0.0,
            },
            0,
        );
        (t, model, hosts)
    }

    #[test]
    fn closed_form_one_of_two() {
        // R = (1 - pb) * (1 - ph^2): border alive and not both hosts dead.
        let (t, model, hosts) = star(0.1, 0.2);
        let spec = ApplicationSpec::k_of_n(1, 2);
        let plan = DeploymentPlan::new(&spec, vec![hosts.clone()]);
        let r = exact_reliability(&t, &model, &spec, &plan);
        let expect = 0.9 * (1.0 - 0.04);
        assert!((r - expect).abs() < 1e-12, "r={r} expect={expect}");
    }

    #[test]
    fn closed_form_two_of_two() {
        // R = (1 - pb) * (1 - ph)^2.
        let (t, model, hosts) = star(0.1, 0.2);
        let spec = ApplicationSpec::k_of_n(2, 2);
        let plan = DeploymentPlan::new(&spec, vec![hosts.clone()]);
        let r = exact_reliability(&t, &model, &spec, &plan);
        let expect = 0.9 * 0.8 * 0.8;
        assert!((r - expect).abs() < 1e-12, "r={r} expect={expect}");
    }

    #[test]
    fn shared_power_closed_form() {
        // Add one power supply feeding both hosts: R(1-of-2) =
        // (1-pb) * (1-pp) * (1 - ph^2)  — power failure kills both hosts.
        let mut b = TopologyBuilder::new();
        b.external();
        let sw = b.add(ComponentKind::BorderSwitch);
        b.mark_border(sw);
        let hosts = b.add_hosts(2);
        for &h in &hosts {
            b.connect(sw, h);
        }
        let power = b.add(ComponentKind::PowerSupply);
        b.draw_power(hosts[0], power);
        b.draw_power(hosts[1], power);
        let t = b.build();
        let mut model = FaultModel::new(
            &t,
            &ProbabilityConfig::PerKind {
                table: vec![
                    (ComponentKind::BorderSwitch, 0.1),
                    (ComponentKind::Host, 0.2),
                    (ComponentKind::PowerSupply, 0.05),
                ],
                default: 0.0,
            },
            0,
        );
        model.attach_power_dependencies(&t);
        let spec = ApplicationSpec::k_of_n(1, 2);
        let plan = DeploymentPlan::new(&spec, vec![hosts.clone()]);
        let r = exact_reliability(&t, &model, &spec, &plan);
        let expect = 0.9 * 0.95 * (1.0 - 0.04);
        assert!((r - expect).abs() < 1e-12, "r={r} expect={expect}");
    }

    #[test]
    fn zero_probability_model_is_perfectly_reliable() {
        let (t, _, hosts) = star(0.0, 0.0);
        let model = FaultModel::new(&t, &ProbabilityConfig::Uniform(0.0), 0);
        let spec = ApplicationSpec::k_of_n(2, 2);
        let plan = DeploymentPlan::new(&spec, vec![hosts]);
        assert_eq!(exact_reliability(&t, &model, &spec, &plan), 1.0);
    }

    #[test]
    fn two_layer_closed_form() {
        // FE on h1, DB on h2 (1 instance each, K=1 both):
        // round OK iff border, h1, h2 all alive
        // => R = (1-pb) (1-ph)^2.
        let (t, model, hosts) = star(0.1, 0.2);
        let mut b = ApplicationSpec::builder();
        let fe = b.component("fe", 1);
        let db = b.component("db", 1);
        b.require_external(fe, 1);
        b.require(db, recloud_apps::Source::Component(fe), 1);
        let spec = b.build();
        let plan = DeploymentPlan::new(&spec, vec![vec![hosts[0]], vec![hosts[1]]]);
        let r = exact_reliability(&t, &model, &spec, &plan);
        let expect = 0.9 * 0.8 * 0.8;
        assert!((r - expect).abs() < 1e-12, "r={r} expect={expect}");
    }

    #[test]
    #[should_panic(expected = "exceed the exact-enumeration cap")]
    fn refuses_large_models() {
        let t = recloud_topology::FatTreeParams::new(8).build();
        let model = FaultModel::paper_default(&t, 0);
        let spec = ApplicationSpec::k_of_n(1, 2);
        let plan = DeploymentPlan::new(&spec, vec![t.hosts()[..2].to_vec()]);
        exact_reliability(&t, &model, &spec, &plan);
    }
}
