#![warn(missing_docs)]

//! # recloud-assess
//!
//! Quantitative reliability assessment of deployment plans — the pipeline
//! of §3.2, end to end:
//!
//! 1. generate failure states for every sampled event over many rounds
//!    (extended dagger sampling for reCloud, Monte-Carlo for the INDaaS
//!    baseline) — from `recloud-sampling`;
//! 2. fold shared-dependency fault trees into effective per-component
//!    states (§3.2.3) — from `recloud-faults`;
//! 3. route-and-check each round (§3.2.1, Figs 2 & 6): K-of-N counting for
//!    simple apps, a greatest-fixpoint cascade over the requirement graph
//!    for complex structures (§3.2.4) — [`check`];
//! 4. accumulate into a reliability score with conservative variance and
//!    the 95% confidence-interval width (Eqs 1–3).
//!
//! [`assessor::Assessor`] is the single-threaded engine;
//! [`parallel::ParallelAssessor`] is the MapReduce-style master/worker
//! engine of §3.2.1/§4.2.4, with task and result frames crossing a real
//! wire codec ([`wire`]) to model the distributed implementation's
//! serialization cost. [`ground_truth`] computes *exact* reliabilities for
//! small models by weighted exhaustive enumeration, which the test suite
//! uses to validate both samplers and the error bounds.

pub mod assessor;
pub mod check;
pub mod compare;
pub mod driver;
pub mod fingerprint;
pub mod ground_truth;
pub mod indaas;
pub mod parallel;
pub mod sensitivity;
pub mod sequential;
pub mod wire;

pub use assessor::{Assessment, Assessor, BatchWidth, DrivenAssessment, SamplerKind, Timings};
pub use check::StructureChecker;
pub use compare::{compare_plans, Comparison, RankedPlan};
pub use driver::{AssessmentDriver, ChunkTask, PartialEstimate};
pub use fingerprint::{assessment_key, fnv1a_128};
pub use ground_truth::exact_reliability;
pub use indaas::{rank_by_risk, risk_profile, RiskProfile};
pub use parallel::ParallelAssessor;
pub use sensitivity::{dependency_sensitivity, SensitivityReport, SensitivityRow};
pub use sequential::{SequentialAssessment, StopReason};
