//! The resumable chunk driver — one state machine under every
//! assessment path.
//!
//! The paper's estimator is inherently incremental: R and the
//! conservative CIW (Eqs 1–3) are running statistics updated per chunk,
//! and §3.2's sequential stopping idea only pays off when callers can
//! observe the estimate *while it converges*. [`AssessmentDriver`] owns
//! everything those statistics need — the chunk layout, the per-chunk
//! seed derivation ([`Assessor::chunk_seed`]), the estimator state, and
//! the per-chunk observability recording — and yields a
//! [`PartialEstimate`] after every chunk it is fed.
//!
//! Three consumers drive it:
//!
//! - [`Assessor::drive`] (serial, fresh or cached-table) pulls tasks one
//!   at a time and feeds each result back immediately;
//! - [`crate::parallel::ParallelAssessor::assess`] drains `next_task`
//!   into wire-encoded task frames up front and feeds decoded result
//!   frames back in whatever order workers finish them — the estimate is
//!   a pure function of the (rounds, successes) totals, so arrival order
//!   is irrelevant and parallel results stay bit-identical to serial;
//! - the serving daemon's streaming path forwards each partial over RCS1
//!   and stops feeding when the client cancels.
//!
//! Feeding may stop early (target CIW reached, client cancelled); the
//! driver then reports `is_complete() == false` and its estimate covers
//! exactly the rounds fed so far.

use crate::assessor::{Assessor, Timings};
use recloud_obs::{Counter, Histogram, LocalHistogram};
use recloud_sampling::{ReliabilityEstimate, ResultAccumulator};
use std::sync::Arc;
use std::time::Duration;

/// A snapshot of the running estimate, yielded after every fed chunk.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PartialEstimate {
    /// Chunk index that was just fed.
    pub chunk: u32,
    /// Total chunks in the layout.
    pub chunks_total: u32,
    /// Rounds accumulated so far (monotonically nondecreasing).
    pub rounds_done: u64,
    /// Rounds the full request would run.
    pub rounds_total: u64,
    /// Running reliability estimate R (Eq 1).
    pub r: f64,
    /// Running 95% confidence-interval width (Eq 3).
    pub ciw: f64,
    /// True when a configured CIW target has been reached — the driver's
    /// own stopping rule; consumers may also stop for their own reasons.
    pub stop_hint: bool,
}

/// One chunk of work, ready to hand to an executor (serial `run_chunk`,
/// a wire-encoded task frame, a server worker).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkTask {
    /// Chunk index within the layout.
    pub chunk: u32,
    /// Sampler seed for the chunk, derived from the master seed.
    pub seed: u64,
    /// Rounds in this chunk.
    pub rounds: usize,
}

/// Per-chunk observability handles (process-global `assess.*` names).
/// The driver records once per *fed chunk*, never per round, so the
/// recording stays off the bit-sliced hot path — and it batches into
/// plain local accumulators, flushed into the shared atomics once when
/// the driver is dropped. The flushed histogram contents are
/// bit-identical to per-chunk shared records; only their visibility is
/// deferred to the end of the drive.
struct DriverInstruments {
    sampling_us: Arc<Histogram>,
    collapse_us: Arc<Histogram>,
    check_us: Arc<Histogram>,
    rounds_total: Arc<Counter>,
    sampling_batch: LocalHistogram,
    collapse_batch: LocalHistogram,
    check_batch: LocalHistogram,
    rounds_batch: u64,
}

impl DriverInstruments {
    fn from_global() -> Self {
        let registry = recloud_obs::global();
        DriverInstruments {
            sampling_us: registry.histogram("assess.sampling_us"),
            collapse_us: registry.histogram("assess.collapse_us"),
            check_us: registry.histogram("assess.check_us"),
            rounds_total: registry.counter("assess.rounds_total"),
            sampling_batch: LocalHistogram::new(),
            collapse_batch: LocalHistogram::new(),
            check_batch: LocalHistogram::new(),
            rounds_batch: 0,
        }
    }
}

impl Drop for DriverInstruments {
    fn drop(&mut self) {
        self.sampling_batch.flush_into(&self.sampling_us);
        self.collapse_batch.flush_into(&self.collapse_us);
        self.check_batch.flush_into(&self.check_us);
        if self.rounds_batch != 0 {
            self.rounds_total.add(std::mem::take(&mut self.rounds_batch));
        }
    }
}

/// Resumable assessment state machine: hand out [`ChunkTask`]s, feed
/// back per-chunk `(rounds, successes, timings)` results, read a
/// [`PartialEstimate`] after every feed.
///
/// Task hand-out and result feeding are decoupled on purpose: a serial
/// consumer interleaves them one chunk at a time, a parallel master
/// drains every task up front and feeds results out of order.
pub struct AssessmentDriver {
    layout: Vec<(u32, usize)>,
    master_seed: u64,
    target_ciw: Option<f64>,
    /// Cursor over `layout` for `next_task`.
    next: usize,
    /// Chunks fed back so far.
    fed: usize,
    acc: ResultAccumulator,
    timings: Timings,
    rounds_total: u64,
    obs: DriverInstruments,
}

impl AssessmentDriver {
    /// Creates a driver over an [`Assessor::chunk_layout`] (chunk ids must
    /// be dense from zero — the layout's own invariant). A `target_ciw`
    /// arms the driver's stopping rule: partials report `stop_hint` once
    /// the running CIW₉₅ drops to the target.
    pub fn new(layout: Vec<(u32, usize)>, master_seed: u64, target_ciw: Option<f64>) -> Self {
        let rounds_total = layout.iter().map(|(_, n)| *n as u64).sum();
        AssessmentDriver {
            layout,
            master_seed,
            target_ciw,
            next: 0,
            fed: 0,
            acc: ResultAccumulator::new(),
            timings: Timings::default(),
            rounds_total,
            obs: DriverInstruments::from_global(),
        }
    }

    /// Next chunk of work, or `None` when every chunk has been handed out.
    pub fn next_task(&mut self) -> Option<ChunkTask> {
        let (chunk, rounds) = *self.layout.get(self.next)?;
        self.next += 1;
        Some(ChunkTask { chunk, seed: Assessor::chunk_seed(self.master_seed, chunk), rounds })
    }

    /// Feeds one chunk's result back and returns the updated running
    /// estimate. Chunks may arrive in any order; the estimate is a pure
    /// function of the accumulated totals.
    ///
    /// Stage histograms record only the stages that actually ran: the
    /// cached-table path feeds zero sampling/collapse durations and those
    /// chunks stay out of the sampling histograms, exactly as before the
    /// driver refactor.
    pub fn feed(
        &mut self,
        chunk: u32,
        rounds: u64,
        successes: u64,
        timings: &Timings,
    ) -> PartialEstimate {
        self.acc.push_batch(rounds, successes);
        self.timings.merge(timings);
        self.fed += 1;
        if recloud_obs::enabled() {
            if timings.sampling > Duration::ZERO {
                self.obs.sampling_batch.record(timings.sampling.as_micros() as u64);
            }
            if timings.collapse > Duration::ZERO {
                self.obs.collapse_batch.record(timings.collapse.as_micros() as u64);
            }
            self.obs.check_batch.record(timings.check.as_micros() as u64);
            self.obs.rounds_batch += rounds;
            if let Some(ctx) = recloud_obs::current_span() {
                let end_us = recloud_obs::trace::now_us();
                let dur_us = timings.total.as_micros() as u64;
                recloud_obs::tracer().record(
                    ctx.trace_id,
                    ctx.span,
                    "assess.chunk",
                    end_us.saturating_sub(dur_us),
                    end_us,
                    rounds,
                    chunk as u64,
                );
            }
        }
        let estimate = self.acc.estimate();
        let ciw = estimate.ciw95();
        PartialEstimate {
            chunk,
            chunks_total: self.layout.len() as u32,
            rounds_done: self.acc.rounds(),
            rounds_total: self.rounds_total,
            r: estimate.score,
            ciw,
            stop_hint: self.target_ciw.is_some_and(|t| ciw <= t),
        }
    }

    /// The running estimate over every chunk fed so far.
    pub fn estimate(&self) -> ReliabilityEstimate {
        self.acc.estimate()
    }

    /// Merged per-stage timings of every chunk fed so far. `total` is
    /// whatever [`set_total`](Self::set_total) last stored.
    pub fn timings(&self) -> Timings {
        self.timings
    }

    /// Stores the end-to-end wall clock (chunk `total` sums are CPU time
    /// across executors; consumers overwrite with their own wall clock).
    pub fn set_total(&mut self, total: Duration) {
        self.timings.total = total;
    }

    /// Rounds accumulated so far.
    pub fn rounds_done(&self) -> u64 {
        self.acc.rounds()
    }

    /// Rounds the full layout covers.
    pub fn rounds_total(&self) -> u64 {
        self.rounds_total
    }

    /// Number of chunks in the layout.
    pub fn chunks_total(&self) -> usize {
        self.layout.len()
    }

    /// Chunks fed back so far.
    pub fn chunks_fed(&self) -> usize {
        self.fed
    }

    /// True once every chunk in the layout has been fed back.
    pub fn is_complete(&self) -> bool {
        self.fed == self.layout.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout(chunks: &[usize]) -> Vec<(u32, usize)> {
        chunks.iter().enumerate().map(|(i, &n)| (i as u32, n)).collect()
    }

    #[test]
    fn tasks_cover_the_layout_in_order_with_derived_seeds() {
        let mut d = AssessmentDriver::new(layout(&[100, 100, 50]), 42, None);
        assert_eq!(d.rounds_total(), 250);
        assert_eq!(d.chunks_total(), 3);
        let tasks: Vec<ChunkTask> = std::iter::from_fn(|| d.next_task()).collect();
        assert_eq!(tasks.len(), 3);
        for (i, t) in tasks.iter().enumerate() {
            assert_eq!(t.chunk, i as u32);
            assert_eq!(t.seed, Assessor::chunk_seed(42, i as u32));
        }
        assert_eq!(tasks[2].rounds, 50);
        assert!(d.next_task().is_none(), "layout is exhausted");
    }

    #[test]
    fn partials_are_monotone_and_match_the_accumulated_totals() {
        let mut d = AssessmentDriver::new(layout(&[100, 100, 50]), 1, None);
        let t = Timings::default();
        let p1 = d.feed(0, 100, 90, &t);
        assert_eq!((p1.rounds_done, p1.rounds_total), (100, 250));
        assert!(!p1.stop_hint, "no target armed");
        let p2 = d.feed(2, 50, 50, &t); // out of order on purpose
        assert_eq!(p2.rounds_done, 150);
        assert!(p2.rounds_done > p1.rounds_done);
        let p3 = d.feed(1, 100, 100, &t);
        assert_eq!(p3.rounds_done, 250);
        assert!(d.is_complete());
        // The running estimate is the plain totals ratio (Eq 1).
        assert_eq!(d.estimate().successes, 240);
        assert_eq!(p3.r, 240.0 / 250.0);
        assert_eq!(p3.ciw, d.estimate().ciw95());
    }

    #[test]
    fn stop_hint_fires_exactly_when_the_target_is_reached() {
        // An all-successes stream has CIW 0 from the first chunk.
        let mut d = AssessmentDriver::new(layout(&[10, 10]), 1, Some(1e-9));
        let p = d.feed(0, 10, 10, &Timings::default());
        assert!(p.stop_hint);
        assert!(!d.is_complete(), "stopping early leaves the layout unfinished");

        // A mixed stream only reaches a loose target once n is large.
        let mut d = AssessmentDriver::new(layout(&[10, 100_000]), 1, Some(0.01));
        let p = d.feed(0, 10, 9, &Timings::default());
        assert!(!p.stop_hint, "10 rounds cannot satisfy a 1e-2 CIW");
        let p = d.feed(1, 100_000, 90_000, &Timings::default());
        assert!(p.stop_hint, "ciw {} <= 0.01", p.ciw);
    }

    #[test]
    fn feed_order_does_not_change_the_estimate() {
        let chunks: Vec<(u32, u64, u64)> = (0..8).map(|i| (i, 1000, 990 - i as u64)).collect();
        let mut fwd = AssessmentDriver::new(layout(&[1000; 8]), 3, None);
        let mut rev = AssessmentDriver::new(layout(&[1000; 8]), 3, None);
        for &(c, r, s) in &chunks {
            fwd.feed(c, r, s, &Timings::default());
        }
        for &(c, r, s) in chunks.iter().rev() {
            rev.feed(c, r, s, &Timings::default());
        }
        assert_eq!(fwd.estimate().score.to_bits(), rev.estimate().score.to_bits());
        assert_eq!(fwd.estimate().variance.to_bits(), rev.estimate().variance.to_bits());
    }

    #[test]
    fn timings_merge_and_total_is_caller_owned() {
        let mut d = AssessmentDriver::new(layout(&[10, 10]), 0, None);
        let chunk_t = Timings {
            sampling: Duration::from_micros(5),
            collapse: Duration::from_micros(3),
            check: Duration::from_micros(2),
            total: Duration::from_micros(11),
        };
        d.feed(0, 10, 10, &chunk_t);
        d.feed(1, 10, 10, &chunk_t);
        assert_eq!(d.timings().sampling, Duration::from_micros(10));
        assert_eq!(d.timings().check, Duration::from_micros(4));
        d.set_total(Duration::from_secs(1));
        assert_eq!(d.timings().total, Duration::from_secs(1));
    }
}
