//! Per-round structure checking (§3.2.1 Fig 2, §3.2.4 Fig 6).
//!
//! Given one round's effective failure states and a reachability oracle,
//! decide whether the deployment plan is *reliable in this round*:
//!
//! * **K-of-N** (single component, external requirement): at least K of
//!   the N instance hosts are alive and reachable from a border switch.
//! * **Complex structures**: the requirement graph may reference other
//!   components ("at least K_{Ci,Cj} instances of Ci reachable from Cj").
//!   We compute each component's *active* instance set — alive instances
//!   reachable from at least one active instance of every component they
//!   depend on (Fig 6: a database only counts when reached from a frontend
//!   that is itself border-reachable) — as a greatest fixpoint, which on
//!   DAGs reduces to plain layer-order evaluation and also gives cyclic
//!   microservice meshes a well-defined "mutually supporting set"
//!   semantics. A requirement `(Ci, Cj, k)` then holds when at least `k`
//!   alive instances of Ci are reachable from Cj's active set.
//!
//! The checker owns per-plan scratch and never allocates per round.

use recloud_apps::{ApplicationSpec, Connectivity, DeploymentPlan, Source};
use recloud_routing::Router;
use recloud_sampling::{BitMatrix, WideWord};
use recloud_topology::ComponentId;

/// Reusable per-plan round checker.
pub struct StructureChecker {
    /// Flattened instance hosts per component.
    hosts: Vec<Vec<ComponentId>>,
    requirements: Vec<Connectivity>,
    /// True when the fast K-of-N path applies (single component, external
    /// requirements only).
    simple_k: Option<u32>,
    /// Scratch: active flags per component instance.
    active: Vec<Vec<bool>>,
    /// Scratch for the bit-sliced K-of-N count: `ge[j]` is the round-lane
    /// mask of "at least j+1 instances reachable so far".
    ge: Vec<u64>,
    /// 256-lane analogue of `ge` for the wide kernel.
    gew: Vec<WideWord>,
    /// Memoized all-alive-world verdict (what screened-out rounds resolve
    /// to). Valid for the lifetime of the checker: the plan is fixed and
    /// the baseline depends only on plan and topology.
    baseline: Option<bool>,
}

impl StructureChecker {
    /// Prepares a checker for one (spec, plan) pair.
    pub fn new(spec: &ApplicationSpec, plan: &DeploymentPlan) -> Self {
        assert_eq!(
            plan.num_components(),
            spec.num_components(),
            "plan and spec disagree on component count"
        );
        let hosts: Vec<Vec<ComponentId>> =
            (0..spec.num_components()).map(|c| plan.hosts_of(c).to_vec()).collect();
        let requirements = spec.requirements().to_vec();
        let simple_k = if spec.num_components() == 1
            && requirements.iter().all(|r| r.from == Source::External)
        {
            Some(requirements.iter().map(|r| r.k).max().expect("non-empty requirements"))
        } else {
            None
        };
        let active = hosts.iter().map(|h| vec![false; h.len()]).collect();
        StructureChecker {
            hosts,
            requirements,
            simple_k,
            active,
            ge: Vec::new(),
            gew: Vec::new(),
            baseline: None,
        }
    }

    /// Checks the (up to) 256 rounds of wide word `wide` in one sweep; lane
    /// r of the result is the verdict of round `256·wide + r`, bit-identical
    /// to [`StructureChecker::round_reliable`] on that round. Only the low
    /// `n` lanes are meaningful. The router must already have had
    /// [`Router::begin_wide`] called for (`states`, `wide`).
    ///
    /// Strategy mirrors [`StructureChecker::word_reliable`] one width up:
    /// K-of-N on a wide-native router folds 256-lane reach words through
    /// the bit-sliced counter; everything else decomposes into the four
    /// 64-round subwords and runs the word path (which itself screens and
    /// falls back round-major as needed).
    pub fn wide_reliable(
        &mut self,
        router: &mut dyn Router,
        states: &BitMatrix,
        wide: usize,
        n: usize,
    ) -> WideWord {
        debug_assert!(n >= 1 && n <= WideWord::LANES, "a verdict wide word holds 1..=256 rounds");
        if router.wide_native() {
            if let Some(k) = self.simple_k {
                return self.k_of_n_wide(router, states, wide, k);
            }
        }
        let mut out = WideWord::ZERO;
        let mut left = n;
        for i in 0..WideWord::WORDS {
            if left == 0 {
                break;
            }
            let w = wide * WideWord::WORDS + i;
            let take = left.min(64);
            router.begin_word(states, w);
            out.set_word(i, self.word_reliable(router, states, w, take));
            left -= take;
        }
        out
    }

    /// Bit-sliced K-of-N over a wide-native router — the 256-lane mirror
    /// of [`StructureChecker::k_of_n_word`].
    fn k_of_n_wide(
        &mut self,
        router: &mut dyn Router,
        states: &BitMatrix,
        wide: usize,
        k: u32,
    ) -> WideWord {
        if k == 0 {
            return WideWord::ONES; // vacuous requirement, reliable in every round
        }
        let k = k as usize;
        self.gew.clear();
        self.gew.resize(k, WideWord::ZERO);
        for i in 0..self.hosts[0].len() {
            let h = self.hosts[0][i];
            let reach = router.external_reach_wide(states, h, wide);
            for j in (1..k).rev() {
                let below = self.gew[j - 1];
                self.gew[j] |= below & reach;
            }
            self.gew[0] |= reach;
            // Early exit once every lane has k reachable instances; the
            // remaining hosts cannot change the verdict.
            if self.gew[k - 1].is_ones() {
                break;
            }
        }
        self.gew[k - 1]
    }

    /// Checks the (up to) 64 rounds of word `word` in one sweep; bit r of
    /// the result is the verdict of round `64·word + r`, bit-identical to
    /// [`StructureChecker::round_reliable`] on that round. Only the low
    /// `n` bits are meaningful. The router must already have had
    /// [`Router::begin_word`] called for (`states`, `word`).
    ///
    /// Strategy: K-of-N on a word-native router (the fat-tree analytic
    /// one) ANDs/ORs host reach-words through a bit-sliced counter —
    /// no per-round work at all. Everything else runs round-major behind
    /// the router's screen mask: rounds in which nothing failed resolve to
    /// the memoized all-alive verdict without routing, and only the dirty
    /// rounds pay for scalar routing (or the complex fixpoint).
    pub fn word_reliable(
        &mut self,
        router: &mut dyn Router,
        states: &BitMatrix,
        word: usize,
        n: usize,
    ) -> u64 {
        debug_assert!(n >= 1 && n <= 64, "a verdict word holds 1..=64 rounds");
        if router.word_native() {
            if let Some(k) = self.simple_k {
                return self.k_of_n_word(router, states, word, k);
            }
        }
        let valid = if n == 64 { !0 } else { (1u64 << n) - 1 };
        let screen = router.screen_word(states, word) & valid;
        let mut out = 0u64;
        if screen != valid && self.baseline_reliable(router, states) {
            out = valid & !screen;
        }
        let mut dirty = screen;
        while dirty != 0 {
            let r = dirty.trailing_zeros() as usize;
            dirty &= dirty - 1;
            let round = word * 64 + r;
            router.begin_round(states, round);
            if self.round_reliable(router, states, round) {
                out |= 1 << r;
            }
        }
        out
    }

    /// Bit-sliced K-of-N over a word-native router: fold each host's
    /// 64-round reach word into a saturating unary counter of `k` lanes.
    fn k_of_n_word(
        &mut self,
        router: &mut dyn Router,
        states: &BitMatrix,
        word: usize,
        k: u32,
    ) -> u64 {
        if k == 0 {
            return !0; // vacuous requirement, reliable in every round
        }
        let k = k as usize;
        self.ge.clear();
        self.ge.resize(k, 0);
        for i in 0..self.hosts[0].len() {
            let h = self.hosts[0][i];
            let reach = router.external_reach_word(states, h, word);
            for j in (1..k).rev() {
                self.ge[j] |= self.ge[j - 1] & reach;
            }
            self.ge[0] |= reach;
            // Early exit once every lane has k reachable instances; the
            // remaining hosts cannot change the verdict.
            if self.ge[k - 1] == !0 {
                break;
            }
        }
        self.ge[k - 1]
    }

    /// The all-alive-world verdict, computed once per checker through the
    /// router's scalar path on a synthetic 1-round matrix. Clobbers the
    /// router's per-round context (word callers re-begin dirty rounds).
    fn baseline_reliable(&mut self, router: &mut dyn Router, states: &BitMatrix) -> bool {
        if let Some(v) = self.baseline {
            return v;
        }
        let alive = BitMatrix::new(states.components(), 1);
        router.begin_round(&alive, 0);
        let v = self.round_reliable(router, &alive, 0);
        self.baseline = Some(v);
        v
    }

    /// Checks one round. The router must already have had
    /// [`Router::begin_round`] called for (`states`, `round`).
    pub fn round_reliable(
        &mut self,
        router: &mut dyn Router,
        states: &BitMatrix,
        round: usize,
    ) -> bool {
        if let Some(k) = self.simple_k {
            // Fast path: count border-reachable instances, stop at k.
            let mut alive = 0u32;
            let need = k;
            let hosts = &self.hosts[0];
            for (idx, &h) in hosts.iter().enumerate() {
                if router.external_reaches(states, h) {
                    alive += 1;
                    if alive >= need {
                        return true;
                    }
                }
                // Early abort: not enough hosts left to reach k.
                let remaining = (hosts.len() - idx - 1) as u32;
                if alive + remaining < need {
                    return false;
                }
            }
            return alive >= need;
        }
        self.complex_round(router, states, round)
    }

    fn complex_round(&mut self, router: &mut dyn Router, states: &BitMatrix, round: usize) -> bool {
        // Initialize active = alive.
        for (c, hosts) in self.hosts.iter().enumerate() {
            for (i, &h) in hosts.iter().enumerate() {
                self.active[c][i] = !states.get(h.index(), round);
            }
        }
        // Greatest fixpoint: repeatedly deactivate instances that lost all
        // of their required feeders. Terminates because the active sets
        // only shrink; bound iterations defensively by total instances.
        let max_iters = self.hosts.iter().map(|h| h.len()).sum::<usize>() + 1;
        for _ in 0..max_iters {
            let mut changed = false;
            for r in &self.requirements {
                let of = r.of;
                for i in 0..self.hosts[of].len() {
                    if !self.active[of][i] {
                        continue;
                    }
                    let h = self.hosts[of][i];
                    let fed = match r.from {
                        Source::External => router.external_reaches(states, h),
                        Source::Component(j) => {
                            let feeders = &self.hosts[j];
                            let feeder_active = &self.active[j];
                            feeders
                                .iter()
                                .zip(feeder_active)
                                .any(|(&f, &act)| act && router.connects(states, f, h))
                        }
                    };
                    if !fed {
                        self.active[of][i] = false;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        // Requirement counts: alive instances of Ci reachable from the
        // active set of Cj.
        for r in &self.requirements {
            let mut count = 0u32;
            for (i, &h) in self.hosts[r.of].iter().enumerate() {
                // An instance counts for this edge if it is alive and fed
                // by this edge's source; `active` already conjoins all
                // edges, so recheck this single edge for alive instances.
                let alive = !states.get(h.index(), round);
                if !alive {
                    continue;
                }
                let fed = if self.active[r.of][i] {
                    true // active implies fed by every edge
                } else {
                    match r.from {
                        Source::External => router.external_reaches(states, h),
                        Source::Component(j) => self.hosts[j]
                            .iter()
                            .zip(&self.active[j])
                            .any(|(&f, &act)| act && router.connects(states, f, h)),
                    }
                };
                if fed {
                    count += 1;
                    if count >= r.k {
                        break;
                    }
                }
            }
            if count < r.k {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recloud_apps::ApplicationSpec;
    use recloud_routing::GenericRouter;
    use recloud_topology::{ComponentKind, Topology, TopologyBuilder};

    /// Two racks behind one border switch:
    /// ext - b ; b - e1 - {h0, h1} ; b - e2 - {h2, h3}.
    fn two_racks() -> (Topology, Vec<ComponentId>, ComponentId, ComponentId, ComponentId) {
        let mut bl = TopologyBuilder::new();
        bl.external();
        let b = bl.add(ComponentKind::BorderSwitch);
        bl.mark_border(b);
        let e1 = bl.add(ComponentKind::EdgeSwitch);
        let e2 = bl.add(ComponentKind::EdgeSwitch);
        bl.connect(b, e1);
        bl.connect(b, e2);
        let hosts = bl.add_hosts(4);
        bl.connect(e1, hosts[0]);
        bl.connect(e1, hosts[1]);
        bl.connect(e2, hosts[2]);
        bl.connect(e2, hosts[3]);
        let t = bl.build();
        (t, hosts, b, e1, e2)
    }

    fn check(
        t: &Topology,
        spec: &ApplicationSpec,
        plan: &DeploymentPlan,
        failed: &[ComponentId],
    ) -> bool {
        let mut states = BitMatrix::new(t.num_components(), 1);
        for f in failed {
            states.set(f.index(), 0);
        }
        let mut router = GenericRouter::new(t);
        router.begin_round(&states, 0);
        let mut checker = StructureChecker::new(spec, plan);
        checker.round_reliable(&mut router, &states, 0)
    }

    #[test]
    fn k_of_n_counting() {
        let (t, hosts, _, e1, _) = two_racks();
        let spec = ApplicationSpec::k_of_n(2, 3);
        let plan = DeploymentPlan::new(&spec, vec![vec![hosts[0], hosts[1], hosts[2]]]);
        // All alive: 3 >= 2.
        assert!(check(&t, &spec, &plan, &[]));
        // One host down: 2 >= 2.
        assert!(check(&t, &spec, &plan, &[hosts[0]]));
        // Rack e1 down: only h2 alive -> 1 < 2.
        assert!(!check(&t, &spec, &plan, &[e1]));
    }

    #[test]
    fn fig6_two_layer_semantics() {
        // FE on rack1, DB on rack2; K_FE,ext = 1, K_DB,FE = 1.
        let (t, hosts, _, e1, e2) = two_racks();
        let mut b = ApplicationSpec::builder();
        let fe = b.component("fe", 2);
        let db = b.component("db", 2);
        b.require_external(fe, 1);
        b.require(db, Source::Component(fe), 1);
        let spec = b.build();
        let plan =
            DeploymentPlan::new(&spec, vec![vec![hosts[0], hosts[1]], vec![hosts[2], hosts[3]]]);
        // Healthy.
        assert!(check(&t, &spec, &plan, &[]));
        // One FE down: still 1 FE and DBs reachable.
        assert!(check(&t, &spec, &plan, &[hosts[0]]));
        // FE rack down: no border-reachable FE -> unreliable, even though
        // DBs are alive.
        assert!(!check(&t, &spec, &plan, &[e1]));
        // DB rack down: FE fine but no DB reachable from FE.
        assert!(!check(&t, &spec, &plan, &[e2]));
        // Both DB hosts down.
        assert!(!check(&t, &spec, &plan, &[hosts[2], hosts[3]]));
    }

    #[test]
    fn cascade_depth_three() {
        // layer0 -> layer1 -> layer2, one instance each on separate racks:
        // cutting layer0 must invalidate layer2 even though layers 1-2 are
        // perfectly connected.
        let (t, hosts, _, e1, _) = two_racks();
        let spec = ApplicationSpec::layered(&[(1, 1), (1, 1), (1, 1)]);
        let plan = DeploymentPlan::new(&spec, vec![vec![hosts[0]], vec![hosts[2]], vec![hosts[3]]]);
        assert!(check(&t, &spec, &plan, &[]));
        // Layer 0's rack dies: its instance is unreachable from ext, so
        // layer 1 has no active feeder, so layer 2 fails too.
        assert!(!check(&t, &spec, &plan, &[e1]));
    }

    #[test]
    fn mesh_fixpoint_mutual_support() {
        // Two cores that must reach each other (1-of-1 each way), plus
        // external on core0.
        let (t, hosts, _, _, e2) = two_racks();
        let mut b = ApplicationSpec::builder();
        let c0 = b.component("core-0", 1);
        let c1 = b.component("core-1", 1);
        b.require_external(c0, 1);
        b.require(c0, Source::Component(c1), 1);
        b.require(c1, Source::Component(c0), 1);
        let spec = b.build();
        let plan = DeploymentPlan::new(&spec, vec![vec![hosts[0]], vec![hosts[2]]]);
        assert!(check(&t, &spec, &plan, &[]));
        // Cut core1's rack: the mesh breaks both ways.
        assert!(!check(&t, &spec, &plan, &[e2]));
        // Cut core1's host directly: same.
        assert!(!check(&t, &spec, &plan, &[hosts[2]]));
    }

    #[test]
    fn redundant_mesh_survives_partial_loss() {
        let (t, hosts, _, _, _) = two_racks();
        let mut b = ApplicationSpec::builder();
        let c0 = b.component("core-0", 2);
        let c1 = b.component("core-1", 2);
        b.require_external(c0, 1);
        b.require(c0, Source::Component(c1), 1);
        b.require(c1, Source::Component(c0), 1);
        let spec = b.build();
        let plan =
            DeploymentPlan::new(&spec, vec![vec![hosts[0], hosts[2]], vec![hosts[1], hosts[3]]]);
        // Lose one instance of each: still 1+1 meshed.
        assert!(check(&t, &spec, &plan, &[hosts[2], hosts[1]]));
        // Lose both of c1: mesh dead.
        assert!(!check(&t, &spec, &plan, &[hosts[1], hosts[3]]));
    }

    #[test]
    fn checker_is_reusable_across_rounds() {
        let (t, hosts, _, e1, _) = two_racks();
        let spec = ApplicationSpec::k_of_n(2, 2);
        let plan = DeploymentPlan::new(&spec, vec![vec![hosts[0], hosts[2]]]);
        let mut states = BitMatrix::new(t.num_components(), 2);
        states.set(e1.index(), 1);
        let mut router = GenericRouter::new(&t);
        let mut checker = StructureChecker::new(&spec, &plan);
        router.begin_round(&states, 0);
        assert!(checker.round_reliable(&mut router, &states, 0));
        router.begin_round(&states, 1);
        assert!(!checker.round_reliable(&mut router, &states, 1));
    }

    #[test]
    #[should_panic(expected = "disagree on component count")]
    fn mismatched_plan_rejected() {
        let (_t, hosts, _, _, _) = two_racks();
        let one = ApplicationSpec::k_of_n(1, 2);
        let plan = DeploymentPlan::new(&one, vec![vec![hosts[0], hosts[1]]]);
        let two = ApplicationSpec::layered(&[(1, 1), (1, 1)]);
        StructureChecker::new(&two, &plan);
    }
}
