//! Sequential assessment: sample until the error bound is tight enough.
//!
//! §4.2.4 notes that "some application developers may want even higher
//! accuracy, requiring reCloud to run more rounds". A fixed round count
//! either wastes work (very reliable plans converge quickly) or under-
//! delivers (borderline plans need more rounds). The sequential rule runs
//! chunk by chunk and stops as soon as the Eq 3 confidence-interval width
//! drops below a target — or a round ceiling is hit.
//!
//! The chunk layout and seeds are exactly the fixed-round engine's, so a
//! sequential assessment that happens to use `k` chunks returns the same
//! counts as a fixed assessment of the same rounds.

use crate::assessor::Assessor;
use recloud_apps::{ApplicationSpec, DeploymentPlan};
use std::ops::ControlFlow;

/// Why a sequential assessment stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// The CIW target was reached.
    TargetReached,
    /// The round ceiling was hit first.
    CeilingHit,
}

/// Result of a sequential assessment.
#[derive(Clone, Copy, Debug)]
pub struct SequentialAssessment {
    /// The assessment over however many rounds were needed.
    pub assessment: crate::assessor::Assessment,
    /// Why sampling stopped.
    pub stop: StopReason,
}

impl Assessor {
    /// Assesses `plan`, adding chunks of rounds until the 95% confidence-
    /// interval width is at most `ciw_target` or `max_rounds` have been
    /// spent. At least one chunk always runs.
    ///
    /// Thin consumer of [`Assessor::drive`]: the driver's `stop_hint`
    /// carries the Eq 3 stopping rule; this wrapper only translates the
    /// last hint into a [`StopReason`].
    ///
    /// # Panics
    /// Panics if `ciw_target` is not positive or `max_rounds` is zero.
    pub fn assess_until(
        &mut self,
        spec: &ApplicationSpec,
        plan: &DeploymentPlan,
        ciw_target: f64,
        max_rounds: usize,
        seed: u64,
    ) -> SequentialAssessment {
        assert!(ciw_target > 0.0, "CIW target must be positive");
        assert!(max_rounds > 0, "need a positive round ceiling");
        let mut reached = false;
        let driven = self.drive(spec, plan, max_rounds, seed, Some(ciw_target), &mut |p| {
            reached = p.stop_hint;
            ControlFlow::Continue(())
        });
        SequentialAssessment {
            assessment: driven.assessment,
            stop: if reached { StopReason::TargetReached } else { StopReason::CeilingHit },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recloud_apps::ApplicationSpec;
    use recloud_faults::{FaultModel, ProbabilityConfig};
    use recloud_sampling::Rng;
    use recloud_topology::FatTreeParams;

    fn setup() -> (Assessor, ApplicationSpec, DeploymentPlan) {
        let t = FatTreeParams::new(4).build();
        let model = FaultModel::paper_default(&t, 3);
        let spec = ApplicationSpec::k_of_n(1, 2);
        let mut rng = Rng::new(5);
        let plan = DeploymentPlan::random(&spec, t.hosts(), &mut rng);
        (Assessor::new(&t, model), spec, plan)
    }

    #[test]
    fn stops_early_when_target_is_loose() {
        let (mut a, spec, plan) = setup();
        let r = a.assess_until(&spec, &plan, 0.05, 1_000_000, 7);
        assert_eq!(r.stop, StopReason::TargetReached);
        assert!(r.assessment.estimate.ciw95() <= 0.05);
        // Far fewer rounds than the ceiling.
        assert!(r.assessment.estimate.rounds < 100_000);
    }

    #[test]
    fn hits_ceiling_when_target_is_strict() {
        let (mut a, spec, plan) = setup();
        let r = a.assess_until(&spec, &plan, 1e-9, 5_000, 7);
        assert_eq!(r.stop, StopReason::CeilingHit);
        assert_eq!(r.assessment.estimate.rounds, 5_000);
    }

    #[test]
    fn perfect_plans_stop_after_one_chunk() {
        // Nothing can fail => score 1.0, CIW 0 after the first chunk.
        let t = FatTreeParams::new(4).build();
        let model = FaultModel::new(&t, &ProbabilityConfig::Uniform(0.0), 0);
        let mut a = Assessor::new(&t, model);
        let spec = ApplicationSpec::k_of_n(2, 2);
        let plan = DeploymentPlan::new(&spec, vec![t.hosts()[..2].to_vec()]);
        let r = a.assess_until(&spec, &plan, 1e-6, 1_000_000, 0);
        assert_eq!(r.stop, StopReason::TargetReached);
        assert_eq!(r.assessment.estimate.score, 1.0);
        assert!(r.assessment.estimate.rounds <= 3_000, "one chunk suffices");
    }

    #[test]
    fn sequential_prefix_matches_fixed_assessment() {
        let (mut a, spec, plan) = setup();
        let seq = a.assess_until(&spec, &plan, 1e-9, 6_000, 9);
        let rounds = seq.assessment.estimate.rounds as usize;
        let fixed = a.assess(&spec, &plan, rounds, 9);
        assert_eq!(seq.assessment.estimate.successes, fixed.estimate.successes);
    }

    #[test]
    #[should_panic(expected = "CIW target")]
    fn zero_target_rejected() {
        let (mut a, spec, plan) = setup();
        a.assess_until(&spec, &plan, 0.0, 100, 0);
    }
}
