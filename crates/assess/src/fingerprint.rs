//! Stable cache-key hashing for assessment requests.
//!
//! The serving layer memoizes assessment results in an LRU cache keyed by
//! everything that determines the answer: the topology preset, the
//! application spec, the deployment plan, the round budget and the master
//! seed. The key must be (a) *stable* — the same request hashes the same
//! across processes and platforms, so `std::hash` (randomized, unspecified
//! across releases) is out — and (b) wide enough that a collision serving
//! a wrong cached reliability score is out of the question. FNV-1a over a
//! canonical little-endian encoding at 128 bits gives both: the canonical
//! bytes make semantically equal requests byte-equal, and at 2⁻¹²⁸ the
//! collision probability is beyond cosmic-ray territory.
//!
//! This lives in `recloud-assess` (not the server) because the key
//! definition is part of the assessment contract: two requests share a
//! cache slot **iff** [`Assessor::assess`](crate::Assessor::assess) is
//! guaranteed to return identical results for them.

use recloud_apps::DeploymentPlan;
use recloud_sampling::wire::ByteWriter;

const FNV_OFFSET_128: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV_PRIME_128: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// 128-bit FNV-1a over a byte slice. Deterministic across platforms and
/// releases, unlike `std::hash`.
pub fn fnv1a_128(bytes: &[u8]) -> u128 {
    let mut h = FNV_OFFSET_128;
    for &b in bytes {
        h ^= b as u128;
        h = h.wrapping_mul(FNV_PRIME_128);
    }
    h
}

/// The cache key of one assessment request: a 128-bit FNV-1a fingerprint
/// of the canonical `(preset, spec, plan, rounds, seed)` encoding.
///
/// `preset_tag` is an opaque byte naming the topology the caller resolved
/// (the server uses its wire-protocol preset codes); `spec_shape` is the
/// `(k, n)` pair per layer of the application spec. Two requests get equal
/// keys exactly when every determining input is equal — field order and
/// widths are fixed, so the encoding is injective.
pub fn assessment_key(
    preset_tag: u8,
    spec_shape: &[(u32, u32)],
    plan: &DeploymentPlan,
    rounds: u64,
    seed: u64,
) -> u128 {
    let mut w = ByteWriter::with_capacity(
        1 + 8
            + 8
            + 4
            + spec_shape.len() * 8
            + 4
            + (0..plan.num_components()).map(|c| 4 + 4 * plan.hosts_of(c).len()).sum::<usize>(),
    );
    w.put_u8(preset_tag);
    w.put_u64_le(rounds);
    w.put_u64_le(seed);
    w.put_u32_le(spec_shape.len() as u32);
    for &(k, n) in spec_shape {
        w.put_u32_le(k);
        w.put_u32_le(n);
    }
    w.put_u32_le(plan.num_components() as u32);
    for c in 0..plan.num_components() {
        let hosts = plan.hosts_of(c);
        w.put_u32_le(hosts.len() as u32);
        for &h in hosts {
            w.put_u32_le(h.index() as u32);
        }
    }
    fnv1a_128(&w.into_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use recloud_apps::ApplicationSpec;
    use recloud_sampling::Rng;
    use recloud_topology::FatTreeParams;

    #[test]
    fn fnv_vectors_are_stable() {
        // Pin the empty-input and a known-input hash so the function can
        // never silently change across refactors (cached results would be
        // served for the wrong requests).
        assert_eq!(fnv1a_128(b""), FNV_OFFSET_128);
        assert_eq!(fnv1a_128(b"a"), 0xd228_cb69_6f1a_8caf_7891_2b70_4e4a_8964);
        assert_ne!(fnv1a_128(b"ab"), fnv1a_128(b"ba"), "order must matter");
    }

    #[test]
    fn key_separates_every_determining_input() {
        let t = FatTreeParams::new(4).build();
        let spec = ApplicationSpec::k_of_n(2, 3);
        let mut rng = Rng::new(5);
        let plan_a = DeploymentPlan::random(&spec, t.hosts(), &mut rng);
        let plan_b = DeploymentPlan::random(&spec, t.hosts(), &mut rng);
        let base = assessment_key(0, &[(2, 3)], &plan_a, 1_000, 7);
        assert_eq!(base, assessment_key(0, &[(2, 3)], &plan_a, 1_000, 7), "deterministic");
        assert_ne!(base, assessment_key(1, &[(2, 3)], &plan_a, 1_000, 7), "preset");
        assert_ne!(base, assessment_key(0, &[(3, 3)], &plan_a, 1_000, 7), "spec");
        assert_ne!(base, assessment_key(0, &[(2, 3)], &plan_b, 1_000, 7), "plan");
        assert_ne!(base, assessment_key(0, &[(2, 3)], &plan_a, 2_000, 7), "rounds");
        assert_ne!(base, assessment_key(0, &[(2, 3)], &plan_a, 1_000, 8), "seed");
    }

    #[test]
    fn key_is_sensitive_to_instance_order() {
        // hosts [a,b] vs [b,a] are different plans for the checker's
        // instance bookkeeping; the key must not canonicalize them away.
        let t = FatTreeParams::new(4).build();
        let spec = ApplicationSpec::k_of_n(1, 2);
        let hosts = t.hosts();
        let p1 = DeploymentPlan::new(&spec, vec![vec![hosts[0], hosts[1]]]);
        let p2 = DeploymentPlan::new(&spec, vec![vec![hosts[1], hosts[0]]]);
        assert_ne!(
            assessment_key(0, &[(1, 2)], &p1, 100, 1),
            assessment_key(0, &[(1, 2)], &p2, 100, 1)
        );
    }
}
