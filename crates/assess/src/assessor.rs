//! The single-threaded assessment engine.
//!
//! [`Assessor`] wires the full §3.2 pipeline together and reports, besides
//! the reliability estimate, a per-stage timing breakdown — the quantities
//! behind Figures 7 (sampling time), 10 and 11 (evolve+assess time per
//! plan).
//!
//! Rounds are processed in blocks aligned to the extended-dagger
//! macro-cycle so the raw state matrix stays small regardless of the total
//! round count; the same block/chunk layout is used by the parallel engine
//! so serial and parallel assessments are bit-identical.

use crate::check::StructureChecker;
use crate::driver::{AssessmentDriver, PartialEstimate};
use recloud_apps::{ApplicationSpec, DeploymentPlan};
use recloud_faults::{FaultInjector, FaultModel};
use recloud_obs::{Counter, Gauge, Histogram};
use recloud_routing::{make_router, Router};
use recloud_sampling::{
    BitMatrix, ExtendedDaggerSampler, MonteCarloSampler, ReliabilityEstimate, ResultAccumulator,
    Sampler, WideWord,
};
use recloud_topology::Topology;
use std::ops::ControlFlow;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which failure-state generator to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SamplerKind {
    /// Extended dagger sampling (§3.2.2) — reCloud's engine.
    ExtendedDagger,
    /// Monte-Carlo sampling (§3.2.1) — the INDaaS baseline.
    MonteCarlo,
}

impl SamplerKind {
    /// Sampler name as reported in assessments.
    pub fn name(self) -> &'static str {
        match self {
            SamplerKind::ExtendedDagger => "dagger",
            SamplerKind::MonteCarlo => "monte-carlo",
        }
    }
}

/// A stack-allocated sampler of either kind. `run_chunk` constructs one
/// per chunk; using an enum instead of `Box<dyn Sampler>` keeps the chunk
/// hot loop free of heap allocation (both samplers are a bare RNG).
enum AnySampler {
    Dagger(ExtendedDaggerSampler),
    Mc(MonteCarloSampler),
}

impl AnySampler {
    fn new(kind: SamplerKind, seed: u64) -> Self {
        match kind {
            SamplerKind::ExtendedDagger => AnySampler::Dagger(ExtendedDaggerSampler::seeded(seed)),
            SamplerKind::MonteCarlo => AnySampler::Mc(MonteCarloSampler::seeded(seed)),
        }
    }

    fn sample_into(&mut self, probs: &[f64], matrix: &mut BitMatrix) {
        match self {
            AnySampler::Dagger(s) => s.sample_into(probs, matrix),
            AnySampler::Mc(s) => s.sample_into(probs, matrix),
        }
    }
}

/// Lane width of the route-and-check kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchWidth {
    /// One round per operation — the reference path every batched width is
    /// proven bit-identical to.
    Scalar,
    /// 64 rounds per operation through the word-granular Router API (PR 2's
    /// kernel, kept as the degenerate wide width).
    Word64,
    /// 256 rounds per operation through the wide Router API (the default).
    Wide256,
}

impl BatchWidth {
    /// Rounds processed per kernel operation.
    pub fn lanes(self) -> usize {
        match self {
            BatchWidth::Scalar => 1,
            BatchWidth::Word64 => 64,
            BatchWidth::Wide256 => WideWord::LANES,
        }
    }

    /// Name used in benchmark reports.
    pub fn name(self) -> &'static str {
        match self {
            BatchWidth::Scalar => "scalar",
            BatchWidth::Word64 => "word64",
            BatchWidth::Wide256 => "batched",
        }
    }
}

/// Per-stage wall-clock breakdown of one assessment.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Timings {
    /// Failure-state generation (the Fig 7 quantity).
    pub sampling: Duration,
    /// Fault-tree collapsing (§3.2.3 reasoning + filtering).
    pub collapse: Duration,
    /// Route-and-check over all rounds, including per-round context setup.
    pub check: Duration,
    /// End-to-end, including scratch management.
    pub total: Duration,
}

impl Timings {
    /// Accumulates another breakdown (used when merging chunks).
    pub fn merge(&mut self, other: &Timings) {
        self.sampling += other.sampling;
        self.collapse += other.collapse;
        self.check += other.check;
        self.total += other.total;
    }
}

/// The result of assessing one deployment plan.
#[derive(Clone, Copy, Debug)]
pub struct Assessment {
    /// Reliability score with conservative variance (Eqs 1–2); call
    /// [`ReliabilityEstimate::ciw95`] for the Eq 3 error bound.
    pub estimate: ReliabilityEstimate,
    /// Per-stage timings.
    pub timings: Timings,
    /// Which sampler produced the states.
    pub sampler: &'static str,
}

/// Result of [`Assessor::drive`]: the assessment over however many
/// rounds actually ran, plus whether the full layout was executed.
#[derive(Clone, Copy, Debug)]
pub struct DrivenAssessment {
    /// The assessment over the rounds executed (all of them when
    /// `completed`, a prefix when the drive stopped early).
    pub assessment: Assessment,
    /// True when every chunk in the layout ran; false after an early
    /// stop (target CIW reached or the partial callback broke).
    pub completed: bool,
}

/// Reusable assessment engine for one (topology, fault model) pair.
///
/// Construction allocates all scratch (state matrices, router, block
/// buffers); assessing N plans performs no further allocation beyond the
/// per-plan [`StructureChecker`].
pub struct Assessor {
    topology: Topology,
    model: FaultModel,
    kind: SamplerKind,
    router: Box<dyn Router + Send>,
    /// Rounds per processing chunk; aligned to the dagger macro-cycle,
    /// then rounded up to the kernel lane width (256), and identical for
    /// serial and parallel execution.
    chunk_rounds: usize,
    /// Per-chunk scratch matrices, sized once and reused for every chunk.
    arena: ChunkArena,
    /// Collapsed tables of the most recent master seed, one per chunk.
    /// Lets common-random-number searches (which assess every plan on the
    /// same table, §3.3) skip sampling and collapsing entirely after the
    /// first plan. The failure-state table does not depend on the plan
    /// (§3.2.1), so this is a pure cache.
    table_cache: Option<TableCache>,
    /// Optional fault injection applied to every sampled chunk before
    /// fault-tree collapsing — forced failures flow through the full
    /// correlated-failure path (what-if analyses, sensitivity reports).
    injector: Option<FaultInjector>,
    /// Route-and-check lane width: 256 lanes by default, with the 64-lane
    /// and scalar paths kept selectable — all widths are bit-identical;
    /// the narrower ones exist for equivalence tests and width-vs-width
    /// benchmarking.
    width: BatchWidth,
    /// Cached global-registry instrument handles (stage histograms,
    /// rounds counter, cache_bytes gauge).
    obs: AssessInstruments,
}

struct TableCache {
    master_seed: u64,
    chunks: Vec<BitMatrix>,
}

/// The reusable per-chunk scratch arena: the raw sampled-event matrix and
/// the collapsed effective-state matrix, both wide-word aligned. Sized
/// once per (model shape, chunk width) — at construction or reseed — and
/// written in place by every chunk thereafter, so the sample → collapse →
/// check hot loop performs no allocation.
struct ChunkArena {
    raw: BitMatrix,
    collapsed: BitMatrix,
}

impl ChunkArena {
    fn new(events: usize, components: usize, chunk_rounds: usize) -> Self {
        ChunkArena {
            raw: BitMatrix::new(events, chunk_rounds),
            collapsed: BitMatrix::new(components, chunk_rounds),
        }
    }

    /// Resident bytes of both matrices — exported as `assess.arena_bytes`.
    fn bytes(&self) -> usize {
        self.raw.bytes() + self.collapsed.bytes()
    }
}

/// Cached handles into the process-wide [`recloud_obs::global()`]
/// registry. Registration happens once per engine (here); the record
/// calls are lock- and allocation-free. Per-*chunk* recording (stage
/// histograms, rounds counter) lives in the [`AssessmentDriver`] — one
/// state machine feeds every path — leaving only the per-assessment
/// instruments here. Rounds-per-second is derived by readers as
/// `assess.rounds_total / (assess.total_us.sum / 1e6)`.
struct AssessInstruments {
    /// Per-assessment end-to-end time (µs).
    total_us: Arc<Histogram>,
    /// Completed assessments.
    assessments_total: Arc<Counter>,
    /// Current collapsed-table cache footprint of the newest engine.
    cache_bytes: Arc<Gauge>,
    /// Current chunk-arena footprint (raw + collapsed scratch matrices)
    /// of the newest engine.
    arena_bytes: Arc<Gauge>,
}

impl AssessInstruments {
    fn from_global() -> Self {
        let registry = recloud_obs::global();
        AssessInstruments {
            total_us: registry.histogram("assess.total_us"),
            assessments_total: registry.counter("assess.assessments_total"),
            cache_bytes: registry.gauge("assess.cache_bytes"),
            arena_bytes: registry.gauge("assess.arena_bytes"),
        }
    }
}

impl Assessor {
    /// Target chunk size in rounds before alignment. Chosen so a
    /// Large-scale raw matrix stays around ~10 MB while chunks remain
    /// numerous enough for 4-way parallel speedup at 10⁴ rounds. The
    /// actual chunk width rounds this up to a dagger macro-cycle multiple
    /// and then to the kernel lane width (256), so full chunks decompose
    /// into whole wide words; extended-dagger truncation at chunk
    /// boundaries is bias-free, so the extra lane-alignment rounds are
    /// statistically harmless.
    const TARGET_CHUNK: usize = 2_500;

    /// The chunk width for a probability vector: macro-cycle aligned, then
    /// lane-width aligned.
    fn chunk_width(probs: &[f64]) -> usize {
        let s_max = ExtendedDaggerSampler::macro_cycle(probs);
        (Self::TARGET_CHUNK.div_ceil(s_max) * s_max).next_multiple_of(WideWord::LANES)
    }

    /// Creates a dagger-based assessor (reCloud's default).
    pub fn new(topology: &Topology, model: FaultModel) -> Self {
        Self::with_sampler(topology, model, SamplerKind::ExtendedDagger)
    }

    /// Creates an assessor with an explicit sampler choice.
    pub fn with_sampler(topology: &Topology, model: FaultModel, kind: SamplerKind) -> Self {
        let chunk_rounds = Self::chunk_width(model.probs());
        let arena =
            ChunkArena::new(model.num_events(), model.num_topology_components(), chunk_rounds);
        Assessor {
            topology: topology.clone(),
            model,
            kind,
            router: make_router(topology),
            chunk_rounds,
            arena,
            table_cache: None,
            injector: None,
            width: BatchWidth::Wide256,
            obs: AssessInstruments::from_global(),
        }
    }

    /// Installs (or clears) a fault injector applied to every sampled
    /// chunk. Invalidates the table cache.
    pub fn set_injector(&mut self, injector: Option<FaultInjector>) {
        self.injector = injector;
        self.table_cache = None;
    }

    /// Replaces the fault model, keeping the topology, router and — when
    /// the new model has the same matrix shapes — the scratch allocations.
    ///
    /// This is what lets a long-running server reuse one engine across
    /// requests with different model seeds: router construction (the
    /// expensive part at large scales) happens once per (topology, worker),
    /// while each reseed only swaps probability tables. Assessments after a
    /// reseed are bit-identical to a freshly constructed engine with the
    /// same model; the table cache is invalidated because cached tables
    /// were sampled under the previous model.
    ///
    /// # Panics
    /// Panics if `model` was built for a different topology (component
    /// count mismatch).
    pub fn reseed(&mut self, model: FaultModel) {
        assert_eq!(
            model.num_topology_components(),
            self.topology.num_components(),
            "model was built for a different topology"
        );
        let chunk_rounds = Self::chunk_width(model.probs());
        if chunk_rounds != self.chunk_rounds || model.num_events() != self.model.num_events() {
            self.chunk_rounds = chunk_rounds;
            self.arena =
                ChunkArena::new(model.num_events(), model.num_topology_components(), chunk_rounds);
        }
        self.model = model;
        self.table_cache = None;
    }

    /// Selects the batched (wide, 256-rounds-per-operation) or scalar
    /// route-and-check path. Both produce bit-identical assessments; the
    /// scalar path exists for equivalence tests and benchmarking.
    pub fn set_batched(&mut self, batched: bool) {
        self.width = if batched { BatchWidth::Wide256 } else { BatchWidth::Scalar };
    }

    /// True when a batched (64- or 256-lane) route-and-check path is active.
    pub fn batched(&self) -> bool {
        self.width != BatchWidth::Scalar
    }

    /// Selects an explicit kernel lane width.
    pub fn set_width(&mut self, width: BatchWidth) {
        self.width = width;
    }

    /// The active kernel lane width.
    pub fn width(&self) -> BatchWidth {
        self.width
    }

    /// Bytes held by the reusable per-chunk scratch arena (raw +
    /// collapsed matrices). Exported as the `assess.arena_bytes` gauge.
    pub fn arena_bytes(&self) -> usize {
        self.arena.bytes()
    }

    /// Bytes held by the cached collapsed failure-state tables (one
    /// [`BitMatrix`] clone per chunk). Searches assess thousands of plans
    /// against one cached table; this keeps that footprint observable so
    /// it cannot silently balloon.
    pub fn cache_bytes(&self) -> usize {
        match &self.table_cache {
            Some(c) => c.chunks.iter().map(|m| m.bytes()).sum(),
            None => 0,
        }
    }

    /// Routes and checks the first `rounds` columns of `table`, feeding
    /// verdicts into `acc` — the shared inner loop of the fresh and
    /// cached-table paths, in both scalar and batched flavors.
    fn route_and_check(
        router: &mut dyn Router,
        width: BatchWidth,
        checker: &mut StructureChecker,
        table: &BitMatrix,
        rounds: usize,
        acc: &mut ResultAccumulator,
    ) {
        match width {
            BatchWidth::Wide256 => {
                let wides = rounds.div_ceil(WideWord::LANES);
                for ww in 0..wides {
                    let n = (rounds - ww * WideWord::LANES).min(WideWord::LANES);
                    router.begin_wide(table, ww);
                    let mask = checker.wide_reliable(router, table, ww, n);
                    acc.push_wide(mask, n as u32);
                }
            }
            BatchWidth::Word64 => {
                let words = rounds.div_ceil(64);
                for w in 0..words {
                    let n = (rounds - w * 64).min(64);
                    router.begin_word(table, w);
                    let mask = checker.word_reliable(router, table, w, n);
                    acc.push_word(mask, n as u32);
                }
            }
            BatchWidth::Scalar => {
                for round in 0..rounds {
                    router.begin_round(table, round);
                    let ok = checker.round_reliable(router, table, round);
                    acc.push(ok);
                }
            }
        }
    }

    /// The chunk layout for a round count: (chunk index, rounds in chunk).
    /// Shared with the parallel engine so results are execution-identical.
    pub fn chunk_layout(&self, rounds: usize) -> Vec<(u32, usize)> {
        let mut out = Vec::new();
        let mut remaining = rounds;
        let mut idx = 0u32;
        while remaining > 0 {
            let n = remaining.min(self.chunk_rounds);
            out.push((idx, n));
            remaining -= n;
            idx += 1;
        }
        out
    }

    /// Derives the per-chunk sampler seed from the master seed; chunk
    /// streams are independent, so any chunk-to-worker mapping yields the
    /// same result list. Delegates to the system-wide
    /// [`recloud_sampling::derive_seed`] rule (chunk index as the stream).
    pub fn chunk_seed(master_seed: u64, chunk: u32) -> u64 {
        recloud_sampling::derive_seed(master_seed, chunk as u64)
    }

    /// The fault model in use.
    pub fn model(&self) -> &FaultModel {
        &self.model
    }

    /// The topology in use.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Name of the configured sampler.
    pub fn sampler_name(&self) -> &'static str {
        self.kind.name()
    }

    /// Runs one chunk of rounds, feeding verdicts into `acc`. Exposed for
    /// the parallel engine's workers.
    pub fn run_chunk(
        &mut self,
        checker: &mut StructureChecker,
        chunk_seed: u64,
        rounds: usize,
        acc: &mut ResultAccumulator,
    ) -> Timings {
        assert!(rounds <= self.chunk_rounds, "chunk exceeds scratch capacity");
        let t0 = Instant::now();
        let mut sampler = AnySampler::new(self.kind, chunk_seed);
        // The arena matrices are sized for a full chunk; for a short tail
        // chunk we sample the full arena width and check only the first
        // `rounds` columns. Sampling whole chunks keeps the matrix shape
        // fixed (no reallocation) at negligible cost.
        let t_sample = Instant::now();
        sampler.sample_into(self.model.probs(), &mut self.arena.raw);
        if let Some(injector) = &self.injector {
            injector.apply(&mut self.arena.raw);
        }
        let sampling = t_sample.elapsed();

        let t_collapse = Instant::now();
        self.model.collapse_into(&self.arena.raw, &mut self.arena.collapsed);
        let collapse = t_collapse.elapsed();

        let t_check = Instant::now();
        Self::route_and_check(
            self.router.as_mut(),
            self.width,
            checker,
            &self.arena.collapsed,
            rounds,
            acc,
        );
        let check = t_check.elapsed();
        // Per-chunk observability is recorded by the AssessmentDriver when
        // this chunk's result is fed back — one recording site for the
        // serial, cached-table, and parallel paths alike.
        Timings { sampling, collapse, check, total: t0.elapsed() }
    }

    /// Assesses one deployment plan over `rounds` route-and-check rounds
    /// (§4.1 default: 10⁴). Deterministic for a given seed.
    ///
    /// Repeated calls with the same `seed` reuse the cached collapsed
    /// failure-state table (the table is plan-independent), paying only
    /// the route-and-check cost — the fast path of common-random-number
    /// searches.
    ///
    /// Thin consumer of [`Assessor::drive`]: runs the full layout with no
    /// stopping rule.
    pub fn assess(
        &mut self,
        spec: &ApplicationSpec,
        plan: &DeploymentPlan,
        rounds: usize,
        seed: u64,
    ) -> Assessment {
        self.drive(spec, plan, rounds, seed, None, &mut |_| ControlFlow::Continue(())).assessment
    }

    /// Runs the [`AssessmentDriver`] over `rounds`, executing chunks
    /// serially (cached-table or fresh path) and yielding a
    /// [`PartialEstimate`] to `on_partial` after every chunk. The drive
    /// stops early when the callback breaks or when `target_ciw` is
    /// reached (the driver's `stop_hint`); the returned assessment then
    /// covers exactly the rounds executed so far and `completed` is
    /// false. Completed drives are bit-identical to the pre-driver
    /// chunk loops for any seed.
    ///
    /// # Panics
    /// Panics if `rounds` is zero.
    pub fn drive(
        &mut self,
        spec: &ApplicationSpec,
        plan: &DeploymentPlan,
        rounds: usize,
        seed: u64,
        target_ciw: Option<f64>,
        on_partial: &mut dyn FnMut(&PartialEstimate) -> ControlFlow<()>,
    ) -> DrivenAssessment {
        assert!(rounds > 0, "cannot assess over zero rounds");
        let mut checker = StructureChecker::new(spec, plan);
        let mut driver = AssessmentDriver::new(self.chunk_layout(rounds), seed, target_ciw);
        let t0 = Instant::now();

        let cache_ok = matches!(&self.table_cache,
            Some(c) if c.master_seed == seed && c.chunks.len() >= driver.chunks_total());
        if cache_ok {
            let cache = self.table_cache.take().expect("checked above");
            while let Some(task) = driver.next_task() {
                let t_check = Instant::now();
                let table = &cache.chunks[task.chunk as usize];
                let mut local = ResultAccumulator::new();
                Self::route_and_check(
                    self.router.as_mut(),
                    self.width,
                    &mut checker,
                    table,
                    task.rounds,
                    &mut local,
                );
                let timings = Timings { check: t_check.elapsed(), ..Timings::default() };
                let partial = driver.feed(task.chunk, local.rounds(), local.successes(), &timings);
                let flow = on_partial(&partial);
                if partial.stop_hint || flow.is_break() {
                    break;
                }
            }
            self.table_cache = Some(cache);
        } else {
            let mut chunks = Vec::with_capacity(driver.chunks_total());
            while let Some(task) = driver.next_task() {
                let mut local = ResultAccumulator::new();
                let t = self.run_chunk(&mut checker, task.seed, task.rounds, &mut local);
                chunks.push(self.arena.collapsed.clone());
                let partial = driver.feed(task.chunk, local.rounds(), local.successes(), &t);
                let flow = on_partial(&partial);
                if partial.stop_hint || flow.is_break() {
                    break;
                }
            }
            // An early-stopped drive caches the chunk tables it did
            // sample: tables are deterministic per (seed, chunk) and the
            // cache-hit check requires enough chunks for the follow-up
            // request, so a partial cache is still a correct cache.
            self.table_cache = Some(TableCache { master_seed: seed, chunks });
        }
        driver.set_total(t0.elapsed());
        self.obs.total_us.record(driver.timings().total.as_micros() as u64);
        self.obs.assessments_total.inc();
        self.obs.cache_bytes.set(self.cache_bytes() as i64);
        self.obs.arena_bytes.set(self.arena.bytes() as i64);
        DrivenAssessment {
            assessment: Assessment {
                estimate: driver.estimate(),
                timings: driver.timings(),
                sampler: self.kind.name(),
            },
            completed: driver.is_complete(),
        }
    }

    /// Measures pure failure-state generation over `rounds` rounds — the
    /// Figure 7 microbenchmark (no collapsing, no routing).
    pub fn sampling_time(&mut self, rounds: usize, seed: u64) -> Duration {
        let t0 = Instant::now();
        for (chunk, _n) in self.chunk_layout(rounds) {
            let mut sampler = AnySampler::new(self.kind, Self::chunk_seed(seed, chunk));
            sampler.sample_into(self.model.probs(), &mut self.arena.raw);
        }
        t0.elapsed()
    }
}

/// Convenience: dagger-assess a plan once without keeping an engine.
pub fn assess_once(
    topology: &Topology,
    model: FaultModel,
    spec: &ApplicationSpec,
    plan: &DeploymentPlan,
    rounds: usize,
    seed: u64,
) -> Assessment {
    Assessor::new(topology, model).assess(spec, plan, rounds, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use recloud_faults::ProbabilityConfig;
    use recloud_sampling::Rng;
    use recloud_topology::FatTreeParams;

    fn setup(kind: SamplerKind) -> (Topology, Assessor, ApplicationSpec) {
        let t = FatTreeParams::new(4).build();
        let model = FaultModel::paper_default(&t, 11);
        let a = Assessor::with_sampler(&t, model, kind);
        (t, a, ApplicationSpec::k_of_n(1, 2))
    }

    #[test]
    fn deterministic_per_seed() {
        let (t, mut a, spec) = setup(SamplerKind::ExtendedDagger);
        let mut rng = Rng::new(5);
        let plan = DeploymentPlan::random(&spec, t.hosts(), &mut rng);
        let r1 = a.assess(&spec, &plan, 3_000, 42);
        let r2 = a.assess(&spec, &plan, 3_000, 42);
        assert_eq!(r1.estimate.score, r2.estimate.score);
        let r3 = a.assess(&spec, &plan, 3_000, 43);
        // Different seed: almost surely a (slightly) different score.
        assert_ne!(
            (r1.estimate.successes, r1.estimate.rounds),
            (r3.estimate.successes + 1, 0),
            "sanity"
        );
    }

    #[test]
    fn dagger_and_monte_carlo_agree_statistically() {
        let (t, mut dagger, spec) = setup(SamplerKind::ExtendedDagger);
        let model = FaultModel::paper_default(&t, 11);
        let mut mc = Assessor::with_sampler(&t, model, SamplerKind::MonteCarlo);
        let mut rng = Rng::new(7);
        let plan = DeploymentPlan::random(&spec, t.hosts(), &mut rng);
        let rd = dagger.assess(&spec, &plan, 40_000, 1);
        let rm = mc.assess(&spec, &plan, 40_000, 1);
        let gap = (rd.estimate.score - rm.estimate.score).abs();
        let bound = rd.estimate.ciw95() + rm.estimate.ciw95();
        assert!(gap <= bound.max(0.005), "gap {gap} exceeds bound {bound}");
        assert_eq!(rd.sampler, "dagger");
        assert_eq!(rm.sampler, "monte-carlo");
    }

    #[test]
    fn all_reliable_when_nothing_fails() {
        let t = FatTreeParams::new(4).build();
        let model = FaultModel::new(&t, &ProbabilityConfig::Uniform(0.0), 0);
        let mut a = Assessor::new(&t, model);
        let spec = ApplicationSpec::k_of_n(2, 2);
        let mut rng = Rng::new(2);
        let plan = DeploymentPlan::random(&spec, t.hosts(), &mut rng);
        let r = a.assess(&spec, &plan, 500, 0);
        assert_eq!(r.estimate.score, 1.0);
        assert_eq!(r.estimate.ciw95(), 0.0);
    }

    #[test]
    fn all_unreliable_when_hosts_always_fail() {
        let t = FatTreeParams::new(4).build();
        let model = FaultModel::new(
            &t,
            &ProbabilityConfig::PerKind {
                table: vec![(recloud_topology::ComponentKind::Host, 1.0)],
                default: 0.0,
            },
            0,
        );
        let mut a = Assessor::new(&t, model);
        let spec = ApplicationSpec::k_of_n(1, 3);
        let mut rng = Rng::new(3);
        let plan = DeploymentPlan::random(&spec, t.hosts(), &mut rng);
        let r = a.assess(&spec, &plan, 300, 0);
        assert_eq!(r.estimate.score, 0.0);
    }

    #[test]
    fn chunk_layout_covers_rounds_exactly() {
        let (_t, a, _spec) = setup(SamplerKind::ExtendedDagger);
        for rounds in [1usize, 100, 2_500, 10_000, 99_999] {
            let layout = a.chunk_layout(rounds);
            let total: usize = layout.iter().map(|(_, n)| n).sum();
            assert_eq!(total, rounds);
            for (i, (idx, n)) in layout.iter().enumerate() {
                assert_eq!(*idx as usize, i);
                assert!(*n > 0);
            }
        }
    }

    #[test]
    fn chunk_seeds_are_distinct() {
        let seeds: Vec<u64> = (0..64).map(|c| Assessor::chunk_seed(99, c)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len());
    }

    #[test]
    fn timings_are_populated() {
        let (t, mut a, spec) = setup(SamplerKind::ExtendedDagger);
        let mut rng = Rng::new(9);
        let plan = DeploymentPlan::random(&spec, t.hosts(), &mut rng);
        let r = a.assess(&spec, &plan, 2_000, 0);
        assert!(r.timings.total >= r.timings.check);
        assert!(r.timings.total > Duration::ZERO);
        assert_eq!(r.estimate.rounds, 2_000);
    }

    #[test]
    fn power_dependency_lowers_reliability() {
        // The same plan must score strictly lower with power trees than
        // with the trees stripped, because power adds correlated failures.
        let t = FatTreeParams::new(4).build();
        let with = FaultModel::paper_default(&t, 11);
        let without = FaultModel::new(&t, &ProbabilityConfig::PaperDefault, 11);
        let spec = ApplicationSpec::k_of_n(2, 2);
        let mut rng = Rng::new(4);
        let plan = DeploymentPlan::random(&spec, t.hosts(), &mut rng);
        let r_with = Assessor::new(&t, with).assess(&spec, &plan, 30_000, 5);
        let r_without = Assessor::new(&t, without).assess(&spec, &plan, 30_000, 5);
        assert!(
            r_with.estimate.score < r_without.estimate.score,
            "correlated failures must hurt: {} vs {}",
            r_with.estimate.score,
            r_without.estimate.score
        );
    }

    #[test]
    fn table_cache_is_transparent() {
        // Same seed twice: second call hits the cache and must return the
        // exact same counts; a different plan on the cached table must
        // also match a fresh engine's result for that (plan, seed).
        let (t, mut a, spec) = setup(SamplerKind::ExtendedDagger);
        let mut rng = Rng::new(12);
        let plan1 = DeploymentPlan::random(&spec, t.hosts(), &mut rng);
        let plan2 = DeploymentPlan::random(&spec, t.hosts(), &mut rng);

        let r1 = a.assess(&spec, &plan1, 6_000, 77);
        let r1_cached = a.assess(&spec, &plan1, 6_000, 77);
        assert_eq!(r1.estimate.successes, r1_cached.estimate.successes);
        // Cached call skipped sampling entirely.
        assert_eq!(r1_cached.timings.sampling, Duration::ZERO);

        let r2_cached = a.assess(&spec, &plan2, 6_000, 77);
        let model = FaultModel::paper_default(&t, 11);
        let mut fresh = Assessor::new(&t, model);
        let r2_fresh = fresh.assess(&spec, &plan2, 6_000, 77);
        assert_eq!(r2_cached.estimate.successes, r2_fresh.estimate.successes);

        // A different seed invalidates the cache (and still works).
        let r3 = a.assess(&spec, &plan1, 6_000, 78);
        assert!(r3.timings.sampling > Duration::ZERO);
    }

    #[test]
    fn cache_supports_shorter_followup_requests() {
        let (t, mut a, spec) = setup(SamplerKind::ExtendedDagger);
        let mut rng = Rng::new(3);
        let plan = DeploymentPlan::random(&spec, t.hosts(), &mut rng);
        let full = a.assess(&spec, &plan, 9_000, 5);
        let prefix = a.assess(&spec, &plan, 4_000, 5);
        // The shorter run is a prefix of the longer one's result list.
        assert!(prefix.estimate.successes <= full.estimate.successes);
        assert_eq!(prefix.estimate.rounds, 4_000);
    }

    /// The tentpole invariant: every kernel lane width — scalar, 64-lane,
    /// 256-lane — produces bit-identical assessments (same successes, same
    /// rounds) across specs (simple and complex) and word/wide-boundary
    /// round counts, on both the fresh and the cached-table paths.
    #[test]
    fn batched_equals_scalar_bit_for_bit() {
        let t = FatTreeParams::new(4).build();
        let specs = [
            ApplicationSpec::k_of_n(1, 2),
            ApplicationSpec::k_of_n(3, 5),
            ApplicationSpec::layered(&[(2, 3), (1, 2)]),
        ];
        for (si, spec) in specs.iter().enumerate() {
            let mut rng = Rng::new(40 + si as u64);
            let plan = DeploymentPlan::random(spec, t.hosts(), &mut rng);
            for rounds in [63usize, 64, 65, 255, 256, 257, 2_500, 2_563] {
                let model = FaultModel::paper_default(&t, 11);
                let mut scalar = Assessor::new(&t, model.clone());
                scalar.set_batched(false);
                let mut word64 = Assessor::new(&t, model.clone());
                word64.set_width(BatchWidth::Word64);
                let mut wide = Assessor::new(&t, model);
                assert!(wide.batched());
                assert_eq!(wide.width(), BatchWidth::Wide256);
                let rs = scalar.assess(spec, &plan, rounds, 9);
                let rw = word64.assess(spec, &plan, rounds, 9);
                let rb = wide.assess(spec, &plan, rounds, 9);
                assert_eq!(
                    (rs.estimate.successes, rs.estimate.rounds),
                    (rb.estimate.successes, rb.estimate.rounds),
                    "spec {si} rounds {rounds} fresh"
                );
                assert_eq!(
                    (rs.estimate.successes, rs.estimate.rounds),
                    (rw.estimate.successes, rw.estimate.rounds),
                    "spec {si} rounds {rounds} word64"
                );
                // Cached-table path (second assess with the same seed).
                let rs2 = scalar.assess(spec, &plan, rounds, 9);
                let rb2 = wide.assess(spec, &plan, rounds, 9);
                assert_eq!(rs2.estimate.successes, rb2.estimate.successes);
                assert_eq!(rb.estimate.successes, rb2.estimate.successes);
            }
        }
    }

    /// Batched and scalar must also agree under a generic (non-word-native)
    /// router, where the screened round-major fallback carries the load.
    #[test]
    fn batched_equals_scalar_on_generic_router() {
        let t = recloud_topology::LeafSpineParams::new(3, 4, 3).border_spines(2).build();
        let model = FaultModel::paper_default(&t, 7);
        let spec = ApplicationSpec::k_of_n(2, 4);
        let mut rng = Rng::new(15);
        let plan = DeploymentPlan::random(&spec, t.hosts(), &mut rng);
        let mut scalar = Assessor::new(&t, model.clone());
        scalar.set_batched(false);
        let mut batched = Assessor::new(&t, model);
        for rounds in [65usize, 4_000] {
            let rs = scalar.assess(&spec, &plan, rounds, 3);
            let rb = batched.assess(&spec, &plan, rounds, 3);
            assert_eq!(
                (rs.estimate.successes, rs.estimate.rounds),
                (rb.estimate.successes, rb.estimate.rounds),
                "rounds {rounds}"
            );
        }
    }

    #[test]
    fn cache_bytes_accounts_every_chunk() {
        let (t, mut a, spec) = setup(SamplerKind::ExtendedDagger);
        assert_eq!(a.cache_bytes(), 0, "no cache before the first assessment");
        let mut rng = Rng::new(21);
        let plan = DeploymentPlan::random(&spec, t.hosts(), &mut rng);
        let rounds = 6_000;
        a.assess(&spec, &plan, rounds, 5);
        let layout = a.chunk_layout(rounds);
        // One collapsed-matrix clone per chunk: components × chunk words.
        let per_chunk = t.num_components() * a.chunk_rounds.div_ceil(64) * 8;
        assert_eq!(a.cache_bytes(), layout.len() * per_chunk);
        // Pin the absolute footprint so searches can't silently balloon:
        // k=4 fat-tree = 36 components, chunk = 2560 rounds = 40 words
        // (already a wide-word multiple, so no padding).
        assert_eq!(a.cache_bytes(), 3 * 36 * 40 * 8);
        a.set_injector(None); // invalidates the cache
        assert_eq!(a.cache_bytes(), 0);
    }

    /// The serving-layer invariant: a reseeded engine is indistinguishable
    /// from a freshly built one — same counts, bit-identical score — and
    /// reseeding drops the (now stale) table cache.
    #[test]
    fn reseed_matches_fresh_engine_bit_for_bit() {
        let t = FatTreeParams::new(4).build();
        let spec = ApplicationSpec::k_of_n(2, 3);
        let mut rng = Rng::new(31);
        let plan = DeploymentPlan::random(&spec, t.hosts(), &mut rng);
        let mut reused = Assessor::new(&t, FaultModel::paper_default(&t, 11));
        reused.assess(&spec, &plan, 3_000, 11);
        assert!(reused.cache_bytes() > 0, "first assessment populates the table cache");
        for seed in [12u64, 13, 11] {
            reused.reseed(FaultModel::paper_default(&t, seed));
            assert_eq!(reused.cache_bytes(), 0, "reseed must drop the stale table cache");
            let r = reused.assess(&spec, &plan, 3_000, seed);
            let mut fresh = Assessor::new(&t, FaultModel::paper_default(&t, seed));
            let f = fresh.assess(&spec, &plan, 3_000, seed);
            assert_eq!(r.estimate.score.to_bits(), f.estimate.score.to_bits(), "seed {seed}");
            assert_eq!(r.estimate.successes, f.estimate.successes);
            assert_eq!(r.estimate.rounds, f.estimate.rounds);
        }
    }

    #[test]
    #[should_panic(expected = "different topology")]
    fn reseed_rejects_foreign_model() {
        let t4 = FatTreeParams::new(4).build();
        let t6 = FatTreeParams::new(6).build();
        let mut a = Assessor::new(&t4, FaultModel::paper_default(&t4, 1));
        a.reseed(FaultModel::paper_default(&t6, 1));
    }

    #[test]
    fn chunk_seed_is_the_shared_derivation_rule() {
        for (master, chunk) in [(0u64, 0u32), (1, 1), (99, 63), (u64::MAX, 7)] {
            assert_eq!(
                Assessor::chunk_seed(master, chunk),
                recloud_sampling::derive_seed(master, chunk as u64)
            );
        }
    }

    /// Assessments record stage timings, round counts and the cache
    /// footprint into the process-global registry. Other tests share
    /// that registry and run in parallel, so assertions are on *deltas
    /// at least as large as this test's own contribution* — concurrent
    /// recording only increases them.
    #[test]
    fn assessments_record_into_the_global_registry() {
        let before = recloud_obs::global().snapshot();
        let (t, mut a, spec) = setup(SamplerKind::ExtendedDagger);
        let mut rng = Rng::new(77);
        let plan = DeploymentPlan::random(&spec, t.hosts(), &mut rng);
        let rounds = 4_000usize;
        a.assess(&spec, &plan, rounds, 8); // fresh: sampling + collapse + check
        a.assess(&spec, &plan, rounds, 8); // cached table: check only
        let after = recloud_obs::global().snapshot();

        let delta =
            |name: &str| after.counter(name).unwrap_or(0) - before.counter(name).unwrap_or(0);
        assert!(delta("assess.rounds_total") >= 2 * rounds as u64);
        assert!(delta("assess.assessments_total") >= 2);
        let chunks = a.chunk_layout(rounds).len() as u64;
        let hist_delta = |name: &str| {
            after.histogram(name).map_or(0, |h| h.count)
                - before.histogram(name).map_or(0, |h| h.count)
        };
        assert!(hist_delta("assess.sampling_us") >= chunks, "fresh path samples per chunk");
        assert!(hist_delta("assess.check_us") >= 2 * chunks, "both paths check per chunk");
        assert!(hist_delta("assess.total_us") >= 2);
        assert!(after.gauge("assess.cache_bytes").is_some(), "cache footprint gauge registered");
    }

    #[test]
    #[should_panic(expected = "zero rounds")]
    fn zero_rounds_rejected() {
        let (t, mut a, spec) = setup(SamplerKind::ExtendedDagger);
        let mut rng = Rng::new(1);
        let plan = DeploymentPlan::random(&spec, t.hosts(), &mut rng);
        a.assess(&spec, &plan, 0, 0);
    }
}
