//! Arena guard: the steady-state chunk loop — sample into the arena,
//! collapse in place, wide route-and-check — must be allocation-free.
//! The whole point of the reusable [`ChunkArena`] and the stack-built
//! samplers is that after the first chunk warms every scratch buffer
//! (arena matrices at construction, the checker's bit-sliced counters on
//! first use, the router's wide scratch), subsequent chunks only write
//! into memory that already exists. A counting global allocator proves
//! it, so the hot path cannot silently regress back to per-chunk
//! allocation.

use recloud_apps::{ApplicationSpec, DeploymentPlan};
use recloud_assess::{Assessor, StructureChecker};
use recloud_faults::FaultModel;
use recloud_sampling::{ResultAccumulator, Rng};
use recloud_topology::FatTreeParams;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

struct CountingAlloc;

// Per-thread allocation counter (const-initialized, no-Drop payload, so
// reading it inside the allocator neither allocates nor recurses). Only
// the measuring thread's allocations must count — the libtest harness
// allocates on other threads concurrently.
thread_local! {
    static TL_ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        TL_ALLOCATIONS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        TL_ALLOCATIONS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations_during(f: impl FnOnce()) -> u64 {
    let before = TL_ALLOCATIONS.with(Cell::get);
    f();
    TL_ALLOCATIONS.with(Cell::get) - before
}

#[test]
fn wide_chunk_loop_does_not_allocate() {
    let t = FatTreeParams::new(4).build();
    let model = FaultModel::paper_default(&t, 11);
    let spec = ApplicationSpec::k_of_n(2, 4);
    let mut rng = Rng::new(6);
    let plan = DeploymentPlan::random(&spec, t.hosts(), &mut rng);

    // Setup may allocate — that is the point of the arena: construction
    // sizes every scratch buffer once.
    let mut engine = Assessor::new(&t, model);
    let mut checker = StructureChecker::new(&spec, &plan);
    let mut acc = ResultAccumulator::new();
    // Warm-up chunk: first use grows the checker's bit-sliced K-of-N
    // counters and fills the router's lazy per-pod scratch.
    engine.run_chunk(&mut checker, Assessor::chunk_seed(42, 0), 2_000, &mut acc);

    // Steady state: full and short-tail chunks alike must not allocate.
    for (chunk, rounds) in [(1u32, 2_000usize), (2, 257), (3, 63)] {
        let allocs = allocations_during(|| {
            engine.run_chunk(&mut checker, Assessor::chunk_seed(42, chunk), rounds, &mut acc);
        });
        assert_eq!(allocs, 0, "chunk of {rounds} rounds allocated {allocs} times");
    }
    assert!(acc.rounds() > 0, "the counted chunks really ran");
}
