#![warn(missing_docs)]

//! # recloud-search
//!
//! Proactive search for a reliable deployment plan (§3.3) — "this ability
//! is completely missing in the state-of-the-art INDaaS system".
//!
//! * [`annealing`] — the 6-step simulated-annealing search of §3.3.1, with
//!   the paper's specially-designed acceptance probability: the log-ratio
//!   reliability difference Δ = |log((1−R_n)/(1−R_c))| (Eq 5) and the
//!   wall-clock-normalized temperature t = (T_max − T_elapsed)/T_max
//!   (Eq 6). The classic absolute-Δ and geometric-cooling settings are
//!   retained behind [`schedule`] switches for the ablation benches.
//! * [`transform`] — the network-transformations equivalence check of
//!   Step 3: a *sound* sufficient test that a neighbor move landed on a
//!   symmetric host (same failure-probability class, aligned power and
//!   switch environment), in which case re-assessment is skipped.
//! * [`objective`] — multi-objective optimization (§3.3.3): the holistic
//!   measure M = a·reliability + b·utility (Eq 7), with host-workload
//!   utility as in §4.2.2.
//! * [`common_practice`] — the §4.2.2 baselines: vanilla common practice
//!   (least-loaded hosts, one per rack) and the enhanced variant (top-5
//!   non-repeating plans, pick the most power-diverse).

pub mod annealing;
pub mod common_practice;
pub mod migration;
pub mod objective;
pub mod parallel;
pub mod schedule;
pub mod transform;

pub use annealing::{
    BestReport, NoDriver, SearchConfig, SearchDriver, SearchOutcome, SearchStats, Searcher,
    TrajectoryPoint,
};
pub use common_practice::{common_practice, enhanced_common_practice};
pub use migration::{migration_cost, MigrationBudget, MigrationObjective};
pub use objective::{HolisticObjective, LatencyObjective, Objective, ReliabilityObjective};
pub use parallel::{ChainEvent, ParallelOutcome, ParallelSearchConfig, ParallelSearcher};
pub use schedule::{DeltaRule, SearchBudget, TemperatureSchedule};
pub use transform::SymmetryChecker;
