//! Network-transformation symmetry check (§3.3.1 Step 3).
//!
//! "The cloud provider applies the network transformations technique to
//! simplify the representations of the two networks involved in the
//! current and the neighboring deployment plans ... checks whether the
//! neighboring deployment plan is equivalent to the current plan with
//! respect to both the network symmetry and the component failure
//! probabilities. If they are equivalent, the cloud provider repeats this
//! step." (citing Plotkin et al., POPL '16.)
//!
//! Because a neighbor differs from the current plan in exactly **one**
//! host, equivalence reduces to: *is the new host symmetric to the old one
//! given the rest of the plan?* We implement a **sound** sufficient test —
//! every `true` is a genuine reliability-preserving symmetry; some
//! symmetric moves may be missed (`false` negatives merely cost one
//! assessment):
//!
//! 1. both hosts have the same failure-probability class (the paper:
//!    same-type components with very different probabilities "are
//!    logically treated as of different types");
//! 2. **same edge switch** → the entire environment (edge, power, pod,
//!    cores, borders) is shared: equivalent.
//! 3. **different edge switch** → equivalent if the edges have equal
//!    probability, *identical* power supplies (for both the switch and
//!    its host group — identity, not just equal probability, so every
//!    correlation with the rest of the plan is preserved), no other plan
//!    instance under either edge, and either the same pod or two pods
//!    with no other plan instances whose aggregation layers match
//!    group-by-group in probability with identical supplies.
//!
//! With the evaluation's heterogeneous 4-decimal probabilities, hits are
//! rare but free; with class-homogeneous probabilities (§3.4's
//! limited-information mode) they eliminate a large share of assessments —
//! both regimes are exercised in the ablation bench.

use recloud_faults::FaultModel;
use recloud_topology::{ComponentId, FatTreeMeta, Topology, TopologyKind};

/// Sound single-move symmetry checker over a fat-tree.
pub struct SymmetryChecker {
    meta: Option<FatTreeMeta>,
    /// Probability class per component: the probability scaled by 1e8 and
    /// rounded to an integer (same class ⟺ identical assigned probability
    /// to 8 decimals — finer than the paper's 4-decimal grid, so two
    /// components never collapse into one class by accident).
    prob_class: Vec<u64>,
    /// Raw power-supply id per component (u32::MAX = none).
    power_of: Vec<u32>,
}

impl SymmetryChecker {
    /// Builds a checker. Non-fat-tree topologies get a checker that never
    /// reports equivalence (plain BFS fabrics have no exploitable closed
    /// form; every neighbor is assessed).
    pub fn new(topology: &Topology, model: &FaultModel) -> Self {
        let meta = match topology.topology_kind() {
            TopologyKind::FatTree(m) => Some(*m),
            _ => None,
        };
        let prob_class = model
            .probs()
            .iter()
            .take(topology.num_components())
            .map(|p| (p * 1e8).round() as u64)
            .collect();
        let power_of = topology
            .components()
            .iter()
            .map(|c| topology.power_of(c.id).map_or(u32::MAX, |p| p.0))
            .collect();
        SymmetryChecker { meta, prob_class, power_of }
    }

    #[inline]
    fn class(&self, c: ComponentId) -> u64 {
        self.prob_class[c.index()]
    }

    #[inline]
    fn power(&self, c: ComponentId) -> u32 {
        self.power_of[c.index()]
    }

    /// Decides whether replacing `old` with `new` — all `other` plan hosts
    /// unchanged (`other` must not contain `old` or `new`) — provably
    /// preserves the plan's reliability.
    pub fn equivalent_move(
        &self,
        other_hosts: &[ComponentId],
        old: ComponentId,
        new: ComponentId,
    ) -> bool {
        let Some(meta) = &self.meta else { return false };
        if old == new {
            return true;
        }
        debug_assert!(!other_hosts.contains(&old) && !other_hosts.contains(&new));
        if self.class(old) != self.class(new) {
            return false;
        }
        let po = meta.host_position(old);
        let pn = meta.host_position(new);
        // Case: same edge switch — everything upstream is shared, and the
        // host-group power supply is by construction the same.
        if po.pod == pn.pod && po.edge == pn.edge {
            return true;
        }
        // Different edges: compare the edge environment.
        let edge_old = meta.edge(po.pod, po.edge);
        let edge_new = meta.edge(pn.pod, pn.edge);
        if self.class(edge_old) != self.class(edge_new) {
            return false;
        }
        if self.power(edge_old) != self.power(edge_new) {
            return false;
        }
        // Host groups must draw the *same* supply so correlations with
        // every other plan host are untouched.
        if self.power(old) != self.power(new) {
            return false;
        }
        // No other plan instance may share either edge (its fate would
        // otherwise couple differently with the moved instance).
        for &h in other_hosts {
            let p = meta.host_position(h);
            if (p.pod == po.pod && p.edge == po.edge) || (p.pod == pn.pod && p.edge == pn.edge) {
                return false;
            }
        }
        if po.pod == pn.pod {
            // Same pod: aggregation layer and everything above is shared.
            return true;
        }
        // Cross-pod move: both pods must be otherwise unused by the plan
        // and their agg layers must match group-by-group (probability
        // class AND identical supply, preserving correlated behavior).
        for &h in other_hosts {
            let p = meta.host_position(h);
            if p.pod == po.pod || p.pod == pn.pod {
                return false;
            }
        }
        for g in 0..meta.half {
            let a = meta.agg(po.pod, g);
            let b = meta.agg(pn.pod, g);
            if self.class(a) != self.class(b) || self.power(a) != self.power(b) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recloud_apps::{ApplicationSpec, DeploymentPlan};
    use recloud_assess::exact_reliability;
    use recloud_faults::ProbabilityConfig;
    use recloud_topology::FatTreeParams;

    /// Uniform probabilities: every same-shape move should be symmetric.
    fn uniform_setup() -> (Topology, FaultModel, SymmetryChecker) {
        let t = FatTreeParams::new(4).power_supplies(1).build();
        let mut model = FaultModel::new(&t, &ProbabilityConfig::Uniform(0.01), 0);
        model.attach_power_dependencies(&t);
        let checker = SymmetryChecker::new(&t, &model);
        (t, model, checker)
    }

    #[test]
    fn same_edge_move_is_equivalent() {
        let (t, _m, c) = uniform_setup();
        let meta = *t.fat_tree().unwrap();
        let old = meta.host(0, 0, 0);
        let new = meta.host(0, 0, 1);
        let others = [meta.host(1, 0, 0)];
        assert!(c.equivalent_move(&others, old, new));
    }

    #[test]
    fn same_pod_move_with_shared_power_is_equivalent() {
        let (t, _m, c) = uniform_setup(); // single supply: all power equal
        let meta = *t.fat_tree().unwrap();
        let old = meta.host(0, 0, 0);
        let new = meta.host(0, 1, 0);
        assert!(c.equivalent_move(&[meta.host(2, 0, 0)], old, new));
    }

    #[test]
    fn occupied_edge_blocks_equivalence() {
        let (t, _m, c) = uniform_setup();
        let meta = *t.fat_tree().unwrap();
        let old = meta.host(0, 0, 0);
        let new = meta.host(0, 1, 0);
        // Another plan instance already sits under the target edge.
        let others = [meta.host(0, 1, 1)];
        assert!(!c.equivalent_move(&others, old, new));
    }

    #[test]
    fn cross_pod_move_in_uniform_single_supply_world() {
        let (t, _m, c) = uniform_setup();
        let meta = *t.fat_tree().unwrap();
        let old = meta.host(0, 0, 0);
        let new = meta.host(1, 0, 0);
        assert!(c.equivalent_move(&[meta.host(2, 0, 0)], old, new));
        // But not when the plan also occupies the destination pod.
        assert!(!c.equivalent_move(&[meta.host(1, 1, 0)], old, new));
    }

    #[test]
    fn differing_probability_class_blocks() {
        let t = FatTreeParams::new(4).build();
        let mut model = FaultModel::new(&t, &ProbabilityConfig::Uniform(0.01), 0);
        let meta = *t.fat_tree().unwrap();
        model.set_prob(meta.host(0, 0, 1), 0.02);
        let c = SymmetryChecker::new(&t, &model);
        assert!(!c.equivalent_move(&[], meta.host(0, 0, 0), meta.host(0, 0, 1)));
    }

    #[test]
    fn paper_default_power_diversity_blocks_cross_group_moves() {
        // With 5 round-robin supplies, two edges usually differ in supply:
        // the checker must refuse those moves.
        let t = FatTreeParams::new(4).build();
        let mut model = FaultModel::new(&t, &ProbabilityConfig::Uniform(0.01), 0);
        model.attach_power_dependencies(&t);
        let c = SymmetryChecker::new(&t, &model);
        let meta = *t.fat_tree().unwrap();
        let old = meta.host(0, 0, 0);
        // Find a host whose group has a different supply.
        let new = t
            .hosts()
            .iter()
            .copied()
            .find(|&h| t.power_of(h) != t.power_of(old) && meta.host_position(h).pod != 0)
            .unwrap();
        assert!(!c.equivalent_move(&[], old, new));
    }

    #[test]
    fn non_fat_tree_never_equivalent() {
        let t = recloud_topology::LeafSpineParams::new(2, 2, 4).build();
        let model = FaultModel::new(&t, &ProbabilityConfig::Uniform(0.01), 0);
        let c = SymmetryChecker::new(&t, &model);
        let h = t.hosts();
        assert!(!c.equivalent_move(&[], h[0], h[1]));
    }

    /// The soundness guarantee, checked against exact ground truth: every
    /// move the checker approves leaves the exact reliability unchanged.
    #[test]
    fn approved_moves_preserve_exact_reliability() {
        // Small enough for exhaustive enumeration: restrict fallible
        // events to hosts of two racks + their edges + one power supply.
        let t = FatTreeParams::new(4).power_supplies(1).build();
        let meta = *t.fat_tree().unwrap();
        let mut model = FaultModel::new(&t, &ProbabilityConfig::Uniform(0.0), 0);
        // Make a handful of components fallible (<= 22).
        let fallible = [
            meta.host(0, 0, 0),
            meta.host(0, 0, 1),
            meta.host(0, 1, 0),
            meta.host(1, 0, 0),
            meta.edge(0, 0),
            meta.edge(0, 1),
            meta.edge(1, 0),
            meta.agg(0, 0),
            meta.agg(0, 1),
            meta.agg(1, 0),
            meta.agg(1, 1),
        ];
        for &f in &fallible {
            model.set_prob(f, 0.1);
        }
        let c = SymmetryChecker::new(&t, &model);
        let spec = ApplicationSpec::k_of_n(1, 2);
        let anchor = meta.host(1, 0, 0);
        let old = meta.host(0, 0, 0);
        let candidates = [meta.host(0, 0, 1), meta.host(0, 1, 0)];
        let base_plan = DeploymentPlan::new(&spec, vec![vec![anchor, old]]);
        let base_r = exact_reliability(&t, &model, &spec, &base_plan);
        for &new in &candidates {
            if c.equivalent_move(&[anchor], old, new) {
                let moved = DeploymentPlan::new(&spec, vec![vec![anchor, new]]);
                let r = exact_reliability(&t, &model, &spec, &moved);
                assert!(
                    (r - base_r).abs() < 1e-12,
                    "approved move {old}->{new} changed reliability {base_r} -> {r}"
                );
            }
        }
        // And at least the same-edge candidate must be approved.
        assert!(c.equivalent_move(&[anchor], old, meta.host(0, 0, 1)));
    }
}
