//! Incremental re-deployment with bounded migrations.
//!
//! §6 closes with: reCloud's "high efficiency can further enable it to
//! periodically recalculate the deployment of any existing application to
//! adapt to varying system conditions during service time." Recalculating
//! from scratch, though, may move *every* instance — and each live
//! migration costs the developer downtime and the provider bandwidth.
//!
//! This module makes the recalculation migration-aware:
//!
//! * [`MigrationBudget`] restricts the annealing neighborhood to plans
//!   within `max_moves` instance moves of the incumbent plan, so the
//!   search explores only affordable re-deployments;
//! * [`migration_cost`] counts the moves between two plans;
//! * [`MigrationObjective`] wraps any base objective and charges
//!   `penalty · moves / instances`, letting the search trade reliability
//!   gains against migration churn instead of hard-capping it.

use crate::objective::Objective;
use recloud_apps::DeploymentPlan;

/// Number of instances whose host differs between two plans with the
/// same shape (slot-wise comparison, matching how live migration would
/// be executed per instance).
///
/// # Panics
/// Panics if the plans have different shapes.
pub fn migration_cost(from: &DeploymentPlan, to: &DeploymentPlan) -> usize {
    assert_eq!(
        from.num_components(),
        to.num_components(),
        "plans must describe the same application"
    );
    let mut moves = 0;
    for c in 0..from.num_components() {
        let a = from.hosts_of(c);
        let b = to.hosts_of(c);
        assert_eq!(a.len(), b.len(), "component {c} changed instance count");
        moves += a.iter().zip(b).filter(|(x, y)| x != y).count();
    }
    moves
}

/// A hard cap on migrations from an incumbent plan. Used as an extra
/// filter during neighbor generation (plans beyond the budget are
/// discarded like rule violations).
#[derive(Clone, Debug)]
pub struct MigrationBudget {
    incumbent: DeploymentPlan,
    /// Maximum instance moves allowed.
    pub max_moves: usize,
}

impl MigrationBudget {
    /// Builds a budget anchored at the currently-running plan.
    pub fn new(incumbent: DeploymentPlan, max_moves: usize) -> Self {
        MigrationBudget { incumbent, max_moves }
    }

    /// The incumbent plan.
    pub fn incumbent(&self) -> &DeploymentPlan {
        &self.incumbent
    }

    /// True if `candidate` stays within the budget.
    pub fn allows(&self, candidate: &DeploymentPlan) -> bool {
        migration_cost(&self.incumbent, candidate) <= self.max_moves
    }
}

/// Wraps a base objective with a migration penalty:
/// `M' = M − penalty · moves / total_instances`.
///
/// With `penalty = 0` this is the base objective; with a large penalty
/// the search converges to the incumbent unless a move buys substantial
/// reliability — the knob a provider tunes per maintenance window.
pub struct MigrationObjective<'a> {
    base: &'a dyn Objective,
    incumbent: DeploymentPlan,
    /// Penalty weight (≥ 0) applied to the migrated fraction.
    pub penalty: f64,
}

impl<'a> MigrationObjective<'a> {
    /// Builds the wrapper.
    ///
    /// # Panics
    /// Panics on a negative penalty.
    pub fn new(base: &'a dyn Objective, incumbent: DeploymentPlan, penalty: f64) -> Self {
        assert!(penalty >= 0.0, "penalty must be non-negative");
        MigrationObjective { base, incumbent, penalty }
    }
}

impl Objective for MigrationObjective<'_> {
    fn measure(&self, plan: &DeploymentPlan, reliability: f64) -> f64 {
        let moves = migration_cost(&self.incumbent, plan);
        let frac = moves as f64 / plan.total_instances().max(1) as f64;
        self.base.measure(plan, reliability) - self.penalty * frac
    }

    fn name(&self) -> &'static str {
        "migration-penalized"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annealing::{SearchConfig, Searcher};
    use crate::objective::ReliabilityObjective;
    use recloud_apps::ApplicationSpec;
    use recloud_assess::Assessor;
    use recloud_faults::FaultModel;
    use recloud_sampling::Rng;
    use recloud_topology::FatTreeParams;

    fn plans() -> (ApplicationSpec, DeploymentPlan, DeploymentPlan, DeploymentPlan) {
        let t = FatTreeParams::new(4).build();
        let spec = ApplicationSpec::k_of_n(2, 3);
        let h = t.hosts();
        let a = DeploymentPlan::new(&spec, vec![vec![h[0], h[1], h[2]]]);
        let b = DeploymentPlan::new(&spec, vec![vec![h[0], h[1], h[5]]]); // 1 move
        let c = DeploymentPlan::new(&spec, vec![vec![h[6], h[7], h[8]]]); // 3 moves
        (spec, a, b, c)
    }

    #[test]
    fn migration_cost_counts_slotwise_moves() {
        let (_spec, a, b, c) = plans();
        assert_eq!(migration_cost(&a, &a), 0);
        assert_eq!(migration_cost(&a, &b), 1);
        assert_eq!(migration_cost(&a, &c), 3);
        assert_eq!(migration_cost(&b, &a), 1);
    }

    #[test]
    fn budget_filters_expensive_plans() {
        let (_spec, a, b, c) = plans();
        let budget = MigrationBudget::new(a.clone(), 1);
        assert!(budget.allows(&a));
        assert!(budget.allows(&b));
        assert!(!budget.allows(&c));
        assert_eq!(budget.incumbent(), &a);
    }

    #[test]
    fn penalty_shifts_the_measure() {
        let (_spec, a, b, c) = plans();
        let base = ReliabilityObjective;
        let obj = MigrationObjective::new(&base, a.clone(), 0.3);
        // Equal reliability: the incumbent wins, then 1-move, then 3-move.
        let ma = obj.measure(&a, 0.99);
        let mb = obj.measure(&b, 0.99);
        let mc = obj.measure(&c, 0.99);
        assert!(ma > mb && mb > mc);
        assert!((ma - 0.99).abs() < 1e-12);
        assert!((mb - (0.99 - 0.3 / 3.0)).abs() < 1e-12);
        // A big reliability win still justifies migrating everything.
        assert!(obj.measure(&c, 0.999) > obj.measure(&a, 0.5));
    }

    #[test]
    fn migration_penalized_search_stays_close_to_incumbent() {
        let t = FatTreeParams::new(8).build();
        let model = FaultModel::paper_default(&t, 2);
        let spec = ApplicationSpec::k_of_n(2, 4);
        let mut rng = Rng::new(4);
        let incumbent = DeploymentPlan::random(&spec, t.hosts(), &mut rng);

        // Heavy penalty: the search may improve, but must not move more
        // instances than the gain justifies; with an extreme penalty, any
        // accepted best stays within one or two moves.
        let base = ReliabilityObjective;
        let obj = MigrationObjective::new(&base, incumbent.clone(), 5.0);
        let mut assessor = Assessor::new(&t, model);
        let mut searcher = Searcher::new(&mut assessor);
        let mut config = SearchConfig::iterations(25, 800, 8);
        config.initial_plan = Some(incumbent.clone());
        let out = searcher.search(&spec, &obj, &config, None);
        // The measure of the chosen plan can never be below what simply
        // keeping a near-incumbent plan yields; with penalty 5 and gains
        // bounded by 1.0 in reliability, > 1 move is never worth it.
        let moved = migration_cost(&incumbent, &out.best_plan);
        assert!(moved <= 1, "penalty 5.0 must pin the plan (moved {moved})");
    }

    #[test]
    #[should_panic(expected = "same application")]
    fn mismatched_plans_rejected() {
        let t = FatTreeParams::new(4).build();
        let s1 = ApplicationSpec::k_of_n(1, 2);
        let s2 = ApplicationSpec::layered(&[(1, 1), (1, 1)]);
        let h = t.hosts();
        let a = DeploymentPlan::new(&s1, vec![vec![h[0], h[1]]]);
        let b = DeploymentPlan::new(&s2, vec![vec![h[0]], vec![h[1]]]);
        migration_cost(&a, &b);
    }
}
