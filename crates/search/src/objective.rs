//! Multi-objective optimization (§3.3.3, Eq 7).
//!
//! "Rather than considering only the reliability score ... reCloud can
//! generate a holistic measure M by combining the reliability score of a
//! deployment plan and the utility score of the deployment plan":
//! M = a·reliability + b·utility. The evaluation's utility is host
//! workload — a plan on idle hosts is worth more to the provider — with
//! equal weights a = b (§4.2.2).

use recloud_apps::{DeploymentPlan, WorkloadMap};
use recloud_topology::{distance, Topology};

/// Scores a (plan, reliability) pair into the measure the search drives.
pub trait Objective {
    /// The holistic measure M for a plan whose assessed reliability is
    /// `reliability`. Higher is better.
    fn measure(&self, plan: &DeploymentPlan, reliability: f64) -> f64;

    /// Name for reports.
    fn name(&self) -> &'static str;
}

/// Reliability is the only objective (the §4.2.3 performance experiments
/// and the default deployment scenario).
#[derive(Clone, Copy, Debug, Default)]
pub struct ReliabilityObjective;

impl Objective for ReliabilityObjective {
    fn measure(&self, _plan: &DeploymentPlan, reliability: f64) -> f64 {
        reliability
    }

    fn name(&self) -> &'static str {
        "reliability"
    }
}

/// Eq 7: M = a·reliability + b·utility, with utility = 1 − average
/// workload of the plan's hosts (idle hosts are useful hosts).
#[derive(Clone, Debug)]
pub struct HolisticObjective {
    /// Reliability weight a.
    pub a: f64,
    /// Utility weight b.
    pub b: f64,
    workload: WorkloadMap,
}

impl HolisticObjective {
    /// Builds the objective with explicit weights.
    ///
    /// # Panics
    /// Panics if either weight is negative or both are zero.
    pub fn new(a: f64, b: f64, workload: WorkloadMap) -> Self {
        assert!(a >= 0.0 && b >= 0.0, "weights must be non-negative");
        assert!(a + b > 0.0, "at least one weight must be positive");
        HolisticObjective { a, b, workload }
    }

    /// The paper's evaluation setting: equal weights (§4.2.2). Weights are
    /// normalized to sum to 1 so M stays in [0, 1].
    pub fn equal_weights(workload: WorkloadMap) -> Self {
        Self::new(0.5, 0.5, workload)
    }

    /// The utility term of a plan: 1 − mean workload of its hosts.
    pub fn utility(&self, plan: &DeploymentPlan) -> f64 {
        1.0 - self.workload.average(plan.all_hosts())
    }

    /// Read access to the workload map (e.g. for near-real-time updates
    /// between searches).
    pub fn workload(&self) -> &WorkloadMap {
        &self.workload
    }

    /// Mutable access to the workload map.
    pub fn workload_mut(&mut self) -> &mut WorkloadMap {
        &mut self.workload
    }
}

impl Objective for HolisticObjective {
    fn measure(&self, plan: &DeploymentPlan, reliability: f64) -> f64 {
        self.a * reliability + self.b * self.utility(plan)
    }

    fn name(&self) -> &'static str {
        "holistic"
    }
}

/// Application-performance objective (§3.3.3: "some application
/// components may need to be co-located as they frequently interact"):
/// M = a·reliability + b·proximity, where proximity = 1 − mean pairwise
/// hop distance of the plan's hosts normalized by the topology diameter.
///
/// Reliability pulls instances *apart* (distinct pods, distinct power
/// supplies); proximity pulls them *together* — combining the two exposes
/// exactly the trade-off the paper motivates multi-objective search with.
#[derive(Clone, Debug)]
pub struct LatencyObjective {
    /// Reliability weight a.
    pub a: f64,
    /// Proximity weight b.
    pub b: f64,
    topology: Topology,
    diameter: f64,
}

impl LatencyObjective {
    /// Builds the objective with explicit weights.
    ///
    /// # Panics
    /// Panics if either weight is negative or both are zero.
    pub fn new(a: f64, b: f64, topology: &Topology) -> Self {
        assert!(a >= 0.0 && b >= 0.0, "weights must be non-negative");
        assert!(a + b > 0.0, "at least one weight must be positive");
        let diameter = distance::diameter_bound(topology) as f64;
        LatencyObjective { a, b, topology: topology.clone(), diameter }
    }

    /// Equal weights, normalized into [0, 1].
    pub fn equal_weights(topology: &Topology) -> Self {
        Self::new(0.5, 0.5, topology)
    }

    /// The proximity term of a plan: 1 at zero mean distance, 0 at the
    /// diameter bound.
    pub fn proximity(&self, plan: &DeploymentPlan) -> f64 {
        let hosts: Vec<_> = plan.all_hosts().collect();
        let mean = distance::mean_pairwise_distance(&self.topology, &hosts);
        (1.0 - mean / self.diameter).clamp(0.0, 1.0)
    }
}

impl Objective for LatencyObjective {
    fn measure(&self, plan: &DeploymentPlan, reliability: f64) -> f64 {
        self.a * reliability + self.b * self.proximity(plan)
    }

    fn name(&self) -> &'static str {
        "latency"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recloud_apps::ApplicationSpec;
    use recloud_topology::FatTreeParams;

    #[test]
    fn reliability_objective_is_identity() {
        let t = FatTreeParams::new(4).build();
        let spec = ApplicationSpec::k_of_n(1, 2);
        let plan = DeploymentPlan::new(&spec, vec![t.hosts()[..2].to_vec()]);
        assert_eq!(ReliabilityObjective.measure(&plan, 0.97), 0.97);
    }

    #[test]
    fn holistic_prefers_idle_hosts_at_equal_reliability() {
        let t = FatTreeParams::new(4).build();
        let spec = ApplicationSpec::k_of_n(1, 2);
        let m = t.fat_tree().unwrap();
        let busy_hosts = vec![m.host(0, 0, 0), m.host(1, 0, 0)];
        let idle_hosts = vec![m.host(2, 0, 0), m.host(2, 1, 0)];
        let mut w = WorkloadMap::uniform(&t, 0.2);
        for &h in &busy_hosts {
            w.set(h, 0.8);
        }
        let obj = HolisticObjective::equal_weights(w);
        let busy = DeploymentPlan::new(&spec, vec![busy_hosts]);
        let idle = DeploymentPlan::new(&spec, vec![idle_hosts]);
        assert!(obj.measure(&idle, 0.99) > obj.measure(&busy, 0.99));
        // Utility term is 1 - average load.
        assert!((obj.utility(&idle) - 0.8).abs() < 1e-12);
        assert!((obj.utility(&busy) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn weights_trade_off() {
        let t = FatTreeParams::new(4).build();
        let spec = ApplicationSpec::k_of_n(1, 1);
        let h = t.hosts()[0];
        let mut w = WorkloadMap::uniform(&t, 0.0);
        w.set(h, 1.0); // fully loaded host: utility 0
        let plan = DeploymentPlan::new(&spec, vec![vec![h]]);
        let rel_heavy = HolisticObjective::new(1.0, 0.0, w.clone());
        let util_heavy = HolisticObjective::new(0.0, 1.0, w);
        assert_eq!(rel_heavy.measure(&plan, 0.9), 0.9);
        assert_eq!(util_heavy.measure(&plan, 0.9), 0.0);
    }

    #[test]
    fn equal_weights_keep_measure_in_unit_interval() {
        let t = FatTreeParams::new(4).build();
        let spec = ApplicationSpec::k_of_n(1, 3);
        let plan = DeploymentPlan::new(&spec, vec![t.hosts()[..3].to_vec()]);
        let obj = HolisticObjective::equal_weights(WorkloadMap::paper_default(&t, 1));
        for r in [0.0, 0.5, 0.9999, 1.0] {
            let m = obj.measure(&plan, r);
            assert!((0.0..=1.0).contains(&m), "m={m}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one weight")]
    fn zero_weights_rejected() {
        let t = FatTreeParams::new(4).build();
        HolisticObjective::new(0.0, 0.0, WorkloadMap::uniform(&t, 0.1));
    }

    #[test]
    fn latency_objective_prefers_colocated_plans_at_equal_reliability() {
        let t = FatTreeParams::new(4).build();
        let m = t.fat_tree().unwrap();
        let spec = ApplicationSpec::k_of_n(1, 2);
        let near = DeploymentPlan::new(&spec, vec![vec![m.host(0, 0, 0), m.host(0, 0, 1)]]);
        let far = DeploymentPlan::new(&spec, vec![vec![m.host(0, 0, 0), m.host(2, 1, 1)]]);
        let obj = LatencyObjective::equal_weights(&t);
        assert!(obj.measure(&near, 0.99) > obj.measure(&far, 0.99));
        // Proximity is 1 - mean/diameter: same-edge = 1 - 2/6, cross = 0.
        assert!((obj.proximity(&near) - (1.0 - 2.0 / 6.0)).abs() < 1e-12);
        assert!(obj.proximity(&far) < 1e-12);
    }

    #[test]
    fn latency_objective_trades_off_against_reliability() {
        let t = FatTreeParams::new(4).build();
        let m = t.fat_tree().unwrap();
        let spec = ApplicationSpec::k_of_n(1, 2);
        let near = DeploymentPlan::new(&spec, vec![vec![m.host(0, 0, 0), m.host(0, 0, 1)]]);
        let far = DeploymentPlan::new(&spec, vec![vec![m.host(0, 0, 0), m.host(2, 1, 1)]]);
        // With a big enough reliability edge, the far plan must win even
        // under the latency objective.
        let obj = LatencyObjective::equal_weights(&t);
        assert!(obj.measure(&far, 0.999) > obj.measure(&near, 0.2));
    }
}
