//! The 6-step reliable-deployment search (§3.3.1).
//!
//! 1. generate a random initial plan (optionally under placement
//!    heuristics);
//! 2. assess it;
//! 3. generate a neighbor (one-host move), discarding rule violations and
//!    symmetry-equivalent plans (network transformations);
//! 4. assess the neighbor;
//! 5. accept it if better, or with probability `exp(−Δ/t)` if worse, with
//!    the paper's log-ratio Δ (Eq 5) and budget-linear temperature (Eq 6);
//! 6. repeat until the desired score is met or the budget runs out.
//!
//! The search drives whatever [`Objective`] it is given — plain
//! reliability, or the holistic multi-objective measure (§3.3.3), in
//! which case Δ is computed on the measure exactly as §3.3.3 prescribes
//! ("reCloud uses this holistic measure to evolve neighboring deployment
//! plans and determine whether to accept them").

use crate::objective::Objective;
use crate::schedule::{
    acceptance_probability, BudgetClock, DeltaRule, SearchBudget, TemperatureSchedule,
};
use crate::transform::SymmetryChecker;
use recloud_apps::{ApplicationSpec, DeploymentPlan, PlacementRules, WorkloadMap};
use recloud_assess::Assessor;
use recloud_obs::{Counter, KindId};
use recloud_sampling::Rng;
use recloud_topology::ComponentId;
use std::sync::Arc;
use std::time::Duration;

/// Tunable knobs of the annealing search.
#[derive(Clone, Debug)]
pub struct SearchConfig {
    /// Search budget (`T_max` or an iteration count).
    pub budget: SearchBudget,
    /// Route-and-check rounds per assessment (paper default 10⁴).
    pub rounds: usize,
    /// Stop early once the best plan's *measure* reaches this value
    /// (`R_desired`; 1.0 = spend the whole budget, as in §4.1).
    pub desired: f64,
    /// Placement constraints; violating neighbors are discarded instantly
    /// (§3.3.3 "quickly discard any generated deployment plans that do not
    /// satisfy resource constraints").
    pub rules: PlacementRules,
    /// Δ formula for Eq 4 (paper: log-ratio).
    pub delta: DeltaRule,
    /// Temperature schedule (paper: budget-linear).
    pub schedule: TemperatureSchedule,
    /// Enable the Step 3 network-transformation check.
    pub use_symmetry: bool,
    /// Master seed: drives plan generation, acceptance coin-flips and the
    /// per-assessment sampling seeds.
    pub seed: u64,
    /// How many rejected neighbor candidates (rule violations or symmetry
    /// skips) to tolerate per iteration before accepting a candidate
    /// unchecked-by-symmetry anyway.
    pub max_neighbor_retries: usize,
    /// Start from this plan instead of a random one (Step 1). Used by
    /// incremental re-deployment, which anneals around the incumbent.
    pub initial_plan: Option<DeploymentPlan>,
    /// Assess every plan against the *same* sampled failure-state table
    /// (common random numbers). The table of §3.2.1 does not depend on
    /// the plan, so reusing it across candidates is both cheaper and —
    /// crucially — makes plan comparisons variance-free: a hill-climbing
    /// step on the shared table reflects a true reliability ordering
    /// instead of sampling noise. Disable to get fully independent
    /// estimates per plan (the noisier textbook setup).
    pub common_random_numbers: bool,
    /// Explicit seed for the shared CRN table; `None` derives it from
    /// `seed`. Parallel chains set the same override so every chain
    /// assesses against one table and their measures stay directly
    /// comparable at exchange boundaries.
    pub crn_seed: Option<u64>,
}

impl SearchConfig {
    /// Paper defaults: 30 s budget, 10⁴ rounds, `R_desired` = 1.0,
    /// no placement rules, log-ratio Δ, linear temperature, symmetry on.
    pub fn paper_default(seed: u64) -> Self {
        SearchConfig {
            budget: SearchBudget::WallClock(Duration::from_secs(30)),
            rounds: 10_000,
            desired: 1.0,
            rules: PlacementRules::none(),
            delta: DeltaRule::LogRatio,
            schedule: TemperatureSchedule::PaperLinear,
            use_symmetry: true,
            seed,
            max_neighbor_retries: 64,
            initial_plan: None,
            common_random_numbers: true,
            crn_seed: None,
        }
    }

    /// Deterministic variant for tests/benches: iteration budget.
    pub fn iterations(n: usize, rounds: usize, seed: u64) -> Self {
        SearchConfig { budget: SearchBudget::Iterations(n), rounds, ..Self::paper_default(seed) }
    }
}

/// Counters describing how a search went.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Plans actually assessed (including the initial plan).
    pub plans_assessed: usize,
    /// Neighbor candidates skipped as symmetry-equivalent (Step 3).
    pub symmetry_skips: usize,
    /// Neighbor candidates discarded by placement rules.
    pub rule_rejections: usize,
    /// Worse neighbors accepted by the annealing coin flip.
    pub worse_accepted: usize,
    /// Worse neighbors rejected.
    pub worse_rejected: usize,
}

/// One point of the search trajectory (for reliability-vs-time plots).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrajectoryPoint {
    /// Plans assessed when this best was found.
    pub iteration: usize,
    /// Wall-clock offset of the improvement.
    pub elapsed: Duration,
    /// Best measure so far.
    pub measure: f64,
    /// Reliability of the best plan so far.
    pub reliability: f64,
}

/// The result of a search.
#[derive(Clone, Debug)]
pub struct SearchOutcome {
    /// The best plan found (by measure).
    pub best_plan: DeploymentPlan,
    /// Its assessed reliability score.
    pub best_reliability: f64,
    /// Its measure under the search objective.
    pub best_measure: f64,
    /// 95% confidence-interval width of the best plan's reliability.
    pub best_ciw95: f64,
    /// True if `desired` was reached before the budget ran out. When
    /// false, "the cloud provider informs the application developer that
    /// her current reliability requirements cannot be fulfilled" (§2.2).
    pub satisfied: bool,
    /// Counters.
    pub stats: SearchStats,
    /// Every strict improvement of the best measure.
    pub trajectory: Vec<TrajectoryPoint>,
    /// Total search time.
    pub elapsed: Duration,
}

/// A plan together with its assessed figures — what a chain reports at
/// an exchange boundary and what it may be told to adopt in return.
#[derive(Clone, Debug)]
pub struct BestReport {
    /// The plan.
    pub plan: DeploymentPlan,
    /// Its measure under the search objective.
    pub measure: f64,
    /// Its assessed reliability score.
    pub reliability: f64,
    /// 95% confidence-interval width of the reliability estimate.
    pub ciw95: f64,
}

/// Hooks into a running search, invoked from inside the §3.3.1 loop.
/// [`Searcher::search`] runs with a no-op driver; parallel chains use a
/// driver that streams improvements out and rendezvouses with their
/// sibling chains at exchange boundaries.
pub trait SearchDriver {
    /// Called on every strict improvement of the best measure, including
    /// the initial plan's assessment, with the schedule's temperature at
    /// that moment.
    fn on_best(&mut self, _point: &TrajectoryPoint, _temperature: f64) {}

    /// Clock ticks between exchange boundaries; 0 means no boundaries.
    /// Must be constant for the lifetime of one search — every chain of
    /// a parallel population counts ticks identically, so a constant
    /// period is what keeps their rendezvous points aligned.
    fn boundary_every(&self) -> usize {
        0
    }

    /// Called whenever the clock crosses a boundary, with the chain's
    /// current best. May return a plan (with its assessed figures) to
    /// adopt; adoption replaces the *current* plan when better, and the
    /// best as well when it beats that too.
    fn at_boundary(&mut self, _best: &BestReport) -> Option<BestReport> {
        None
    }
}

/// The do-nothing driver behind the plain sequential search.
pub struct NoDriver;

impl SearchDriver for NoDriver {}

/// Cached handles into the process-wide [`recloud_obs::global()`]
/// registry plus pre-interned journal kinds. Registered once per
/// searcher so the per-iteration record calls stay lock-free.
///
/// Journal kinds and payloads (acceptance-rate and temperature
/// trajectory, per the observability contract):
/// * `anneal.best` — a new best plan: `v0` = iteration (plans
///   assessed), `f0` = best measure, `f1` = temperature.
/// * `anneal.accept_worse` / `anneal.reject_worse` — the Step 5 coin
///   flip on a worse neighbor: `v0` = plans assessed, `f0` =
///   acceptance probability `exp(−Δ/t)`, `f1` = temperature.
struct SearchInstruments {
    plans_assessed: Arc<Counter>,
    symmetry_skips: Arc<Counter>,
    rule_rejections: Arc<Counter>,
    worse_accepted: Arc<Counter>,
    worse_rejected: Arc<Counter>,
    improvements: Arc<Counter>,
    searches: Arc<Counter>,
    best_kind: KindId,
    accept_kind: KindId,
    reject_kind: KindId,
}

impl SearchInstruments {
    fn from_global() -> Self {
        let registry = recloud_obs::global();
        let journal = registry.journal();
        SearchInstruments {
            plans_assessed: registry.counter("search.plans_assessed_total"),
            symmetry_skips: registry.counter("search.symmetry_skips_total"),
            rule_rejections: registry.counter("search.rule_rejections_total"),
            worse_accepted: registry.counter("search.worse_accepted_total"),
            worse_rejected: registry.counter("search.worse_rejected_total"),
            improvements: registry.counter("search.improvements_total"),
            searches: registry.counter("search.searches_total"),
            best_kind: journal.kind_id("anneal.best"),
            accept_kind: journal.kind_id("anneal.accept_worse"),
            reject_kind: journal.kind_id("anneal.reject_worse"),
        }
    }
}

/// The annealing searcher. Owns the assessment engine and scratch; one
/// searcher can run many searches.
pub struct Searcher<'a> {
    assessor: &'a mut Assessor,
    symmetry: SymmetryChecker,
    pool: Vec<ComponentId>,
    obs: SearchInstruments,
}

impl<'a> Searcher<'a> {
    /// Builds a searcher over the assessor's topology and fault model.
    pub fn new(assessor: &'a mut Assessor) -> Self {
        let symmetry = SymmetryChecker::new(assessor.topology(), assessor.model());
        let pool = assessor.topology().hosts().to_vec();
        Searcher { assessor, symmetry, pool, obs: SearchInstruments::from_global() }
    }

    /// Restricts the candidate host pool (e.g. to a tenant's partition).
    ///
    /// # Panics
    /// Panics if the pool is empty.
    pub fn with_pool(mut self, pool: Vec<ComponentId>) -> Self {
        assert!(!pool.is_empty(), "host pool cannot be empty");
        self.pool = pool;
        self
    }

    /// Runs the §3.3.1 search for `spec` under `objective`.
    pub fn search(
        &mut self,
        spec: &ApplicationSpec,
        objective: &dyn Objective,
        config: &SearchConfig,
        workload: Option<&WorkloadMap>,
    ) -> SearchOutcome {
        self.search_driven(spec, objective, config, workload, &mut NoDriver)
    }

    /// The §3.3.1 search with a [`SearchDriver`] tapped into the loop —
    /// the substrate of both trajectory streaming and the parallel
    /// chains' best-plan exchange. With [`NoDriver`] this is exactly
    /// [`Searcher::search`].
    pub fn search_driven(
        &mut self,
        spec: &ApplicationSpec,
        objective: &dyn Objective,
        config: &SearchConfig,
        workload: Option<&WorkloadMap>,
        driver: &mut dyn SearchDriver,
    ) -> SearchOutcome {
        let mut rng = Rng::new(config.seed);
        let mut stats = SearchStats::default();
        let mut clock = BudgetClock::start(config.budget, config.schedule);

        // Step 1: initial plan (respecting rules, best-effort). An
        // explicit initial plan (incremental re-deployment) wins.
        let topology = self.assessor.topology().clone();
        let mut current = match &config.initial_plan {
            Some(p) => {
                assert!(
                    config.rules.check(p, &topology, workload),
                    "the provided initial plan violates the placement rules"
                );
                p.clone()
            }
            None => loop {
                let p = DeploymentPlan::random(spec, &self.pool, &mut rng);
                if config.rules.check(&p, &topology, workload) {
                    break p;
                }
                stats.rule_rejections += 1;
                self.obs.rule_rejections.inc();
                if stats.rule_rejections > 10_000 {
                    panic!("placement rules rejected 10k random plans; pool too constrained");
                }
            },
        };

        // Sampling seed policy: one shared table (CRN) or fresh draws.
        let crn_seed = config.crn_seed.unwrap_or(config.seed ^ 0xC0FF_EE00_D15E_A5E5);
        let next_seed = |rng: &mut Rng| {
            if config.common_random_numbers {
                crn_seed
            } else {
                rng.next_u64()
            }
        };

        // Step 2: assess it.
        let seed0 = next_seed(&mut rng);
        let a = self.assessor.assess(spec, &current, config.rounds, seed0);
        stats.plans_assessed += 1;
        self.obs.plans_assessed.inc();
        clock.tick();
        let mut cur_rel = a.estimate.score;
        let mut cur_measure = objective.measure(&current, cur_rel);
        let mut best_plan = current.clone();
        let mut best_rel = cur_rel;
        let mut best_measure = cur_measure;
        let mut best_ciw = a.estimate.ciw95();
        let mut trajectory = vec![TrajectoryPoint {
            iteration: 1,
            elapsed: clock.elapsed(),
            measure: best_measure,
            reliability: best_rel,
        }];
        self.obs.improvements.inc();
        recloud_obs::global().journal().record(
            self.obs.best_kind,
            1,
            0,
            best_measure,
            clock.temperature(),
        );
        driver.on_best(&trajectory[0], clock.temperature());

        // A saturated pool (every distinct host already carries an
        // instance) leaves no legal neighbor move: `neighbor` would
        // panic hunting for an unused host. The only reachable plan is
        // the initial one, so skip Steps 3-6 and return it as the
        // outcome instead of crashing mid-search.
        let distinct_hosts = {
            let mut hosts = self.pool.clone();
            hosts.sort_unstable();
            hosts.dedup();
            hosts.len()
        };
        let saturated = spec.total_instances() >= distinct_hosts;

        // Steps 3-6.
        while !saturated && !clock.exhausted() && best_measure < config.desired {
            // Step 3: neighbor generation with rule/symmetry filtering.
            let mut candidate = None;
            for _ in 0..config.max_neighbor_retries {
                let n = current.neighbor(&self.pool, &mut rng);
                if !config.rules.check(&n, &topology, workload) {
                    stats.rule_rejections += 1;
                    self.obs.rule_rejections.inc();
                    continue;
                }
                if config.use_symmetry {
                    // Identify the single moved instance.
                    if let Some((old, new)) = moved_pair(&current, &n) {
                        let others: Vec<ComponentId> =
                            current.all_hosts().filter(|&h| h != old).collect();
                        if self.symmetry.equivalent_move(&others, old, new) {
                            stats.symmetry_skips += 1;
                            self.obs.symmetry_skips.inc();
                            continue;
                        }
                    }
                }
                candidate = Some(n);
                break;
            }
            if let Some(neighbor) = candidate {
                // Step 4: assess the neighbor.
                let seed = next_seed(&mut rng);
                let a = self.assessor.assess(spec, &neighbor, config.rounds, seed);
                stats.plans_assessed += 1;
                self.obs.plans_assessed.inc();
                clock.tick();
                let n_rel = a.estimate.score;
                let n_measure = objective.measure(&neighbor, n_rel);

                // Step 5: accept or reject.
                let accept = if n_measure >= cur_measure {
                    true
                } else {
                    let delta = config.delta.delta(cur_measure, n_measure);
                    let t = clock.temperature();
                    let p = acceptance_probability(delta, t);
                    let coin = rng.next_f64() < p;
                    let journal = recloud_obs::global().journal();
                    if coin {
                        stats.worse_accepted += 1;
                        self.obs.worse_accepted.inc();
                        journal.record(self.obs.accept_kind, stats.plans_assessed as u64, 0, p, t);
                    } else {
                        stats.worse_rejected += 1;
                        self.obs.worse_rejected.inc();
                        journal.record(self.obs.reject_kind, stats.plans_assessed as u64, 0, p, t);
                    }
                    coin
                };
                if accept {
                    current = neighbor;
                    cur_rel = n_rel;
                    cur_measure = n_measure;
                    if cur_measure > best_measure {
                        best_measure = cur_measure;
                        best_rel = cur_rel;
                        best_plan = current.clone();
                        best_ciw = a.estimate.ciw95();
                        let point = TrajectoryPoint {
                            iteration: stats.plans_assessed,
                            elapsed: clock.elapsed(),
                            measure: best_measure,
                            reliability: best_rel,
                        };
                        trajectory.push(point);
                        self.obs.improvements.inc();
                        recloud_obs::global().journal().record(
                            self.obs.best_kind,
                            stats.plans_assessed as u64,
                            0,
                            best_measure,
                            clock.temperature(),
                        );
                        driver.on_best(&point, clock.temperature());
                    }
                }
            } else {
                // Everything nearby is equivalent or invalid; count the
                // attempt against the budget and try again from the same
                // current plan (after any boundary work below).
                clock.tick();
            }

            // Exchange boundary: every chain ticks its clock exactly once
            // per loop pass, so equal budgets cross the same boundaries —
            // the alignment the parallel rendezvous relies on.
            let every = driver.boundary_every();
            if every != 0 && clock.iterations() % every == 0 {
                let report = BestReport {
                    plan: best_plan.clone(),
                    measure: best_measure,
                    reliability: best_rel,
                    ciw95: best_ciw,
                };
                // Only a strictly better foreign plan is adopted — a
                // chain's own best echoed back is a no-op, which keeps a
                // single driven chain identical to the plain search.
                if let Some(adopt) = driver.at_boundary(&report) {
                    if adopt.measure > best_measure {
                        best_plan = adopt.plan.clone();
                        best_measure = adopt.measure;
                        best_rel = adopt.reliability;
                        best_ciw = adopt.ciw95;
                        current = adopt.plan;
                        // `cur_rel` deliberately stays stale: it is only
                        // ever read after Step 5 refreshes it from a
                        // fresh assessment.
                        cur_measure = adopt.measure;
                        let point = TrajectoryPoint {
                            iteration: stats.plans_assessed,
                            elapsed: clock.elapsed(),
                            measure: best_measure,
                            reliability: best_rel,
                        };
                        trajectory.push(point);
                        self.obs.improvements.inc();
                        recloud_obs::global().journal().record(
                            self.obs.best_kind,
                            stats.plans_assessed as u64,
                            0,
                            best_measure,
                            clock.temperature(),
                        );
                        driver.on_best(&point, clock.temperature());
                    }
                }
            }
        }
        self.obs.searches.inc();

        SearchOutcome {
            best_plan,
            best_reliability: best_rel,
            best_measure,
            best_ciw95: best_ciw,
            satisfied: best_measure >= config.desired,
            stats,
            trajectory,
            elapsed: clock.elapsed(),
        }
    }
}

impl<'a> Searcher<'a> {
    /// Multi-restart annealing: runs `restarts` independent searches
    /// (different seeds, shares of the budget) and returns the best
    /// outcome by measure. Restarts are the classic cure for annealing
    /// runs that freeze in a poor basin — at 30-second budgets the paper's
    /// single run explores a few hundred plans, and two or three restarts
    /// often dominate one longer run.
    ///
    /// Wall-clock budgets are divided evenly among restarts; iteration
    /// budgets are divided by the restart count (rounding up).
    ///
    /// # Panics
    /// Panics if `restarts` is zero.
    pub fn search_with_restarts(
        &mut self,
        spec: &ApplicationSpec,
        objective: &dyn Objective,
        config: &SearchConfig,
        workload: Option<&WorkloadMap>,
        restarts: usize,
    ) -> SearchOutcome {
        assert!(restarts >= 1, "need at least one restart");
        let per_restart_budget = match config.budget {
            SearchBudget::WallClock(t) => SearchBudget::WallClock(t / restarts as u32),
            SearchBudget::Iterations(n) => SearchBudget::Iterations(n.div_ceil(restarts)),
        };
        let mut best: Option<SearchOutcome> = None;
        for r in 0..restarts {
            let mut cfg = config.clone();
            cfg.budget = per_restart_budget;
            cfg.seed = restart_seed(config.seed, r);
            let out = self.search(spec, objective, &cfg, workload);
            let better = match &best {
                None => true,
                Some(b) => out.best_measure > b.best_measure,
            };
            if better {
                best = Some(out);
            }
        }
        best.expect("restarts >= 1")
    }
}

/// Seed of restart `r`: restart 0 keeps the caller's seed (so one
/// restart is exactly a plain search); later restarts draw
/// SplitMix64-derived streams — full-width avalanche, no overflow for
/// any `r` (the old `0x9E37_79B9 * r` multiply panicked in debug builds
/// for large `r` and its 32-bit constant spread seeds poorly).
fn restart_seed(master: u64, r: usize) -> u64 {
    match r {
        0 => master,
        r => recloud_sampling::derive_seed(master, r as u64),
    }
}

/// Finds the single (old, new) host pair by which two plans differ, if
/// they differ in exactly one instance slot.
fn moved_pair(a: &DeploymentPlan, b: &DeploymentPlan) -> Option<(ComponentId, ComponentId)> {
    let mut pair = None;
    for (ha, hb) in a.all_hosts().zip(b.all_hosts()) {
        if ha != hb {
            if pair.is_some() {
                return None;
            }
            pair = Some((ha, hb));
        }
    }
    pair
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::{HolisticObjective, ReliabilityObjective};
    use recloud_faults::FaultModel;
    use recloud_topology::FatTreeParams;

    fn engine(seed: u64) -> Assessor {
        let t = FatTreeParams::new(8).build();
        let model = FaultModel::paper_default(&t, seed);
        Assessor::new(&t, model)
    }

    #[test]
    fn search_runs_and_improves_over_initial() {
        let mut assessor = engine(1);
        let spec = ApplicationSpec::k_of_n(4, 5);
        let cfg = SearchConfig::iterations(40, 2_000, 7);
        let mut s = Searcher::new(&mut assessor);
        let out = s.search(&spec, &ReliabilityObjective, &cfg, None);
        assert_eq!(out.stats.plans_assessed, 40);
        assert!(!out.trajectory.is_empty());
        let first = out.trajectory.first().unwrap().measure;
        assert!(out.best_measure >= first, "search must never lose its best");
        assert!(out.best_reliability > 0.9, "4-of-5 on a healthy DC is very reliable");
        assert!(!out.satisfied, "R_desired=1.0 can never be satisfied");
    }

    /// Observability contract: a search reports its acceptance behavior
    /// and temperature trajectory through the global journal and
    /// counters. The registry is process-wide and other tests record
    /// concurrently, so assertions are delta/presence-based.
    #[test]
    fn search_reports_trajectory_through_the_global_journal() {
        let registry = recloud_obs::global();
        let before = registry.snapshot();
        let recorded_before = registry.journal().recorded();

        let mut assessor = engine(5);
        let spec = ApplicationSpec::k_of_n(4, 5);
        let cfg = SearchConfig::iterations(30, 1_000, 11);
        let out = Searcher::new(&mut assessor).search(&spec, &ReliabilityObjective, &cfg, None);

        let after = registry.snapshot();
        let delta =
            |name: &str| after.counter(name).unwrap_or(0) - before.counter(name).unwrap_or(0);
        assert!(delta("search.plans_assessed_total") >= out.stats.plans_assessed as u64);
        assert!(delta("search.improvements_total") >= out.trajectory.len() as u64);
        assert!(
            delta("search.worse_accepted_total") >= out.stats.worse_accepted as u64
                && delta("search.worse_rejected_total") >= out.stats.worse_rejected as u64,
            "acceptance-rate counters cover this search's coin flips"
        );
        assert!(delta("search.searches_total") >= 1);
        assert!(
            registry.journal().recorded() > recorded_before,
            "at least the initial anneal.best event lands in the journal"
        );
        // The newest events include this search's trajectory: anneal.*
        // kinds with a finite temperature payload.
        let anneal: Vec<_> = registry
            .journal()
            .tail(4096)
            .into_iter()
            .filter(|e| e.kind.starts_with("anneal."))
            .collect();
        assert!(!anneal.is_empty());
        assert!(anneal.iter().all(|e| e.f1.is_finite()), "f1 carries the temperature");
    }

    /// Regression: step-1 rule rejections must hit the global
    /// `search.rule_rejections_total` counter, not just `SearchStats` —
    /// the old code only incremented the counter in the step-3 loop, so
    /// initial-plan rejections silently undercounted. One iteration
    /// keeps step 3 out of the picture entirely.
    #[test]
    fn initial_plan_rule_rejections_hit_the_global_counter() {
        let registry = recloud_obs::global();
        let mut assessor = engine(7);
        let spec = ApplicationSpec::k_of_n(2, 4);
        let mut cfg = SearchConfig::iterations(1, 200, 21);
        cfg.rules = PlacementRules::distinct_pods();
        let before = registry.snapshot().counter("search.rule_rejections_total").unwrap_or(0);
        let out = Searcher::new(&mut assessor).search(&spec, &ReliabilityObjective, &cfg, None);
        let after = registry.snapshot().counter("search.rule_rejections_total").unwrap_or(0);
        assert!(
            out.stats.rule_rejections > 0,
            "seed must make step 1 reject at least one random plan (got {:?})",
            out.stats
        );
        assert_eq!(out.stats.plans_assessed, 1, "budget of 1 keeps step 3 out");
        assert!(
            after - before >= out.stats.rule_rejections as u64,
            "counter delta {} must cover the {} initial-plan rejections",
            after - before,
            out.stats.rule_rejections
        );
    }

    /// Regression: a fully-saturated pool (as many distinct hosts as
    /// instances) used to panic inside `DeploymentPlan::neighbor`
    /// ("no unused host available"). Now the search detects it up front
    /// and returns the only possible plan as the outcome.
    #[test]
    fn saturated_pool_returns_initial_plan_instead_of_panicking() {
        let mut assessor = engine(9);
        let pool = assessor.topology().hosts()[..3].to_vec();
        let spec = ApplicationSpec::k_of_n(2, 3);
        let cfg = SearchConfig::iterations(25, 500, 17);
        let mut s = Searcher::new(&mut assessor).with_pool(pool.clone());
        let out = s.search(&spec, &ReliabilityObjective, &cfg, None);
        assert_eq!(out.stats.plans_assessed, 1, "only the initial plan is reachable");
        let mut used: Vec<_> = out.best_plan.all_hosts().collect();
        used.sort_unstable();
        let mut expect = pool;
        expect.sort_unstable();
        assert_eq!(used, expect, "the plan must use every pooled host exactly once");
        assert!(out.best_reliability > 0.0);
        assert_eq!(out.trajectory.len(), 1);
    }

    #[test]
    fn deterministic_for_fixed_seed_and_iterations() {
        let spec = ApplicationSpec::k_of_n(2, 3);
        let cfg = SearchConfig::iterations(15, 1_000, 42);
        let mut a1 = engine(3);
        let out1 = Searcher::new(&mut a1).search(&spec, &ReliabilityObjective, &cfg, None);
        let mut a2 = engine(3);
        let out2 = Searcher::new(&mut a2).search(&spec, &ReliabilityObjective, &cfg, None);
        assert_eq!(out1.best_plan, out2.best_plan);
        assert_eq!(out1.best_reliability, out2.best_reliability);
        assert_eq!(out1.stats, out2.stats);
    }

    #[test]
    fn desired_score_stops_early() {
        let mut assessor = engine(1);
        let spec = ApplicationSpec::k_of_n(1, 3);
        let mut cfg = SearchConfig::iterations(50, 500, 9);
        cfg.desired = 0.5; // trivially reachable
        let mut s = Searcher::new(&mut assessor);
        let out = s.search(&spec, &ReliabilityObjective, &cfg, None);
        assert!(out.satisfied);
        assert!(out.stats.plans_assessed < 50, "must stop at the first plan");
    }

    #[test]
    fn placement_rules_are_respected() {
        let mut assessor = engine(2);
        let topology = assessor.topology().clone();
        let spec = ApplicationSpec::k_of_n(2, 4);
        let mut cfg = SearchConfig::iterations(10, 500, 5);
        cfg.rules = PlacementRules::distinct_racks();
        let mut s = Searcher::new(&mut assessor);
        let out = s.search(&spec, &ReliabilityObjective, &cfg, None);
        assert!(cfg.rules.check(&out.best_plan, &topology, None));
    }

    #[test]
    fn holistic_objective_steers_toward_idle_hosts() {
        let mut assessor = engine(4);
        let topology = assessor.topology().clone();
        let spec = ApplicationSpec::k_of_n(1, 3);
        // Make half the hosts very busy.
        let mut w = WorkloadMap::uniform(&topology, 0.05);
        for (i, &h) in topology.hosts().iter().enumerate() {
            if i % 2 == 0 {
                w.set(h, 0.95);
            }
        }
        let obj = HolisticObjective::equal_weights(w.clone());
        let cfg = SearchConfig::iterations(60, 500, 11);
        let mut s = Searcher::new(&mut assessor);
        let out = s.search(&spec, &obj, &cfg, Some(&w));
        let avg = w.average(out.best_plan.all_hosts());
        assert!(avg < 0.5, "search should avoid busy hosts, avg load {avg}");
    }

    #[test]
    fn symmetry_skips_occur_in_homogeneous_world() {
        // Uniform probabilities + single power supply: most moves are
        // symmetric, so the checker must fire.
        let t = FatTreeParams::new(8).power_supplies(1).build();
        let mut model = FaultModel::new(&t, &recloud_faults::ProbabilityConfig::Uniform(0.01), 0);
        model.attach_power_dependencies(&t);
        let mut assessor = Assessor::new(&t, model);
        let spec = ApplicationSpec::k_of_n(2, 3);
        let cfg = SearchConfig::iterations(25, 500, 3);
        let mut s = Searcher::new(&mut assessor);
        let out = s.search(&spec, &ReliabilityObjective, &cfg, None);
        assert!(
            out.stats.symmetry_skips > 0,
            "homogeneous world must produce symmetry skips: {:?}",
            out.stats
        );
    }

    #[test]
    fn trajectory_is_monotone_in_measure() {
        let mut assessor = engine(6);
        let spec = ApplicationSpec::k_of_n(4, 5);
        let cfg = SearchConfig::iterations(30, 1_000, 13);
        let mut s = Searcher::new(&mut assessor);
        let out = s.search(&spec, &ReliabilityObjective, &cfg, None);
        for w in out.trajectory.windows(2) {
            assert!(w[1].measure > w[0].measure);
            assert!(w[1].iteration >= w[0].iteration);
        }
    }

    #[test]
    fn moved_pair_detects_single_move() {
        let t = FatTreeParams::new(4).build();
        let spec = ApplicationSpec::k_of_n(1, 3);
        let mut rng = Rng::new(1);
        let p = DeploymentPlan::random(&spec, t.hosts(), &mut rng);
        let q = p.neighbor(t.hosts(), &mut rng);
        let (old, new) = moved_pair(&p, &q).expect("neighbor differs in one slot");
        assert!(p.all_hosts().any(|h| h == old));
        assert!(q.all_hosts().any(|h| h == new));
        assert!(moved_pair(&p, &p).is_none());
    }
}

#[cfg(test)]
mod restart_tests {
    use super::*;
    use crate::objective::ReliabilityObjective;
    use recloud_faults::FaultModel;
    use recloud_topology::FatTreeParams;

    #[test]
    fn restarts_return_the_best_of_the_batch() {
        let t = FatTreeParams::new(8).build();
        let model = FaultModel::paper_default(&t, 2);
        let spec = ApplicationSpec::k_of_n(4, 5);
        let mut assessor = Assessor::new(&t, model);
        let mut searcher = Searcher::new(&mut assessor);
        let config = SearchConfig::iterations(30, 800, 5);
        let multi = searcher.search_with_restarts(&spec, &ReliabilityObjective, &config, None, 3);
        // Each restart ran ~10 iterations; the returned outcome is the max.
        assert!(multi.stats.plans_assessed <= 10);
        assert!(multi.best_measure > 0.0);

        // Single restart must equal a plain search with the same budget.
        let mut assessor2 = Assessor::new(&t, FaultModel::paper_default(&t, 2));
        let mut searcher2 = Searcher::new(&mut assessor2);
        let single = searcher2.search_with_restarts(&spec, &ReliabilityObjective, &config, None, 1);
        let mut assessor3 = Assessor::new(&t, FaultModel::paper_default(&t, 2));
        let mut searcher3 = Searcher::new(&mut assessor3);
        let plain = searcher3.search(&spec, &ReliabilityObjective, &config, None);
        assert_eq!(single.best_plan, plain.best_plan);
    }

    /// Regression: restart seeds come from the shared SplitMix64 stream
    /// derivation. The old `0x9E37_79B9 * r` offset overflow-panicked in
    /// debug builds once `r` crossed `u64::MAX / 0x9E37_79B9` and its
    /// 32-bit constant clustered seeds; the derived streams must be
    /// well-defined and pairwise distinct even at extreme indices.
    #[test]
    fn restart_seeds_are_distinct_and_never_overflow() {
        let master = 0xDEAD_BEEF_CAFE_F00D_u64;
        let mut seeds: Vec<u64> = (0..1_000).map(|r| restart_seed(master, r)).collect();
        // Indices far past the old overflow threshold (~7.4e9).
        for r in [u64::MAX / 0x9E37_79B9 + 1, u64::MAX - 1, u64::MAX] {
            seeds.push(restart_seed(master, r as usize));
        }
        assert_eq!(restart_seed(master, 0), master, "one restart stays a plain search");
        let n = seeds.len();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), n, "restart seeds must be pairwise distinct");
    }

    #[test]
    #[should_panic(expected = "at least one restart")]
    fn zero_restarts_rejected() {
        let t = FatTreeParams::new(4).build();
        let model = FaultModel::paper_default(&t, 2);
        let spec = ApplicationSpec::k_of_n(1, 2);
        let mut assessor = Assessor::new(&t, model);
        let mut searcher = Searcher::new(&mut assessor);
        let config = SearchConfig::iterations(5, 100, 1);
        searcher.search_with_restarts(&spec, &ReliabilityObjective, &config, None, 0);
    }
}
