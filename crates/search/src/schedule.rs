//! Annealing schedules: the paper's settings and the classic ones they
//! replace (§3.3.2).
//!
//! Two knobs govern Step 5's acceptance probability
//! `Pr[accept] = exp(−Δ/t)` (Eq 4):
//!
//! * **Δ, the score difference.** Classic SA uses the absolute difference;
//!   the paper argues this "fits badly" — R = 0.999 vs 0.99 differ by only
//!   0.009 although the first is an order of magnitude more reliable — and
//!   amplifies it to Δ = |log((1−R_n)/(1−R_c))| (Eq 5).
//! * **t, the temperature.** The paper ties it to the remaining search
//!   budget, t = (T_max − T_elapsed)/T_max (Eq 6), so that exploration
//!   cools exactly when the deadline nears regardless of iteration speed.
//!   Classic geometric cooling (t = t₀·αⁱ) is kept for ablation.

use std::time::{Duration, Instant};

/// How to measure the difference Δ between two scores.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeltaRule {
    /// Eq 5: Δ = |log((1 − neighbor)/(1 − current))| — order-of-magnitude
    /// aware. Scores are clamped away from 1 to keep the log finite.
    LogRatio,
    /// Classic SA: Δ = |current − neighbor|.
    Absolute,
}

impl DeltaRule {
    /// Smallest distance-from-1.0 considered; a 10⁻¹² unreliability is far
    /// beyond what any finite sampling can resolve.
    const EPS: f64 = 1e-12;

    /// Computes Δ ≥ 0 for a worse neighbor (callers only consult Δ when
    /// `neighbor < current`; the formula is symmetric anyway).
    pub fn delta(self, current: f64, neighbor: f64) -> f64 {
        match self {
            DeltaRule::LogRatio => {
                let uc = (1.0 - current).max(Self::EPS);
                let un = (1.0 - neighbor).max(Self::EPS);
                (un / uc).log10().abs()
            }
            DeltaRule::Absolute => (current - neighbor).abs(),
        }
    }
}

/// How the search budget is expressed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SearchBudget {
    /// Stop after this much wall-clock time (the paper's `T_max`).
    WallClock(Duration),
    /// Stop after this many plan assessments — deterministic, used by
    /// tests and reproducible experiments.
    Iterations(usize),
}

/// Temperature schedule over the course of the search.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TemperatureSchedule {
    /// Eq 6: t = remaining budget fraction, linear from 1 to 0.
    PaperLinear,
    /// Classic geometric cooling: t = t₀ · αⁱ at iteration i.
    Geometric {
        /// Initial temperature t₀ (> 0).
        t0: f64,
        /// Cooling factor α ∈ (0, 1).
        alpha: f64,
    },
}

impl TemperatureSchedule {
    /// Classic setting used in the ablation: t₀ = 1, α = 0.95.
    pub fn classic() -> Self {
        TemperatureSchedule::Geometric { t0: 1.0, alpha: 0.95 }
    }
}

/// Tracks budget consumption and yields the current temperature.
#[derive(Clone, Debug)]
pub struct BudgetClock {
    budget: SearchBudget,
    schedule: TemperatureSchedule,
    started: Instant,
    iterations: usize,
}

impl BudgetClock {
    /// Starts the clock now.
    pub fn start(budget: SearchBudget, schedule: TemperatureSchedule) -> Self {
        if let TemperatureSchedule::Geometric { t0, alpha } = schedule {
            assert!(t0 > 0.0, "t0 must be positive");
            assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");
        }
        BudgetClock { budget, schedule, started: Instant::now(), iterations: 0 }
    }

    /// Records one completed plan assessment.
    pub fn tick(&mut self) {
        self.iterations += 1;
    }

    /// Plan assessments so far.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Elapsed wall clock.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Fraction of the budget remaining, in [0, 1].
    pub fn remaining_fraction(&self) -> f64 {
        match self.budget {
            SearchBudget::WallClock(t_max) => {
                let used = self.started.elapsed().as_secs_f64() / t_max.as_secs_f64().max(1e-9);
                (1.0 - used).clamp(0.0, 1.0)
            }
            SearchBudget::Iterations(n) => {
                (1.0 - self.iterations as f64 / n.max(1) as f64).clamp(0.0, 1.0)
            }
        }
    }

    /// True once the budget is spent.
    pub fn exhausted(&self) -> bool {
        self.remaining_fraction() <= 0.0
    }

    /// Current temperature under the configured schedule. Never negative;
    /// a zero temperature rejects every worse neighbor.
    pub fn temperature(&self) -> f64 {
        match self.schedule {
            TemperatureSchedule::PaperLinear => self.remaining_fraction(),
            TemperatureSchedule::Geometric { t0, alpha } => t0 * alpha.powi(self.iterations as i32),
        }
    }
}

/// Eq 4: acceptance probability for a worse neighbor at temperature `t`.
/// A non-positive temperature means "never accept worse".
pub fn acceptance_probability(delta: f64, t: f64) -> f64 {
    debug_assert!(delta >= 0.0);
    if t <= 0.0 {
        return 0.0;
    }
    (-delta / t).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_ratio_matches_paper_example() {
        // §3.3.2: R_c = 0.999, R_n = 0.99 -> Δ = log10(10) = 1, vs the
        // classic 0.009.
        let d = DeltaRule::LogRatio.delta(0.999, 0.99);
        assert!((d - 1.0).abs() < 1e-9, "d={d}");
        let d = DeltaRule::Absolute.delta(0.999, 0.99);
        assert!((d - 0.009).abs() < 1e-12);
    }

    #[test]
    fn log_ratio_is_finite_at_perfect_scores() {
        let d = DeltaRule::LogRatio.delta(1.0, 0.9);
        assert!(d.is_finite());
        let d = DeltaRule::LogRatio.delta(1.0, 1.0);
        assert_eq!(d, 0.0);
    }

    #[test]
    fn acceptance_probability_shape() {
        // Bigger Δ -> lower acceptance; lower t -> lower acceptance.
        let p1 = acceptance_probability(1.0, 1.0);
        let p2 = acceptance_probability(2.0, 1.0);
        let p3 = acceptance_probability(1.0, 0.5);
        assert!(p1 > p2);
        assert!(p1 > p3);
        assert!((p1 - (-1.0f64).exp()).abs() < 1e-12);
        assert_eq!(acceptance_probability(1.0, 0.0), 0.0);
        assert_eq!(acceptance_probability(0.0, 1.0), 1.0);
    }

    #[test]
    fn iteration_budget_clock() {
        let mut c =
            BudgetClock::start(SearchBudget::Iterations(4), TemperatureSchedule::PaperLinear);
        assert!((c.temperature() - 1.0).abs() < 1e-12);
        assert!(!c.exhausted());
        c.tick();
        c.tick();
        assert!((c.temperature() - 0.5).abs() < 1e-12);
        c.tick();
        c.tick();
        assert!(c.exhausted());
        assert_eq!(c.temperature(), 0.0);
    }

    #[test]
    fn geometric_schedule_decays() {
        let mut c =
            BudgetClock::start(SearchBudget::Iterations(100), TemperatureSchedule::classic());
        let t0 = c.temperature();
        for _ in 0..10 {
            c.tick();
        }
        let t10 = c.temperature();
        assert!((t0 - 1.0).abs() < 1e-12);
        assert!((t10 - 0.95f64.powi(10)).abs() < 1e-12);
    }

    #[test]
    fn wall_clock_budget_counts_down() {
        let c = BudgetClock::start(
            SearchBudget::WallClock(Duration::from_secs(3600)),
            TemperatureSchedule::PaperLinear,
        );
        let f = c.remaining_fraction();
        assert!(f > 0.999 && f <= 1.0);
        assert!(!c.exhausted());
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn bad_alpha_rejected() {
        BudgetClock::start(
            SearchBudget::Iterations(1),
            TemperatureSchedule::Geometric { t0: 1.0, alpha: 1.5 },
        );
    }
}
