//! The §4.2.2 baselines.
//!
//! **Common practice** ("learned from our cloud operator contacts"):
//! deploy application instances onto the least-loaded hosts, each host in
//! a different rack. It has no notion of shared power or other hidden
//! dependencies.
//!
//! **Enhanced common practice**: "run the vanilla common practice 5 times
//! to generate the top-5 non-repeating deployment plans and then pick the
//! plan with the most diversified power supplies." We realize the
//! "non-repeating" runs by letting run *i* start from the *i*-th position
//! of the load-sorted host list (runs would otherwise be identical, since
//! vanilla CP is deterministic given the workload); the five plans are
//! therefore the five cheapest rack-diverse plans by load order. Power
//! diversity of a plan is the number of distinct supplies feeding its
//! hosts' groups; ties break toward lower average load.

use recloud_apps::{ApplicationSpec, DeploymentPlan, WorkloadMap};
use recloud_topology::{ComponentId, Topology};
use std::collections::HashSet;

/// Vanilla common practice: least-loaded hosts, one per rack, assigned to
/// components in spec order. `skip` offsets the start position in the
/// load-sorted list (0 = the classic plan).
///
/// # Panics
/// Panics if the topology has too few racks for the requested instances.
pub fn common_practice(
    topology: &Topology,
    workload: &WorkloadMap,
    spec: &ApplicationSpec,
    skip: usize,
) -> DeploymentPlan {
    let by_load = workload.hosts_by_load(topology);
    let total = spec.total_instances();
    let mut used_racks: HashSet<ComponentId> = HashSet::new();
    let mut chosen: Vec<ComponentId> = Vec::with_capacity(total);
    for &h in by_load.iter().skip(skip).chain(by_load.iter().take(skip)) {
        if chosen.len() == total {
            break;
        }
        let rack = topology.rack_of(h);
        if used_racks.insert(rack) {
            chosen.push(h);
        }
    }
    assert!(
        chosen.len() == total,
        "topology has fewer racks ({}) than requested instances ({total})",
        used_racks.len()
    );
    let mut it = chosen.into_iter();
    let assignments = spec
        .components()
        .iter()
        .map(|c| (0..c.instances).map(|_| it.next().expect("sized above")).collect())
        .collect();
    DeploymentPlan::new(spec, assignments)
}

/// Number of distinct power supplies feeding a plan's hosts.
pub fn power_diversity(topology: &Topology, plan: &DeploymentPlan) -> usize {
    plan.all_hosts().filter_map(|h| topology.power_of(h)).collect::<HashSet<_>>().len()
}

/// Enhanced common practice (§4.2.2): top-5 non-repeating CP plans, pick
/// the most power-diverse (ties: lowest average load).
pub fn enhanced_common_practice(
    topology: &Topology,
    workload: &WorkloadMap,
    spec: &ApplicationSpec,
) -> DeploymentPlan {
    let mut best: Option<(usize, f64, DeploymentPlan)> = None;
    let mut seen: HashSet<Vec<ComponentId>> = HashSet::new();
    let mut skip = 0usize;
    let mut produced = 0usize;
    while produced < 5 && skip < topology.num_hosts() {
        let plan = common_practice(topology, workload, spec, skip);
        skip += 1;
        let mut key: Vec<ComponentId> = plan.all_hosts().collect();
        key.sort_unstable();
        if !seen.insert(key) {
            continue; // repeated plan; try the next offset
        }
        produced += 1;
        let div = power_diversity(topology, &plan);
        let load = workload.average(plan.all_hosts());
        let better = match &best {
            None => true,
            Some((bd, bl, _)) => div > *bd || (div == *bd && load < *bl),
        };
        if better {
            best = Some((div, load, plan));
        }
    }
    best.expect("at least one CP plan exists").2
}

#[cfg(test)]
mod tests {
    use super::*;
    use recloud_topology::FatTreeParams;

    fn setup() -> (Topology, WorkloadMap, ApplicationSpec) {
        let t = FatTreeParams::new(8).build();
        let w = WorkloadMap::paper_default(&t, 21);
        (t, w, ApplicationSpec::k_of_n(4, 5))
    }

    #[test]
    fn cp_picks_distinct_racks_and_low_load() {
        let (t, w, spec) = setup();
        let plan = common_practice(&t, &w, &spec, 0);
        let racks: HashSet<_> = plan.all_hosts().map(|h| t.rack_of(h)).collect();
        assert_eq!(racks.len(), 5, "one host per rack");
        // Its average load must be no worse than a random plan's (strongly
        // so: it picks from the global minimum).
        let cp_load = w.average(plan.all_hosts());
        let overall: f64 = t.hosts().iter().map(|&h| w.get(h)).sum::<f64>() / t.num_hosts() as f64;
        assert!(cp_load < overall, "CP load {cp_load} vs average {overall}");
    }

    #[test]
    fn cp_skip_rotates_choices() {
        let (t, w, spec) = setup();
        let p0 = common_practice(&t, &w, &spec, 0);
        let p1 = common_practice(&t, &w, &spec, 1);
        assert_ne!(p0, p1);
    }

    #[test]
    fn enhanced_cp_maximizes_power_diversity_among_candidates() {
        let (t, w, spec) = setup();
        let enhanced = enhanced_common_practice(&t, &w, &spec);
        let div_e = power_diversity(&t, &enhanced);
        // The enhanced pick dominates each of the five vanilla candidates.
        for skip in 0..5 {
            let cand = common_practice(&t, &w, &spec, skip);
            assert!(div_e >= power_diversity(&t, &cand));
        }
    }

    #[test]
    fn multi_component_specs_are_supported() {
        let (t, w, _) = setup();
        let spec = ApplicationSpec::layered(&[(1, 2), (2, 3)]);
        let plan = common_practice(&t, &w, &spec, 0);
        assert_eq!(plan.hosts_of(0).len(), 2);
        assert_eq!(plan.hosts_of(1).len(), 3);
    }

    #[test]
    #[should_panic(expected = "fewer racks")]
    fn too_many_instances_for_racks_rejected() {
        let t = FatTreeParams::new(4).build(); // 6 racks
        let w = WorkloadMap::uniform(&t, 0.2);
        let spec = ApplicationSpec::k_of_n(1, 7);
        common_practice(&t, &w, &spec, 0);
    }
}
