//! Population-based parallel annealing.
//!
//! N annealing chains run concurrently over the
//! [`recloud_sampling::sync`] worker substrate. Each chain is a full
//! §3.3.1 search with its own assessment engine (the symmetry check of
//! Step 3 prunes per-candidate cost inside every chain independently)
//! and a SplitMix64-derived seed stream; every chain assesses against
//! the *same* CRN failure-state table, so measures are directly
//! comparable across the population.
//!
//! At fixed points of the temperature schedule — every
//! [`ParallelSearchConfig::exchange_every`] clock ticks — the chains
//! rendezvous through a coordinator and exchange their best plans: each
//! chain reports its best, learns the population-wide best, and adopts
//! it as its current plan when strictly better than its own. The
//! rendezvous is a deterministic barrier: which plans meet at a boundary
//! depends only on (seed, chains, iterations), never on thread
//! scheduling, so a parallel search with an iteration budget is exactly
//! reproducible.
//!
//! A single chain never receives a foreign plan, which makes
//! `chains = 1` bit-identical to the sequential [`Searcher::search`]
//! with the same configuration — the identity the tests pin.

use crate::annealing::{
    BestReport, SearchConfig, SearchDriver, SearchOutcome, SearchStats, Searcher, TrajectoryPoint,
};
use crate::objective::Objective;
use recloud_apps::{ApplicationSpec, WorkloadMap};
use recloud_assess::{Assessor, SamplerKind};
use recloud_faults::FaultModel;
use recloud_sampling::derive_seed;
use recloud_sampling::sync::{channel, scoped_workers, Receiver, Sender};
use recloud_topology::Topology;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Knobs of the parallel population search.
#[derive(Clone, Debug)]
pub struct ParallelSearchConfig {
    /// Number of concurrent annealing chains (≥ 1). Every chain runs the
    /// full `base.budget`, so the population assesses roughly
    /// `chains ×` the plans of a sequential search in the same wall
    /// time.
    pub chains: usize,
    /// Clock ticks between best-plan exchanges (temperature-schedule
    /// boundaries); 0 disables exchange entirely and the chains run as
    /// independent restarts.
    pub exchange_every: usize,
    /// The per-chain search configuration. Chain 0 uses `base.seed`
    /// verbatim; chain `c > 0` anneals under `derive_seed(base.seed, c)`.
    /// All chains share one CRN table derived from `base.seed`.
    pub base: SearchConfig,
}

impl ParallelSearchConfig {
    /// Ticks between exchanges unless the caller overrides it.
    pub const DEFAULT_EXCHANGE_EVERY: usize = 50;

    /// A population of `chains` over the given per-chain configuration,
    /// exchanging every [`Self::DEFAULT_EXCHANGE_EVERY`] ticks.
    pub fn new(chains: usize, base: SearchConfig) -> Self {
        ParallelSearchConfig { chains, exchange_every: Self::DEFAULT_EXCHANGE_EVERY, base }
    }
}

/// One trajectory event from one chain — what streams out of a running
/// parallel search (and onto the wire as a `SearchEvent` frame).
#[derive(Clone, Copy, Debug)]
pub struct ChainEvent {
    /// Which chain improved.
    pub chain: usize,
    /// Plans the chain had assessed when the best improved.
    pub iteration: usize,
    /// Wall-clock offset of the improvement within its chain.
    pub elapsed: Duration,
    /// The new best measure.
    pub measure: f64,
    /// Reliability of the new best plan.
    pub reliability: f64,
    /// Temperature of the chain's schedule at that moment.
    pub temperature: f64,
}

/// The merged result of a parallel search.
#[derive(Clone, Debug)]
pub struct ParallelOutcome {
    /// The winning chain's full outcome (ties break to the lowest chain
    /// index, so the winner is deterministic).
    pub best: SearchOutcome,
    /// Index of the winning chain.
    pub winner: usize,
    /// Stats summed across every chain.
    pub combined: SearchStats,
    /// Per-chain stats, indexed by chain.
    pub per_chain: Vec<SearchStats>,
    /// Wall clock of the whole population, rendezvous included.
    pub elapsed: Duration,
}

/// Chain → coordinator traffic.
enum ToCoord {
    /// The chain reached an exchange boundary and waits for the
    /// population best.
    Boundary {
        /// Reporting chain.
        chain: usize,
        /// Its best so far.
        best: BestReport,
    },
    /// The chain finished (budget spent, desired score reached, or its
    /// thread unwound) and will never rendezvous again.
    Done {
        /// Finished chain.
        chain: usize,
    },
}

/// Guarantees the coordinator hears `Done` even if the chain panics —
/// otherwise the sibling chains would block at their next boundary
/// forever instead of joining and propagating the panic.
struct DoneGuard {
    chain: usize,
    tx: Sender<ToCoord>,
}

impl Drop for DoneGuard {
    fn drop(&mut self) {
        let _ = self.tx.send(ToCoord::Done { chain: self.chain });
    }
}

/// The per-chain [`SearchDriver`]: streams improvements to the caller's
/// event sink and rendezvouses with the population at boundaries.
struct ChainDriver<'a> {
    chain: usize,
    exchange_every: usize,
    to_coord: Sender<ToCoord>,
    from_coord: Receiver<BestReport>,
    on_event: Option<&'a (dyn Fn(ChainEvent) + Sync)>,
}

impl SearchDriver for ChainDriver<'_> {
    fn on_best(&mut self, point: &TrajectoryPoint, temperature: f64) {
        if let Some(sink) = self.on_event {
            sink(ChainEvent {
                chain: self.chain,
                iteration: point.iteration,
                elapsed: point.elapsed,
                measure: point.measure,
                reliability: point.reliability,
                temperature,
            });
        }
    }

    fn boundary_every(&self) -> usize {
        self.exchange_every
    }

    fn at_boundary(&mut self, best: &BestReport) -> Option<BestReport> {
        // The coordinator always answers a boundary report; a recv error
        // means it died with the process shutting down — stop exchanging
        // and let the chain finish on its own.
        self.to_coord.send(ToCoord::Boundary { chain: self.chain, best: best.clone() }).ok()?;
        self.from_coord.recv().ok()
    }
}

/// The population searcher: builds one assessment engine per chain from
/// a shared topology and fault model, runs the chains to completion and
/// merges their outcomes.
pub struct ParallelSearcher<'a> {
    topology: &'a Topology,
    model: FaultModel,
    kind: SamplerKind,
}

impl<'a> ParallelSearcher<'a> {
    /// A parallel searcher over reCloud's extended dagger sampler.
    pub fn new(topology: &'a Topology, model: FaultModel) -> Self {
        Self::with_sampler(topology, model, SamplerKind::ExtendedDagger)
    }

    /// Same, with an explicit sampler kind for every chain's engine.
    pub fn with_sampler(topology: &'a Topology, model: FaultModel, kind: SamplerKind) -> Self {
        ParallelSearcher { topology, model, kind }
    }

    /// Runs the population search. `on_event` (when given) observes every
    /// chain's best-plan improvements as they happen; events from
    /// different chains arrive in scheduling order, but the final outcome
    /// is deterministic for iteration budgets.
    ///
    /// # Panics
    /// Panics if `config.chains` is zero.
    pub fn search(
        &self,
        spec: &ApplicationSpec,
        objective: &(dyn Objective + Sync),
        config: &ParallelSearchConfig,
        workload: Option<&WorkloadMap>,
        on_event: Option<&(dyn Fn(ChainEvent) + Sync)>,
    ) -> ParallelOutcome {
        let chains = config.chains;
        assert!(chains >= 1, "need at least one chain");
        let started = Instant::now();

        // One shared CRN table for the whole population: chain measures
        // must be comparable at exchange boundaries.
        let crn_seed = config.base.crn_seed.unwrap_or(config.base.seed ^ 0xC0FF_EE00_D15E_A5E5);

        let (to_coord_tx, to_coord_rx) = channel::<ToCoord>();
        let replies: Vec<(Sender<BestReport>, Receiver<BestReport>)> =
            (0..chains).map(|_| channel()).collect();
        let outcomes: Vec<Mutex<Option<SearchOutcome>>> =
            (0..chains).map(|_| Mutex::new(None)).collect();

        // Worker 0 coordinates; workers 1..=chains anneal.
        scoped_workers(chains + 1, |worker| {
            if worker == 0 {
                coordinate(chains, &to_coord_rx, &replies);
            } else {
                let chain = worker - 1;
                let _done = DoneGuard { chain, tx: to_coord_tx.clone() };
                let mut cfg = config.base.clone();
                cfg.seed = chain_seed(config.base.seed, chain);
                cfg.crn_seed = Some(crn_seed);
                let mut driver = ChainDriver {
                    chain,
                    exchange_every: config.exchange_every,
                    to_coord: to_coord_tx.clone(),
                    from_coord: replies[chain].1.clone(),
                    on_event,
                };
                let mut assessor =
                    Assessor::with_sampler(self.topology, self.model.clone(), self.kind);
                let out = Searcher::new(&mut assessor).search_driven(
                    spec,
                    objective,
                    &cfg,
                    workload,
                    &mut driver,
                );
                *outcomes[chain].lock().unwrap() = Some(out);
            }
        });

        let per: Vec<SearchOutcome> = outcomes
            .into_iter()
            .map(|m| m.into_inner().unwrap().expect("every chain stores its outcome"))
            .collect();
        let per_chain: Vec<SearchStats> = per.iter().map(|o| o.stats).collect();
        let combined = per_chain.iter().fold(SearchStats::default(), |mut acc, s| {
            acc.plans_assessed += s.plans_assessed;
            acc.symmetry_skips += s.symmetry_skips;
            acc.rule_rejections += s.rule_rejections;
            acc.worse_accepted += s.worse_accepted;
            acc.worse_rejected += s.worse_rejected;
            acc
        });
        // Strict > with ascending index: ties break to the lowest chain.
        let winner = per.iter().enumerate().fold(0usize, |w, (i, o)| {
            if o.best_measure > per[w].best_measure {
                i
            } else {
                w
            }
        });
        let best = per.into_iter().nth(winner).expect("winner index in range");
        ParallelOutcome { best, winner, combined, per_chain, elapsed: started.elapsed() }
    }
}

/// Seed of chain `c`: chain 0 keeps the master seed (so one chain is
/// exactly the sequential search); later chains draw SplitMix64 streams.
fn chain_seed(master: u64, chain: usize) -> u64 {
    match chain {
        0 => master,
        c => derive_seed(master, c as u64),
    }
}

/// The exchange coordinator: waits until every still-active chain has
/// reported the current boundary (chains that finish instead drop out of
/// the rendezvous), folds the reports into the population best, and
/// answers every reporter. Replies depend only on the reported plans —
/// never on arrival order — which is what makes the exchange
/// deterministic.
fn coordinate(
    chains: usize,
    rx: &Receiver<ToCoord>,
    replies: &[(Sender<BestReport>, Receiver<BestReport>)],
) {
    let mut active = vec![true; chains];
    let mut pending: Vec<Option<BestReport>> = (0..chains).map(|_| None).collect();
    let mut global: Option<BestReport> = None;
    while active.iter().any(|&a| a) {
        // Gather: one message per active chain without a pending report.
        while active.iter().zip(&pending).any(|(&a, p)| a && p.is_none()) {
            match rx.recv() {
                Ok(ToCoord::Boundary { chain, best }) => pending[chain] = Some(best),
                Ok(ToCoord::Done { chain }) => {
                    active[chain] = false;
                    pending[chain] = None;
                }
                // Every chain sender dropped: nothing more will arrive.
                Err(_) => return,
            }
        }
        // Fold in chain order with strict improvement: deterministic.
        for report in pending.iter().flatten() {
            if global.as_ref().is_none_or(|g| report.measure > g.measure) {
                global = Some(report.clone());
            }
        }
        // Answer every reporter (a dead chain's receiver is gone; that
        // loss is fine — it already sent Done or is unwinding).
        for (chain, slot) in pending.iter_mut().enumerate() {
            if slot.take().is_some() {
                let best = global.clone().expect("at least this chain reported");
                let _ = replies[chain].0.send(best);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::ReliabilityObjective;
    use recloud_apps::DeploymentPlan;
    use recloud_assess::exact_reliability;
    use recloud_faults::{FaultModel, ProbabilityConfig};
    use recloud_topology::FatTreeParams;
    use std::sync::Mutex as StdMutex;

    fn env(seed: u64) -> (Topology, FaultModel) {
        let t = FatTreeParams::new(8).build();
        let model = FaultModel::paper_default(&t, seed);
        (t, model)
    }

    fn points_equal(a: &[TrajectoryPoint], b: &[TrajectoryPoint]) -> bool {
        // `elapsed` is wall clock and never reproducible; compare the
        // deterministic fields.
        a.len() == b.len()
            && a.iter().zip(b).all(|(x, y)| {
                x.iteration == y.iteration
                    && x.measure == y.measure
                    && x.reliability == y.reliability
            })
    }

    /// One chain is the sequential search: same seed, same CRN table, no
    /// foreign plans to adopt — the outcome must match plan-for-plan.
    #[test]
    fn single_chain_equals_sequential_search() {
        let (t, model) = env(3);
        let spec = ApplicationSpec::k_of_n(4, 5);
        let base = SearchConfig::iterations(40, 1_500, 77);

        let mut assessor = Assessor::new(&t, model.clone());
        let seq = Searcher::new(&mut assessor).search(&spec, &ReliabilityObjective, &base, None);

        let par = ParallelSearcher::new(&t, model).search(
            &spec,
            &ReliabilityObjective,
            &ParallelSearchConfig::new(1, base),
            None,
            None,
        );
        assert_eq!(par.winner, 0);
        assert_eq!(par.best.best_plan, seq.best_plan);
        assert_eq!(par.best.best_measure, seq.best_measure);
        assert_eq!(par.best.best_reliability, seq.best_reliability);
        assert_eq!(par.best.best_ciw95, seq.best_ciw95);
        assert_eq!(par.best.stats, seq.stats);
        assert_eq!(par.combined, seq.stats);
        assert!(points_equal(&par.best.trajectory, &seq.trajectory));
    }

    /// A multi-chain population with an iteration budget is exactly
    /// reproducible: scheduling may interleave the chains any way it
    /// likes, but the rendezvous protocol makes the result a pure
    /// function of (seed, chains, iterations).
    #[test]
    fn multi_chain_runs_are_deterministic() {
        let (t, model) = env(5);
        let spec = ApplicationSpec::k_of_n(4, 5);
        let mut cfg = ParallelSearchConfig::new(3, SearchConfig::iterations(36, 1_000, 13));
        cfg.exchange_every = 9;

        let searcher = ParallelSearcher::new(&t, model);
        let a = searcher.search(&spec, &ReliabilityObjective, &cfg, None, None);
        let b = searcher.search(&spec, &ReliabilityObjective, &cfg, None, None);
        assert_eq!(a.winner, b.winner);
        assert_eq!(a.best.best_plan, b.best.best_plan);
        assert_eq!(a.best.best_measure, b.best.best_measure);
        assert_eq!(a.per_chain, b.per_chain);
        assert_eq!(a.combined, b.combined);
        // Every chain spends its full budget.
        assert_eq!(a.combined.plans_assessed, 3 * 36);
        assert_eq!(a.per_chain.len(), 3);
    }

    /// Chain events stream out while the population runs: every chain
    /// reports its improvements, measures are monotone per chain, and
    /// the final frame agrees with the returned outcome.
    #[test]
    fn events_stream_improvements_per_chain() {
        let (t, model) = env(7);
        let spec = ApplicationSpec::k_of_n(4, 5);
        let mut cfg = ParallelSearchConfig::new(2, SearchConfig::iterations(24, 800, 19));
        cfg.exchange_every = 8;
        let events: StdMutex<Vec<ChainEvent>> = StdMutex::new(Vec::new());
        let sink = |e: ChainEvent| events.lock().unwrap().push(e);
        let out = ParallelSearcher::new(&t, model).search(
            &spec,
            &ReliabilityObjective,
            &cfg,
            None,
            Some(&sink),
        );
        let events = events.into_inner().unwrap();
        assert!(!events.is_empty());
        for chain in 0..2 {
            let chain_events: Vec<_> = events.iter().filter(|e| e.chain == chain).collect();
            assert!(!chain_events.is_empty(), "chain {chain} must report its initial best");
            for w in chain_events.windows(2) {
                assert!(w[1].measure > w[0].measure, "per-chain bests are strictly improving");
            }
            assert!(chain_events.iter().all(|e| e.temperature.is_finite()));
        }
        let top = events.iter().map(|e| e.measure).fold(f64::MIN, f64::max);
        assert_eq!(top, out.best.best_measure, "the last improvement is the returned best");
    }

    /// The exact-baseline guarantee: on a small fat-tree whose optimum
    /// is provable by exhaustive enumeration over the exact ground
    /// truth, the parallel searcher must land on a provably optimal
    /// placement.
    #[test]
    fn population_recovers_the_provably_optimal_placement() {
        // Only hosts fail: two excellent hosts (p = 0.01) in different
        // pods, the rest poor (p = 0.25). 16 fallible events keep the
        // exact enumeration tractable.
        let t = FatTreeParams::new(4).build();
        let meta = *t.fat_tree().unwrap();
        let mut model = FaultModel::new(&t, &ProbabilityConfig::Uniform(0.0), 0);
        for &h in t.hosts() {
            model.set_prob(h, 0.25);
        }
        let good = [meta.host(0, 0, 0), meta.host(2, 1, 1)];
        for &h in &good {
            model.set_prob(h, 0.01);
        }
        let spec = ApplicationSpec::k_of_n(1, 2);

        // Provable optimum: the best exact reliability over every
        // unordered host pair.
        let hosts = t.hosts();
        let mut optimum = f64::MIN;
        for i in 0..hosts.len() {
            for j in i + 1..hosts.len() {
                let plan = DeploymentPlan::new(&spec, vec![vec![hosts[i], hosts[j]]]);
                optimum = optimum.max(exact_reliability(&t, &model, &spec, &plan));
            }
        }

        let mut cfg = ParallelSearchConfig::new(3, SearchConfig::iterations(60, 4_000, 23));
        cfg.exchange_every = 15;
        let out = ParallelSearcher::new(&t, model.clone()).search(
            &spec,
            &ReliabilityObjective,
            &cfg,
            None,
            None,
        );
        let found = exact_reliability(&t, &model, &spec, &out.best.best_plan);
        assert!(
            (found - optimum).abs() < 1e-12,
            "search found exact R = {found}, provable optimum is {optimum} (plan {})",
            out.best.best_plan
        );
        let mut picked: Vec<_> = out.best.best_plan.all_hosts().collect();
        picked.sort_unstable();
        let mut expect = good.to_vec();
        expect.sort_unstable();
        assert_eq!(picked, expect, "the optimum is the unique pair of excellent hosts");
    }

    #[test]
    #[should_panic(expected = "at least one chain")]
    fn zero_chains_rejected() {
        let (t, model) = env(1);
        let spec = ApplicationSpec::k_of_n(1, 2);
        ParallelSearcher::new(&t, model).search(
            &spec,
            &ReliabilityObjective,
            &ParallelSearchConfig::new(0, SearchConfig::iterations(5, 100, 1)),
            None,
            None,
        );
    }

    /// Exchange disabled (`exchange_every = 0`) degrades to independent
    /// restarts, still deterministic and still merged.
    #[test]
    fn disabled_exchange_runs_chains_independently() {
        let (t, model) = env(9);
        let spec = ApplicationSpec::k_of_n(2, 3);
        let mut cfg = ParallelSearchConfig::new(2, SearchConfig::iterations(12, 500, 31));
        cfg.exchange_every = 0;
        let searcher = ParallelSearcher::new(&t, model);
        let a = searcher.search(&spec, &ReliabilityObjective, &cfg, None, None);
        let b = searcher.search(&spec, &ReliabilityObjective, &cfg, None, None);
        assert_eq!(a.best.best_plan, b.best.best_plan);
        assert_eq!(a.combined.plans_assessed, 2 * 12);
    }
}
