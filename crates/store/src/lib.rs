//! Append-only, crash-safe spill log for `fingerprint → assessment`
//! entries — the durable half of the server's result cache.
//!
//! # On-disk format
//!
//! A store is a directory of segment files named `seg-%016x.log`,
//! ordered by segment id. Each segment starts with a 5-byte header and
//! is followed by length-prefixed records, all encoded with the
//! project's own wire codec ([`recloud::wire`], little-endian):
//!
//! ```text
//! segment  := magic:u32 (0x5243_534C) version:u8 (1) record*
//! record   := len:u32 body checksum:u64      (len = |body| + 8)
//! body     := op:u8 key_lo:u64 key_hi:u64 payload?
//! payload  := score:f64 variance:f64 rounds:u64 successes:u64   (op = 1, Put)
//!             (absent for op = 2, Evict — a tombstone)
//! checksum := FNV-1a-64 over body
//! ```
//!
//! A `Put` record is 61 bytes framed, an `Evict` tombstone 29.
//!
//! # Crash safety
//!
//! The log is recovered, never validated: [`Store::open`] scans the
//! segments in id order and replays every record up to — exactly — the
//! longest valid prefix. The first torn, truncated, or
//! checksum-corrupt record ends the log: that segment is truncated to
//! the bytes before it and every later segment is deleted. Recovery
//! never fails on corrupt data and never panics; a store that lost its
//! tail simply remembers fewer entries.
//!
//! Replay semantics are last-write-wins: a later `Put` for the same
//! key supersedes an earlier one, an `Evict` drops the key. That makes
//! [compaction](Store::compact) trivially crash-safe — the compacted
//! segment gets the *next* segment id, so if a crash lands between the
//! rename and the old-segment deletes, replaying old-then-compacted
//! reproduces the same final state.
//!
//! # Rotation and compaction
//!
//! Appends go to the highest-id (active) segment; when a record would
//! push it past [`StoreConfig::segment_max_bytes`] a fresh segment is
//! started. [`Store::compact`] folds the whole log to its live set
//! (dropping superseded `Put`s and everything evicted), writes the
//! survivors to a single new segment via a `.tmp` + rename, and
//! deletes the old files.
//!
//! Compaction is also *size-triggered*: the store tracks its live key
//! set (`Put` inserts, `Evict` removes — exact, since records have
//! fixed sizes) and [`Store::append`] runs a compaction automatically
//! once the log holds at least [`StoreConfig::compact_min_bytes`] and
//! the live fraction drops below [`StoreConfig::compact_live_ratio`].
//! [`Store::compactions`] counts the passes for the server's
//! `store.compactions_total` counter.

#![warn(missing_docs)]

use std::collections::{HashMap, HashSet};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use recloud::wire::{ByteReader, ByteWriter, Bytes};

/// Magic value opening every segment file (`"RCSL"` read as LE bytes).
pub const SEGMENT_MAGIC: u32 = 0x5243_534C;
/// Current segment format version.
pub const SEGMENT_VERSION: u8 = 1;
/// Bytes of segment header: magic + version.
pub const HEADER_LEN: usize = 5;
/// Upper bound accepted for a record's framed `len` field; anything
/// larger is treated as corruption (the real records are ≤ 61 bytes).
pub const MAX_RECORD_LEN: u32 = 1 << 16;
/// Framed size of a `Put` record: 4 (len) + 49 (body) + 8 (checksum).
pub const PUT_RECORD_LEN: u64 = 61;
/// Framed size of an `Evict` tombstone: 4 (len) + 17 (body) + 8 (checksum).
pub const EVICT_RECORD_LEN: u64 = 29;

const OP_PUT: u8 = 1;
const OP_EVICT: u8 = 2;
const PUT_BODY_LEN: usize = 49;
const EVICT_BODY_LEN: usize = 17;

/// One durable cache entry: the assessment fingerprint plus the fields
/// of the `AssessResponse` it maps to (the server re-derives the
/// transient `cached` flag on replay).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Entry {
    /// Assessment fingerprint (`recloud_assess::assessment_key`).
    pub key: u128,
    /// Estimated reliability.
    pub score: f64,
    /// Estimator variance.
    pub variance: f64,
    /// Monte-Carlo rounds behind the estimate.
    pub rounds: u64,
    /// Rounds in which the deployment survived.
    pub successes: u64,
}

/// One logical log operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// Insert or supersede an entry.
    Put(Entry),
    /// Tombstone: the key was evicted from the cache.
    Evict(u128),
}

impl Op {
    /// The fingerprint this operation applies to.
    pub fn key(&self) -> u128 {
        match self {
            Op::Put(e) => e.key,
            Op::Evict(k) => *k,
        }
    }
}

/// Store tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// Rotate to a fresh segment once the active one would exceed this
    /// many bytes (header included).
    pub segment_max_bytes: u64,
    /// Auto-compaction floor: [`Store::append`] never compacts while
    /// the log is smaller than this (0 disables the size check, making
    /// the ratio alone decide; `u64::MAX` disables auto-compaction).
    pub compact_min_bytes: u64,
    /// Auto-compaction trigger: compact when `live_bytes / bytes`
    /// drops below this fraction (superseded puts and tombstones
    /// dominate the log).
    pub compact_live_ratio: f64,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            segment_max_bytes: 4 << 20,
            compact_min_bytes: 64 << 10,
            compact_live_ratio: 0.5,
        }
    }
}

/// What [`Store::open`] found on disk.
#[derive(Debug, Default)]
pub struct Recovery {
    /// Every valid record, in log order; fold with last-write-wins.
    pub ops: Vec<Op>,
    /// Bytes cut from the first corrupt segment (torn tail, bad
    /// checksum, bad header …).
    pub truncated_bytes: u64,
    /// Segments after the corruption point that were deleted outright.
    pub segments_dropped: u64,
}

impl Recovery {
    /// Folds the op stream to its live set (last-write-wins), returning
    /// the entries in the order of their final write.
    pub fn live_entries(&self) -> Vec<Entry> {
        fold_live(&self.ops)
    }
}

/// Result of a [`Store::compact`] pass.
#[derive(Debug, Clone, Copy)]
pub struct CompactStats {
    /// Entries that survived the fold.
    pub live_entries: u64,
    /// On-disk bytes before compaction.
    pub bytes_before: u64,
    /// On-disk bytes after compaction.
    pub bytes_after: u64,
    /// Old segment files deleted.
    pub segments_removed: u64,
}

/// An open append-only result store rooted at one directory.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    config: StoreConfig,
    active: File,
    active_id: u64,
    active_len: u64,
    sealed_bytes: u64,
    /// Keys currently live (puts minus evicts) — exact, maintained on
    /// every append and rebuilt by recovery/compaction.
    live: HashSet<u128>,
    compactions: u64,
}

impl Store {
    /// Opens (creating if needed) the store at `dir`, recovering the
    /// longest valid prefix of the log. Corrupt tails are truncated on
    /// disk, segments past the corruption point deleted, and leftover
    /// `.tmp` files from an interrupted compaction removed.
    pub fn open(dir: &Path, config: StoreConfig) -> io::Result<(Store, Recovery)> {
        fs::create_dir_all(dir)?;
        let mut segments = Vec::new();
        for dirent in fs::read_dir(dir)? {
            let dirent = dirent?;
            let name = dirent.file_name();
            let name = name.to_string_lossy();
            if name.ends_with(".tmp") {
                fs::remove_file(dirent.path())?;
            } else if let Some(id) = parse_segment_id(&name) {
                segments.push((id, dirent.path()));
            }
        }
        segments.sort_by_key(|(id, _)| *id);

        let mut recovery = Recovery::default();
        let mut corrupt_at = None;
        for (index, (_, path)) in segments.iter().enumerate() {
            let mut buf = Vec::new();
            File::open(path)?.read_to_end(&mut buf)?;
            let scan = scan_segment(&buf);
            recovery.ops.extend(scan.ops);
            if scan.valid_len < buf.len() {
                recovery.truncated_bytes = (buf.len() - scan.valid_len) as u64;
                let file = OpenOptions::new().write(true).open(path)?;
                file.set_len(scan.valid_len as u64)?;
                corrupt_at = Some(index);
                break;
            }
        }
        if let Some(index) = corrupt_at {
            for (_, path) in segments.drain(index + 1..) {
                fs::remove_file(path)?;
                recovery.segments_dropped += 1;
            }
        }

        let (active_id, active_path) = match segments.last() {
            Some((id, path)) => (*id, path.clone()),
            None => {
                let path = dir.join(segment_file_name(0));
                write_fresh_segment(&path, &[])?;
                (0, path)
            }
        };
        let mut active = OpenOptions::new().read(true).write(true).open(&active_path)?;
        let mut active_len = active.seek(SeekFrom::End(0))?;
        if active_len < HEADER_LEN as u64 {
            // Header was part of the corrupt prefix; start the segment
            // over so future appends land in a well-formed file.
            active.set_len(0)?;
            active.seek(SeekFrom::Start(0))?;
            active.write_all(&segment_header())?;
            active_len = HEADER_LEN as u64;
        }
        let mut sealed_bytes = 0;
        for (_, path) in &segments[..segments.len().saturating_sub(1)] {
            sealed_bytes += fs::metadata(path)?.len();
        }
        let mut live = HashSet::new();
        for op in &recovery.ops {
            match op {
                Op::Put(e) => {
                    live.insert(e.key);
                }
                Op::Evict(key) => {
                    live.remove(key);
                }
            }
        }
        let store = Store {
            dir: dir.to_path_buf(),
            config,
            active,
            active_id,
            active_len,
            sealed_bytes,
            live,
            compactions: 0,
        };
        Ok((store, recovery))
    }

    /// Appends one operation, rotating segments as needed and running a
    /// size-triggered compaction when the live fraction of the log
    /// drops below [`StoreConfig::compact_live_ratio`]. Returns the
    /// framed bytes written.
    pub fn append(&mut self, op: &Op) -> io::Result<u64> {
        let record = encode_record(op);
        let len = record.len() as u64;
        if self.active_len > HEADER_LEN as u64
            && self.active_len + len > self.config.segment_max_bytes
        {
            self.rotate()?;
        }
        self.active.write_all(&record)?;
        self.active_len += len;
        match op {
            Op::Put(e) => {
                self.live.insert(e.key);
            }
            Op::Evict(key) => {
                self.live.remove(key);
            }
        }
        if self.should_compact() {
            self.compact()?;
        }
        Ok(len)
    }

    /// Keys currently live in the log (puts minus evicts).
    pub fn live_entries(&self) -> u64 {
        self.live.len() as u64
    }

    /// Exact on-disk bytes a compacted log would occupy: one header
    /// plus one fixed-size `Put` record per live key.
    pub fn live_bytes(&self) -> u64 {
        HEADER_LEN as u64 + self.live.len() as u64 * PUT_RECORD_LEN
    }

    /// Compaction passes completed so far (size-triggered and manual).
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Whether the size/live-ratio auto-compaction thresholds currently
    /// hold: the log is at least `compact_min_bytes` and live data is
    /// under `compact_live_ratio` of it. Appends consult this
    /// internally; the serving layer polls it from a timer so a store
    /// that crossed the threshold via replay or eviction patterns no
    /// append revisits still gets compacted.
    pub fn should_compact(&self) -> bool {
        let total = self.bytes();
        total >= self.config.compact_min_bytes
            && (self.live_bytes() as f64) < self.config.compact_live_ratio * total as f64
    }

    /// Folds the log to its live set and rewrites it as one fresh
    /// segment (id `active + 1`, via `.tmp` + rename), then deletes the
    /// old segments. Crash-safe at every step: the compacted segment is
    /// *later* in the log, so last-write-wins replay of any surviving
    /// file combination reproduces the same state.
    pub fn compact(&mut self) -> io::Result<CompactStats> {
        let bytes_before = self.bytes();
        let mut old = Vec::new();
        let mut ops = Vec::new();
        for (id, path) in list_segments(&self.dir)? {
            let mut buf = Vec::new();
            File::open(&path)?.read_to_end(&mut buf)?;
            ops.extend(scan_segment(&buf).ops);
            old.push((id, path));
        }
        let live = fold_live(&ops);

        let next_id = self.active_id + 1;
        let final_path = self.dir.join(segment_file_name(next_id));
        let tmp_path = self.dir.join(format!("{}.tmp", segment_file_name(next_id)));
        let records: Vec<Op> = live.iter().copied().map(Op::Put).collect();
        write_fresh_segment(&tmp_path, &records)?;
        fs::rename(&tmp_path, &final_path)?;
        // Make the rename itself durable before deleting the only other
        // copies of the data.
        File::open(&self.dir)?.sync_all()?;
        let mut segments_removed = 0;
        for (_, path) in &old {
            fs::remove_file(path)?;
            segments_removed += 1;
        }

        self.active = OpenOptions::new().read(true).write(true).open(&final_path)?;
        self.active_len = self.active.seek(SeekFrom::End(0))?;
        self.active_id = next_id;
        self.sealed_bytes = 0;
        self.live = live.iter().map(|e| e.key).collect();
        self.compactions += 1;
        Ok(CompactStats {
            live_entries: live.len() as u64,
            bytes_before,
            bytes_after: self.bytes(),
            segments_removed,
        })
    }

    /// Total on-disk bytes across every segment.
    pub fn bytes(&self) -> u64 {
        self.sealed_bytes + self.active_len
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Paths of every segment file, in log (id) order.
    pub fn segment_paths(&self) -> io::Result<Vec<PathBuf>> {
        Ok(list_segments(&self.dir)?.into_iter().map(|(_, p)| p).collect())
    }

    fn rotate(&mut self) -> io::Result<()> {
        self.sealed_bytes += self.active_len;
        self.active_id += 1;
        let path = self.dir.join(segment_file_name(self.active_id));
        write_fresh_segment(&path, &[])?;
        self.active = OpenOptions::new().read(true).write(true).open(&path)?;
        self.active.seek(SeekFrom::End(0))?;
        self.active_len = HEADER_LEN as u64;
        Ok(())
    }
}

fn segment_file_name(id: u64) -> String {
    format!("seg-{id:016x}.log")
}

fn parse_segment_id(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("seg-")?.strip_suffix(".log")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

fn list_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut segments = Vec::new();
    for dirent in fs::read_dir(dir)? {
        let dirent = dirent?;
        if let Some(id) = parse_segment_id(&dirent.file_name().to_string_lossy()) {
            segments.push((id, dirent.path()));
        }
    }
    segments.sort_by_key(|(id, _)| *id);
    Ok(segments)
}

fn segment_header() -> [u8; HEADER_LEN] {
    let mut w = ByteWriter::with_capacity(HEADER_LEN);
    w.put_u32_le(SEGMENT_MAGIC);
    w.put_u8(SEGMENT_VERSION);
    let v = w.into_vec();
    let mut header = [0u8; HEADER_LEN];
    header.copy_from_slice(&v);
    header
}

fn write_fresh_segment(path: &Path, ops: &[Op]) -> io::Result<()> {
    let mut w = ByteWriter::with_capacity(HEADER_LEN + ops.len() * PUT_RECORD_LEN as usize);
    w.put_slice(&segment_header());
    for op in ops {
        w.put_slice(&encode_record(op));
    }
    let mut file = File::create(path)?;
    file.write_all(&w.into_vec())?;
    file.sync_all()
}

/// FNV-1a over 64 bits — the per-record checksum.
fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn encode_record(op: &Op) -> Vec<u8> {
    let mut body = ByteWriter::with_capacity(PUT_BODY_LEN);
    match op {
        Op::Put(e) => {
            body.put_u8(OP_PUT);
            body.put_u64_le(e.key as u64);
            body.put_u64_le((e.key >> 64) as u64);
            body.put_f64_le(e.score);
            body.put_f64_le(e.variance);
            body.put_u64_le(e.rounds);
            body.put_u64_le(e.successes);
        }
        Op::Evict(key) => {
            body.put_u8(OP_EVICT);
            body.put_u64_le(*key as u64);
            body.put_u64_le((*key >> 64) as u64);
        }
    }
    let body = body.into_vec();
    let mut w = ByteWriter::with_capacity(4 + body.len() + 8);
    w.put_u32_le((body.len() + 8) as u32);
    w.put_slice(&body);
    w.put_u64_le(fnv1a_64(&body));
    w.into_vec()
}

fn decode_body(body: Bytes) -> Option<Op> {
    let len = body.len();
    let mut r = ByteReader::new(body);
    let op = match r.get_u8()? {
        OP_PUT if len == PUT_BODY_LEN => {
            let key = u128::from(r.get_u64_le()?) | (u128::from(r.get_u64_le()?) << 64);
            Op::Put(Entry {
                key,
                score: r.get_f64_le()?,
                variance: r.get_f64_le()?,
                rounds: r.get_u64_le()?,
                successes: r.get_u64_le()?,
            })
        }
        OP_EVICT if len == EVICT_BODY_LEN => {
            let key = u128::from(r.get_u64_le()?) | (u128::from(r.get_u64_le()?) << 64);
            Op::Evict(key)
        }
        _ => return None,
    };
    r.is_exhausted().then_some(op)
}

struct SegmentScan {
    ops: Vec<Op>,
    /// Bytes of valid prefix; `< buf.len()` means corruption was hit.
    valid_len: usize,
}

/// Decodes records until the first torn / corrupt one. Never fails:
/// corruption just ends the valid prefix.
fn scan_segment(buf: &[u8]) -> SegmentScan {
    let bytes = Bytes::copy_from_slice(buf);
    let header = segment_header();
    if buf.len() < HEADER_LEN || buf[..HEADER_LEN] != header {
        return SegmentScan { ops: Vec::new(), valid_len: 0 };
    }
    let mut ops = Vec::new();
    let mut pos = HEADER_LEN;
    loop {
        let Some(frame) = buf.get(pos..pos + 4) else {
            break;
        };
        let len = u32::from_le_bytes(frame.try_into().unwrap()) as usize;
        if len < 9 || len as u32 > MAX_RECORD_LEN || pos + 4 + len > buf.len() {
            break;
        }
        let body = bytes.slice(pos + 4..pos + 4 + len - 8);
        let checksum =
            u64::from_le_bytes(buf[pos + 4 + len - 8..pos + 4 + len].try_into().unwrap());
        if fnv1a_64(body.as_slice()) != checksum {
            break;
        }
        let Some(op) = decode_body(body) else {
            break;
        };
        ops.push(op);
        pos += 4 + len;
    }
    SegmentScan { ops, valid_len: pos }
}

fn fold_live(ops: &[Op]) -> Vec<Entry> {
    let mut live: HashMap<u128, (usize, Entry)> = HashMap::new();
    for (seq, op) in ops.iter().enumerate() {
        match op {
            Op::Put(e) => {
                live.insert(e.key, (seq, *e));
            }
            Op::Evict(key) => {
                live.remove(key);
            }
        }
    }
    let mut entries: Vec<(usize, Entry)> = live.into_values().collect();
    entries.sort_by_key(|(seq, _)| *seq);
    entries.into_iter().map(|(_, e)| e).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("recloud-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn entry(key: u128, rounds: u64) -> Entry {
        Entry {
            key,
            score: 0.5 + (rounds as f64) * 1e-6,
            variance: 1e-4,
            rounds,
            successes: rounds / 2,
        }
    }

    #[test]
    fn record_sizes_are_pinned() {
        assert_eq!(encode_record(&Op::Put(entry(7, 10))).len() as u64, PUT_RECORD_LEN);
        assert_eq!(encode_record(&Op::Evict(7)).len() as u64, EVICT_RECORD_LEN);
    }

    #[test]
    fn append_then_reopen_replays_in_order() {
        let dir = tempdir("roundtrip");
        let ops = vec![
            Op::Put(entry(1, 100)),
            Op::Put(entry(2, 200)),
            Op::Evict(1),
            Op::Put(entry(2, 300)),
        ];
        {
            let (mut store, recovery) = Store::open(&dir, StoreConfig::default()).unwrap();
            assert!(recovery.ops.is_empty());
            for op in &ops {
                store.append(op).unwrap();
            }
        }
        let (store, recovery) = Store::open(&dir, StoreConfig::default()).unwrap();
        assert_eq!(recovery.ops, ops);
        assert_eq!(recovery.truncated_bytes, 0);
        assert_eq!(recovery.live_entries(), vec![entry(2, 300)]);
        assert_eq!(store.bytes(), HEADER_LEN as u64 + 3 * PUT_RECORD_LEN + EVICT_RECORD_LEN);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_spreads_the_log_over_segments() {
        let dir = tempdir("rotate");
        let config = StoreConfig {
            segment_max_bytes: HEADER_LEN as u64 + 2 * PUT_RECORD_LEN,
            ..StoreConfig::default()
        };
        let ops: Vec<Op> = (0..7).map(|i| Op::Put(entry(i, i as u64 * 10))).collect();
        {
            let (mut store, _) = Store::open(&dir, config).unwrap();
            for op in &ops {
                store.append(op).unwrap();
            }
            assert_eq!(store.segment_paths().unwrap().len(), 4);
        }
        let (_, recovery) = Store::open(&dir, config).unwrap();
        assert_eq!(recovery.ops, ops);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_recovers_the_prefix() {
        let dir = tempdir("torn");
        let ops = vec![Op::Put(entry(1, 10)), Op::Put(entry(2, 20)), Op::Put(entry(3, 30))];
        let path = {
            let (mut store, _) = Store::open(&dir, StoreConfig::default()).unwrap();
            for op in &ops {
                store.append(op).unwrap();
            }
            store.segment_paths().unwrap()[0].clone()
        };
        // Cut the file mid-way through the third record.
        let full = fs::metadata(&path).unwrap().len();
        OpenOptions::new().write(true).open(&path).unwrap().set_len(full - 20).unwrap();
        let (mut store, recovery) = Store::open(&dir, StoreConfig::default()).unwrap();
        assert_eq!(recovery.ops, ops[..2]);
        assert_eq!(recovery.truncated_bytes, PUT_RECORD_LEN - 20);
        // The store stays appendable after surgery.
        store.append(&Op::Put(entry(4, 40))).unwrap();
        drop(store);
        let (_, recovery) = Store::open(&dir, StoreConfig::default()).unwrap();
        assert_eq!(recovery.ops, vec![ops[0], ops[1], Op::Put(entry(4, 40))]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checksum_flip_drops_the_record_and_the_tail() {
        let dir = tempdir("flip");
        let ops = vec![Op::Put(entry(1, 10)), Op::Put(entry(2, 20)), Op::Put(entry(3, 30))];
        let path = {
            let (mut store, _) = Store::open(&dir, StoreConfig::default()).unwrap();
            for op in &ops {
                store.append(op).unwrap();
            }
            store.segment_paths().unwrap()[0].clone()
        };
        // Flip one bit inside the second record's body.
        let mut buf = fs::read(&path).unwrap();
        let offset = HEADER_LEN + PUT_RECORD_LEN as usize + 10;
        buf[offset] ^= 0x40;
        fs::write(&path, &buf).unwrap();
        let (_, recovery) = Store::open(&dir, StoreConfig::default()).unwrap();
        assert_eq!(recovery.ops, ops[..1]);
        assert_eq!(recovery.truncated_bytes, 2 * PUT_RECORD_LEN);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_in_a_middle_segment_drops_later_segments() {
        let dir = tempdir("midseg");
        let config = StoreConfig {
            segment_max_bytes: HEADER_LEN as u64 + 2 * PUT_RECORD_LEN,
            ..StoreConfig::default()
        };
        let ops: Vec<Op> = (0..6).map(|i| Op::Put(entry(i, i as u64))).collect();
        let paths = {
            let (mut store, _) = Store::open(&dir, config).unwrap();
            for op in &ops {
                store.append(op).unwrap();
            }
            store.segment_paths().unwrap()
        };
        assert_eq!(paths.len(), 3);
        let mut buf = fs::read(&paths[1]).unwrap();
        let len = buf.len();
        buf[len - 1] ^= 0x01;
        fs::write(&paths[1], &buf).unwrap();
        let (store, recovery) = Store::open(&dir, config).unwrap();
        // Segment 0 fully, segment 1's first record, segment 2 deleted.
        assert_eq!(recovery.ops, ops[..3]);
        assert_eq!(recovery.segments_dropped, 1);
        assert_eq!(store.segment_paths().unwrap().len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_drops_superseded_and_evicted_keys() {
        let dir = tempdir("compact");
        let config = StoreConfig {
            segment_max_bytes: HEADER_LEN as u64 + 3 * PUT_RECORD_LEN,
            ..StoreConfig::default()
        };
        let (mut store, _) = Store::open(&dir, config).unwrap();
        for i in 0..4u128 {
            store.append(&Op::Put(entry(i, 1))).unwrap();
        }
        for i in 0..4u128 {
            store.append(&Op::Put(entry(i, 2))).unwrap();
        }
        store.append(&Op::Evict(0)).unwrap();
        let stats = store.compact().unwrap();
        assert_eq!(stats.live_entries, 3);
        assert!(stats.bytes_after < stats.bytes_before);
        assert_eq!(store.segment_paths().unwrap().len(), 1);
        // Compacted state must replay identically.
        store.append(&Op::Put(entry(9, 9))).unwrap();
        drop(store);
        let (_, recovery) = Store::open(&dir, config).unwrap();
        assert_eq!(
            recovery.live_entries(),
            vec![entry(1, 2), entry(2, 2), entry(3, 2), entry(9, 9)]
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_triggers_compaction_when_the_live_fraction_drops() {
        let dir = tempdir("autocompact");
        let config = StoreConfig {
            segment_max_bytes: 4 << 20,
            compact_min_bytes: HEADER_LEN as u64 + 8 * PUT_RECORD_LEN,
            compact_live_ratio: 0.5,
        };
        let (mut store, _) = Store::open(&dir, config).unwrap();
        // Supersede one key over and over: live stays at 1 entry while
        // the log grows, so the live fraction decays toward zero.
        for i in 0..16u64 {
            store.append(&Op::Put(entry(1, i))).unwrap();
        }
        assert!(store.compactions() >= 1, "auto-compaction never fired");
        assert_eq!(store.live_entries(), 1);
        assert_eq!(store.segment_paths().unwrap().len(), 1);
        assert!(
            store.bytes() < config.compact_min_bytes,
            "compacted log holds one live record, got {} bytes",
            store.bytes()
        );
        // The compacted state replays the surviving entry.
        drop(store);
        let (store, recovery) = Store::open(&dir, config).unwrap();
        assert_eq!(recovery.live_entries(), vec![entry(1, 15)]);
        assert_eq!(store.live_entries(), 1, "recovery reseeds the live set");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disabled_auto_compaction_never_fires() {
        let dir = tempdir("nocompact");
        let config = StoreConfig { compact_min_bytes: u64::MAX, ..StoreConfig::default() };
        let (mut store, _) = Store::open(&dir, config).unwrap();
        for i in 0..16u64 {
            store.append(&Op::Put(entry(1, i))).unwrap();
        }
        assert_eq!(store.compactions(), 0);
        assert_eq!(store.bytes(), HEADER_LEN as u64 + 16 * PUT_RECORD_LEN);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_tmp_files_are_swept_on_open() {
        let dir = tempdir("tmp");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("seg-0000000000000007.log.tmp"), b"half a compaction").unwrap();
        let (store, _) = Store::open(&dir, StoreConfig::default()).unwrap();
        assert_eq!(store.segment_paths().unwrap().len(), 1);
        assert!(!dir.join("seg-0000000000000007.log.tmp").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_header_yields_an_empty_but_usable_store() {
        let dir = tempdir("header");
        {
            let (mut store, _) = Store::open(&dir, StoreConfig::default()).unwrap();
            store.append(&Op::Put(entry(1, 1))).unwrap();
        }
        let path = list_segments(&dir).unwrap()[0].1.clone();
        let mut buf = fs::read(&path).unwrap();
        buf[0] ^= 0xff;
        fs::write(&path, &buf).unwrap();
        let (mut store, recovery) = Store::open(&dir, StoreConfig::default()).unwrap();
        assert!(recovery.ops.is_empty());
        assert_eq!(recovery.truncated_bytes, HEADER_LEN as u64 + PUT_RECORD_LEN);
        store.append(&Op::Put(entry(2, 2))).unwrap();
        drop(store);
        let (_, recovery) = Store::open(&dir, StoreConfig::default()).unwrap();
        assert_eq!(recovery.ops, vec![Op::Put(entry(2, 2))]);
        fs::remove_dir_all(&dir).unwrap();
    }
}
