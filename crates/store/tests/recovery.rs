//! Property tests for store recovery: over random append sequences and
//! random crash/corruption points, replay must yield *exactly* the
//! longest valid prefix of the log — and never panic.
//!
//! The expected prefix is derived from the on-disk truth: after the
//! appends, each segment is parsed (header + length-prefixed records)
//! to map every byte offset to the record it belongs to, so a torn
//! tail or a flipped bit has a deterministic expected outcome.

use std::fs::{self, OpenOptions};
use std::path::{Path, PathBuf};

use recloud::proptest::{forall, Gen};
use recloud::{prop_assert, prop_assert_eq};
use recloud_store::{Entry, Op, Store, StoreConfig, HEADER_LEN};

fn tempdir(tag: &str, case: u64) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("recloud-store-prop-{tag}-{}-{case}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn random_ops(g: &mut Gen, max: usize) -> Vec<Op> {
    g.vec_in(1..max, |g| {
        let key = u128::from(g.any_u64()) | (u128::from(g.u64_in(0..=7)) << 64);
        if g.usize_in(0..4) == 0 {
            Op::Evict(key)
        } else {
            let rounds = g.u64_in(1..=1_000_000);
            Op::Put(Entry {
                key,
                score: (rounds % 1000) as f64 / 1000.0,
                variance: (rounds % 97) as f64 * 1e-6,
                rounds,
                successes: rounds / 2,
            })
        }
    })
}

/// `(segment index, record start, record end)` for every record on
/// disk, in log order, parsed straight from the segment files.
fn record_spans(paths: &[PathBuf]) -> Vec<(usize, usize, usize)> {
    let mut spans = Vec::new();
    for (seg, path) in paths.iter().enumerate() {
        let buf = fs::read(path).unwrap();
        let mut pos = HEADER_LEN;
        while pos + 4 <= buf.len() {
            let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
            assert!(pos + 4 + len <= buf.len(), "freshly written segment is torn");
            spans.push((seg, pos, pos + 4 + len));
            pos += 4 + len;
        }
    }
    spans
}

fn write_log(dir: &Path, config: StoreConfig, ops: &[Op]) -> Vec<PathBuf> {
    let (mut store, recovery) = Store::open(dir, config).unwrap();
    assert!(recovery.ops.is_empty());
    for op in ops {
        store.append(op).unwrap();
    }
    store.segment_paths().unwrap()
}

#[test]
fn torn_tail_recovers_exactly_the_contained_records() {
    forall("torn tail recovers longest valid prefix", |g| {
        let config =
            StoreConfig { segment_max_bytes: g.u64_in(128..=1024), ..StoreConfig::default() };
        let ops = random_ops(g, 40);
        let dir = tempdir("torn", g.seed());
        let paths = write_log(&dir, config, &ops);
        let spans = record_spans(&paths);

        // Cut the last segment at a uniformly random byte (possibly
        // inside the header, possibly a no-op cut at the full length).
        let last = paths.len() - 1;
        let full = fs::metadata(&paths[last]).unwrap().len() as usize;
        let cut = g.usize_in(0..full + 1);
        OpenOptions::new().write(true).open(&paths[last]).unwrap().set_len(cut as u64).unwrap();

        let expected: Vec<Op> = spans
            .iter()
            .zip(&ops)
            .filter(|((seg, _, end), _)| *seg < last || (cut >= HEADER_LEN && *end <= cut))
            .map(|(_, op)| *op)
            .collect();
        let (_, recovery) = Store::open(&dir, config).unwrap();
        prop_assert_eq!(recovery.ops, expected);
        fs::remove_dir_all(&dir).ok();
        Ok(())
    });
}

#[test]
fn bit_flip_recovers_exactly_the_records_before_it() {
    forall("bit flip recovers records strictly before it", |g| {
        let config =
            StoreConfig { segment_max_bytes: g.u64_in(128..=1024), ..StoreConfig::default() };
        let ops = random_ops(g, 40);
        let dir = tempdir("flip", g.seed());
        let paths = write_log(&dir, config, &ops);
        let spans = record_spans(&paths);

        // Flip one random bit anywhere in one random segment: header,
        // length prefix, body, or checksum are all fair game.
        let seg = g.usize_in(0..paths.len());
        let mut buf = fs::read(&paths[seg]).unwrap();
        let offset = g.usize_in(0..buf.len());
        buf[offset] ^= 1 << g.usize_in(0..8);
        fs::write(&paths[seg], &buf).unwrap();

        // Expected: every record in earlier segments, plus — unless the
        // flip hit this segment's header — the records of the flipped
        // segment that end at or before the flipped byte.
        let expected: Vec<Op> = spans
            .iter()
            .zip(&ops)
            .filter(|((s, _, end), _)| {
                *s < seg || (*s == seg && offset >= HEADER_LEN && *end <= offset)
            })
            .map(|(_, op)| *op)
            .collect();
        let (_, recovery) = Store::open(&dir, config).unwrap();
        prop_assert_eq!(recovery.ops, expected);
        if seg < paths.len() - 1 {
            prop_assert!(recovery.segments_dropped == (paths.len() - 1 - seg) as u64);
        }

        // Recovery is idempotent and the store stays appendable.
        let (mut store, again) = Store::open(&dir, config).unwrap();
        prop_assert_eq!(again.ops.len(), expected.len());
        prop_assert_eq!(again.truncated_bytes, 0);
        store.append(&Op::Evict(42)).map_err(|e| format!("append after recovery failed: {e}"))?;
        fs::remove_dir_all(&dir).ok();
        Ok(())
    });
}

#[test]
fn truncated_length_prefix_never_panics() {
    forall("truncated length prefix recovers cleanly", |g| {
        let config = StoreConfig::default();
        let ops = random_ops(g, 20);
        let dir = tempdir("lenprefix", g.seed());
        let paths = write_log(&dir, config, &ops);
        let spans = record_spans(&paths);

        // Cut 1..=3 bytes into a record's length prefix so the frame
        // header itself is torn.
        let victim = g.usize_in(0..spans.len());
        let (_, start, _) = spans[victim];
        let cut = start + g.usize_in(1..4);
        OpenOptions::new().write(true).open(&paths[0]).unwrap().set_len(cut as u64).unwrap();

        let (_, recovery) = Store::open(&dir, config).unwrap();
        prop_assert_eq!(recovery.ops, ops[..victim].to_vec());
        fs::remove_dir_all(&dir).ok();
        Ok(())
    });
}

#[test]
fn compaction_preserves_the_live_fold() {
    forall("compaction preserves last-write-wins fold", |g| {
        let config =
            StoreConfig { segment_max_bytes: g.u64_in(128..=512), ..StoreConfig::default() };
        let ops = random_ops(g, 60);
        let dir = tempdir("compact", g.seed());
        let (mut store, _) = Store::open(&dir, config).unwrap();
        for op in &ops {
            store.append(op).unwrap();
        }
        let before = {
            let (_, r) = Store::open(&dir, config).unwrap();
            r.live_entries()
        };
        let stats = store.compact().map_err(|e| format!("compact failed: {e}"))?;
        prop_assert!(stats.bytes_after <= stats.bytes_before);
        prop_assert_eq!(stats.live_entries as usize, before.len());
        drop(store);
        let (_, recovery) = Store::open(&dir, config).unwrap();
        prop_assert_eq!(recovery.live_entries(), before);
        fs::remove_dir_all(&dir).ok();
        Ok(())
    });
}
