//! The four evaluation scales of Table 2, plus an extrapolated XL scale.

use crate::fattree::FatTreeParams;
use crate::topology::Topology;
use std::fmt;

/// Data-center scale presets used throughout the paper's evaluation (§4.1,
/// Table 2): fat-trees with k = 8, 16, 24 and 48 ports per switch, a
/// dedicated border pod, and five shared power supplies. [`Scale::Xl`]
/// (k = 64) extrapolates one step past Table 2 for stress benchmarking.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Scale {
    /// k = 8: 112 hosts.
    Tiny,
    /// k = 16: 960 hosts.
    Small,
    /// k = 24: 3,312 hosts.
    Medium,
    /// k = 48: 27,072 hosts.
    Large,
    /// k = 64: 64,512 hosts — beyond Table 2, for stress benchmarks.
    Xl,
}

impl Scale {
    /// The four paper scales (Table 2), smallest first. [`Scale::Xl`] is
    /// deliberately excluded: it is opt-in for benchmarks, and figure
    /// sweeps over `ALL` must keep reproducing the paper exactly.
    pub const ALL: [Scale; 4] = [Scale::Tiny, Scale::Small, Scale::Medium, Scale::Large];

    /// The fat-tree port count for this scale.
    pub fn k(self) -> u32 {
        match self {
            Scale::Tiny => 8,
            Scale::Small => 16,
            Scale::Medium => 24,
            Scale::Large => 48,
            Scale::Xl => 64,
        }
    }

    /// Number of hosts at this scale (Table 2 for the paper scales).
    pub fn hosts(self) -> usize {
        let k = self.k() as usize;
        (k - 1) * (k / 2) * (k / 2)
    }

    /// Builds the preset topology.
    pub fn build(self) -> Topology {
        FatTreeParams::new(self.k()).build()
    }

    /// Preset name as printed in the paper's figures ("Tiny [112]", …).
    pub fn label(self) -> String {
        format!("{} [{}]", self, self.hosts())
    }
}

impl fmt::Display for Scale {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Scale::Tiny => "Tiny",
            Scale::Small => "Small",
            Scale::Medium => "Medium",
            Scale::Large => "Large",
            Scale::Xl => "XL",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_counts_match_table2() {
        assert_eq!(Scale::Tiny.hosts(), 112);
        assert_eq!(Scale::Small.hosts(), 960);
        assert_eq!(Scale::Medium.hosts(), 3_312);
        assert_eq!(Scale::Large.hosts(), 27_072);
        assert_eq!(Scale::Xl.hosts(), 64_512);
    }

    #[test]
    fn built_topologies_agree_with_hosts() {
        for s in [Scale::Tiny, Scale::Small] {
            let t = s.build();
            assert_eq!(t.num_hosts(), s.hosts());
        }
    }

    #[test]
    fn labels_match_paper_axis_style() {
        assert_eq!(Scale::Tiny.label(), "Tiny [112]");
        assert_eq!(Scale::Large.label(), "Large [27072]");
        assert_eq!(Scale::Xl.label(), "XL [64512]");
    }

    #[test]
    fn all_is_exactly_the_paper_scales_in_order() {
        assert_eq!(Scale::ALL, [Scale::Tiny, Scale::Small, Scale::Medium, Scale::Large]);
        assert!(!Scale::ALL.contains(&Scale::Xl), "XL is opt-in, not a Table 2 scale");
    }
}
