//! Fat-tree generator with a dedicated border pod (§3.1, Fig 1, Table 2).
//!
//! A classic k-ary fat-tree has k pods. Following the paper (which follows
//! Google's Jupiter practice for external connectivity), one pod is
//! *dedicated* to external peering: its k/2 switches are **border switches**
//! that connect the core layer to the external world, providing full
//! external bandwidth to all remaining k−1 *host pods*.
//!
//! Component counts therefore match Table 2 exactly:
//!
//! | k  | core (k/2)² | agg (k−1)·k/2 | edge (k−1)·k/2 | border k/2 | hosts (k−1)·(k/2)² |
//! |----|-------------|----------------|-----------------|------------|---------------------|
//! | 8  | 16          | 28             | 28              | 4          | 112                 |
//! | 16 | 64          | 120            | 120             | 8          | 960                 |
//! | 24 | 144         | 276            | 276             | 12         | 3,312               |
//! | 48 | 576         | 1,128          | 1,128           | 24         | 27,072              |
//!
//! Wiring: hosts attach to edge switches (k/2 per edge); each edge switch
//! connects to all k/2 agg switches of its pod; agg switch g of every pod
//! connects to all k/2 core switches of *core group* g; border switch g
//! connects to all of core group g and to the external node. Five power
//! supplies (configurable) are assigned round-robin to every switch and to
//! every edge-switch host group, maximizing power diversity as in §4.1.

use crate::component::{Component, ComponentKind};
use crate::graph::EdgeList;
use crate::id::ComponentId;
use crate::power::RoundRobinPower;
use crate::topology::{Topology, TopologyKind};

/// Parameters for building a fat-tree topology.
#[derive(Clone, Copy, Debug)]
pub struct FatTreeParams {
    /// Switch port count `k` (must be even, ≥ 4). k pods total: k−1 host
    /// pods plus the dedicated border pod.
    pub k: u32,
    /// Number of shared power supplies (the paper's evaluation uses 5).
    pub power_supplies: u32,
    /// When true, every cable becomes a `Link` component that can fail
    /// independently. The paper's evaluation does not fail cables, so this
    /// defaults to `false`.
    pub with_links: bool,
}

impl FatTreeParams {
    /// Fat-tree of the given port count with the paper's defaults
    /// (5 power supplies, no link components).
    pub fn new(k: u32) -> Self {
        FatTreeParams { k, power_supplies: 5, with_links: false }
    }

    /// Sets the number of shared power supplies.
    pub fn power_supplies(mut self, n: u32) -> Self {
        self.power_supplies = n;
        self
    }

    /// Enables per-cable link components.
    pub fn with_links(mut self, yes: bool) -> Self {
        self.with_links = yes;
        self
    }

    /// Builds the topology.
    ///
    /// # Panics
    /// Panics if `k` is odd or `< 4`.
    pub fn build(self) -> Topology {
        build_fat_tree(self)
    }
}

/// Positional coordinates of a host inside a fat-tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HostPosition {
    /// Host pod index in `0..k-1`.
    pub pod: u32,
    /// Edge switch index within the pod, `0..k/2`.
    pub edge: u32,
    /// Slot under the edge switch, `0..k/2`.
    pub slot: u32,
}

/// Arithmetic layout of a generated fat-tree: role-contiguous id ranges that
/// let routers and symmetry checks avoid hash lookups entirely.
#[derive(Clone, Copy, Debug)]
pub struct FatTreeMeta {
    /// Port count.
    pub k: u32,
    /// k/2, cached.
    pub half: u32,
    /// Number of host pods (k − 1).
    pub host_pods: u32,
    /// First core switch id. Core (group g, member j) = `core_base + g*half + j`.
    pub core_base: u32,
    /// First agg switch id. Agg (pod p, group g) = `agg_base + p*half + g`.
    pub agg_base: u32,
    /// First edge switch id. Edge (pod p, index e) = `edge_base + p*half + e`.
    pub edge_base: u32,
    /// First host id. Host (p, e, s) = `host_base + (p*half + e)*half + s`.
    pub host_base: u32,
    /// First border switch id. Border g = `border_base + g`.
    pub border_base: u32,
    /// The external node id.
    pub external: u32,
}

impl FatTreeMeta {
    /// Core switch id for group `g`, member `j`.
    #[inline]
    pub fn core(&self, g: u32, j: u32) -> ComponentId {
        debug_assert!(g < self.half && j < self.half);
        ComponentId(self.core_base + g * self.half + j)
    }

    /// Agg switch id for host pod `p`, group `g`.
    #[inline]
    pub fn agg(&self, p: u32, g: u32) -> ComponentId {
        debug_assert!(p < self.host_pods && g < self.half);
        ComponentId(self.agg_base + p * self.half + g)
    }

    /// Edge switch id for host pod `p`, index `e`.
    #[inline]
    pub fn edge(&self, p: u32, e: u32) -> ComponentId {
        debug_assert!(p < self.host_pods && e < self.half);
        ComponentId(self.edge_base + p * self.half + e)
    }

    /// Host id for pod `p`, edge `e`, slot `s`.
    #[inline]
    pub fn host(&self, p: u32, e: u32, s: u32) -> ComponentId {
        debug_assert!(p < self.host_pods && e < self.half && s < self.half);
        ComponentId(self.host_base + (p * self.half + e) * self.half + s)
    }

    /// Border switch id for core group `g`.
    #[inline]
    pub fn border(&self, g: u32) -> ComponentId {
        debug_assert!(g < self.half);
        ComponentId(self.border_base + g)
    }

    /// Inverse of [`FatTreeMeta::host`].
    #[inline]
    pub fn host_position(&self, host: ComponentId) -> HostPosition {
        let rel = host.0 - self.host_base;
        let slot = rel % self.half;
        let rack = rel / self.half;
        HostPosition { pod: rack / self.half, edge: rack % self.half, slot }
    }

    /// True if `id` is a host of this fat-tree.
    #[inline]
    pub fn is_host(&self, id: ComponentId) -> bool {
        id.0 >= self.host_base && id.0 < self.host_base + self.num_hosts() as u32
    }

    /// Total host count.
    #[inline]
    pub fn num_hosts(&self) -> usize {
        (self.host_pods * self.half * self.half) as usize
    }

    /// All hosts under edge `(p, e)`.
    pub fn hosts_under_edge(&self, p: u32, e: u32) -> impl Iterator<Item = ComponentId> + '_ {
        let half = self.half;
        (0..half).map(move |s| self.host(p, e, s))
    }

    /// Number of network nodes that can fail and affect routing:
    /// everything from hosts up through border switches.
    pub fn num_network_nodes(&self) -> usize {
        (self.half * self.half            // core
            + 2 * self.host_pods * self.half // agg + edge
            + self.half) as usize         // border
            + self.num_hosts()
            + 1 // external
    }
}

fn build_fat_tree(params: FatTreeParams) -> Topology {
    let k = params.k;
    assert!(k >= 4, "fat-tree needs k >= 4 (got {k})");
    assert!(k.is_multiple_of(2), "fat-tree needs even k (got {k})");
    let half = k / 2;
    let host_pods = k - 1;

    let n_core = (half * half) as usize;
    let n_agg = (host_pods * half) as usize;
    let n_edge = n_agg;
    let n_hosts = (host_pods * half * half) as usize;
    let n_border = half as usize;
    let n_power = params.power_supplies as usize;

    let mut components: Vec<Component> =
        Vec::with_capacity(n_core + n_agg + n_edge + n_hosts + n_border + 1 + n_power);
    let push = |components: &mut Vec<Component>, kind: ComponentKind, ordinal: u32| {
        let id = ComponentId::from_index(components.len());
        components.push(Component { id, kind, ordinal });
        id
    };

    // Role-contiguous layout: core, agg, edge, hosts, border, external, power.
    let core_base = components.len() as u32;
    for i in 0..n_core {
        push(&mut components, ComponentKind::CoreSwitch, i as u32);
    }
    let agg_base = components.len() as u32;
    for i in 0..n_agg {
        push(&mut components, ComponentKind::AggSwitch, i as u32);
    }
    let edge_base = components.len() as u32;
    for i in 0..n_edge {
        push(&mut components, ComponentKind::EdgeSwitch, i as u32);
    }
    let host_base = components.len() as u32;
    for i in 0..n_hosts {
        push(&mut components, ComponentKind::Host, i as u32);
    }
    let border_base = components.len() as u32;
    for i in 0..n_border {
        push(&mut components, ComponentKind::BorderSwitch, i as u32);
    }
    let external = push(&mut components, ComponentKind::External, 0);
    let mut power_supplies = Vec::with_capacity(n_power);
    for i in 0..n_power {
        power_supplies.push(push(&mut components, ComponentKind::PowerSupply, i as u32));
    }

    let meta = FatTreeMeta {
        k,
        half,
        host_pods,
        core_base,
        agg_base,
        edge_base,
        host_base,
        border_base,
        external: external.0,
    };

    // Wiring.
    let mut edges = EdgeList::new();
    let link_for = |components: &mut Vec<Component>| -> Option<ComponentId> {
        if params.with_links {
            let ordinal = components.iter().filter(|c| c.kind == ComponentKind::Link).count();
            let id = ComponentId::from_index(components.len());
            components.push(Component { id, kind: ComponentKind::Link, ordinal: ordinal as u32 });
            Some(id)
        } else {
            None
        }
    };
    for p in 0..host_pods {
        for e in 0..half {
            for s in 0..half {
                let l = link_for(&mut components);
                edges.add_with_link(meta.host(p, e, s), meta.edge(p, e), l);
            }
            for g in 0..half {
                let l = link_for(&mut components);
                edges.add_with_link(meta.edge(p, e), meta.agg(p, g), l);
            }
        }
        for g in 0..half {
            for j in 0..half {
                let l = link_for(&mut components);
                edges.add_with_link(meta.agg(p, g), meta.core(g, j), l);
            }
        }
    }
    for g in 0..half {
        for j in 0..half {
            let l = link_for(&mut components);
            edges.add_with_link(meta.border(g), meta.core(g, j), l);
        }
        let l = link_for(&mut components);
        edges.add_with_link(meta.border(g), external, l);
    }
    let graph = edges.build(components.len());

    // Round-robin power assignment, §4.1: each switch, then each group of
    // hosts under an edge switch, in deterministic id order.
    let mut power_of = vec![u32::MAX; components.len()];
    let mut rr = RoundRobinPower::new(&power_supplies);
    for c in &components {
        if c.kind.is_switch() {
            power_of[c.id.index()] = rr.next_supply().0;
        }
    }
    for p in 0..host_pods {
        for e in 0..half {
            let supply = rr.next_supply();
            for h in meta.hosts_under_edge(p, e) {
                power_of[h.index()] = supply.0;
            }
        }
    }

    let hosts: Vec<ComponentId> = (0..n_hosts).map(|i| ComponentId(host_base + i as u32)).collect();
    let borders: Vec<ComponentId> =
        (0..n_border).map(|i| ComponentId(border_base + i as u32)).collect();

    Topology::assemble(
        components,
        graph,
        external,
        hosts,
        borders,
        power_supplies,
        power_of,
        TopologyKind::FatTree(meta),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_counts_hold_for_all_scales() {
        for (k, core, agg, edge, border, hosts) in [
            (8u32, 16usize, 28usize, 28usize, 4usize, 112usize),
            (16, 64, 120, 120, 8, 960),
            (24, 144, 276, 276, 12, 3_312),
            (48, 576, 1_128, 1_128, 24, 27_072),
        ] {
            let t = FatTreeParams::new(k).build();
            assert_eq!(t.count_kind(ComponentKind::CoreSwitch), core, "k={k} core");
            assert_eq!(t.count_kind(ComponentKind::AggSwitch), agg, "k={k} agg");
            assert_eq!(t.count_kind(ComponentKind::EdgeSwitch), edge, "k={k} edge");
            assert_eq!(t.count_kind(ComponentKind::BorderSwitch), border, "k={k} border");
            assert_eq!(t.count_kind(ComponentKind::Host), hosts, "k={k} hosts");
            assert_eq!(t.count_kind(ComponentKind::PowerSupply), 5, "k={k} power");
            assert_eq!(t.count_kind(ComponentKind::External), 1, "k={k} external");
        }
    }

    #[test]
    fn degrees_match_fat_tree_structure() {
        let t = FatTreeParams::new(8).build();
        let m = t.fat_tree().unwrap();
        let g = t.graph();
        // Every host has exactly one uplink.
        for &h in t.hosts() {
            assert_eq!(g.degree(h), 1);
        }
        // Edge switch: k/2 hosts + k/2 aggs = k ports.
        assert_eq!(g.degree(m.edge(0, 0)), 8);
        // Agg switch: k/2 edges + k/2 cores = k ports.
        assert_eq!(g.degree(m.agg(0, 0)), 8);
        // Core switch: one agg per host pod + one border = k - 1 + 1 = k... no:
        // core (g, j) connects to agg(p, g) for each of the k-1 host pods and
        // to border(g): degree k.
        assert_eq!(g.degree(m.core(0, 0)), 8);
        // Border switch: k/2 cores + external.
        assert_eq!(g.degree(m.border(0)), 5);
        // External: one edge per border switch.
        assert_eq!(g.degree(t.external()), 4);
    }

    #[test]
    fn host_position_roundtrip() {
        let t = FatTreeParams::new(8).build();
        let m = t.fat_tree().unwrap();
        for p in 0..m.host_pods {
            for e in 0..m.half {
                for s in 0..m.half {
                    let h = m.host(p, e, s);
                    assert_eq!(m.host_position(h), HostPosition { pod: p, edge: e, slot: s });
                    assert!(m.is_host(h));
                }
            }
        }
        assert!(!m.is_host(m.edge(0, 0)));
        assert!(!m.is_host(t.external()));
    }

    #[test]
    fn every_host_connects_to_its_edge_switch() {
        let t = FatTreeParams::new(4).build();
        let m = t.fat_tree().unwrap();
        for &h in t.hosts() {
            let pos = m.host_position(h);
            assert!(t.graph().has_edge(h, m.edge(pos.pod, pos.edge)));
        }
    }

    #[test]
    fn border_switches_cover_all_core_groups_and_external() {
        let t = FatTreeParams::new(8).build();
        let m = t.fat_tree().unwrap();
        for gidx in 0..m.half {
            let b = m.border(gidx);
            for j in 0..m.half {
                assert!(t.graph().has_edge(b, m.core(gidx, j)));
            }
            assert!(t.graph().has_edge(b, t.external()));
        }
    }

    #[test]
    fn with_links_creates_link_components() {
        let t = FatTreeParams::new(4).with_links(true).build();
        let n_links = t.count_kind(ComponentKind::Link);
        assert_eq!(n_links, t.graph().num_edges());
        // Every graph edge must carry a link id now.
        for (a, e) in t.graph().edges() {
            assert!(e.link_id().is_some(), "edge from {a} missing link");
        }
    }

    #[test]
    fn power_round_robin_is_balanced_over_switches() {
        let t = FatTreeParams::new(8).build();
        let mut counts = vec![0usize; t.power_supplies().len()];
        for c in t.components() {
            if c.kind.is_switch() {
                let p = t.power_of(c.id).unwrap();
                let slot = t.power_supplies().iter().position(|&x| x == p).unwrap();
                counts[slot] += 1;
            }
        }
        let total: usize = counts.iter().sum();
        assert_eq!(total, t.num_switches());
        let min = counts.iter().min().unwrap();
        let max = counts.iter().max().unwrap();
        assert!(max - min <= 1, "round-robin must balance within 1: {counts:?}");
    }

    #[test]
    #[should_panic(expected = "even k")]
    fn odd_k_rejected() {
        FatTreeParams::new(5).build();
    }

    #[test]
    #[should_panic(expected = "k >= 4")]
    fn tiny_k_rejected() {
        FatTreeParams::new(2).build();
    }
}
