//! Compact adjacency structure for the network graph.
//!
//! A from-scratch CSR (compressed sparse row) over component ids. Each
//! directed half-edge optionally references a *link component* so that
//! network-connectivity failures (§2.1's third component class) can be
//! sampled like any other component; generators that do not model cable
//! failures store [`NO_LINK`].

use crate::id::ComponentId;

/// Sentinel meaning "this edge has no link component" (the cable is assumed
/// perfectly reliable, as in the paper's evaluation).
pub const NO_LINK: u32 = u32::MAX;

/// One outgoing half-edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HalfEdge {
    /// The neighbor node.
    pub to: ComponentId,
    /// Raw id of the link component guarding this edge, or [`NO_LINK`].
    pub link: u32,
}

impl HalfEdge {
    /// The link component guarding this edge, if one was modeled.
    #[inline]
    pub fn link_id(&self) -> Option<ComponentId> {
        (self.link != NO_LINK).then_some(ComponentId(self.link))
    }
}

/// Undirected graph in CSR form. Nodes are component ids in `0..n`.
///
/// Non-network components (power supplies, software, …) may own node slots;
/// they simply have degree zero.
#[derive(Clone, Debug)]
pub struct Csr {
    /// `offsets[v]..offsets[v+1]` indexes `edges` for node `v`.
    offsets: Vec<u32>,
    edges: Vec<HalfEdge>,
}

/// Incremental edge accumulator; call [`EdgeList::build`] to freeze into CSR.
#[derive(Clone, Debug, Default)]
pub struct EdgeList {
    edges: Vec<(u32, u32, u32)>, // (a, b, link)
    max_node: u32,
}

impl EdgeList {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an undirected edge between `a` and `b` with no link component.
    pub fn add(&mut self, a: ComponentId, b: ComponentId) {
        self.add_with_link(a, b, None);
    }

    /// Adds an undirected edge guarded by an optional link component.
    pub fn add_with_link(&mut self, a: ComponentId, b: ComponentId, link: Option<ComponentId>) {
        assert_ne!(a, b, "self-loop edges are not meaningful in a data center");
        let l = link.map_or(NO_LINK, |c| c.0);
        self.edges.push((a.0, b.0, l));
        self.max_node = self.max_node.max(a.0).max(b.0).max(if l == NO_LINK { 0 } else { l });
    }

    /// Number of undirected edges added so far.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True if no edges were added.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Freezes into a CSR with at least `n_nodes` node slots.
    pub fn build(self, n_nodes: usize) -> Csr {
        let n = n_nodes.max(self.max_node as usize + 1);
        let mut degree = vec![0u32; n];
        for &(a, b, _) in &self.edges {
            degree[a as usize] += 1;
            degree[b as usize] += 1;
        }
        let mut offsets = vec![0u32; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + degree[v];
        }
        let mut cursor = offsets[..n].to_vec();
        let mut edges = vec![HalfEdge { to: ComponentId(0), link: NO_LINK }; offsets[n] as usize];
        for &(a, b, l) in &self.edges {
            edges[cursor[a as usize] as usize] = HalfEdge { to: ComponentId(b), link: l };
            cursor[a as usize] += 1;
            edges[cursor[b as usize] as usize] = HalfEdge { to: ComponentId(a), link: l };
            cursor[b as usize] += 1;
        }
        Csr { offsets, edges }
    }
}

impl Csr {
    /// An empty graph with `n` isolated nodes.
    pub fn empty(n: usize) -> Self {
        Csr { offsets: vec![0; n + 1], edges: Vec::new() }
    }

    /// Number of node slots.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len() / 2
    }

    /// Degree of node `v`.
    #[inline]
    pub fn degree(&self, v: ComponentId) -> usize {
        let v = v.index();
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// Outgoing half-edges of node `v`.
    #[inline]
    pub fn neighbors(&self, v: ComponentId) -> &[HalfEdge] {
        let v = v.index();
        &self.edges[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// True if an edge `{a, b}` exists.
    pub fn has_edge(&self, a: ComponentId, b: ComponentId) -> bool {
        self.neighbors(a).iter().any(|e| e.to == b)
    }

    /// Iterates every undirected edge once (`a < b` by id).
    pub fn edges(&self) -> impl Iterator<Item = (ComponentId, HalfEdge)> + '_ {
        (0..self.num_nodes()).flat_map(move |v| {
            let a = ComponentId::from_index(v);
            self.neighbors(a).iter().filter(move |e| a.0 < e.to.0).map(move |e| (a, *e))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u32) -> ComponentId {
        ComponentId(i)
    }

    #[test]
    fn builds_symmetric_adjacency() {
        let mut el = EdgeList::new();
        el.add(c(0), c(1));
        el.add(c(1), c(2));
        el.add(c(0), c(2));
        let g = el.build(4);
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(c(0)), 2);
        assert_eq!(g.degree(c(3)), 0);
        assert!(g.has_edge(c(0), c(1)));
        assert!(g.has_edge(c(1), c(0)));
        assert!(!g.has_edge(c(0), c(3)));
    }

    #[test]
    fn edges_iterates_each_once() {
        let mut el = EdgeList::new();
        el.add(c(0), c(1));
        el.add(c(2), c(1));
        let g = el.build(3);
        let all: Vec<_> = g.edges().map(|(a, e)| (a.0, e.to.0)).collect();
        assert_eq!(all.len(), 2);
        assert!(all.contains(&(0, 1)));
        assert!(all.contains(&(1, 2)));
    }

    #[test]
    fn link_components_attach_to_both_halves() {
        let mut el = EdgeList::new();
        el.add_with_link(c(0), c(1), Some(c(5)));
        let g = el.build(6);
        assert_eq!(g.neighbors(c(0))[0].link_id(), Some(c(5)));
        assert_eq!(g.neighbors(c(1))[0].link_id(), Some(c(5)));
        assert_eq!(g.num_nodes(), 6);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::empty(3);
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degree(c(1)), 0);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loops() {
        let mut el = EdgeList::new();
        el.add(c(1), c(1));
    }
}
