//! Round-robin power-supply assignment (§4.1).
//!
//! The paper adds five shared power supplies per data center and assigns
//! one "in round-robin to each switch, as well as the group of hosts under
//! each edge switch, to maximize the power diversity". This module is the
//! tiny deterministic dispenser backing that rule, shared by all generators.

use crate::id::ComponentId;

/// Cycles through a fixed list of power supplies.
#[derive(Clone, Debug)]
pub struct RoundRobinPower<'a> {
    supplies: &'a [ComponentId],
    cursor: usize,
}

impl<'a> RoundRobinPower<'a> {
    /// Creates a dispenser over the given supplies.
    ///
    /// # Panics
    /// Panics if `supplies` is empty — a data center without power cannot
    /// host anything.
    pub fn new(supplies: &'a [ComponentId]) -> Self {
        assert!(!supplies.is_empty(), "need at least one power supply");
        RoundRobinPower { supplies, cursor: 0 }
    }

    /// Returns the next supply in rotation.
    pub fn next_supply(&mut self) -> ComponentId {
        let s = self.supplies[self.cursor];
        self.cursor = (self.cursor + 1) % self.supplies.len();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_in_order() {
        let s = [ComponentId(10), ComponentId(11), ComponentId(12)];
        let mut rr = RoundRobinPower::new(&s);
        let drawn: Vec<_> = (0..7).map(|_| rr.next_supply().0).collect();
        assert_eq!(drawn, vec![10, 11, 12, 10, 11, 12, 10]);
    }

    #[test]
    #[should_panic(expected = "at least one power supply")]
    fn empty_supply_list_rejected() {
        RoundRobinPower::new(&[]);
    }
}
