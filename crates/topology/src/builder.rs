//! Hand-built topologies for tests, examples and exotic deployments.
//!
//! The builder covers what the generators do not: tiny ground-truth models
//! (where the exact reliability can be enumerated), asymmetric or partially
//! degraded fabrics, and whatever a cloud management platform would export.

use crate::component::{Component, ComponentKind};
use crate::graph::EdgeList;
use crate::id::ComponentId;
use crate::topology::{Topology, TopologyKind};

/// Incremental topology constructor.
///
/// ```
/// use recloud_topology::{TopologyBuilder, ComponentKind};
///
/// let mut b = TopologyBuilder::new();
/// let ext = b.external();
/// let sw = b.add(ComponentKind::BorderSwitch);
/// let h1 = b.add(ComponentKind::Host);
/// let h2 = b.add(ComponentKind::Host);
/// b.connect(ext, sw);
/// b.connect(sw, h1);
/// b.connect(sw, h2);
/// b.mark_border(sw);
/// let topo = b.build();
/// assert_eq!(topo.num_hosts(), 2);
/// assert_eq!(topo.border_switches(), &[sw]);
/// ```
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    components: Vec<Component>,
    edges: EdgeList,
    external: Option<ComponentId>,
    borders: Vec<ComponentId>,
    power_supplies: Vec<ComponentId>,
    power_pairs: Vec<(ComponentId, ComponentId)>, // (consumer, supply)
    kind_counts: std::collections::HashMap<ComponentKind, u32>,
}

impl TopologyBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a component of the given kind and returns its id.
    pub fn add(&mut self, kind: ComponentKind) -> ComponentId {
        let ordinal = self.kind_counts.entry(kind).or_insert(0);
        let id = ComponentId::from_index(self.components.len());
        self.components.push(Component { id, kind, ordinal: *ordinal });
        *ordinal += 1;
        if kind == ComponentKind::PowerSupply {
            self.power_supplies.push(id);
        }
        id
    }

    /// Returns the external node, creating it on first call.
    ///
    /// # Panics
    /// Panics if called through [`TopologyBuilder::add`] twice — a topology
    /// has exactly one external world.
    pub fn external(&mut self) -> ComponentId {
        if let Some(e) = self.external {
            return e;
        }
        let e = self.add(ComponentKind::External);
        self.external = Some(e);
        e
    }

    /// Adds `n` hosts and returns their ids.
    pub fn add_hosts(&mut self, n: usize) -> Vec<ComponentId> {
        (0..n).map(|_| self.add(ComponentKind::Host)).collect()
    }

    /// Connects two components with a perfectly reliable cable.
    pub fn connect(&mut self, a: ComponentId, b: ComponentId) {
        self.edges.add(a, b);
    }

    /// Connects two components through a fallible `Link` component, which is
    /// created and returned.
    pub fn connect_via_link(&mut self, a: ComponentId, b: ComponentId) -> ComponentId {
        let link = self.add(ComponentKind::Link);
        self.edges.add_with_link(a, b, Some(link));
        link
    }

    /// Marks a switch as a border switch (peering with the external world).
    pub fn mark_border(&mut self, sw: ComponentId) {
        assert!(
            self.components[sw.index()].kind.is_switch(),
            "only switches can be border switches"
        );
        if !self.borders.contains(&sw) {
            self.borders.push(sw);
        }
    }

    /// Declares that `consumer` draws power from `supply`.
    pub fn draw_power(&mut self, consumer: ComponentId, supply: ComponentId) {
        assert_eq!(
            self.components[supply.index()].kind,
            ComponentKind::PowerSupply,
            "power source must be a PowerSupply component"
        );
        self.power_pairs.push((consumer, supply));
    }

    /// Number of components added so far.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// True if nothing has been added.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Finalizes the topology.
    ///
    /// # Panics
    /// Panics if no external node was created (route-and-check needs one)
    /// or no border switch was marked.
    pub fn build(mut self) -> Topology {
        let external = self.external.expect("builder topology needs an external node");
        assert!(!self.borders.is_empty(), "builder topology needs at least one border switch");
        // The external node peers with each border switch so that
        // route-and-check always has an entry point. A duplicate edge is
        // harmless for BFS (parallel edges just repeat a neighbor), so no
        // dedup pass is needed.
        for &b in &self.borders.clone() {
            self.edges.add(external, b);
        }
        let n = self.components.len();
        let graph = self.edges.build(n);
        let mut power_of = vec![u32::MAX; n];
        for (consumer, supply) in &self.power_pairs {
            power_of[consumer.index()] = supply.0;
        }
        let hosts = self
            .components
            .iter()
            .filter(|c| c.kind == ComponentKind::Host)
            .map(|c| c.id)
            .collect();
        Topology::assemble(
            self.components,
            graph,
            external,
            hosts,
            self.borders,
            self.power_supplies,
            power_of,
            TopologyKind::Custom,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_minimal_topology() {
        let mut b = TopologyBuilder::new();
        let ext = b.external();
        let sw = b.add(ComponentKind::BorderSwitch);
        let hosts = b.add_hosts(3);
        for &h in &hosts {
            b.connect(sw, h);
        }
        b.mark_border(sw);
        let t = b.build();
        assert_eq!(t.num_hosts(), 3);
        assert_eq!(t.external(), ext);
        assert!(t.graph().has_edge(ext, sw));
        assert_eq!(t.rack_of(hosts[0]), sw);
    }

    #[test]
    fn power_pairs_are_recorded() {
        let mut b = TopologyBuilder::new();
        b.external();
        let sw = b.add(ComponentKind::BorderSwitch);
        b.mark_border(sw);
        let h = b.add(ComponentKind::Host);
        b.connect(sw, h);
        let p = b.add(ComponentKind::PowerSupply);
        b.draw_power(h, p);
        b.draw_power(sw, p);
        let t = b.build();
        assert_eq!(t.power_of(h), Some(p));
        assert_eq!(t.power_of(sw), Some(p));
        assert_eq!(t.power_supplies(), &[p]);
    }

    #[test]
    fn link_components_via_builder() {
        let mut b = TopologyBuilder::new();
        b.external();
        let sw = b.add(ComponentKind::BorderSwitch);
        b.mark_border(sw);
        let h = b.add(ComponentKind::Host);
        let link = b.connect_via_link(sw, h);
        let t = b.build();
        let e = t.graph().neighbors(h).iter().find(|e| e.to == sw).unwrap();
        assert_eq!(e.link_id(), Some(link));
    }

    #[test]
    #[should_panic(expected = "external node")]
    fn missing_external_rejected() {
        let mut b = TopologyBuilder::new();
        let sw = b.add(ComponentKind::BorderSwitch);
        b.mark_border(sw);
        b.build();
    }

    #[test]
    #[should_panic(expected = "border switch")]
    fn missing_border_rejected() {
        let mut b = TopologyBuilder::new();
        b.external();
        b.add(ComponentKind::Host);
        b.build();
    }

    #[test]
    #[should_panic(expected = "only switches")]
    fn host_cannot_be_border() {
        let mut b = TopologyBuilder::new();
        b.external();
        let h = b.add(ComponentKind::Host);
        b.mark_border(h);
    }
}
