//! Graphviz (DOT) export for topologies.
//!
//! Operators debug placement decisions visually; a DOT dump of the
//! network graph — optionally overlaid with a deployment plan's hosts and
//! a round's failure states — renders directly with `dot -Tsvg`.

use crate::component::ComponentKind;
use crate::id::ComponentId;
use crate::topology::Topology;
use std::fmt::Write as _;

/// Rendering options for [`to_dot`].
#[derive(Clone, Debug, Default)]
pub struct DotOptions {
    /// Hosts to highlight (e.g. a deployment plan's instances).
    pub highlight: Vec<ComponentId>,
    /// Components to render as failed (red), e.g. one round's states.
    pub failed: Vec<ComponentId>,
    /// Skip hosts entirely (useful for large fabrics where only the
    /// switch skeleton is of interest).
    pub switches_only: bool,
}

fn shape(kind: ComponentKind) -> &'static str {
    match kind {
        ComponentKind::Host => "ellipse",
        ComponentKind::External => "doublecircle",
        ComponentKind::PowerSupply => "diamond",
        ComponentKind::CoolingUnit => "trapezium",
        ComponentKind::Software(_) => "note",
        ComponentKind::Link => "point",
        _ => "box", // all switch tiers
    }
}

/// Renders the topology as a DOT graph.
pub fn to_dot(topology: &Topology, options: &DotOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph recloud {{");
    let _ = writeln!(out, "  graph [overlap=false, splines=true];");
    let _ = writeln!(out, "  node [fontsize=9];");
    for c in topology.components() {
        if options.switches_only && c.kind == ComponentKind::Host {
            continue;
        }
        if c.kind == ComponentKind::Link {
            continue; // links are drawn as edges, not nodes
        }
        let mut attrs = format!("label=\"{}\", shape={}", c.name(), shape(c.kind));
        if options.failed.contains(&c.id) {
            attrs.push_str(", style=filled, fillcolor=\"#e57373\"");
        } else if options.highlight.contains(&c.id) {
            attrs.push_str(", style=filled, fillcolor=\"#81c784\", penwidth=2");
        } else if c.kind.is_switch() {
            attrs.push_str(", style=filled, fillcolor=\"#eeeeee\"");
        }
        let _ = writeln!(out, "  n{} [{attrs}];", c.id.0);
    }
    for (a, e) in topology.graph().edges() {
        if options.switches_only
            && (topology.kind_of(a) == ComponentKind::Host
                || topology.kind_of(e.to) == ComponentKind::Host)
        {
            continue;
        }
        let style = match e.link_id() {
            Some(link) if options.failed.contains(&link) => " [color=red, style=dashed]",
            _ => "",
        };
        let _ = writeln!(out, "  n{} -- n{}{style};", a.0, e.to.0);
    }
    // Power assignment as dotted edges.
    for c in topology.components() {
        if options.switches_only && c.kind == ComponentKind::Host {
            continue;
        }
        if let Some(p) = topology.power_of(c.id) {
            let _ = writeln!(out, "  n{} -- n{} [style=dotted, color=gray];", c.id.0, p.0);
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fattree::FatTreeParams;

    #[test]
    fn renders_valid_dot_skeleton() {
        let t = FatTreeParams::new(4).build();
        let dot = to_dot(&t, &DotOptions::default());
        assert!(dot.starts_with("graph recloud {"));
        assert!(dot.trim_end().ends_with('}'));
        // Every component is a node.
        assert!(dot.contains("label=\"host0\""));
        assert!(dot.contains("label=\"core0\""));
        assert!(dot.contains("label=\"power0\", shape=diamond"));
        // Edges use the undirected syntax.
        assert!(dot.contains(" -- "));
    }

    #[test]
    fn highlight_and_failed_styles() {
        let t = FatTreeParams::new(4).build();
        let h = t.hosts()[0];
        let e = t.rack_of(h);
        let dot =
            to_dot(&t, &DotOptions { highlight: vec![h], failed: vec![e], switches_only: false });
        assert!(dot.contains(&format!(
            "n{} [label=\"host0\", shape=ellipse, style=filled, fillcolor=\"#81c784\"",
            h.0
        )));
        assert!(dot.contains("fillcolor=\"#e57373\""));
    }

    #[test]
    fn switches_only_drops_hosts() {
        let t = FatTreeParams::new(4).build();
        let dot = to_dot(&t, &DotOptions { switches_only: true, ..Default::default() });
        assert!(!dot.contains("shape=ellipse"));
        assert!(dot.contains("label=\"agg0\""));
    }

    #[test]
    fn node_count_matches_components() {
        let t = FatTreeParams::new(4).build();
        let dot = to_dot(&t, &DotOptions::default());
        let nodes = dot
            .lines()
            .filter(|l| {
                let t = l.trim_start();
                // Node lines look like `n<id> [label=...]`; skip the
                // global `node [fontsize=9];` default line.
                t.starts_with('n')
                    && !t.starts_with("node ")
                    && t.contains('[')
                    && !t.contains(" -- ")
            })
            .count();
        assert_eq!(nodes, t.num_components()); // no Link components here
    }
}
