//! VL2 generator: the Clos network of Greenberg et al. (SIGCOMM '09),
//! the paper's citation [31].
//!
//! VL2 is a three-tier Clos built from two switch port counts:
//!
//! * `d_i`-port **intermediate** switches (the top tier);
//! * `d_a`-port **aggregation** switches — `d_a/2` uplinks (one to each
//!   of the `d_a/2` intermediate switches, a full bipartite mesh) and
//!   `d_a/2` downlinks to ToRs;
//! * **ToR** switches with 2 uplinks to two distinct aggregation switches
//!   and `servers_per_tor` (canonically 20) server ports.
//!
//! We follow the canonical sizing: `d_a/2` intermediate switches, `d_i`
//! aggregation switches, `d_i · d_a/4` ToRs, `20 · d_i · d_a/4` servers.
//! External connectivity peers a configurable number of intermediate
//! switches with the external node.

use crate::component::{Component, ComponentKind};
use crate::graph::EdgeList;
use crate::id::ComponentId;
use crate::power::RoundRobinPower;
use crate::topology::{Topology, TopologyKind};

/// Parameters for a VL2 topology.
#[derive(Clone, Copy, Debug)]
pub struct Vl2Params {
    /// Aggregation switch port count `d_a` (even, ≥ 4). There are
    /// `d_a/2` intermediate switches.
    pub d_a: u32,
    /// Intermediate switch port count `d_i` (≥ 2). There are `d_i`
    /// aggregation switches.
    pub d_i: u32,
    /// Servers per ToR (canonical VL2: 20).
    pub servers_per_tor: u32,
    /// How many intermediate switches peer with the external world.
    pub border_switches: u32,
    /// Number of shared power supplies.
    pub power_supplies: u32,
}

impl Vl2Params {
    /// Canonical VL2 with 20 servers per ToR, 2 border intermediates and
    /// 5 power supplies.
    pub fn new(d_a: u32, d_i: u32) -> Self {
        Vl2Params { d_a, d_i, servers_per_tor: 20, border_switches: 2, power_supplies: 5 }
    }

    /// Overrides the servers-per-ToR count.
    pub fn servers_per_tor(mut self, n: u32) -> Self {
        self.servers_per_tor = n;
        self
    }

    /// Number of ToR switches: `d_i · d_a / 4`.
    pub fn num_tors(&self) -> usize {
        (self.d_i * self.d_a / 4) as usize
    }

    /// Number of servers.
    pub fn num_servers(&self) -> usize {
        self.num_tors() * self.servers_per_tor as usize
    }

    /// Builds the topology.
    ///
    /// # Panics
    /// Panics on odd/small `d_a`, `d_i < 2`, zero servers per ToR, or an
    /// invalid border count.
    pub fn build(self) -> Topology {
        assert!(self.d_a >= 4 && self.d_a.is_multiple_of(2), "d_a must be even and >= 4");
        assert!(self.d_i >= 2, "d_i must be >= 2");
        assert!(self.servers_per_tor >= 1, "need at least one server per ToR");
        let n_int = (self.d_a / 2) as usize;
        assert!(
            self.border_switches >= 1 && (self.border_switches as usize) <= n_int,
            "border_switches must be in 1..=d_a/2"
        );
        let n_agg = self.d_i as usize;
        let n_tor = self.num_tors();
        let n_servers = self.num_servers();
        let n_power = self.power_supplies as usize;

        let mut components = Vec::with_capacity(n_int + n_agg + n_tor + n_servers + 1 + n_power);
        let push = |components: &mut Vec<Component>, kind, ordinal| {
            let id = ComponentId::from_index(components.len());
            components.push(Component { id, kind, ordinal });
            id
        };
        let int_base = 0u32;
        for i in 0..n_int {
            push(&mut components, ComponentKind::CoreSwitch, i as u32);
        }
        let agg_base = components.len() as u32;
        for i in 0..n_agg {
            push(&mut components, ComponentKind::AggSwitch, i as u32);
        }
        let tor_base = components.len() as u32;
        for i in 0..n_tor {
            push(&mut components, ComponentKind::EdgeSwitch, i as u32);
        }
        let host_base = components.len() as u32;
        for i in 0..n_servers {
            push(&mut components, ComponentKind::Host, i as u32);
        }
        let external = push(&mut components, ComponentKind::External, 0);
        let mut power_supplies = Vec::with_capacity(n_power);
        for i in 0..n_power {
            power_supplies.push(push(&mut components, ComponentKind::PowerSupply, i as u32));
        }

        let mut edges = EdgeList::new();
        // Full bipartite agg <-> intermediate.
        for a in 0..n_agg {
            for i in 0..n_int {
                edges.add(ComponentId(agg_base + a as u32), ComponentId(int_base + i as u32));
            }
        }
        // Each ToR connects to two distinct aggregation switches. VL2
        // pairs them deterministically: ToR t -> agg (2t) and (2t+1)
        // modulo the agg count, which spreads ToRs evenly.
        for t in 0..n_tor {
            let a1 = (2 * t) % n_agg;
            let mut a2 = (2 * t + 1) % n_agg;
            if a2 == a1 {
                a2 = (a1 + 1) % n_agg;
            }
            let tor = ComponentId(tor_base + t as u32);
            edges.add(tor, ComponentId(agg_base + a1 as u32));
            edges.add(tor, ComponentId(agg_base + a2 as u32));
            for s in 0..self.servers_per_tor as usize {
                edges.add(
                    ComponentId(host_base + (t * self.servers_per_tor as usize + s) as u32),
                    tor,
                );
            }
        }
        let mut borders = Vec::new();
        for b in 0..self.border_switches {
            let sw = ComponentId(int_base + b);
            edges.add(sw, external);
            borders.push(sw);
        }
        let graph = edges.build(components.len());

        let mut power_of = vec![u32::MAX; components.len()];
        let mut rr = RoundRobinPower::new(&power_supplies);
        for c in &components {
            if c.kind.is_switch() {
                power_of[c.id.index()] = rr.next_supply().0;
            }
        }
        for t in 0..n_tor {
            let supply = rr.next_supply();
            for s in 0..self.servers_per_tor as usize {
                power_of[host_base as usize + t * self.servers_per_tor as usize + s] = supply.0;
            }
        }

        let hosts = (0..n_servers).map(|i| ComponentId(host_base + i as u32)).collect();
        Topology::assemble(
            components,
            graph,
            external,
            hosts,
            borders,
            power_supplies,
            power_of,
            TopologyKind::Custom,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_sizing() {
        // d_a = 8, d_i = 4: 4 intermediates, 4 aggs, 8 ToRs, 160 servers.
        let p = Vl2Params::new(8, 4);
        assert_eq!(p.num_tors(), 8);
        assert_eq!(p.num_servers(), 160);
        let t = p.build();
        assert_eq!(t.count_kind(ComponentKind::CoreSwitch), 4);
        assert_eq!(t.count_kind(ComponentKind::AggSwitch), 4);
        assert_eq!(t.count_kind(ComponentKind::EdgeSwitch), 8);
        assert_eq!(t.num_hosts(), 160);
    }

    #[test]
    fn tors_have_two_distinct_uplinks() {
        let t = Vl2Params::new(8, 4).servers_per_tor(2).build();
        for c in t.components() {
            if c.kind == ComponentKind::EdgeSwitch {
                let aggs: Vec<_> = t
                    .graph()
                    .neighbors(c.id)
                    .iter()
                    .filter(|e| t.kind_of(e.to) == ComponentKind::AggSwitch)
                    .map(|e| e.to)
                    .collect();
                assert_eq!(aggs.len(), 2, "{c}");
                assert_ne!(aggs[0], aggs[1], "{c}");
            }
        }
    }

    #[test]
    fn agg_layer_is_fully_meshed_to_intermediates() {
        let t = Vl2Params::new(6, 3).servers_per_tor(1).build();
        for c in t.components() {
            if c.kind == ComponentKind::AggSwitch {
                let ints = t
                    .graph()
                    .neighbors(c.id)
                    .iter()
                    .filter(|e| t.kind_of(e.to) == ComponentKind::CoreSwitch)
                    .count();
                assert_eq!(ints, 3, "every agg reaches every intermediate");
            }
        }
    }

    #[test]
    fn servers_share_tor_power_group() {
        let t = Vl2Params::new(8, 4).servers_per_tor(5).build();
        for tor in 0..8usize {
            let base = t.hosts()[tor * 5];
            let p = t.power_of(base).unwrap();
            for s in 0..5usize {
                assert_eq!(t.power_of(t.hosts()[tor * 5 + s]), Some(p));
            }
        }
    }

    #[test]
    #[should_panic(expected = "d_a must be even")]
    fn odd_da_rejected() {
        Vl2Params::new(7, 4).build();
    }
}
