//! Two-tier leaf-spine generator.
//!
//! reCloud "is general and works with any of these architectures" (§3.1);
//! the route-and-check step only needs the architecture's routing protocol
//! swapped (§3.2.1). This generator provides the simplest widely-deployed
//! alternative to fat-tree: every leaf connects to every spine, hosts hang
//! off leaves, and a configurable number of *border leaves* peer with the
//! external world through the spines... more precisely, the external node
//! attaches to a subset of spines, mirroring how border/exit spines are
//! deployed in practice.

use crate::component::{Component, ComponentKind};
use crate::graph::EdgeList;
use crate::id::ComponentId;
use crate::power::RoundRobinPower;
use crate::topology::{Topology, TopologyKind};

/// Parameters for a leaf-spine fabric.
#[derive(Clone, Copy, Debug)]
pub struct LeafSpineParams {
    /// Number of spine switches (≥ 1).
    pub spines: u32,
    /// Number of leaf switches (≥ 1).
    pub leaves: u32,
    /// Hosts attached to each leaf.
    pub hosts_per_leaf: u32,
    /// How many spines peer with the external world (≥ 1, ≤ spines).
    pub border_spines: u32,
    /// Number of shared power supplies.
    pub power_supplies: u32,
}

impl LeafSpineParams {
    /// A fabric with the given dimensions, 2 border spines (capped at
    /// `spines`) and 5 power supplies.
    pub fn new(spines: u32, leaves: u32, hosts_per_leaf: u32) -> Self {
        LeafSpineParams {
            spines,
            leaves,
            hosts_per_leaf,
            border_spines: 2.min(spines),
            power_supplies: 5,
        }
    }

    /// Overrides the number of border spines.
    pub fn border_spines(mut self, n: u32) -> Self {
        self.border_spines = n;
        self
    }

    /// Overrides the number of power supplies.
    pub fn power_supplies(mut self, n: u32) -> Self {
        self.power_supplies = n;
        self
    }

    /// Builds the topology.
    ///
    /// # Panics
    /// Panics on zero spines/leaves/hosts-per-leaf or if
    /// `border_spines` is zero or exceeds `spines`.
    pub fn build(self) -> Topology {
        assert!(self.spines >= 1 && self.leaves >= 1 && self.hosts_per_leaf >= 1);
        assert!(
            self.border_spines >= 1 && self.border_spines <= self.spines,
            "border_spines must be in 1..=spines"
        );
        let n_spine = self.spines as usize;
        let n_leaf = self.leaves as usize;
        let n_hosts = (self.leaves * self.hosts_per_leaf) as usize;
        let n_power = self.power_supplies as usize;

        let mut components = Vec::with_capacity(n_spine + n_leaf + n_hosts + 1 + n_power);
        let push = |components: &mut Vec<Component>, kind, ordinal| {
            let id = ComponentId::from_index(components.len());
            components.push(Component { id, kind, ordinal });
            id
        };

        let spine_base = 0u32;
        for i in 0..n_spine {
            push(&mut components, ComponentKind::CoreSwitch, i as u32);
        }
        let leaf_base = components.len() as u32;
        for i in 0..n_leaf {
            push(&mut components, ComponentKind::EdgeSwitch, i as u32);
        }
        let host_base = components.len() as u32;
        for i in 0..n_hosts {
            push(&mut components, ComponentKind::Host, i as u32);
        }
        let external = push(&mut components, ComponentKind::External, 0);
        let mut power_supplies = Vec::with_capacity(n_power);
        for i in 0..n_power {
            power_supplies.push(push(&mut components, ComponentKind::PowerSupply, i as u32));
        }

        let mut edges = EdgeList::new();
        for l in 0..self.leaves {
            let leaf = ComponentId(leaf_base + l);
            for s in 0..self.spines {
                edges.add(leaf, ComponentId(spine_base + s));
            }
            for h in 0..self.hosts_per_leaf {
                edges.add(ComponentId(host_base + l * self.hosts_per_leaf + h), leaf);
            }
        }
        // Border spines peer with the external world. They remain regular
        // spines for east-west traffic; we record them as the topology's
        // border switches.
        let mut borders = Vec::new();
        for s in 0..self.border_spines {
            let spine = ComponentId(spine_base + s);
            edges.add(spine, external);
            borders.push(spine);
        }
        let graph = edges.build(components.len());

        let mut power_of = vec![u32::MAX; components.len()];
        let mut rr = RoundRobinPower::new(&power_supplies);
        for c in &components {
            if c.kind.is_switch() {
                power_of[c.id.index()] = rr.next_supply().0;
            }
        }
        for l in 0..self.leaves {
            let supply = rr.next_supply();
            for h in 0..self.hosts_per_leaf {
                power_of[(host_base + l * self.hosts_per_leaf + h) as usize] = supply.0;
            }
        }

        let hosts = (0..n_hosts).map(|i| ComponentId(host_base + i as u32)).collect();
        Topology::assemble(
            components,
            graph,
            external,
            hosts,
            borders,
            power_supplies,
            power_of,
            TopologyKind::LeafSpine {
                spines: self.spines,
                leaves: self.leaves,
                hosts_per_leaf: self.hosts_per_leaf,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_degrees() {
        let t = LeafSpineParams::new(4, 6, 8).build();
        assert_eq!(t.num_hosts(), 48);
        assert_eq!(t.count_kind(ComponentKind::CoreSwitch), 4);
        assert_eq!(t.count_kind(ComponentKind::EdgeSwitch), 6);
        assert_eq!(t.border_switches().len(), 2);
        // Leaf degree: spines + hosts.
        let leaf = t.rack_of(t.hosts()[0]);
        assert_eq!(t.graph().degree(leaf), 4 + 8);
        // Border spine degree: leaves + external.
        assert_eq!(t.graph().degree(t.border_switches()[0]), 6 + 1);
        // Non-border spine degree: leaves only.
        let non_border = ComponentId(3);
        assert_eq!(t.graph().degree(non_border), 6);
        assert_eq!(t.graph().degree(t.external()), 2);
    }

    #[test]
    fn hosts_on_same_leaf_share_power() {
        let t = LeafSpineParams::new(2, 3, 4).build();
        for l in 0..3u32 {
            let base = t.hosts()[(l * 4) as usize];
            let p = t.power_of(base).unwrap();
            for h in 0..4usize {
                assert_eq!(t.power_of(t.hosts()[l as usize * 4 + h]), Some(p));
            }
        }
    }

    #[test]
    #[should_panic(expected = "border_spines")]
    fn too_many_border_spines_rejected() {
        LeafSpineParams::new(2, 2, 2).border_spines(3).build();
    }
}
