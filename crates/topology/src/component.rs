//! Infrastructure component descriptions.
//!
//! The paper's fault model (§2.1) considers three classes of components:
//! hardware (servers, switches, power supplies, cooling systems), software
//! (OS, libraries, firmware deployed on hardware), and network (connectivity
//! between hardware). Every one of them is representable here; every one is
//! in exactly one of two states per sampling round — alive or failed —
//! with partially-failed treated as failed.

use crate::id::ComponentId;
use std::fmt;

/// The role a component plays in the infrastructure.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ComponentKind {
    /// A physical server that can run application instances.
    Host,
    /// Top-of-rack / edge-tier switch (hosts hang off these).
    EdgeSwitch,
    /// Aggregation-tier switch inside a pod.
    AggSwitch,
    /// Core-tier switch.
    CoreSwitch,
    /// Switch peering with external entities (the dedicated border pod in
    /// the paper's Google-style external connectivity, §3.1).
    BorderSwitch,
    /// A generic switch for builder-made topologies that do not fit the
    /// edge/agg/core taxonomy (e.g. Jellyfish).
    Switch,
    /// The external world. Exactly one per topology; always alive.
    External,
    /// A power supply feeding switches and host groups (§4.1 adds five of
    /// these per data center as the representative shared dependency).
    PowerSupply,
    /// A cooling unit (rack- or room-level).
    CoolingUnit,
    /// A software component deployed on hardware.
    Software(SoftwareKind),
    /// A network link between two network components. Optional: generators
    /// only create link components when asked, since the paper's evaluation
    /// fails hosts/switches/power, not cables.
    Link,
}

/// Sub-classification of software components, used by dependency catalogs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SoftwareKind {
    /// An operating system image.
    Os,
    /// A shared library / package (what `apt-rdepends` would surface).
    Library,
    /// Device firmware (what `lshw` would surface).
    Firmware,
    /// Anything else.
    Other,
}

impl ComponentKind {
    /// True for components that participate in the routing graph
    /// (hosts, switches and the external node). Dependency-only components
    /// (power, cooling, software) never carry traffic.
    pub fn is_network_node(self) -> bool {
        matches!(
            self,
            ComponentKind::Host
                | ComponentKind::EdgeSwitch
                | ComponentKind::AggSwitch
                | ComponentKind::CoreSwitch
                | ComponentKind::BorderSwitch
                | ComponentKind::Switch
                | ComponentKind::External
        )
    }

    /// True for any kind of switch.
    pub fn is_switch(self) -> bool {
        matches!(
            self,
            ComponentKind::EdgeSwitch
                | ComponentKind::AggSwitch
                | ComponentKind::CoreSwitch
                | ComponentKind::BorderSwitch
                | ComponentKind::Switch
        )
    }

    /// Short human-readable tag used in component names and debug output.
    pub fn tag(self) -> &'static str {
        match self {
            ComponentKind::Host => "host",
            ComponentKind::EdgeSwitch => "edge",
            ComponentKind::AggSwitch => "agg",
            ComponentKind::CoreSwitch => "core",
            ComponentKind::BorderSwitch => "border",
            ComponentKind::Switch => "switch",
            ComponentKind::External => "external",
            ComponentKind::PowerSupply => "power",
            ComponentKind::CoolingUnit => "cooling",
            ComponentKind::Software(SoftwareKind::Os) => "os",
            ComponentKind::Software(SoftwareKind::Library) => "lib",
            ComponentKind::Software(SoftwareKind::Firmware) => "firmware",
            ComponentKind::Software(SoftwareKind::Other) => "software",
            ComponentKind::Link => "link",
        }
    }
}

impl fmt::Display for ComponentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// One infrastructure component in the arena.
#[derive(Clone, Debug, PartialEq)]
pub struct Component {
    /// The component's dense id (equal to its arena position).
    pub id: ComponentId,
    /// What the component is.
    pub kind: ComponentKind,
    /// Index of this component among components of the same kind, in
    /// creation order. E.g. `host 17` or `agg 3`. Together with `kind`
    /// this names the component uniquely.
    pub ordinal: u32,
}

impl Component {
    /// Canonical name, e.g. `host17` or `border3`.
    pub fn name(&self) -> String {
        format!("{}{}", self.kind.tag(), self.ordinal)
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.kind.tag(), self.ordinal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn network_node_classification() {
        assert!(ComponentKind::Host.is_network_node());
        assert!(ComponentKind::BorderSwitch.is_network_node());
        assert!(ComponentKind::External.is_network_node());
        assert!(!ComponentKind::PowerSupply.is_network_node());
        assert!(!ComponentKind::Software(SoftwareKind::Os).is_network_node());
        assert!(!ComponentKind::Link.is_network_node());
    }

    #[test]
    fn switch_classification() {
        assert!(ComponentKind::EdgeSwitch.is_switch());
        assert!(ComponentKind::AggSwitch.is_switch());
        assert!(ComponentKind::CoreSwitch.is_switch());
        assert!(ComponentKind::BorderSwitch.is_switch());
        assert!(ComponentKind::Switch.is_switch());
        assert!(!ComponentKind::Host.is_switch());
        assert!(!ComponentKind::External.is_switch());
    }

    #[test]
    fn component_names() {
        let c = Component { id: ComponentId(3), kind: ComponentKind::EdgeSwitch, ordinal: 7 };
        assert_eq!(c.name(), "edge7");
        assert_eq!(c.to_string(), "edge7");
    }

    #[test]
    fn kind_tags_are_distinct_for_taxonomy() {
        let kinds = [
            ComponentKind::Host,
            ComponentKind::EdgeSwitch,
            ComponentKind::AggSwitch,
            ComponentKind::CoreSwitch,
            ComponentKind::BorderSwitch,
            ComponentKind::Switch,
            ComponentKind::External,
            ComponentKind::PowerSupply,
            ComponentKind::CoolingUnit,
            ComponentKind::Link,
        ];
        let mut tags: Vec<_> = kinds.iter().map(|k| k.tag()).collect();
        tags.sort();
        tags.dedup();
        assert_eq!(tags.len(), kinds.len());
    }
}
