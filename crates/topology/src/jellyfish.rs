//! Jellyfish generator: switches wired as a random regular graph.
//!
//! Singla et al. (NSDI '12) showed that random regular switch graphs beat
//! structured topologies on bandwidth-per-dollar. The paper cites Jellyfish
//! among the architectures reCloud supports (§3.1 [70]); because Jellyfish
//! has no up/down structure, it exercises the *generic BFS* route-and-check
//! path rather than the analytic fat-tree router — exactly the "change this
//! step's routing protocol" swap §3.2.1 describes.
//!
//! The construction follows the original paper: repeatedly join random pairs
//! of switches with free ports; when stuck, perform edge swaps. We use a
//! deterministic seeded generator so topologies are reproducible. The small
//! SplitMix64 here is intentionally local — the full statistical RNG suite
//! lives in `recloud-sampling`, and this crate stays dependency-free.

use crate::component::{Component, ComponentKind};
use crate::graph::EdgeList;
use crate::id::ComponentId;
use crate::power::RoundRobinPower;
use crate::topology::{Topology, TopologyKind};

/// Parameters for a Jellyfish topology.
#[derive(Clone, Copy, Debug)]
pub struct JellyfishParams {
    /// Number of switches.
    pub switches: u32,
    /// Ports per switch dedicated to switch-to-switch wiring.
    pub network_ports: u32,
    /// Hosts attached to each switch.
    pub hosts_per_switch: u32,
    /// How many switches peer with the external world.
    pub border_switches: u32,
    /// Number of shared power supplies.
    pub power_supplies: u32,
    /// Seed for the random wiring.
    pub seed: u64,
}

impl JellyfishParams {
    /// A Jellyfish with the given dimensions, 2 border switches and 5 power
    /// supplies, seeded deterministically.
    pub fn new(switches: u32, network_ports: u32, hosts_per_switch: u32) -> Self {
        JellyfishParams {
            switches,
            network_ports,
            hosts_per_switch,
            border_switches: 2.min(switches),
            power_supplies: 5,
            seed: 0x7e11_f15f,
        }
    }

    /// Overrides the wiring seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the number of border switches.
    pub fn border_switches(mut self, n: u32) -> Self {
        self.border_switches = n;
        self
    }

    /// Builds the topology.
    ///
    /// # Panics
    /// Panics on degenerate dimensions (fewer than 2 switches, zero ports,
    /// or more border switches than switches).
    pub fn build(self) -> Topology {
        assert!(self.switches >= 2, "Jellyfish needs at least 2 switches");
        assert!(self.network_ports >= 1, "need at least 1 network port per switch");
        assert!(
            self.border_switches >= 1 && self.border_switches <= self.switches,
            "border_switches must be in 1..=switches"
        );
        let n_sw = self.switches as usize;
        let n_hosts = (self.switches * self.hosts_per_switch) as usize;
        let n_power = self.power_supplies as usize;

        let mut components = Vec::with_capacity(n_sw + n_hosts + 1 + n_power);
        let push = |components: &mut Vec<Component>, kind, ordinal| {
            let id = ComponentId::from_index(components.len());
            components.push(Component { id, kind, ordinal });
            id
        };
        let sw_base = 0u32;
        for i in 0..n_sw {
            push(&mut components, ComponentKind::Switch, i as u32);
        }
        let host_base = components.len() as u32;
        for i in 0..n_hosts {
            push(&mut components, ComponentKind::Host, i as u32);
        }
        let external = push(&mut components, ComponentKind::External, 0);
        let mut power_supplies = Vec::with_capacity(n_power);
        for i in 0..n_power {
            power_supplies.push(push(&mut components, ComponentKind::PowerSupply, i as u32));
        }

        // Random regular wiring with retry + edge-swap completion.
        let mut rng = SplitMix64::new(self.seed);
        let mut free: Vec<u32> = Vec::new(); // switch indices, one entry per free port
        for s in 0..self.switches {
            for _ in 0..self.network_ports {
                free.push(s);
            }
        }
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n_sw];
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        let mut stuck = 0;
        while free.len() >= 2 {
            let i = (rng.next() as usize) % free.len();
            let mut j = (rng.next() as usize) % free.len();
            if i == j {
                j = (j + 1) % free.len();
            }
            let (a, b) = (free[i], free[j]);
            if a != b && !adj[a as usize].contains(&b) {
                adj[a as usize].push(b);
                adj[b as usize].push(a);
                pairs.push((a, b));
                // Remove the two used ports (higher index first).
                let (hi, lo) = if i > j { (i, j) } else { (j, i) };
                free.swap_remove(hi);
                free.swap_remove(lo);
                stuck = 0;
            } else {
                stuck += 1;
                if stuck > 50 {
                    // Edge swap: break a random existing edge (x, y) and form
                    // (a, x), (b', y) when legal; this unsticks the endgame.
                    if pairs.is_empty() {
                        break;
                    }
                    let e = (rng.next() as usize) % pairs.len();
                    let (x, y) = pairs.swap_remove(e);
                    adj[x as usize].retain(|&v| v != y);
                    adj[y as usize].retain(|&v| v != x);
                    free.push(x);
                    free.push(y);
                    stuck = 0;
                }
            }
        }

        let mut edges = EdgeList::new();
        for (a, b) in &pairs {
            edges.add(ComponentId(sw_base + a), ComponentId(sw_base + b));
        }
        for s in 0..self.switches {
            for h in 0..self.hosts_per_switch {
                edges.add(
                    ComponentId(host_base + s * self.hosts_per_switch + h),
                    ComponentId(sw_base + s),
                );
            }
        }
        let mut borders = Vec::new();
        for s in 0..self.border_switches {
            let b = ComponentId(sw_base + s);
            edges.add(b, external);
            borders.push(b);
        }
        let graph = edges.build(components.len());

        let mut power_of = vec![u32::MAX; components.len()];
        let mut rr = RoundRobinPower::new(&power_supplies);
        for c in &components {
            if c.kind.is_switch() {
                power_of[c.id.index()] = rr.next_supply().0;
            }
        }
        for s in 0..self.switches {
            let supply = rr.next_supply();
            for h in 0..self.hosts_per_switch {
                power_of[(host_base + s * self.hosts_per_switch + h) as usize] = supply.0;
            }
        }

        let hosts = (0..n_hosts).map(|i| ComponentId(host_base + i as u32)).collect();
        Topology::assemble(
            components,
            graph,
            external,
            hosts,
            borders,
            power_supplies,
            power_of,
            TopologyKind::Jellyfish {
                switches: self.switches,
                ports: self.network_ports,
                hosts_per_switch: self.hosts_per_switch,
            },
        )
    }
}

/// Minimal deterministic generator for wiring decisions only.
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let a = JellyfishParams::new(20, 4, 2).seed(7).build();
        let b = JellyfishParams::new(20, 4, 2).seed(7).build();
        let ea: Vec<_> = a.graph().edges().map(|(x, e)| (x.0, e.to.0)).collect();
        let eb: Vec<_> = b.graph().edges().map(|(x, e)| (x.0, e.to.0)).collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn different_seed_changes_wiring() {
        let a = JellyfishParams::new(20, 4, 2).seed(1).build();
        let b = JellyfishParams::new(20, 4, 2).seed(2).build();
        let ea: Vec<_> = a.graph().edges().map(|(x, e)| (x.0, e.to.0)).collect();
        let eb: Vec<_> = b.graph().edges().map(|(x, e)| (x.0, e.to.0)).collect();
        assert_ne!(ea, eb);
    }

    #[test]
    fn respects_port_budget() {
        let t = JellyfishParams::new(30, 5, 3).build();
        for c in t.components() {
            if c.kind == ComponentKind::Switch {
                // network ports + hosts + maybe external
                let d = t.graph().degree(c.id);
                assert!(d <= 5 + 3 + 1, "switch degree {d} exceeds port budget");
            }
        }
        assert_eq!(t.num_hosts(), 90);
    }

    #[test]
    fn almost_regular_wiring() {
        let t = JellyfishParams::new(40, 4, 1).border_switches(1).build();
        // The random construction should use nearly all ports: allow a
        // couple of unmatched ports from the endgame.
        let total_sw_deg: usize = t
            .components()
            .iter()
            .filter(|c| c.kind == ComponentKind::Switch)
            .map(|c| {
                t.graph()
                    .neighbors(c.id)
                    .iter()
                    .filter(|e| t.kind_of(e.to) == ComponentKind::Switch)
                    .count()
            })
            .sum();
        assert!(total_sw_deg >= 40 * 4 - 4, "too many unused ports: {total_sw_deg}");
    }
}
