#![warn(missing_docs)]

//! # recloud-topology
//!
//! Data-center topology substrate for the reCloud reproduction.
//!
//! This crate models the *infrastructure* side of the paper's fault model
//! (§2.1, §3.1): hardware components (hosts, switches, power supplies,
//! cooling units), software components, and network components (links), plus
//! the connectivity graph among the network-participating components.
//!
//! The flagship generator is the classic **fat-tree** (Al-Fares et al.) with
//! a *dedicated border pod* for external connectivity, following Google's
//! Jupiter approach as the paper does (§3.1, Fig 1). The four evaluation
//! presets of Table 2 (Tiny/Small/Medium/Large, k = 8/16/24/48) are provided
//! verbatim. Two more generators — leaf-spine and Jellyfish — back the
//! paper's claim that reCloud "works with any of these architectures"
//! (§3.1/§3.2).
//!
//! Everything is built from scratch: component arena, typed ids, and a
//! compact CSR adjacency structure. No external graph crates.

pub mod bcube;
pub mod builder;
pub mod component;
pub mod distance;
pub mod dot;
pub mod fattree;
pub mod graph;
pub mod id;
pub mod jellyfish;
pub mod leafspine;
pub mod power;
pub mod presets;
pub mod topology;
pub mod vl2;

pub use bcube::BCubeParams;
pub use builder::TopologyBuilder;
pub use component::{Component, ComponentKind, SoftwareKind};
pub use distance::{host_distance, mean_pairwise_distance};
pub use dot::{to_dot, DotOptions};
pub use fattree::{FatTreeMeta, FatTreeParams};
pub use graph::{Csr, NO_LINK};
pub use id::ComponentId;
pub use jellyfish::JellyfishParams;
pub use leafspine::LeafSpineParams;
pub use presets::Scale;
pub use topology::{Topology, TopologyKind};
pub use vl2::Vl2Params;
