//! The [`Topology`] arena: components + network graph + role metadata.

use crate::component::{Component, ComponentKind};
use crate::fattree::FatTreeMeta;
use crate::graph::Csr;
use crate::id::ComponentId;

/// Which generator produced the topology. Routers use this to pick a fast
/// analytic path (fat-tree) or fall back to generic BFS.
#[derive(Clone, Debug)]
pub enum TopologyKind {
    /// A fat-tree with a dedicated border pod (§3.1, Fig 1).
    FatTree(FatTreeMeta),
    /// Two-tier leaf-spine with border leaves.
    LeafSpine {
        /// Number of spine switches.
        spines: u32,
        /// Number of leaf switches.
        leaves: u32,
        /// Hosts attached to each leaf.
        hosts_per_leaf: u32,
    },
    /// Random regular graph of switches (Jellyfish).
    Jellyfish {
        /// Number of switches.
        switches: u32,
        /// Switch-to-switch ports per switch.
        ports: u32,
        /// Hosts attached to each switch.
        hosts_per_switch: u32,
    },
    /// Hand-built via [`crate::TopologyBuilder`].
    Custom,
}

/// A complete infrastructure description: the component arena, the network
/// graph, per-role indices and the shared power-supply assignment that §4.1
/// adds as the representative correlated-failure dependency.
#[derive(Clone, Debug)]
pub struct Topology {
    pub(crate) components: Vec<Component>,
    pub(crate) graph: Csr,
    pub(crate) external: ComponentId,
    pub(crate) hosts: Vec<ComponentId>,
    pub(crate) borders: Vec<ComponentId>,
    pub(crate) power_supplies: Vec<ComponentId>,
    /// For every component: raw id of the power supply it draws from, or
    /// `u32::MAX` if it has none (hosts inherit the supply of their edge
    /// group; power supplies themselves have none).
    pub(crate) power_of: Vec<u32>,
    pub(crate) kind: TopologyKind,
}

impl Topology {
    /// Total number of components (all classes).
    #[inline]
    pub fn num_components(&self) -> usize {
        self.components.len()
    }

    /// All components in id order.
    #[inline]
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// Looks up one component.
    #[inline]
    pub fn component(&self, id: ComponentId) -> &Component {
        &self.components[id.index()]
    }

    /// Kind of one component.
    #[inline]
    pub fn kind_of(&self, id: ComponentId) -> ComponentKind {
        self.components[id.index()].kind
    }

    /// The network adjacency graph.
    #[inline]
    pub fn graph(&self) -> &Csr {
        &self.graph
    }

    /// The single external-world node.
    #[inline]
    pub fn external(&self) -> ComponentId {
        self.external
    }

    /// All hosts, in id order.
    #[inline]
    pub fn hosts(&self) -> &[ComponentId] {
        &self.hosts
    }

    /// Number of hosts.
    #[inline]
    pub fn num_hosts(&self) -> usize {
        self.hosts.len()
    }

    /// Border switches (the ones peering with the external world).
    #[inline]
    pub fn border_switches(&self) -> &[ComponentId] {
        &self.borders
    }

    /// Power supplies, in id order.
    #[inline]
    pub fn power_supplies(&self) -> &[ComponentId] {
        &self.power_supplies
    }

    /// The power supply feeding `id`, if any.
    #[inline]
    pub fn power_of(&self, id: ComponentId) -> Option<ComponentId> {
        let p = self.power_of[id.index()];
        (p != u32::MAX).then_some(ComponentId(p))
    }

    /// Which generator made this topology.
    #[inline]
    pub fn topology_kind(&self) -> &TopologyKind {
        &self.kind
    }

    /// Fat-tree metadata if this is a fat-tree.
    #[inline]
    pub fn fat_tree(&self) -> Option<&FatTreeMeta> {
        match &self.kind {
            TopologyKind::FatTree(m) => Some(m),
            _ => None,
        }
    }

    /// Counts components of a given kind.
    pub fn count_kind(&self, kind: ComponentKind) -> usize {
        self.components.iter().filter(|c| c.kind == kind).count()
    }

    /// Counts all switches (any tier).
    pub fn num_switches(&self) -> usize {
        self.components.iter().filter(|c| c.kind.is_switch()).count()
    }

    /// The rack a host belongs to, defined as its edge switch. Used by the
    /// "no two instances in the same rack" placement heuristic and by the
    /// common-practice baseline (§4.2.2).
    ///
    /// Works for any topology: the rack is the unique switch adjacent to the
    /// host (hosts are single-homed in all our generators).
    pub fn rack_of(&self, host: ComponentId) -> ComponentId {
        debug_assert_eq!(self.kind_of(host), ComponentKind::Host);
        self.graph
            .neighbors(host)
            .iter()
            .map(|e| e.to)
            .find(|&n| self.kind_of(n).is_switch())
            .expect("host has no adjacent switch")
    }

    /// The pod a host belongs to, when the topology has pods (fat-tree);
    /// otherwise falls back to the rack id, which gives heuristics something
    /// sensible to diversify on.
    pub fn pod_of(&self, host: ComponentId) -> u32 {
        match &self.kind {
            TopologyKind::FatTree(m) => m.host_position(host).pod,
            _ => self.rack_of(host).0,
        }
    }

    /// Internal: assembles a topology. Generators and the builder use this;
    /// it validates role metadata so every constructed topology is coherent.
    #[allow(clippy::too_many_arguments)] // one call site per generator; a params struct would just rename the fields
    pub(crate) fn assemble(
        components: Vec<Component>,
        graph: Csr,
        external: ComponentId,
        hosts: Vec<ComponentId>,
        borders: Vec<ComponentId>,
        power_supplies: Vec<ComponentId>,
        power_of: Vec<u32>,
        kind: TopologyKind,
    ) -> Self {
        assert_eq!(graph.num_nodes(), components.len(), "graph/arena size mismatch");
        assert_eq!(power_of.len(), components.len(), "power map size mismatch");
        assert_eq!(
            components[external.index()].kind,
            ComponentKind::External,
            "external id must point at the External component"
        );
        for &h in &hosts {
            assert_eq!(components[h.index()].kind, ComponentKind::Host);
        }
        for &b in &borders {
            assert!(components[b.index()].kind.is_switch(), "border must be a switch");
        }
        Topology { components, graph, external, hosts, borders, power_supplies, power_of, kind }
    }
}

#[cfg(test)]
mod tests {
    use crate::fattree::FatTreeParams;

    #[test]
    fn rack_and_pod_queries_on_fat_tree() {
        let t = FatTreeParams::new(4).build();
        let h = t.hosts()[0];
        let rack = t.rack_of(h);
        assert!(t.kind_of(rack).is_switch());
        // first host of pod 0.
        assert_eq!(t.pod_of(h), 0);
        // last host belongs to the last host pod (k-1 pods => pod index k-2).
        let last = *t.hosts().last().unwrap();
        assert_eq!(t.pod_of(last), 2);
    }

    #[test]
    fn power_assignment_covers_switches_and_hosts() {
        let t = FatTreeParams::new(4).build();
        for c in t.components() {
            if c.kind.is_switch() || c.kind == crate::ComponentKind::Host {
                assert!(t.power_of(c.id).is_some(), "{} must draw power", c);
            }
        }
        // Power supplies and the external node draw no modeled power.
        assert!(t.power_of(t.external()).is_none());
        for &p in t.power_supplies() {
            assert!(t.power_of(p).is_none());
        }
    }

    #[test]
    fn hosts_under_same_edge_share_power_group() {
        let t = FatTreeParams::new(4).build();
        let m = t.fat_tree().unwrap();
        // All hosts under edge (0,0) share one supply (the paper powers the
        // *group* of hosts under each edge switch from one supply).
        let hosts: Vec<_> = m.hosts_under_edge(0, 0).collect();
        let p0 = t.power_of(hosts[0]).unwrap();
        for h in hosts {
            assert_eq!(t.power_of(h), Some(p0));
        }
    }
}
