//! BCube generator: a server-centric modular data-center network.
//!
//! BCube (Guo et al., SIGCOMM '09 — the paper's citation [33]) connects
//! `n^(k+1)` servers through `k+1` *levels* of n-port switches; servers
//! themselves forward traffic, so — unlike fat-tree — a *host* failure can
//! disconnect other hosts. This makes BCube the most interesting
//! generality test for reCloud's route-and-check: reachability flows
//! through host components, which the generic BFS router handles without
//! modification.
//!
//! Construction (BCube_k with n-port switches):
//!
//! * servers are addressed by digit strings `a_k … a_1 a_0` (base n);
//! * level-ℓ switch `⟨ℓ; a_k … a_{ℓ+1} a_{ℓ-1} … a_0⟩` connects the n
//!   servers that differ only in digit ℓ;
//! * there are `(k+1) · n^k` switches, each with n ports.
//!
//! External connectivity: BCube targets shipping-container DCs with an
//! aggregation layer out of scope of the original paper; we follow common
//! practice and peer a configurable number of level-k switches with the
//! external node (they act as border switches).

use crate::component::{Component, ComponentKind};
use crate::graph::EdgeList;
use crate::id::ComponentId;
use crate::power::RoundRobinPower;
use crate::topology::{Topology, TopologyKind};

/// Parameters for a BCube topology.
#[derive(Clone, Copy, Debug)]
pub struct BCubeParams {
    /// Switch port count `n` (≥ 2); also servers per level-0 switch.
    pub n: u32,
    /// Level count minus one: BCube_k has `k+1` switch levels and
    /// `n^(k+1)` servers. `k = 1` (two levels) is the common building
    /// block.
    pub k: u32,
    /// How many level-k switches peer with the external world.
    pub border_switches: u32,
    /// Number of shared power supplies.
    pub power_supplies: u32,
}

impl BCubeParams {
    /// BCube_k with n-port switches, 2 border switches and 5 supplies.
    pub fn new(n: u32, k: u32) -> Self {
        BCubeParams { n, k, border_switches: 2, power_supplies: 5 }
    }

    /// Overrides the number of border switches.
    pub fn border_switches(mut self, b: u32) -> Self {
        self.border_switches = b;
        self
    }

    /// Number of servers: n^(k+1).
    pub fn num_servers(&self) -> usize {
        (self.n as usize).pow(self.k + 1)
    }

    /// Number of switches per level: n^k.
    pub fn switches_per_level(&self) -> usize {
        (self.n as usize).pow(self.k)
    }

    /// Builds the topology.
    ///
    /// # Panics
    /// Panics on `n < 2` or an invalid border count.
    pub fn build(self) -> Topology {
        assert!(self.n >= 2, "BCube needs n >= 2 ports");
        let per_level = self.switches_per_level();
        assert!(
            self.border_switches >= 1 && (self.border_switches as usize) <= per_level,
            "border_switches must be in 1..=n^k"
        );
        let n = self.n as usize;
        let levels = (self.k + 1) as usize;
        let n_servers = self.num_servers();
        let n_switches = levels * per_level;
        let n_power = self.power_supplies as usize;

        let mut components = Vec::with_capacity(n_servers + n_switches + 1 + n_power);
        let push = |components: &mut Vec<Component>, kind, ordinal| {
            let id = ComponentId::from_index(components.len());
            components.push(Component { id, kind, ordinal });
            id
        };
        // Servers first (role-contiguous), then switches level-major.
        let host_base = 0u32;
        for i in 0..n_servers {
            push(&mut components, ComponentKind::Host, i as u32);
        }
        let switch_base = components.len() as u32;
        for i in 0..n_switches {
            push(&mut components, ComponentKind::Switch, i as u32);
        }
        let external = push(&mut components, ComponentKind::External, 0);
        let mut power_supplies = Vec::with_capacity(n_power);
        for i in 0..n_power {
            power_supplies.push(push(&mut components, ComponentKind::PowerSupply, i as u32));
        }

        // Wiring: server s (digits base n) connects at level l to switch
        // (l, s with digit l removed).
        let mut edges = EdgeList::new();
        for s in 0..n_servers {
            for level in 0..levels {
                let low = s % n.pow(level as u32);
                let high = s / n.pow(level as u32 + 1);
                let sw_index = high * n.pow(level as u32) + low;
                let sw = ComponentId(switch_base + (level * per_level + sw_index) as u32);
                edges.add(ComponentId(host_base + s as u32), sw);
            }
        }
        // Border switches: the first `border_switches` switches of the
        // top level peer with external.
        let top_base = switch_base + ((levels - 1) * per_level) as u32;
        let mut borders = Vec::new();
        for b in 0..self.border_switches {
            let sw = ComponentId(top_base + b);
            edges.add(sw, external);
            borders.push(sw);
        }
        let graph = edges.build(components.len());

        // Power: round-robin over switches, then over level-0 server
        // groups (the servers of one level-0 switch share a supply —
        // they share the same chassis row).
        let mut power_of = vec![u32::MAX; components.len()];
        let mut rr = RoundRobinPower::new(&power_supplies);
        for c in &components {
            if c.kind.is_switch() {
                power_of[c.id.index()] = rr.next_supply().0;
            }
        }
        for group in 0..per_level {
            let supply = rr.next_supply();
            for j in 0..n {
                let server = group * n + j;
                power_of[host_base as usize + server] = supply.0;
            }
        }

        let hosts = (0..n_servers).map(|i| ComponentId(host_base + i as u32)).collect();
        Topology::assemble(
            components,
            graph,
            external,
            hosts,
            borders,
            power_supplies,
            power_of,
            TopologyKind::Custom,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_bcube_formulas() {
        // BCube_1 with n = 4: 16 servers, 2 levels x 4 switches.
        let p = BCubeParams::new(4, 1);
        assert_eq!(p.num_servers(), 16);
        assert_eq!(p.switches_per_level(), 4);
        let t = p.build();
        assert_eq!(t.num_hosts(), 16);
        assert_eq!(t.count_kind(ComponentKind::Switch), 8);
        assert_eq!(t.border_switches().len(), 2);
    }

    #[test]
    fn every_server_has_k_plus_1_links() {
        let t = BCubeParams::new(4, 1).build();
        for &h in t.hosts() {
            assert_eq!(t.graph().degree(h), 2, "BCube_1 servers have 2 NICs");
        }
        let t = BCubeParams::new(3, 2).build();
        for &h in t.hosts() {
            assert_eq!(t.graph().degree(h), 3, "BCube_2 servers have 3 NICs");
        }
    }

    #[test]
    fn every_switch_has_n_server_links() {
        let t = BCubeParams::new(4, 1).build();
        for c in t.components() {
            if c.kind == ComponentKind::Switch {
                let server_links = t
                    .graph()
                    .neighbors(c.id)
                    .iter()
                    .filter(|e| t.kind_of(e.to) == ComponentKind::Host)
                    .count();
                assert_eq!(server_links, 4);
            }
        }
    }

    #[test]
    fn level0_neighbors_differ_in_digit0() {
        // Servers 0..4 share level-0 switch 0 (digits 00, 01, 02, 03).
        let t = BCubeParams::new(4, 1).build();
        let sw0 = t.components().iter().find(|c| c.kind == ComponentKind::Switch).unwrap().id;
        let servers: Vec<u32> = t
            .graph()
            .neighbors(sw0)
            .iter()
            .filter(|e| t.kind_of(e.to) == ComponentKind::Host)
            .map(|e| e.to.0)
            .collect();
        assert_eq!(servers, vec![0, 1, 2, 3]);
    }

    #[test]
    fn servers_of_a_level0_group_share_power() {
        let t = BCubeParams::new(4, 1).build();
        for group in 0..4usize {
            let base = t.hosts()[group * 4];
            let p = t.power_of(base).unwrap();
            for j in 0..4usize {
                assert_eq!(t.power_of(t.hosts()[group * 4 + j]), Some(p));
            }
        }
    }

    #[test]
    #[should_panic(expected = "n >= 2")]
    fn tiny_n_rejected() {
        BCubeParams::new(1, 1).build();
    }
}
