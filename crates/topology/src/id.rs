//! Typed component identifiers.
//!
//! Every infrastructure component — host, switch, power supply, software
//! package, link, the external world — lives in one arena and is addressed
//! by a dense [`ComponentId`]. Dense u32 indices keep per-round failure
//! state as flat bit vectors and make route-and-check allocation-free.

use std::fmt;

/// Dense index of a component in a [`crate::Topology`] arena.
///
/// Ids are assigned contiguously at construction time; generators guarantee
/// role-contiguous ranges (e.g. all hosts of a fat-tree are consecutive) so
/// routers can use arithmetic instead of lookups.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ComponentId(pub u32);

impl ComponentId {
    /// Returns the id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a usize index.
    ///
    /// # Panics
    /// Panics if `i` does not fit in `u32` (more than 4 billion components
    /// would exceed any data center this library targets).
    #[inline]
    pub fn from_index(i: usize) -> Self {
        ComponentId(u32::try_from(i).expect("component index exceeds u32"))
    }
}

impl fmt::Debug for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl fmt::Display for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl From<ComponentId> for usize {
    fn from(id: ComponentId) -> usize {
        id.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        let id = ComponentId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id, ComponentId(42));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(ComponentId(7).to_string(), "c7");
        assert_eq!(format!("{:?}", ComponentId(7)), "c7");
    }

    #[test]
    #[should_panic(expected = "component index exceeds u32")]
    fn from_index_overflow_panics() {
        let _ = ComponentId::from_index(u32::MAX as usize + 1);
    }
}
