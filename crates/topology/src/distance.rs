//! Host-to-host hop distances — the input of the application-performance
//! objective (§3.3.3: "some application components may need to be
//! co-located as they frequently interact with each other").
//!
//! For fat-trees the distance has closed form (same edge: 2 hops, same
//! pod: 4, cross-pod: 6); for any other topology we BFS from one endpoint
//! over the healthy network. Distances describe the *topology*, not a
//! failure state: they price latency, not reliability.

use crate::fattree::FatTreeMeta;
use crate::id::ComponentId;
use crate::topology::{Topology, TopologyKind};

/// Hop distance between two hosts of a healthy topology, counting each
/// traversed link once (host–switch and switch–switch alike). Distance 0
/// means the same host.
///
/// # Panics
/// Panics if the hosts are disconnected (a healthy data center never is;
/// hitting this means the topology is malformed).
pub fn host_distance(topology: &Topology, a: ComponentId, b: ComponentId) -> u32 {
    if a == b {
        return 0;
    }
    if let TopologyKind::FatTree(meta) = topology.topology_kind() {
        return fat_tree_distance(meta, a, b);
    }
    bfs_distance(topology, a, b)
}

fn fat_tree_distance(meta: &FatTreeMeta, a: ComponentId, b: ComponentId) -> u32 {
    let pa = meta.host_position(a);
    let pb = meta.host_position(b);
    if pa.pod == pb.pod {
        if pa.edge == pb.edge {
            2 // host - edge - host
        } else {
            4 // host - edge - agg - edge - host
        }
    } else {
        6 // host - edge - agg - core - agg - edge - host
    }
}

fn bfs_distance(topology: &Topology, a: ComponentId, b: ComponentId) -> u32 {
    let n = topology.num_components();
    let mut dist = vec![u32::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    dist[a.index()] = 0;
    queue.push_back(a);
    while let Some(v) = queue.pop_front() {
        if v == b {
            return dist[v.index()];
        }
        // Never hairpin through the external node for east-west distance.
        if v == topology.external() {
            continue;
        }
        for e in topology.graph().neighbors(v) {
            let w = e.to;
            if dist[w.index()] == u32::MAX {
                dist[w.index()] = dist[v.index()] + 1;
                queue.push_back(w);
            }
        }
    }
    panic!("hosts {a} and {b} are disconnected in a healthy topology");
}

/// Mean pairwise hop distance over a set of hosts (0 for fewer than two
/// hosts). The §3.3.3 proximity utility divides this by the topology's
/// diameter to normalize.
pub fn mean_pairwise_distance(topology: &Topology, hosts: &[ComponentId]) -> f64 {
    if hosts.len() < 2 {
        return 0.0;
    }
    let mut sum = 0u64;
    let mut pairs = 0u64;
    for (i, &a) in hosts.iter().enumerate() {
        for &b in &hosts[i + 1..] {
            sum += u64::from(host_distance(topology, a, b));
            pairs += 1;
        }
    }
    sum as f64 / pairs as f64
}

/// An upper bound on host-to-host distance, used to normalize proximity
/// utilities into [0, 1]. Exact for fat-trees (6), a safe structural
/// bound elsewhere.
pub fn diameter_bound(topology: &Topology) -> u32 {
    match topology.topology_kind() {
        TopologyKind::FatTree(_) => 6,
        TopologyKind::LeafSpine { .. } => 4, // host-leaf-spine-leaf-host
        // Generic: host-switch chains are short in all our generators;
        // use a conservative bound tied to the component count.
        _ => 2 + 2 * (usize::BITS - topology.num_components().leading_zeros()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fattree::FatTreeParams;
    use crate::leafspine::LeafSpineParams;

    #[test]
    fn fat_tree_closed_form() {
        let t = FatTreeParams::new(4).build();
        let m = t.fat_tree().unwrap();
        assert_eq!(host_distance(&t, m.host(0, 0, 0), m.host(0, 0, 0)), 0);
        assert_eq!(host_distance(&t, m.host(0, 0, 0), m.host(0, 0, 1)), 2);
        assert_eq!(host_distance(&t, m.host(0, 0, 0), m.host(0, 1, 0)), 4);
        assert_eq!(host_distance(&t, m.host(0, 0, 0), m.host(2, 1, 1)), 6);
    }

    #[test]
    fn fat_tree_closed_form_matches_bfs() {
        // Cross-validate the closed form against BFS on the raw graph.
        let t = FatTreeParams::new(4).build();
        let hosts = t.hosts();
        for &a in hosts.iter().step_by(3) {
            for &b in hosts.iter().step_by(5) {
                let closed = host_distance(&t, a, b);
                let bfs = super::bfs_distance(&t, a, b);
                // BFS could exploit the external hairpin... it skips it,
                // so the values must agree exactly.
                if a != b {
                    assert_eq!(closed, bfs, "{a} {b}");
                }
            }
        }
    }

    #[test]
    fn leaf_spine_distances() {
        let t = LeafSpineParams::new(2, 3, 2).build();
        let h = t.hosts();
        // Same leaf: 2; cross-leaf: 4.
        assert_eq!(host_distance(&t, h[0], h[1]), 2);
        assert_eq!(host_distance(&t, h[0], h[2]), 4);
        assert!(diameter_bound(&t) >= 4);
    }

    #[test]
    fn mean_pairwise() {
        let t = FatTreeParams::new(4).build();
        let m = t.fat_tree().unwrap();
        // Two same-edge hosts and one cross-pod host:
        // d(a,b) = 2, d(a,c) = 6, d(b,c) = 6 -> mean 14/3.
        let hosts = [m.host(0, 0, 0), m.host(0, 0, 1), m.host(1, 0, 0)];
        let mean = mean_pairwise_distance(&t, &hosts);
        assert!((mean - 14.0 / 3.0).abs() < 1e-12);
        assert_eq!(mean_pairwise_distance(&t, &hosts[..1]), 0.0);
    }
}
