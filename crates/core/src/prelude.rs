//! One-stop imports for typical reCloud usage.
//!
//! ```
//! use recloud::prelude::*;
//! ```

pub use crate::error::{DeployError, DeployResult};
pub use crate::service::{DeployOutcome, ReCloud};

pub use recloud_apps::{
    ApplicationSpec, DeploymentPlan, PlacementRules, Requirements, Source, WorkloadMap,
};
pub use recloud_assess::{compare_plans, Assessment, Assessor, ParallelAssessor, SamplerKind};
pub use recloud_faults::{
    BathtubCurve, FaultInjector, FaultModel, FaultTree, FaultTreeBuilder, Fig5Template,
    ProbabilityConfig,
};
pub use recloud_sampling::{
    ExtendedDaggerSampler, MonteCarloSampler, ReliabilityEstimate, Rng, Sampler,
};
pub use recloud_search::{
    common_practice, enhanced_common_practice, migration_cost, DeltaRule, HolisticObjective,
    LatencyObjective, MigrationBudget, MigrationObjective, Objective, ReliabilityObjective,
    SearchBudget, SearchConfig, SearchOutcome, Searcher, TemperatureSchedule,
};
pub use recloud_topology::{
    BCubeParams, ComponentId, ComponentKind, FatTreeParams, JellyfishParams, LeafSpineParams,
    Scale, Topology, TopologyBuilder, Vl2Params,
};
