//! Error types of the deployment service.

use std::fmt;

/// Result alias for deployment operations.
pub type DeployResult<T> = Result<T, DeployError>;

/// Why a deployment request could not be served.
#[derive(Clone, Debug, PartialEq)]
pub enum DeployError {
    /// The search budget elapsed without reaching `R_desired` — the §2.2
    /// outcome where "the cloud provider informs the application developer
    /// that her current reliability requirements cannot be fulfilled".
    /// Carries the best plan's reliability so the developer can decide
    /// whether to relax the requirement.
    RequirementsNotMet {
        /// Reliability of the best plan found.
        best_reliability: f64,
        /// The requested score.
        desired: f64,
        /// Plans assessed before giving up.
        plans_assessed: usize,
    },
    /// The data center cannot host the application at all (fewer hosts
    /// than requested instances).
    InsufficientCapacity {
        /// Hosts available.
        hosts: usize,
        /// Instances requested.
        instances: usize,
    },
}

impl fmt::Display for DeployError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeployError::RequirementsNotMet { best_reliability, desired, plans_assessed } => {
                write!(
                    f,
                    "reliability requirements cannot be fulfilled: best plan reached \
                     {best_reliability:.6} < desired {desired:.6} after {plans_assessed} plans"
                )
            }
            DeployError::InsufficientCapacity { hosts, instances } => {
                write!(
                    f,
                    "insufficient capacity: {instances} instances requested but only \
                     {hosts} hosts exist"
                )
            }
        }
    }
}

impl std::error::Error for DeployError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = DeployError::RequirementsNotMet {
            best_reliability: 0.9991,
            desired: 0.99999,
            plans_assessed: 438,
        };
        let s = e.to_string();
        assert!(s.contains("cannot be fulfilled"));
        assert!(s.contains("438"));
        let e = DeployError::InsufficientCapacity { hosts: 4, instances: 9 };
        assert!(e.to_string().contains("insufficient capacity"));
    }
}
