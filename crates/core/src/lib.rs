#![warn(missing_docs)]

//! # reCloud — reliable application deployment in the cloud
//!
//! A from-scratch Rust implementation of the CoNEXT '17 reCloud system:
//! quantitative reliability assessment of cloud deployment plans with
//! rigorous error bounds, and proactive search for plans that meet a
//! developer's reliability requirements — aware of the correlated
//! failures that shared dependencies (power, cooling, software) inject.
//!
//! ## Quick start
//!
//! ```
//! use recloud::prelude::*;
//! use std::time::Duration;
//!
//! // A small data center: fat-tree with a dedicated border pod and the
//! // paper's five shared power supplies.
//! let topology = FatTreeParams::new(8).build();
//!
//! // The paper's fault model: switches ~ N(0.008, 0.001), everything
//! // else ~ N(0.01, 0.001), plus power-supply dependency fault trees.
//! let recloud = ReCloud::paper_default(&topology, 42);
//!
//! // Deploy 5 instances, require 4 alive, give the search a tiny budget.
//! let spec = ApplicationSpec::k_of_n(4, 5);
//! let requirements = Requirements::paper_default()
//!     .budget(Duration::from_millis(300))
//!     .rounds(1_000);
//! let outcome = recloud.deploy(&spec, &requirements).unwrap();
//! println!(
//!     "deployed with reliability {:.4} (± {:.4})",
//!     outcome.reliability, outcome.ciw95
//! );
//! assert!(outcome.reliability > 0.9);
//! ```
//!
//! ## Crate map
//!
//! | Concern | Crate |
//! |---|---|
//! | Topologies (fat-tree/leaf-spine/Jellyfish/builder) | `recloud-topology` |
//! | Failure probabilities, fault trees, correlated deps | `recloud-faults` |
//! | Monte-Carlo & extended dagger sampling, error bounds | `recloud-sampling` |
//! | Route-and-check (analytic fat-tree, valley-free, BFS) | `recloud-routing` |
//! | Application specs, plans, workload, placement rules | `recloud-apps` |
//! | Assessment pipeline, parallel engine, ground truth | `recloud-assess` |
//! | Annealing search, symmetry, multi-objective, baselines | `recloud-search` |
//!
//! This crate re-exports the public API and adds the [`ReCloud`] façade
//! that wires a provider-side deployment service together.

pub mod error;
pub mod prelude;
pub mod service;

pub use error::{DeployError, DeployResult};
pub use service::{DeployOutcome, ReCloud};

// Re-export the sub-crates wholesale for power users.
pub use recloud_apps as apps;
pub use recloud_assess as assess;
pub use recloud_faults as faults;
pub use recloud_routing as routing;
pub use recloud_sampling as sampling;
pub use recloud_search as search;
pub use recloud_topology as topology;

// The hermetic-build substrates (implemented in `recloud-sampling`, the
// std-only foundation crate, so that `recloud-assess` can use them too)
// surface here under their natural names: `recloud::sync`, `recloud::wire`
// and `recloud::proptest`, plus the property-assertion macros.
pub use recloud_sampling::proptest;
pub use recloud_sampling::sync;
pub use recloud_sampling::wire;
pub use recloud_sampling::{prop_assert, prop_assert_eq, prop_assume};
