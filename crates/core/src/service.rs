//! The [`ReCloud`] façade: the provider-side deployment service.
//!
//! Wraps the full §2.2 workflow: the developer hands over an application
//! spec and requirements; the service searches for a plan whose assessed
//! reliability meets `R_desired` within `T_max`, returning the plan plus
//! the quantitative assessment (score, error bound, implied downtime), or
//! reports that the requirements cannot be fulfilled.

use crate::error::{DeployError, DeployResult};
use recloud_apps::{ApplicationSpec, DeploymentPlan, PlacementRules, Requirements, WorkloadMap};
use recloud_assess::{Assessment, Assessor, SamplerKind};
use recloud_faults::{FaultModel, ProbabilityConfig};
use recloud_search::{
    HolisticObjective, Objective, ReliabilityObjective, SearchBudget, SearchConfig, SearchOutcome,
    Searcher,
};
use recloud_topology::Topology;
use std::time::Duration;

/// What a successful deployment request returns.
#[derive(Clone, Debug)]
pub struct DeployOutcome {
    /// The chosen deployment plan.
    pub plan: DeploymentPlan,
    /// Assessed reliability of the plan (Eq 1).
    pub reliability: f64,
    /// 95% confidence-interval width of the score (Eq 3).
    pub ciw95: f64,
    /// Implied expected annual downtime, in hours.
    pub annual_downtime_hours: f64,
    /// True if `R_desired` was met (false only when the caller asked for
    /// best-effort deployment).
    pub satisfied: bool,
    /// Plans assessed during the search.
    pub plans_assessed: usize,
    /// Wall-clock search time.
    pub search_time: Duration,
}

/// The provider-side deployment service: one topology + fault model +
/// optional workload/placement policy.
pub struct ReCloud {
    topology: Topology,
    model: FaultModel,
    workload: Option<WorkloadMap>,
    rules: PlacementRules,
    sampler: SamplerKind,
    holistic_weights: Option<(f64, f64)>,
    seed: u64,
}

impl ReCloud {
    /// A service over an explicit fault model.
    pub fn new(topology: &Topology, model: FaultModel, seed: u64) -> Self {
        ReCloud {
            topology: topology.clone(),
            model,
            workload: None,
            rules: PlacementRules::none(),
            sampler: SamplerKind::ExtendedDagger,
            holistic_weights: None,
            seed,
        }
    }

    /// The paper's §4.1 evaluation setting: paper-default probabilities
    /// plus round-robin power-supply dependencies.
    pub fn paper_default(topology: &Topology, seed: u64) -> Self {
        Self::new(topology, FaultModel::paper_default(topology, seed), seed)
    }

    /// §3.4 limited-information mode: no measured probabilities exist, so
    /// every fallible component gets `default_p`. Shared-dependency
    /// avoidance still works; only the absolute score loses calibration.
    pub fn with_default_probability(topology: &Topology, default_p: f64, seed: u64) -> Self {
        let mut model = FaultModel::new(topology, &ProbabilityConfig::Uniform(default_p), seed);
        model.attach_power_dependencies(topology);
        Self::new(topology, model, seed)
    }

    /// Installs a workload map and enables the §3.3.3 multi-objective
    /// search with equal weights (Eq 7, a = b).
    pub fn with_workload(mut self, workload: WorkloadMap) -> Self {
        self.workload = Some(workload);
        self.holistic_weights = Some((0.5, 0.5));
        self
    }

    /// Overrides the Eq 7 weights (requires a workload).
    pub fn with_weights(mut self, a: f64, b: f64) -> Self {
        assert!(self.workload.is_some(), "set a workload before weights");
        self.holistic_weights = Some((a, b));
        self
    }

    /// Installs placement rules applied to every candidate plan.
    pub fn with_rules(mut self, rules: PlacementRules) -> Self {
        self.rules = rules;
        self
    }

    /// Switches the sampler (Monte-Carlo reproduces the INDaaS baseline).
    pub fn with_sampler(mut self, sampler: SamplerKind) -> Self {
        self.sampler = sampler;
        self
    }

    /// The underlying fault model (e.g. to feed near-real-time probability
    /// updates).
    pub fn model_mut(&mut self) -> &mut FaultModel {
        &mut self.model
    }

    /// The topology served.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Assesses one explicit plan quantitatively (the pure §3.2 service).
    pub fn assess(
        &self,
        spec: &ApplicationSpec,
        plan: &DeploymentPlan,
        rounds: usize,
    ) -> Assessment {
        let mut assessor = Assessor::with_sampler(&self.topology, self.model.clone(), self.sampler);
        assessor.assess(spec, plan, rounds, self.seed)
    }

    fn run_search(
        &self,
        spec: &ApplicationSpec,
        requirements: &Requirements,
    ) -> DeployResult<SearchOutcome> {
        if self.topology.num_hosts() < spec.total_instances() {
            return Err(DeployError::InsufficientCapacity {
                hosts: self.topology.num_hosts(),
                instances: spec.total_instances(),
            });
        }
        let mut assessor = Assessor::with_sampler(&self.topology, self.model.clone(), self.sampler);
        let mut searcher = Searcher::new(&mut assessor);
        let config = SearchConfig {
            budget: SearchBudget::WallClock(requirements.t_max),
            rounds: requirements.rounds,
            desired: requirements.r_desired,
            rules: self.rules,
            seed: self.seed,
            ..SearchConfig::paper_default(self.seed)
        };
        let objective: Box<dyn Objective> = match (&self.workload, self.holistic_weights) {
            (Some(w), Some((a, b))) => Box::new(HolisticObjective::new(a, b, w.clone())),
            _ => Box::new(ReliabilityObjective),
        };
        Ok(searcher.search(spec, objective.as_ref(), &config, self.workload.as_ref()))
    }

    /// The §2.2 workflow: search for a plan meeting the requirements.
    /// Fails with [`DeployError::RequirementsNotMet`] when `T_max` elapses
    /// first (use [`ReCloud::deploy_best_effort`] to get the best plan
    /// anyway).
    pub fn deploy(
        &self,
        spec: &ApplicationSpec,
        requirements: &Requirements,
    ) -> DeployResult<DeployOutcome> {
        let out = self.run_search(spec, requirements)?;
        if !out.satisfied && requirements.r_desired < 1.0 {
            return Err(DeployError::RequirementsNotMet {
                best_reliability: out.best_reliability,
                desired: requirements.r_desired,
                plans_assessed: out.stats.plans_assessed,
            });
        }
        Ok(outcome_from(out))
    }

    /// Like [`ReCloud::deploy`], but always returns the best plan found,
    /// flagged via [`DeployOutcome::satisfied`].
    pub fn deploy_best_effort(
        &self,
        spec: &ApplicationSpec,
        requirements: &Requirements,
    ) -> DeployResult<DeployOutcome> {
        Ok(outcome_from(self.run_search(spec, requirements)?))
    }
}

fn outcome_from(out: SearchOutcome) -> DeployOutcome {
    DeployOutcome {
        reliability: out.best_reliability,
        ciw95: out.best_ciw95,
        annual_downtime_hours: (1.0 - out.best_reliability) * 365.25 * 24.0,
        satisfied: out.satisfied,
        plans_assessed: out.stats.plans_assessed,
        search_time: out.elapsed,
        plan: out.best_plan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recloud_topology::FatTreeParams;

    fn quick_requirements() -> Requirements {
        Requirements::paper_default().budget(Duration::from_millis(200)).rounds(500)
    }

    #[test]
    fn deploy_returns_a_valid_plan() {
        let t = FatTreeParams::new(8).build();
        let svc = ReCloud::paper_default(&t, 1);
        let spec = ApplicationSpec::k_of_n(2, 3);
        let out = svc.deploy(&spec, &quick_requirements()).unwrap();
        assert_eq!(out.plan.total_instances(), 3);
        assert!(out.reliability > 0.9);
        assert!(out.plans_assessed >= 1);
        // R_desired = 1.0 is best-effort by convention.
        assert!(!out.satisfied);
    }

    #[test]
    fn unreachable_requirement_reports_not_met() {
        let t = FatTreeParams::new(8).build();
        let svc = ReCloud::paper_default(&t, 1);
        let spec = ApplicationSpec::k_of_n(2, 3);
        let req = quick_requirements().desired(0.999999); // needs ~10^6 rounds
        let err = svc.deploy(&spec, &req).unwrap_err();
        match err {
            DeployError::RequirementsNotMet { best_reliability, desired, .. } => {
                assert!(best_reliability < desired);
            }
            other => panic!("unexpected error {other:?}"),
        }
        // Best-effort still yields the plan.
        let out = svc.deploy_best_effort(&spec, &req).unwrap();
        assert!(!out.satisfied);
        assert!(out.reliability > 0.5);
    }

    #[test]
    fn achievable_requirement_is_satisfied() {
        let t = FatTreeParams::new(8).build();
        let svc = ReCloud::paper_default(&t, 1);
        let spec = ApplicationSpec::k_of_n(1, 3);
        let req = quick_requirements().desired(0.5);
        let out = svc.deploy(&spec, &req).unwrap();
        assert!(out.satisfied);
    }

    #[test]
    fn capacity_errors_are_detected_upfront() {
        let t = FatTreeParams::new(4).build(); // 12 hosts
        let svc = ReCloud::paper_default(&t, 1);
        let spec = ApplicationSpec::k_of_n(1, 13);
        let err = svc.deploy(&spec, &quick_requirements()).unwrap_err();
        assert_eq!(err, DeployError::InsufficientCapacity { hosts: 12, instances: 13 });
    }

    #[test]
    fn assess_an_explicit_plan() {
        let t = FatTreeParams::new(4).build();
        let svc = ReCloud::paper_default(&t, 1);
        let spec = ApplicationSpec::k_of_n(1, 2);
        let plan = DeploymentPlan::new(&spec, vec![t.hosts()[..2].to_vec()]);
        let a = svc.assess(&spec, &plan, 2_000);
        assert!(a.estimate.score > 0.9);
        assert_eq!(a.estimate.rounds, 2_000);
    }

    #[test]
    fn multi_objective_service_avoids_busy_hosts() {
        let t = FatTreeParams::new(8).build();
        let mut w = WorkloadMap::uniform(&t, 0.1);
        for (i, &h) in t.hosts().iter().enumerate() {
            if i % 2 == 1 {
                w.set(h, 0.9);
            }
        }
        let svc = ReCloud::paper_default(&t, 2).with_workload(w.clone());
        let spec = ApplicationSpec::k_of_n(1, 3);
        let out = svc.deploy(&spec, &quick_requirements()).unwrap();
        assert!(w.average(out.plan.all_hosts()) < 0.5);
    }

    #[test]
    fn limited_information_mode_works() {
        let t = FatTreeParams::new(4).build();
        let svc = ReCloud::with_default_probability(&t, 0.01, 3);
        let spec = ApplicationSpec::k_of_n(1, 2);
        let out = svc.deploy(&spec, &quick_requirements()).unwrap();
        assert!(out.reliability > 0.9);
    }
}
