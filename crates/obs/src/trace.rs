//! Always-on distributed tracing: fixed-capacity span storage plus the
//! thread-local propagation context that lets layers far below the
//! server (the assessment driver's chunk loop) attach spans to the
//! request that caused them.
//!
//! ## Span model
//!
//! A *trace* is identified by a nonzero `u64` chosen by the originator
//! (the client). Within a trace, spans form a tree: every span has a
//! `u32` id and a `parent` id, with `parent == 0` marking the root.
//! Span ids are allocated from a per-trace counter seeded with an
//! *id base* — the server allocates from base 0, a remote client from
//! [`CLIENT_ID_BASE`] — so two processes can contribute spans to the
//! same trace without coordinating. Timestamps are absolute
//! microseconds ([`now_us`]): a Unix-epoch anchor captured once per
//! process plus a monotonic `Instant`, which keeps intervals exact
//! within a process and comparable across processes on one machine.
//!
//! ## Capacity and sampling
//!
//! The tracer is "sampled always-on": every traced request records,
//! but storage is a fixed pool of [`MAX_TRACES`] slots with
//! [`MAX_SPANS`] preallocated span records each. Claiming a slot when
//! the pool is full evicts the oldest claim; spans past a slot's
//! capacity are dropped and counted ([`Tracer::spans`] reports the
//! drop count). The record path takes one `Mutex` lock and writes into
//! preallocated storage — no allocation, no syscalls.

use std::cell::Cell;
use std::sync::{Mutex, OnceLock};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Traces the pool can hold concurrently before evicting old claims.
pub const MAX_TRACES: usize = 32;
/// Spans one trace can hold; later spans are dropped and counted.
pub const MAX_SPANS: usize = 512;
/// Span-id base a remote client allocates from, disjoint from the
/// server's base 0 so both sides of a connection can extend one trace
/// without coordinating ids.
pub const CLIENT_ID_BASE: u32 = 1 << 20;

/// One completed (or still-open, `end_us == 0`) span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span id, unique within the trace; never 0.
    pub id: u32,
    /// Parent span id; 0 marks a root span.
    pub parent: u32,
    /// Stage name, e.g. `"queue.wait"` or `"assess.chunk"`.
    pub kind: &'static str,
    /// Absolute start, microseconds since the Unix epoch.
    pub start_us: u64,
    /// Absolute end; 0 while the span is still open.
    pub end_us: u64,
    /// First kind-specific tag (e.g. rounds for `assess.chunk`).
    pub v0: u64,
    /// Second kind-specific tag (e.g. chunk index).
    pub v1: u64,
}

/// The propagation context a thread carries while working on behalf of
/// a traced request: which trace, and which span is the current parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanCtx {
    /// The trace being extended.
    pub trace_id: u64,
    /// Span to parent new child spans under.
    pub span: u32,
}

thread_local! {
    static CURRENT: Cell<Option<SpanCtx>> = const { Cell::new(None) };
}

/// The span context the current thread is working under, if any.
#[inline]
pub fn current_span() -> Option<SpanCtx> {
    CURRENT.with(|c| c.get())
}

/// Runs `f` with `ctx` as the thread's current span context, restoring
/// the previous context afterwards (also on panic).
pub fn with_current_span<R>(ctx: SpanCtx, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<SpanCtx>);
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(CURRENT.with(|c| c.replace(Some(ctx))));
    f()
}

fn clock() -> &'static (u64, Instant) {
    static CLOCK: OnceLock<(u64, Instant)> = OnceLock::new();
    CLOCK.get_or_init(|| {
        let base =
            SystemTime::now().duration_since(UNIX_EPOCH).unwrap_or_default().as_micros() as u64;
        (base, Instant::now())
    })
}

/// Absolute microseconds since the Unix epoch, monotone within the
/// process (epoch anchor captured once + `Instant` elapsed).
pub fn now_us() -> u64 {
    let &(base, t0) = clock();
    base + t0.elapsed().as_micros() as u64
}

struct TraceSlot {
    /// 0 = free.
    trace_id: u64,
    /// Claim order, for oldest-first eviction.
    claimed_seq: u64,
    next_id: u32,
    finished: bool,
    dropped: u64,
    spans: Vec<SpanRecord>,
}

struct TracerInner {
    slots: Vec<TraceSlot>,
    seq: u64,
    latest_finished: u64,
}

/// Fixed-capacity span storage shared by every layer in the process.
///
/// All methods are cheap no-ops while instruments are disabled
/// ([`crate::set_enabled`]) or when the trace id is 0 / unknown, so
/// untraced requests pay only a branch.
pub struct Tracer {
    inner: Mutex<TracerInner>,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

impl Tracer {
    /// A tracer with its whole span pool preallocated.
    pub fn new() -> Self {
        let slots = (0..MAX_TRACES)
            .map(|_| TraceSlot {
                trace_id: 0,
                claimed_seq: 0,
                next_id: 0,
                finished: false,
                dropped: 0,
                spans: Vec::with_capacity(MAX_SPANS),
            })
            .collect();
        Tracer { inner: Mutex::new(TracerInner { slots, seq: 0, latest_finished: 0 }) }
    }

    /// Claims (or re-finds) the slot for `trace_id`, evicting the
    /// oldest claim when the pool is full. Idempotent: a second `begin`
    /// for a live trace keeps the existing slot and its id counter, so
    /// in-process client+server pairs share one id sequence.
    pub fn begin(&self, trace_id: u64, id_base: u32) {
        if trace_id == 0 || !crate::enabled() {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        inner.seq += 1;
        let seq = inner.seq;
        if let Some(slot) = inner.slots.iter_mut().find(|s| s.trace_id == trace_id) {
            slot.claimed_seq = seq;
            return;
        }
        let slot = match inner.slots.iter_mut().find(|s| s.trace_id == 0) {
            Some(free) => free,
            None => inner.slots.iter_mut().min_by_key(|s| s.claimed_seq).expect("pool not empty"),
        };
        slot.trace_id = trace_id;
        slot.claimed_seq = seq;
        slot.next_id = id_base;
        slot.finished = false;
        slot.dropped = 0;
        slot.spans.clear();
    }

    /// Opens a span under `parent` (0 = root) and returns its id, or 0
    /// when the trace is unknown or tracing is off.
    pub fn start(&self, trace_id: u64, parent: u32, kind: &'static str) -> u32 {
        self.push(trace_id, parent, kind, now_us(), 0, 0, 0)
    }

    /// Closes an open span, stamping its end time.
    pub fn end(&self, trace_id: u64, span: u32) {
        self.end_with(trace_id, span, None);
    }

    /// Closes an open span, optionally setting its `(v0, v1)` tags.
    pub fn end_with(&self, trace_id: u64, span: u32, tags: Option<(u64, u64)>) {
        if trace_id == 0 || span == 0 || !crate::enabled() {
            return;
        }
        let end_us = now_us();
        let mut inner = self.inner.lock().unwrap();
        let Some(slot) = inner.slots.iter_mut().find(|s| s.trace_id == trace_id) else {
            return;
        };
        // Open spans are recent; scan from the back.
        if let Some(s) = slot.spans.iter_mut().rev().find(|s| s.id == span) {
            s.end_us = end_us;
            if let Some((v0, v1)) = tags {
                s.v0 = v0;
                s.v1 = v1;
            }
        }
    }

    /// Records an already-completed span in one call (the driver's
    /// chunk loop measures first, records after). Returns the span id.
    pub fn record(
        &self,
        trace_id: u64,
        parent: u32,
        kind: &'static str,
        start_us: u64,
        end_us: u64,
        v0: u64,
        v1: u64,
    ) -> u32 {
        self.push(trace_id, parent, kind, start_us, end_us, v0, v1)
    }

    fn push(
        &self,
        trace_id: u64,
        parent: u32,
        kind: &'static str,
        start_us: u64,
        end_us: u64,
        v0: u64,
        v1: u64,
    ) -> u32 {
        if trace_id == 0 || !crate::enabled() {
            return 0;
        }
        let mut inner = self.inner.lock().unwrap();
        let Some(slot) = inner.slots.iter_mut().find(|s| s.trace_id == trace_id) else {
            return 0;
        };
        if slot.spans.len() == MAX_SPANS {
            slot.dropped += 1;
            return 0;
        }
        slot.next_id += 1;
        let id = slot.next_id;
        slot.spans.push(SpanRecord { id, parent, kind, start_us, end_us, v0, v1 });
        id
    }

    /// Merges externally recorded spans (a client's TraceUpload) into
    /// the trace, keeping their ids as sent. Ignores unknown traces.
    pub fn absorb(&self, trace_id: u64, spans: &[SpanRecord]) {
        if trace_id == 0 || !crate::enabled() {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        let Some(slot) = inner.slots.iter_mut().find(|s| s.trace_id == trace_id) else {
            return;
        };
        for &s in spans {
            if slot.spans.len() == MAX_SPANS {
                slot.dropped += 1;
            } else {
                slot.spans.push(s);
            }
        }
    }

    /// Marks the trace complete; it becomes the "latest finished" trace
    /// that [`Tracer::latest_finished`] reports.
    pub fn finish(&self, trace_id: u64) {
        if trace_id == 0 || !crate::enabled() {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        if let Some(slot) = inner.slots.iter_mut().find(|s| s.trace_id == trace_id) {
            slot.finished = true;
            inner.latest_finished = trace_id;
        }
    }

    /// The spans of a trace (in record order) plus its drop count, or
    /// `None` if the trace is unknown (never begun, or evicted).
    pub fn spans(&self, trace_id: u64) -> Option<(Vec<SpanRecord>, u64)> {
        let inner = self.inner.lock().unwrap();
        let slot = inner.slots.iter().find(|s| s.trace_id == trace_id && trace_id != 0)?;
        Some((slot.spans.clone(), slot.dropped))
    }

    /// The most recently finished trace id, if any trace ever finished.
    pub fn latest_finished(&self) -> Option<u64> {
        let inner = self.inner.lock().unwrap();
        (inner.latest_finished != 0).then_some(inner.latest_finished)
    }
}

/// The process-wide tracer every layer records into.
pub fn tracer() -> &'static Tracer {
    static TRACER: OnceLock<Tracer> = OnceLock::new();
    TRACER.get_or_init(Tracer::new)
}

/// Stage names the reproduction's own layers record, interned for free.
const KNOWN_KINDS: [&str; 10] = [
    "client.request",
    "client.connect",
    "client.partial",
    "server.request",
    "queue.wait",
    "cache.lookup",
    "worker.exec",
    "assess.chunk",
    "store.append",
    "partial.emit",
];

/// Maps a wire-carried stage name onto the `&'static str` a
/// [`SpanRecord`] holds. Known stage names cost nothing; unknown ones go
/// into a small bounded side table (leaked once each), and past that
/// bound they all collapse to `"other"` — a hostile uploader cannot grow
/// process memory one span kind at a time.
pub fn intern_kind(kind: &str) -> &'static str {
    if let Some(k) = KNOWN_KINDS.iter().find(|k| **k == kind) {
        return k;
    }
    static EXTRA: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
    let mut extra = EXTRA.lock().unwrap();
    if let Some(k) = extra.iter().find(|k| **k == kind) {
        return k;
    }
    if extra.len() >= 64 {
        return "other";
    }
    let leaked: &'static str = Box::leak(kind.to_string().into_boxed_str());
    extra.push(leaked);
    leaked
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_form_a_tree_with_ids_from_the_base() {
        let t = Tracer::new();
        t.begin(7, 0);
        let root = t.start(7, 0, "server.request");
        assert_eq!(root, 1);
        let child = t.start(7, root, "queue.wait");
        assert_eq!(child, 2);
        t.end(7, child);
        t.end_with(7, root, Some((42, 0)));
        t.finish(7);
        let (spans, dropped) = t.spans(7).unwrap();
        assert_eq!(dropped, 0);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].kind, "server.request");
        assert_eq!(spans[0].v0, 42);
        assert!(spans[0].end_us >= spans[0].start_us);
        assert_eq!(spans[1].parent, root);
        assert!(spans[1].end_us != 0);
        assert_eq!(t.latest_finished(), Some(7));
    }

    #[test]
    fn begin_is_idempotent_and_shares_the_id_sequence() {
        let t = Tracer::new();
        t.begin(9, 0);
        let a = t.start(9, 0, "a");
        t.begin(9, CLIENT_ID_BASE); // in-process second party: base ignored
        let b = t.start(9, a, "b");
        assert_eq!(b, a + 1, "second begin must not reset the id counter");
    }

    #[test]
    fn full_pool_evicts_the_oldest_claim() {
        let t = Tracer::new();
        for id in 1..=(MAX_TRACES as u64 + 1) {
            t.begin(id, 0);
            t.start(id, 0, "root");
        }
        assert!(t.spans(1).is_none(), "oldest claim evicted");
        assert!(t.spans(2).is_some());
        assert!(t.spans(MAX_TRACES as u64 + 1).is_some());
    }

    #[test]
    fn span_overflow_is_dropped_and_counted() {
        let t = Tracer::new();
        t.begin(3, 0);
        for _ in 0..(MAX_SPANS + 5) {
            t.start(3, 0, "s");
        }
        let (spans, dropped) = t.spans(3).unwrap();
        assert_eq!(spans.len(), MAX_SPANS);
        assert_eq!(dropped, 5);
    }

    #[test]
    fn absorb_merges_foreign_spans_verbatim() {
        let t = Tracer::new();
        t.begin(4, 0);
        let server_root = t.start(4, CLIENT_ID_BASE + 1, "server.request");
        t.end(4, server_root);
        let client = SpanRecord {
            id: CLIENT_ID_BASE + 1,
            parent: 0,
            kind: "client.request",
            start_us: 1,
            end_us: 2,
            v0: 0,
            v1: 0,
        };
        t.absorb(4, &[client]);
        let (spans, _) = t.spans(4).unwrap();
        assert!(spans.contains(&client));
        assert_eq!(spans[0].parent, CLIENT_ID_BASE + 1, "server root hangs off the client span");
    }

    #[test]
    fn unknown_and_zero_traces_are_cheap_no_ops() {
        let t = Tracer::new();
        assert_eq!(t.start(0, 0, "x"), 0);
        assert_eq!(t.start(99, 0, "x"), 0, "never begun");
        t.end(99, 1);
        t.finish(99);
        assert!(t.spans(99).is_none());
        assert_eq!(t.latest_finished(), None);
    }

    #[test]
    fn with_current_span_restores_on_exit() {
        assert_eq!(current_span(), None);
        let ctx = SpanCtx { trace_id: 5, span: 2 };
        with_current_span(ctx, || {
            assert_eq!(current_span(), Some(ctx));
            with_current_span(SpanCtx { trace_id: 5, span: 3 }, || {
                assert_eq!(current_span().unwrap().span, 3);
            });
            assert_eq!(current_span(), Some(ctx));
        });
        assert_eq!(current_span(), None);
    }

    #[test]
    fn intern_kind_reuses_known_and_repeated_names() {
        let a = intern_kind("queue.wait");
        assert_eq!(a, "queue.wait");
        let b = intern_kind(&String::from("custom.stage"));
        let c = intern_kind(&String::from("custom.stage"));
        assert_eq!(b, "custom.stage");
        assert!(std::ptr::eq(b, c), "repeated unknown names intern to one allocation");
    }

    #[test]
    fn now_us_is_monotone_and_epoch_anchored() {
        let a = now_us();
        let b = now_us();
        assert!(b >= a);
        // Sanity: after 2020-01-01 in microseconds.
        assert!(a > 1_577_836_800_000_000);
    }
}
