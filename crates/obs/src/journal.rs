//! A fixed-capacity lock-free ring-buffer event journal.
//!
//! ## Semantics
//!
//! Writers claim a slot with one `fetch_add` on the head counter and
//! publish the event through a per-slot sequence word (a seqlock built
//! entirely from atomics — no `unsafe`): the writer stores the odd
//! "in-progress" sequence, writes the payload fields, then stores the
//! even "published" sequence with `Release`. Readers load the sequence
//! before and after copying the payload and discard the slot if either
//! load is odd or the two differ, so a torn read can never surface. The
//! record path takes no lock and performs no allocation.
//!
//! Event kinds are interned `&'static str` names: [`Journal::kind_id`]
//! registers a name once (under a lock, at setup time) and returns a
//! copyable [`KindId`]; [`Journal::record`] takes the id, keeping the
//! hot path lock-free. The ring keeps the newest `capacity` events;
//! older events are silently overwritten (wraparound is part of the
//! contract and property-tested).
//!
//! Timestamps are microseconds since the UNIX epoch, computed as a
//! `SystemTime` base captured at journal creation plus a monotonic
//! `Instant` offset — monotone within one journal and comparable
//! across journals in the same process (the server merges its private
//! journal with the global one).

use crate::{push_json_f64, push_json_str, thread_ordinal};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Default journal capacity (events); must be a power of two.
pub const DEFAULT_CAPACITY: usize = 4096;

/// An interned event-kind identifier; cheap to copy and pass around.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KindId(u32);

/// One published journal event, as returned by [`Journal::tail`].
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Global sequence number (0-based, monotone per journal).
    pub seq: u64,
    /// Microseconds since the UNIX epoch.
    pub ts_micros: u64,
    /// Recording thread's dense ordinal (see `thread_ordinal`).
    pub thread: u64,
    /// Event kind name (resolved from the interned id).
    pub kind: String,
    /// First integer payload field (kind-specific meaning).
    pub v0: u64,
    /// Second integer payload field.
    pub v1: u64,
    /// First float payload field (kind-specific meaning).
    pub f0: f64,
    /// Second float payload field.
    pub f1: f64,
}

impl Event {
    /// Renders the event as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str(&format!(
            "{{\"seq\":{},\"ts_us\":{},\"thread\":{},\"kind\":",
            self.seq, self.ts_micros, self.thread
        ));
        push_json_str(&mut out, &self.kind);
        out.push_str(&format!(",\"v0\":{},\"v1\":{},\"f0\":", self.v0, self.v1));
        push_json_f64(&mut out, self.f0);
        out.push_str(",\"f1\":");
        push_json_f64(&mut out, self.f1);
        out.push('}');
        out
    }
}

/// One ring slot: a sequence word plus the payload, all atomics so the
/// seqlock protocol needs no `unsafe`. Sequence states for the event
/// with global index `i`: `2*i + 1` while being written, `2*i + 2`
/// once published (0 means "never written").
#[derive(Default)]
struct Slot {
    seq: AtomicU64,
    ts: AtomicU64,
    thread: AtomicU64,
    kind: AtomicU64,
    v0: AtomicU64,
    v1: AtomicU64,
    f0_bits: AtomicU64,
    f1_bits: AtomicU64,
}

/// A fixed-capacity lock-free ring buffer of structured events.
pub struct Journal {
    head: AtomicU64,
    slots: Box<[Slot]>,
    kinds: RwLock<Vec<&'static str>>,
    epoch_base_micros: u64,
    start: Instant,
}

impl Default for Journal {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }
}

impl Journal {
    /// Creates a journal holding the newest `capacity` events
    /// (rounded up to a power of two, minimum 8).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(8).next_power_of_two();
        let epoch_base_micros =
            SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_micros() as u64).unwrap_or(0);
        Self {
            head: AtomicU64::new(0),
            slots: (0..capacity).map(|_| Slot::default()).collect(),
            kinds: RwLock::new(Vec::new()),
            epoch_base_micros,
            start: Instant::now(),
        }
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total number of events ever recorded (including overwritten).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Interns an event-kind name, returning a copyable id. Safe to
    /// call repeatedly (idempotent); takes a lock, so do it at setup
    /// time and keep the id, not per event.
    pub fn kind_id(&self, name: &'static str) -> KindId {
        if let Some(i) = self.kinds.read().unwrap().iter().position(|k| *k == name) {
            return KindId(i as u32);
        }
        let mut kinds = self.kinds.write().unwrap();
        if let Some(i) = kinds.iter().position(|k| *k == name) {
            return KindId(i as u32);
        }
        kinds.push(name);
        KindId((kinds.len() - 1) as u32)
    }

    /// Records one event. Lock-free and allocation-free; no-op while
    /// instruments are disabled.
    #[inline]
    pub fn record(&self, kind: KindId, v0: u64, v1: u64, f0: f64, f1: f64) {
        if !crate::enabled() {
            return;
        }
        let i = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(i as usize) & (self.slots.len() - 1)];
        slot.seq.store(2 * i + 1, Ordering::Relaxed);
        // Keep the payload stores from reordering before the odd
        // ("write in progress") sequence store.
        std::sync::atomic::fence(Ordering::Release);
        let ts = self.epoch_base_micros + self.start.elapsed().as_micros() as u64;
        slot.ts.store(ts, Ordering::Relaxed);
        slot.thread.store(thread_ordinal(), Ordering::Relaxed);
        slot.kind.store(kind.0 as u64, Ordering::Relaxed);
        slot.v0.store(v0, Ordering::Relaxed);
        slot.v1.store(v1, Ordering::Relaxed);
        slot.f0_bits.store(f0.to_bits(), Ordering::Relaxed);
        slot.f1_bits.store(f1.to_bits(), Ordering::Relaxed);
        slot.seq.store(2 * i + 2, Ordering::Release);
    }

    /// Convenience: intern + record in one call. Takes the interning
    /// lock — fine for cold call sites, not for hot loops.
    pub fn record_named(&self, name: &'static str, v0: u64, v1: u64, f0: f64, f1: f64) {
        let kind = self.kind_id(name);
        self.record(kind, v0, v1, f0, f1);
    }

    /// Returns up to the newest `n` published events, oldest first.
    /// Slots being concurrently overwritten are skipped, never torn.
    pub fn tail(&self, n: usize) -> Vec<Event> {
        let kinds: Vec<&'static str> = self.kinds.read().unwrap().clone();
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let lo = head.saturating_sub((n as u64).min(cap));
        let mut out = Vec::with_capacity((head - lo) as usize);
        for i in lo..head {
            let slot = &self.slots[(i as usize) & (self.slots.len() - 1)];
            let seq_before = slot.seq.load(Ordering::Acquire);
            if seq_before != 2 * i + 2 {
                continue; // unpublished, in-progress, or already overwritten
            }
            let ts = slot.ts.load(Ordering::Relaxed);
            let thread = slot.thread.load(Ordering::Relaxed);
            let kind = slot.kind.load(Ordering::Relaxed);
            let v0 = slot.v0.load(Ordering::Relaxed);
            let v1 = slot.v1.load(Ordering::Relaxed);
            let f0 = f64::from_bits(slot.f0_bits.load(Ordering::Relaxed));
            let f1 = f64::from_bits(slot.f1_bits.load(Ordering::Relaxed));
            // Keep the payload loads from reordering after the
            // validating sequence re-load.
            std::sync::atomic::fence(Ordering::Acquire);
            let seq_after = slot.seq.load(Ordering::Relaxed);
            if seq_after != seq_before {
                continue; // overwritten while reading
            }
            let kind = kinds
                .get(kind as usize)
                .map(|k| (*k).to_string())
                .unwrap_or_else(|| format!("kind#{kind}"));
            out.push(Event { seq: i, ts_micros: ts, thread, kind, v0, v1, f0, f1 });
        }
        out
    }

    /// Renders the newest `n` events as JSON lines (one per event,
    /// `\n`-separated, trailing newline when non-empty).
    pub fn export_json_lines(&self, n: usize) -> String {
        let mut out = String::new();
        for event in self.tail(n) {
            out.push_str(&event.to_json_line());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_tails_in_order() {
        let j = Journal::with_capacity(16);
        let k = j.kind_id("test.alpha");
        for i in 0..5u64 {
            j.record(k, i, i * 10, i as f64 / 2.0, 0.0);
        }
        let events = j.tail(10);
        assert_eq!(events.len(), 5);
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[4].seq, 4);
        assert_eq!(events[3].v0, 3);
        assert_eq!(events[3].v1, 30);
        assert_eq!(events[3].f0, 1.5);
        assert_eq!(events[3].kind, "test.alpha");
        assert!(events.windows(2).all(|w| w[0].ts_micros <= w[1].ts_micros));
    }

    #[test]
    fn wraparound_keeps_the_newest_events() {
        let j = Journal::with_capacity(8);
        let k = j.kind_id("test.wrap");
        for i in 0..100u64 {
            j.record(k, i, 0, 0.0, 0.0);
        }
        let events = j.tail(usize::MAX);
        assert_eq!(events.len(), 8, "ring holds exactly capacity");
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (92..100).collect::<Vec<_>>());
        let last3 = j.tail(3);
        assert_eq!(last3.iter().map(|e| e.v0).collect::<Vec<_>>(), vec![97, 98, 99]);
    }

    #[test]
    fn kind_interning_is_idempotent() {
        let j = Journal::with_capacity(8);
        let a = j.kind_id("a");
        let b = j.kind_id("b");
        assert_ne!(a, b);
        assert_eq!(a, j.kind_id("a"));
        j.record_named("b", 7, 0, 0.0, 0.0);
        assert_eq!(j.tail(1)[0].kind, "b");
    }

    #[test]
    fn concurrent_writers_never_tear_a_read() {
        let j = Journal::with_capacity(64);
        let k = j.kind_id("test.concurrent");
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let j = &j;
                scope.spawn(move || {
                    for i in 0..5_000u64 {
                        // Payload invariant: v1 == v0 * 3, f0 == v0 as f64.
                        let v = t * 1_000_000 + i;
                        j.record(k, v, v * 3, v as f64, -1.0);
                    }
                });
            }
            let j = &j;
            scope.spawn(move || {
                for _ in 0..200 {
                    for e in j.tail(64) {
                        assert_eq!(e.v1, e.v0 * 3, "torn read");
                        assert_eq!(e.f0, e.v0 as f64, "torn read");
                        assert_eq!(e.f1, -1.0);
                    }
                }
            });
        });
        assert_eq!(j.recorded(), 20_000);
    }

    #[test]
    fn json_lines_export_is_one_object_per_line() {
        let j = Journal::with_capacity(8);
        j.record_named("x", 1, 2, 0.5, f64::NAN);
        let text = j.export_json_lines(8);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].starts_with('{') && lines[0].ends_with('}'));
        assert!(lines[0].contains("\"kind\":\"x\""));
        assert!(lines[0].contains("\"f1\":null"), "NaN renders as null: {}", lines[0]);
    }
}
