//! RAII stage timers: a [`SpanGuard`] measures a named stage with
//! `Instant` and, on drop, records the elapsed microseconds into a
//! histogram and optionally appends a thread-tagged journal event.

use crate::{Histogram, Journal, KindId};
use std::time::Instant;

/// An RAII span over a named stage.
///
/// The stage's name is the histogram it feeds (histograms are named
/// instruments in a [`crate::Registry`]); dropping the guard records
/// `elapsed().as_micros()` there. With [`SpanGuard::with_journal`] the
/// drop also appends a journal event (`v0` = elapsed µs, `v1` = a
/// caller-chosen tag, thread id tagged by the journal itself).
///
/// ```
/// let registry = recloud_obs::Registry::new();
/// let hist = registry.histogram("stage.sampling_us");
/// {
///     let _span = recloud_obs::SpanGuard::new(&hist);
///     // ... timed work ...
/// } // drop records elapsed microseconds
/// assert_eq!(hist.snapshot().count, 1);
/// ```
pub struct SpanGuard<'a> {
    histogram: &'a Histogram,
    journal: Option<(&'a Journal, KindId, u64)>,
    start: Instant,
}

impl<'a> SpanGuard<'a> {
    /// Starts a span feeding `histogram` on drop.
    pub fn new(histogram: &'a Histogram) -> Self {
        Self { histogram, journal: None, start: Instant::now() }
    }

    /// Starts a span that additionally appends a journal event of
    /// `kind` on drop, with `tag` as the event's `v1` payload.
    pub fn with_journal(
        histogram: &'a Histogram,
        journal: &'a Journal,
        kind: KindId,
        tag: u64,
    ) -> Self {
        Self { histogram, journal: Some((journal, kind, tag)), start: Instant::now() }
    }

    /// Elapsed time so far, in microseconds.
    pub fn elapsed_micros(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let micros = self.elapsed_micros();
        self.histogram.record(micros);
        if let Some((journal, kind, tag)) = self.journal {
            journal.record(kind, micros, tag, 0.0, 0.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_elapsed_micros_on_drop() {
        let hist = Histogram::new();
        {
            let span = SpanGuard::new(&hist);
            std::thread::sleep(std::time::Duration::from_millis(2));
            assert!(span.elapsed_micros() >= 1_000);
        }
        let s = hist.snapshot();
        assert_eq!(s.count, 1);
        assert!(s.max >= 1_000, "recorded {} µs", s.max);
    }

    #[test]
    fn span_with_journal_appends_a_tagged_event() {
        let hist = Histogram::new();
        let journal = Journal::with_capacity(8);
        let kind = journal.kind_id("stage.test");
        drop(SpanGuard::with_journal(&hist, &journal, kind, 42));
        let events = journal.tail(8);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, "stage.test");
        assert_eq!(events[0].v1, 42);
        assert_eq!(events[0].v0 as u128, hist.snapshot().sum as u128);
        assert_eq!(events[0].thread, crate::thread_ordinal());
    }
}
