//! `recloud-obs`: always-on observability for the reCloud reproduction.
//!
//! Hand-rolled and std-only (consistent with the hermetic guard), this
//! crate provides three instruments plus the plumbing around them:
//!
//! * **Metrics** ([`Counter`], [`Gauge`], [`Histogram`]) — sharded
//!   atomic counters, signed gauges, and fixed 64-bucket power-of-two
//!   latency histograms with p50/p90/p99/max readout. Every record path
//!   is lock-free and allocation-free so the instruments can stay on in
//!   the bit-sliced assessment hot path.
//! * **Spans** ([`SpanGuard`]) — RAII timers over `Instant` for named
//!   stages; on drop they record elapsed microseconds into a histogram
//!   and (optionally) append a thread-tagged event to a journal.
//! * **Journal** ([`Journal`]) — a fixed-capacity lock-free ring buffer
//!   of structured events (seqlock-validated slots, no `unsafe`), with
//!   JSON-lines export for post-mortem debugging of the daemon.
//! * **Traces** ([`trace::Tracer`]) — per-request causal span trees
//!   over fixed-capacity preallocated storage, propagated across
//!   layers via a thread-local [`trace::SpanCtx`] and across the wire
//!   via the RCS1 trace-context frame.
//!
//! Instruments live in a [`Registry`] keyed by name. Library layers
//! (assess, search) record into the process-wide [`global()`] registry;
//! the serving daemon owns a private registry per server instance so
//! tests can assert exact counter deltas. Snapshots of both merge into
//! one [`MetricsSnapshot`] for the RCS1 `MetricsDump` frame.
//!
//! A process-wide kill switch ([`set_enabled`]) turns every record path
//! into a single relaxed atomic load + branch; the bench harness uses it
//! to measure instrumentation overhead against the uninstrumented path.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod journal;
mod metrics;
mod registry;
mod span;
pub mod trace;

pub use journal::{Event, Journal, KindId};
pub use metrics::{
    bucket_of, bucket_upper_bound, Counter, Gauge, Histogram, HistogramSnapshot, LocalHistogram,
};
pub use registry::{global, MetricsSnapshot, Registry};
pub use span::SpanGuard;
pub use trace::{
    current_span, intern_kind, tracer, with_current_span, SpanCtx, SpanRecord, Tracer,
};

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Process-wide instrument kill switch (default: enabled).
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Returns whether instruments currently record anything.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Enable or disable every instrument in the process.
///
/// With instruments disabled each record path reduces to one relaxed
/// atomic load and a branch; `repro bench-assess` measures the
/// enabled-vs-disabled delta and reports it as `obs_overhead_pct`.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// A small dense per-thread ordinal (0, 1, 2, ...) used to tag journal
/// events and pick counter shards. Unlike `std::thread::ThreadId`, it is
/// stable, compact, and available on stable Rust.
pub fn thread_ordinal() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static ORDINAL: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    ORDINAL.with(|o| *o)
}

/// Append a JSON string literal (with escaping) to `out`.
pub(crate) fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Render an `f64` the way the rest of the repo's hand-rolled JSON does:
/// finite values via `{:?}` (shortest round-trip), non-finite as `null`.
pub(crate) fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v:?}"));
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_ordinals_are_distinct_across_threads() {
        let mine = thread_ordinal();
        assert_eq!(mine, thread_ordinal(), "stable within a thread");
        let other = std::thread::spawn(thread_ordinal).join().unwrap();
        assert_ne!(mine, other);
    }

    // NOTE: the kill-switch (`set_enabled`) is exercised in
    // tests/overhead.rs, which serializes every test touching the
    // process-wide flag; toggling it here would race with the other
    // unit tests in this binary.

    #[test]
    fn json_string_escaping_covers_control_characters() {
        let mut out = String::new();
        push_json_str(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
        let mut out = String::new();
        push_json_f64(&mut out, f64::NAN);
        assert_eq!(out, "null");
    }
}
