//! The instrument registry: named counters, gauges, and histograms
//! plus one journal, with point-in-time snapshots and JSON export.
//!
//! Registration (`counter`/`gauge`/`histogram`) takes a lock and may
//! allocate; call sites do it once at setup and keep the returned
//! `Arc` handle, so the record paths stay lock- and allocation-free.
//! Names are sorted (`BTreeMap`) so snapshots and JSON are
//! deterministic.

use crate::{push_json_str, Counter, Gauge, Histogram, HistogramSnapshot, Journal};
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock, RwLock};

/// A set of named instruments plus an event journal.
///
/// Library layers (assess, search) use the process-wide [`global()`]
/// registry; the daemon owns one `Registry` per server instance so
/// concurrent servers (and tests) see isolated counters.
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
    journal: Journal,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// Creates an empty registry with a default-capacity journal.
    pub fn new() -> Self {
        Self::with_journal_capacity(crate::journal::DEFAULT_CAPACITY)
    }

    /// Creates an empty registry with a journal of the given capacity.
    pub fn with_journal_capacity(capacity: usize) -> Self {
        Self {
            counters: RwLock::new(BTreeMap::new()),
            gauges: RwLock::new(BTreeMap::new()),
            histograms: RwLock::new(BTreeMap::new()),
            journal: Journal::with_capacity(capacity),
        }
    }

    /// Gets or creates the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_insert(&self.counters, name)
    }

    /// Gets or creates the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_insert(&self.gauges, name)
    }

    /// Gets or creates the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_insert(&self.histograms, name)
    }

    /// The registry's event journal.
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// Takes a point-in-time snapshot of every instrument.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .read()
                .unwrap()
                .iter()
                .map(|(name, c)| (name.clone(), c.value()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .unwrap()
                .iter()
                .map(|(name, g)| (name.clone(), g.value()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .unwrap()
                .iter()
                .map(|(name, h)| (name.clone(), h.snapshot()))
                .collect(),
        }
    }
}

fn get_or_insert<T: Default>(map: &RwLock<BTreeMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    if let Some(existing) = map.read().unwrap().get(name) {
        return Arc::clone(existing);
    }
    let mut map = map.write().unwrap();
    Arc::clone(map.entry(name.to_string()).or_default())
}

/// The process-wide registry used by the assess and search layers.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// An owned point-in-time view of a [`Registry`]'s instruments, in
/// sorted name order. This is what travels in the RCS1 `MetricsDump`
/// response and what the benches embed in their BENCH JSON.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, total)` per counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` per gauge, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// `(name, snapshot)` per histogram, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Looks up a counter total by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Looks up a gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Looks up a histogram snapshot by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// Merges another snapshot into this one. Same-named counters and
    /// gauges add, same-named histograms merge bucket-wise; the result
    /// stays sorted by name.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, v) in &other.counters {
            match self.counters.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
                Ok(i) => self.counters[i].1 += v,
                Err(i) => self.counters.insert(i, (name.clone(), *v)),
            }
        }
        for (name, v) in &other.gauges {
            match self.gauges.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
                Ok(i) => self.gauges[i].1 += v,
                Err(i) => self.gauges.insert(i, (name.clone(), *v)),
            }
        }
        for (name, h) in &other.histograms {
            match self.histograms.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
                Ok(i) => self.histograms[i].1.merge(h),
                Err(i) => self.histograms.insert(i, (name.clone(), h.clone())),
            }
        }
    }

    /// Renders the snapshot as one JSON object:
    /// `{"counters":{...},"gauges":{...},"histograms":{name:{count,sum,max,p50,p90,p99,buckets}}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, name);
            out.push_str(&format!(":{v}"));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, name);
            out.push_str(&format!(":{v}"));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, name);
            out.push(':');
            out.push_str(&h.to_json());
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_and_snapshots_are_sorted() {
        let r = Registry::new();
        let a = r.counter("z.second");
        let b = r.counter("a.first");
        let a2 = r.counter("z.second");
        a.add(3);
        a2.add(4);
        b.inc();
        r.gauge("depth").set(5);
        r.histogram("lat_us").record(100);
        let s = r.snapshot();
        assert_eq!(s.counters, vec![("a.first".into(), 1), ("z.second".into(), 7)]);
        assert_eq!(s.gauge("depth"), Some(5));
        assert_eq!(s.histogram("lat_us").unwrap().count, 1);
        assert_eq!(s.counter("missing"), None);
    }

    #[test]
    fn merge_adds_counters_and_buckets_and_stays_sorted() {
        let a = Registry::new();
        let b = Registry::new();
        a.counter("shared").add(2);
        b.counter("shared").add(5);
        b.counter("b.only").inc();
        a.histogram("h").record(10);
        b.histogram("h").record(10_000);
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!(s.counter("shared"), Some(7));
        assert_eq!(s.counter("b.only"), Some(1));
        let names: Vec<&str> = s.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["b.only", "shared"], "sorted after merge");
        let h = s.histogram("h").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.max, 10_000);
    }

    #[test]
    fn snapshot_json_is_balanced_and_contains_every_instrument() {
        let r = Registry::new();
        r.counter("req_total").add(12);
        r.gauge("queue_depth").set(-1);
        r.histogram("lat").record(33);
        let j = r.snapshot().to_json();
        assert!(j.starts_with("{\"counters\":{"));
        assert!(j.contains("\"req_total\":12"));
        assert!(j.contains("\"queue_depth\":-1"));
        assert!(j.contains("\"lat\":{\"count\":1"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn global_registry_is_a_singleton() {
        let g1 = global() as *const Registry;
        let g2 = global() as *const Registry;
        assert_eq!(g1, g2);
    }
}
