//! Lock-free, allocation-free metric instruments: sharded counters,
//! signed gauges, and fixed 64-bucket power-of-two histograms.
//!
//! ## Histogram bucket math
//!
//! Bucket `b` covers values `v` with `floor(log2(v)) == b`, i.e. the
//! half-open range `[2^b, 2^(b+1))`; zero is folded into bucket 0, so
//! bucket 0 covers `{0, 1}`. With 64 buckets the full `u64` range is
//! covered (`u64::MAX` lands in bucket 63). Quantiles are read out by
//! walking the cumulative bucket counts and reporting the bucket's
//! upper bound, clamped to the exact tracked maximum — a ≤2× relative
//! error bound, which is plenty for latency percentiles while keeping
//! the record path at two relaxed atomic RMWs plus a `fetch_max`.

use crate::thread_ordinal;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Number of counter shards; a small power of two so the shard pick is
/// a mask. Sized to cover the worker counts used by the daemon/benches
/// without making snapshots scan a large array.
const SHARDS: usize = 8;

/// A cache-line-padded atomic cell, so two shards never share a line.
#[derive(Default)]
#[repr(align(64))]
struct PaddedU64(AtomicU64);

/// A monotonically increasing counter, sharded per thread to avoid
/// cross-core cache-line bouncing on hot increments.
///
/// `add`/`inc` are lock-free and allocation-free (one relaxed
/// `fetch_add` on the caller's shard); `value()` sums the shards.
#[derive(Default)]
pub struct Counter {
    shards: [PaddedU64; SHARDS],
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the counter. No-op while instruments are disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if !crate::enabled() {
            return;
        }
        let shard = (thread_ordinal() as usize) & (SHARDS - 1);
        self.shards[shard].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current total across all shards.
    pub fn value(&self) -> u64 {
        self.shards.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
    }
}

/// A signed gauge (set/add semantics), e.g. queue depth or cache bytes.
#[derive(Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge to an absolute value. No-op while instruments
    /// are disabled, like every other record path.
    #[inline]
    pub fn set(&self, v: i64) {
        if !crate::enabled() {
            return;
        }
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds a (possibly negative) delta.
    #[inline]
    pub fn add(&self, delta: i64) {
        if !crate::enabled() {
            return;
        }
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: one per `floor(log2(v))` for `v: u64`.
pub const BUCKETS: usize = 64;

/// Bucket index for a recorded value: `floor(log2(v))`, with 0 mapped
/// into bucket 0 (so bucket 0 holds `{0, 1}`).
#[inline]
pub fn bucket_of(v: u64) -> usize {
    (63 - (v | 1).leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `b`: `2^(b+1) - 1` (saturating to
/// `u64::MAX` for bucket 63).
#[inline]
pub fn bucket_upper_bound(b: usize) -> u64 {
    if b >= 63 {
        u64::MAX
    } else {
        (1u64 << (b + 1)) - 1
    }
}

/// A fixed-layout log-bucketed histogram (HDR-style): 64 power-of-two
/// buckets plus exact count/sum/max, all relaxed atomics.
///
/// `record` is lock-free and allocation-free; snapshots are taken by
/// reading the buckets (racy reads are acceptable for monitoring — the
/// snapshot is a consistent-enough view, never torn per-cell).
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one value. No-op while instruments are disabled.
    #[inline]
    pub fn record(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Takes a point-in-time snapshot of the histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

/// A plain single-threaded histogram accumulator for batching hot-path
/// records.
///
/// Shared [`Histogram`]s cost four atomic RMWs per `record`; a tight
/// loop (the assessment driver's per-chunk path) records into one of
/// these instead — plain integer arithmetic, no atomics — and flushes
/// the whole batch into the shared histogram once, off the hot path.
/// The flushed result is bit-identical to having recorded each value
/// directly.
#[derive(Clone, Debug)]
pub struct LocalHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LocalHistogram {
    fn default() -> Self {
        Self { buckets: [0; BUCKETS], count: 0, sum: 0, max: 0 }
    }
}

impl LocalHistogram {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one value (plain arithmetic, no atomics, no gating —
    /// callers batch only while instruments are enabled).
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
        self.max = self.max.max(v);
    }

    /// Number of values accumulated since the last flush.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Adds the whole batch to `target` and resets the accumulator.
    /// Unconditional (no kill-switch check): the data was gathered
    /// while instruments were enabled, the flush is just transport.
    pub fn flush_into(&mut self, target: &Histogram) {
        if self.count == 0 {
            return;
        }
        for (b, &c) in self.buckets.iter().enumerate() {
            if c != 0 {
                target.buckets[b].fetch_add(c, Ordering::Relaxed);
            }
        }
        target.count.fetch_add(self.count, Ordering::Relaxed);
        target.sum.fetch_add(self.sum, Ordering::Relaxed);
        target.max.fetch_max(self.max, Ordering::Relaxed);
        *self = Self::default();
    }
}

/// An owned, immutable view of a [`Histogram`] with quantile readout.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total number of recorded values.
    pub count: u64,
    /// Sum of all recorded values (wrapping add on overflow).
    pub sum: u64,
    /// Exact maximum recorded value.
    pub max: u64,
    /// Per-bucket counts; bucket `b` covers `[2^b, 2^(b+1))`.
    pub buckets: [u64; BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self { count: 0, sum: 0, max: 0, buckets: [0; BUCKETS] }
    }
}

impl HistogramSnapshot {
    /// Quantile readout: the upper bound of the first bucket whose
    /// cumulative count reaches `ceil(q * count)`, clamped to the exact
    /// tracked maximum. Returns 0 for an empty histogram. Monotone in
    /// `q` by construction.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1).min(self.count);
        let mut cumulative = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            cumulative = cumulative.saturating_add(c);
            if cumulative >= rank {
                return bucket_upper_bound(b).min(self.max);
            }
        }
        self.max
    }

    /// Median (p50).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Merges another snapshot into this one (bucket-wise sum).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }

    /// Renders the snapshot as a JSON object with sparse buckets
    /// (`[[bucket, count], ...]` — only non-zero buckets appear).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128);
        out.push_str(&format!(
            "{{\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[",
            self.count,
            self.sum,
            self.max,
            self.p50(),
            self.p90(),
            self.p99()
        ));
        let mut first = true;
        for (b, &c) in self.buckets.iter().enumerate() {
            if c != 0 {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!("[{b},{c}]"));
            }
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_threads() {
        let c = Counter::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.value(), 80_000);
    }

    #[test]
    fn gauge_set_and_add() {
        let g = Gauge::new();
        g.set(42);
        g.add(-2);
        assert_eq!(g.value(), 40);
    }

    #[test]
    fn bucket_of_matches_floor_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(1023), 9);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), 63);
        for b in 0..BUCKETS {
            let lo = if b == 0 { 0 } else { 1u64 << b };
            assert_eq!(bucket_of(lo), b);
            assert_eq!(bucket_of(bucket_upper_bound(b)), b);
        }
    }

    #[test]
    fn histogram_quantiles_bound_the_true_values() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.max, 1000);
        // True p50 is 500 (bucket 8, range 256..512 has upper bound
        // 511); the readout must be >= the true quantile and <= 2x it.
        let p50 = s.p50();
        assert!((500..=1000).contains(&p50), "p50 readout {p50}");
        assert!(s.p90() >= s.p50());
        assert!(s.p99() >= s.p90());
        assert!(s.quantile(1.0) == s.max, "p100 is the exact max");
        assert_eq!(s.mean(), 500.5);
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p99(), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn snapshot_merge_is_bucketwise() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(3);
        b.record(300);
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!(s.count, 2);
        assert_eq!(s.max, 300);
        assert_eq!(s.buckets[bucket_of(3)], 1);
        assert_eq!(s.buckets[bucket_of(300)], 1);
    }

    #[test]
    fn local_histogram_flush_matches_direct_records() {
        let direct = Histogram::new();
        let batched = Histogram::new();
        let mut local = LocalHistogram::new();
        for v in [0u64, 1, 7, 300, 4096, u64::MAX] {
            direct.record(v);
            local.record(v);
        }
        assert_eq!(local.count(), 6);
        local.flush_into(&batched);
        assert_eq!(local.count(), 0, "flush resets the accumulator");
        assert_eq!(batched.snapshot(), direct.snapshot());
        local.flush_into(&batched);
        assert_eq!(batched.snapshot(), direct.snapshot(), "empty flush is a no-op");
    }

    #[test]
    fn histogram_json_is_sparse_and_balanced() {
        let h = Histogram::new();
        h.record(5);
        h.record(5);
        let j = h.snapshot().to_json();
        assert!(j.contains("\"count\":2"));
        assert!(j.contains("[2,2]"), "bucket 2 holds both fives: {j}");
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }
}
