//! Overhead guard: the record paths (counter increment, histogram
//! record, journal record) must be lock-free and allocation-free so
//! instrumentation cannot silently regress the bit-sliced kernel
//! speedup. A counting global allocator proves the "no `Box`/`Vec` in
//! the record path" claim; the kill-switch semantics are exercised
//! here too because they mutate process-global state (every test in
//! this binary that touches it serializes on one mutex).

use recloud_obs::{Counter, Gauge, Histogram, Journal, Registry};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::Mutex;

struct CountingAlloc;

// Per-thread allocation counter (const-initialized, no-Drop payload, so
// reading it inside the allocator neither allocates nor recurses).
// Per-thread because the libtest harness allocates on other threads
// concurrently; only the measuring thread's allocations must count.
thread_local! {
    static TL_ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        TL_ALLOCATIONS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        TL_ALLOCATIONS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Serializes the tests that flip the process-wide enable flag.
static SERIAL: Mutex<()> = Mutex::new(());

fn allocations_during(f: impl FnOnce()) -> u64 {
    let before = TL_ALLOCATIONS.with(Cell::get);
    f();
    TL_ALLOCATIONS.with(Cell::get) - before
}

#[test]
fn record_paths_do_not_allocate() {
    let _guard = SERIAL.lock().unwrap();
    // Setup (registration, interning) may allocate — that is the
    // point of handle caching. Done before counting starts.
    let registry = Registry::new();
    let counter = registry.counter("overhead.counter");
    let gauge = registry.gauge("overhead.gauge");
    let histogram = registry.histogram("overhead.hist");
    let kind = registry.journal().kind_id("overhead.event");
    let journal = registry.journal();

    let allocated = allocations_during(|| {
        for i in 0..100_000u64 {
            counter.add(1);
            gauge.set(i as i64);
            histogram.record(i);
            journal.record(kind, i, i, 0.5, 1.5);
        }
    });
    assert_eq!(allocated, 0, "record paths must not allocate (got {allocated} allocations)");
    assert_eq!(counter.value(), 100_000);
    assert_eq!(histogram.snapshot().count, 100_000);
    assert_eq!(journal.recorded(), 100_000);
}

#[test]
fn record_paths_are_lock_free_under_contention() {
    let _guard = SERIAL.lock().unwrap();
    // Lock-freedom is asserted structurally (the instruments hold only
    // atomics — no Mutex/RwLock on the record path) and behaviorally:
    // heavy multi-thread hammering loses no increments and the journal
    // claims exactly one slot per record.
    let counter = Counter::new();
    let histogram = Histogram::new();
    let journal = Journal::with_capacity(1024);
    let kind = journal.kind_id("contention");
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 50_000;
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let (counter, histogram, journal) = (&counter, &histogram, &journal);
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    counter.inc();
                    histogram.record(t * PER_THREAD + i);
                    journal.record(kind, i, t, 0.0, 0.0);
                }
            });
        }
    });
    assert_eq!(counter.value(), THREADS * PER_THREAD);
    assert_eq!(histogram.snapshot().count, THREADS * PER_THREAD);
    assert_eq!(journal.recorded(), THREADS * PER_THREAD);
}

#[test]
fn kill_switch_disables_and_reenables_every_instrument() {
    let _guard = SERIAL.lock().unwrap();
    let registry = Registry::new();
    let counter = registry.counter("switch.counter");
    let histogram = registry.histogram("switch.hist");
    let kind = registry.journal().kind_id("switch.event");

    recloud_obs::set_enabled(false);
    counter.inc();
    histogram.record(9);
    registry.journal().record(kind, 1, 2, 3.0, 4.0);
    recloud_obs::set_enabled(true);

    assert_eq!(counter.value(), 0, "disabled counter records nothing");
    assert_eq!(histogram.snapshot().count, 0);
    assert_eq!(registry.journal().recorded(), 0);

    counter.inc();
    histogram.record(9);
    registry.journal().record(kind, 1, 2, 3.0, 4.0);
    assert_eq!(counter.value(), 1);
    assert_eq!(histogram.snapshot().count, 1);
    assert_eq!(registry.journal().tail(4).len(), 1);
}

#[test]
fn disabled_record_path_is_cheap() {
    let _guard = SERIAL.lock().unwrap();
    // Not a timing assertion (CI machines vary) — just proves the
    // disabled path also performs zero allocations, so the kill
    // switch really is one load+branch.
    let counter = Counter::new();
    let histogram = Histogram::new();
    recloud_obs::set_enabled(false);
    let allocated = allocations_during(|| {
        for i in 0..10_000u64 {
            counter.add(1);
            histogram.record(i);
        }
    });
    recloud_obs::set_enabled(true);
    assert_eq!(allocated, 0);
    assert_eq!(counter.value(), 0);
    assert_eq!(Gauge::new().value(), 0);
}
