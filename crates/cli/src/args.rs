//! Hand-rolled argument parsing (no external CLI crates).
//!
//! Grammar: `<command> (--flag [value])*`. Boolean flags take no value;
//! valued flags take exactly one. [`Parsed`] stores raw strings and
//! offers typed accessors with precise errors.

use std::collections::HashMap;
use std::fmt;

/// CLI failure modes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CliError {
    /// argv was empty.
    MissingCommand,
    /// The command word is not known.
    UnknownCommand(String),
    /// A flag that needs a value did not get one.
    MissingValue(String),
    /// A value failed to parse.
    BadValue {
        /// The flag whose value was bad.
        flag: String,
        /// The offending value.
        value: String,
        /// What the flag expected.
        expected: &'static str,
    },
    /// Anything command-specific (e.g. host id out of range).
    Invalid(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::MissingCommand => write!(f, "no command given; try `recloud help`"),
            CliError::UnknownCommand(c) => write!(f, "unknown command '{c}'; try `recloud help`"),
            CliError::MissingValue(flag) => write!(f, "flag --{flag} needs a value"),
            CliError::BadValue { flag, value, expected } => {
                write!(f, "--{flag}: '{value}' is not a valid {expected}")
            }
            CliError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CliError {}

/// Flags that are boolean (present/absent, no value).
const BOOL_FLAGS: &[&str] = &[
    "multi-objective",
    "distinct-racks",
    "monte-carlo",
    "switches-only",
    "smoke",
    "distinct-seeds",
    "json",
    "stream",
];

/// A parsed command line.
#[derive(Clone, Debug)]
pub struct Parsed {
    /// The command word.
    pub command: String,
    flags: HashMap<String, String>,
    bools: Vec<String>,
}

impl Parsed {
    /// Parses argv (without the program name).
    pub fn parse(argv: &[String]) -> Result<Parsed, CliError> {
        let mut it = argv.iter().peekable();
        let command = it.next().ok_or(CliError::MissingCommand)?.clone();
        let mut flags = HashMap::new();
        let mut bools = Vec::new();
        while let Some(a) = it.next() {
            let Some(name) = a.strip_prefix("--") else {
                return Err(CliError::Invalid(format!("unexpected argument '{a}'")));
            };
            if BOOL_FLAGS.contains(&name) {
                bools.push(name.to_string());
                continue;
            }
            match it.next() {
                Some(v) if !v.starts_with("--") => {
                    flags.insert(name.to_string(), v.clone());
                }
                _ => return Err(CliError::MissingValue(name.to_string())),
            }
        }
        Ok(Parsed { command, flags, bools })
    }

    /// Raw string flag.
    pub fn get(&self, flag: &str) -> Option<&str> {
        self.flags.get(flag).map(String::as_str)
    }

    /// Boolean flag presence.
    pub fn has(&self, flag: &str) -> bool {
        self.bools.iter().any(|b| b == flag)
    }

    /// String flag with default.
    pub fn str_or(&self, flag: &str, default: &str) -> String {
        self.get(flag).unwrap_or(default).to_string()
    }

    /// Integer flag with default.
    pub fn usize_or(&self, flag: &str, default: usize) -> Result<usize, CliError> {
        match self.get(flag) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| CliError::BadValue {
                flag: flag.to_string(),
                value: v.to_string(),
                expected: "integer",
            }),
        }
    }

    /// u32 flag with default.
    pub fn u32_or(&self, flag: &str, default: u32) -> Result<u32, CliError> {
        Ok(self.usize_or(flag, default as usize)? as u32)
    }

    /// u64 flag with default.
    pub fn u64_or(&self, flag: &str, default: u64) -> Result<u64, CliError> {
        Ok(self.usize_or(flag, default as usize)? as u64)
    }

    /// Integer flag; `None` when absent.
    pub fn usize_opt(&self, flag: &str) -> Result<Option<usize>, CliError> {
        match self.get(flag) {
            None => Ok(None),
            Some(v) => v.parse().map(Some).map_err(|_| CliError::BadValue {
                flag: flag.to_string(),
                value: v.to_string(),
                expected: "integer",
            }),
        }
    }

    /// u64 flag; `None` when absent.
    pub fn u64_opt(&self, flag: &str) -> Result<Option<u64>, CliError> {
        Ok(self.usize_opt(flag)?.map(|v| v as u64))
    }

    /// Float flag; `None` when absent.
    pub fn f64_opt(&self, flag: &str) -> Result<Option<f64>, CliError> {
        match self.get(flag) {
            None => Ok(None),
            Some(v) => v.parse().map(Some).map_err(|_| CliError::BadValue {
                flag: flag.to_string(),
                value: v.to_string(),
                expected: "number",
            }),
        }
    }

    /// Comma-separated integer list.
    pub fn usize_list(&self, flag: &str) -> Result<Option<Vec<usize>>, CliError> {
        match self.get(flag) {
            None => Ok(None),
            Some(v) => v
                .split(',')
                .map(|x| {
                    x.trim().parse().map_err(|_| CliError::BadValue {
                        flag: flag.to_string(),
                        value: x.to_string(),
                        expected: "integer list",
                    })
                })
                .collect::<Result<Vec<usize>, _>>()
                .map(Some),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(cmd: &str) -> Result<Parsed, CliError> {
        let argv: Vec<String> = cmd.split_whitespace().map(String::from).collect();
        Parsed::parse(&argv)
    }

    #[test]
    fn parses_flags_and_bools() {
        let p = parse("search --scale tiny --k 4 --multi-objective --budget-ms 100").unwrap();
        assert_eq!(p.command, "search");
        assert_eq!(p.get("scale"), Some("tiny"));
        assert_eq!(p.u32_or("k", 1).unwrap(), 4);
        assert!(p.has("multi-objective"));
        assert!(!p.has("distinct-racks"));
        assert_eq!(p.usize_or("budget-ms", 0).unwrap(), 100);
    }

    #[test]
    fn defaults_apply_when_absent() {
        let p = parse("assess").unwrap();
        assert_eq!(p.usize_or("rounds", 10_000).unwrap(), 10_000);
        assert_eq!(p.str_or("scale", "tiny"), "tiny");
        assert_eq!(p.usize_list("hosts").unwrap(), None);
    }

    #[test]
    fn trailing_comma_in_list_is_a_bad_value() {
        let p = parse("assess --hosts 1,2,").unwrap();
        let err = p.usize_list("hosts").unwrap_err();
        assert!(matches!(err, CliError::BadValue { .. }));
    }

    #[test]
    fn stray_positional_is_rejected() {
        let err = parse("assess stray").unwrap_err();
        assert!(matches!(err, CliError::Invalid(_)));
    }

    #[test]
    fn missing_value_detected() {
        let err = parse("assess --rounds --scale tiny").unwrap_err();
        assert_eq!(err, CliError::MissingValue("rounds".into()));
        let err = parse("assess --rounds").unwrap_err();
        assert_eq!(err, CliError::MissingValue("rounds".into()));
    }

    #[test]
    fn bad_integer_reported_with_context() {
        let p = parse("assess --rounds ten").unwrap();
        let err = p.usize_or("rounds", 1).unwrap_err();
        assert!(err.to_string().contains("ten"));
        assert!(err.to_string().contains("rounds"));
    }

    #[test]
    fn float_flag_parses_or_reports() {
        let p = parse("assess --stream --target-ciw 0.02").unwrap();
        assert!(p.has("stream"));
        assert_eq!(p.f64_opt("target-ciw").unwrap(), Some(0.02));
        assert_eq!(p.f64_opt("absent").unwrap(), None);
        let p = parse("assess --target-ciw tight").unwrap();
        let err = p.f64_opt("target-ciw").unwrap_err();
        assert!(err.to_string().contains("tight"));
    }

    #[test]
    fn list_parsing() {
        let p = parse("assess --hosts 60,61,62").unwrap();
        assert_eq!(p.usize_list("hosts").unwrap(), Some(vec![60, 61, 62]));
        let p = parse("assess --hosts 60,x").unwrap();
        assert!(p.usize_list("hosts").is_err());
    }
}
