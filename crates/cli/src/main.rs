//! The `recloud` binary: parse argv, run, print.

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match recloud_cli::run(&argv) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
