//! Command implementations. Each returns the rendered output string.

use crate::args::{CliError, Parsed};
use recloud::assess::compare_plans;
use recloud::prelude::*;
use recloud::search::common_practice::power_diversity;
use recloud::topology::{BCubeParams, Vl2Params};
use std::fmt::Write as _;
use std::time::Duration;

fn build_topology(p: &Parsed) -> Result<Topology, CliError> {
    if let Some(kind) = p.get("topology") {
        return match kind {
            "fattree" => Ok(FatTreeParams::new(p.u32_or("ports", 8)?).build()),
            "leafspine" => Ok(LeafSpineParams::new(
                p.u32_or("spines", 4)?,
                p.u32_or("leaves", 8)?,
                p.u32_or("hosts-per-leaf", 8)?,
            )
            .build()),
            "jellyfish" => Ok(JellyfishParams::new(
                p.u32_or("switches", 40)?,
                p.u32_or("ports", 6)?,
                p.u32_or("hosts-per-switch", 4)?,
            )
            .seed(p.u64_or("seed", 1)?)
            .build()),
            "bcube" => Ok(BCubeParams::new(p.u32_or("ports", 4)?, p.u32_or("levels", 1)?).build()),
            "vl2" => Ok(Vl2Params::new(p.u32_or("da", 8)?, p.u32_or("di", 4)?).build()),
            other => Err(CliError::BadValue {
                flag: "topology".into(),
                value: other.into(),
                expected: "fattree|leafspine|jellyfish|bcube|vl2",
            }),
        };
    }
    let scale = match p.str_or("scale", "tiny").as_str() {
        "tiny" => Scale::Tiny,
        "small" => Scale::Small,
        "medium" => Scale::Medium,
        "large" => Scale::Large,
        "xl" => Scale::Xl,
        other => {
            return Err(CliError::BadValue {
                flag: "scale".into(),
                value: other.into(),
                expected: "tiny|small|medium|large|xl",
            })
        }
    };
    Ok(scale.build())
}

fn topology_name(t: &Topology) -> &'static str {
    match t.topology_kind() {
        recloud::topology::TopologyKind::FatTree(_) => "fat-tree (dedicated border pod)",
        recloud::topology::TopologyKind::LeafSpine { .. } => "leaf-spine",
        recloud::topology::TopologyKind::Jellyfish { .. } => "Jellyfish (random regular graph)",
        recloud::topology::TopologyKind::Custom => "custom (builder / BCube / VL2)",
    }
}

fn build_spec(p: &Parsed) -> Result<(String, ApplicationSpec), CliError> {
    let k = p.u32_or("k", 4)?;
    let n = p.u32_or("n", 5)?;
    if k == 0 || k > n {
        return Err(CliError::Invalid(format!("need 1 <= k <= n (got k={k}, n={n})")));
    }
    if let Some(layers) = p.get("layers") {
        let l: usize = layers.parse().map_err(|_| CliError::BadValue {
            flag: "layers".into(),
            value: layers.into(),
            expected: "integer",
        })?;
        if l == 0 {
            return Err(CliError::Invalid("--layers must be at least 1".into()));
        }
        return Ok((
            format!("{l}-layer app, {k}-of-{n} per layer"),
            ApplicationSpec::layered(&vec![(k, n); l]),
        ));
    }
    Ok((format!("{k}-of-{n} redundancy"), ApplicationSpec::k_of_n(k, n)))
}

fn plan_from_flags(
    p: &Parsed,
    topology: &Topology,
    spec: &ApplicationSpec,
    seed: u64,
) -> Result<DeploymentPlan, CliError> {
    if let Some(ids) = p.usize_list("hosts")? {
        if ids.len() != spec.total_instances() {
            return Err(CliError::Invalid(format!(
                "--hosts needs exactly {} ids (got {})",
                spec.total_instances(),
                ids.len()
            )));
        }
        let mut it = ids.into_iter();
        let mut assignments = Vec::new();
        for comp in spec.components() {
            let mut hosts = Vec::new();
            for _ in 0..comp.instances {
                let raw = it.next().expect("length checked above");
                let id = ComponentId::from_index(raw);
                if raw >= topology.num_components()
                    || topology.component(id).kind != ComponentKind::Host
                {
                    return Err(CliError::Invalid(format!("id {raw} is not a host")));
                }
                hosts.push(id);
            }
            assignments.push(hosts);
        }
        return Ok(DeploymentPlan::new(spec, assignments));
    }
    let mut rng = Rng::new(seed);
    Ok(DeploymentPlan::random(spec, topology.hosts(), &mut rng))
}

fn describe_plan(topology: &Topology, plan: &DeploymentPlan, out: &mut String) {
    for c in 0..plan.num_components() {
        for (i, &h) in plan.hosts_of(c).iter().enumerate() {
            let power = topology
                .power_of(h)
                .map(|s| topology.component(s).name())
                .unwrap_or_else(|| "-".into());
            let _ = writeln!(
                out,
                "  component {c} instance {i}: {h} (rack {}, pod {}, power {power})",
                topology.component(topology.rack_of(h)).name(),
                topology.pod_of(h),
            );
        }
    }
}

/// `recloud topo`.
pub fn topo(p: &Parsed) -> Result<String, CliError> {
    let t = build_topology(p)?;
    let mut out = String::new();
    let _ = writeln!(out, "topology: {}", topology_name(&t));
    let _ = writeln!(
        out,
        "  {} hosts, {} switches, {} border switches, {} power supplies",
        t.num_hosts(),
        t.num_switches(),
        t.border_switches().len(),
        t.power_supplies().len()
    );
    let _ =
        writeln!(out, "  {} components total, {} links", t.num_components(), t.graph().num_edges());
    Ok(out)
}

/// `recloud assess`.
pub fn assess(p: &Parsed) -> Result<String, CliError> {
    if p.get("addr").is_some() {
        return assess_remote(p);
    }
    let t = build_topology(p)?;
    let seed = p.u64_or("seed", 1)?;
    let rounds = p.usize_or("rounds", 10_000)?;
    let (label, spec) = build_spec(p)?;
    let plan = plan_from_flags(p, &t, &spec, seed)?;
    let model = FaultModel::paper_default(&t, seed);
    let kind =
        if p.has("monte-carlo") { SamplerKind::MonteCarlo } else { SamplerKind::ExtendedDagger };
    let mut assessor = Assessor::with_sampler(&t, model, kind);
    let mut out = String::new();
    let _ = writeln!(out, "app: {label}");
    describe_plan(&t, &plan, &mut out);
    let a = if p.has("stream") {
        // Streamed drive: same chunk layout and totals as the plain call
        // (the estimate is a pure function of the accumulated counts), so
        // a run-to-completion stream prints the identical final line.
        let cadence = p.usize_or("cadence", 4)?.max(1);
        let target = p.f64_opt("target-ciw")?;
        if let Some(ciw) = target {
            if !(ciw > 0.0) {
                return Err(CliError::Invalid("--target-ciw must be a positive width".into()));
            }
        }
        let mut fed = 0usize;
        let driven = assessor.drive(&spec, &plan, rounds, seed, target, &mut |partial| {
            fed += 1;
            if fed % cadence == 0
                || partial.stop_hint
                || partial.rounds_done == partial.rounds_total
            {
                let _ = writeln!(
                    out,
                    "  chunk {:>4}/{}: {:>9}/{} rounds  R {:.5}  CIW {:.2e}",
                    partial.chunk + 1,
                    partial.chunks_total,
                    partial.rounds_done,
                    partial.rounds_total,
                    partial.r,
                    partial.ciw
                );
            }
            std::ops::ControlFlow::Continue(())
        });
        if !driven.completed {
            let _ = writeln!(
                out,
                "stopped early: CIW target {:.2e} reached after {} of {rounds} rounds",
                target.expect("early stop implies a target"),
                driven.assessment.estimate.rounds
            );
        }
        driven.assessment
    } else {
        assessor.assess(&spec, &plan, rounds, seed)
    };
    let _ = writeln!(
        out,
        "reliability {:.5} (95% CI width {:.2e}) over {} rounds [{} sampler]",
        a.estimate.score,
        a.estimate.ciw95(),
        a.estimate.rounds,
        a.sampler
    );
    let _ = writeln!(
        out,
        "implied annual downtime: {:.1} hours; assessed in {:?}",
        a.estimate.annual_downtime_hours(),
        a.timings.total
    );
    Ok(out)
}

/// `recloud search`.
pub fn search(p: &Parsed) -> Result<String, CliError> {
    if p.get("addr").is_some() {
        return search_remote(p);
    }
    let workers = p.usize_or("workers", 1)?;
    if workers == 0 {
        return Err(CliError::Invalid("--workers must be at least 1".into()));
    }
    if workers > 1 || p.has("stream") {
        return search_parallel(p, workers);
    }
    let t = build_topology(p)?;
    let seed = p.u64_or("seed", 1)?;
    let rounds = p.usize_or("rounds", 10_000)?;
    let budget = Duration::from_millis(p.u64_or("budget-ms", 2_000)?);
    let (label, spec) = build_spec(p)?;
    let mut svc = ReCloud::paper_default(&t, seed);
    if p.has("multi-objective") {
        svc = svc.with_workload(WorkloadMap::paper_default(&t, seed));
    }
    if p.has("distinct-racks") {
        svc = svc.with_rules(PlacementRules::distinct_racks());
    }
    let req = Requirements::paper_default().budget(budget).rounds(rounds);
    let outcome =
        svc.deploy_best_effort(&spec, &req).map_err(|e| CliError::Invalid(e.to_string()))?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "app: {label}{}",
        if p.has("multi-objective") { " (holistic objective)" } else { "" }
    );
    for (i, &h) in outcome.plan.hosts_of(0).iter().enumerate() {
        let _ = writeln!(out, "  instance {i}: {h} (pod {})", t.pod_of(h));
    }
    if outcome.plan.num_components() > 1 {
        describe_plan(&t, &outcome.plan, &mut out);
    }
    let _ = writeln!(
        out,
        "reliability {:.5} (± {:.1e}); {:.1} h/yr expected downtime",
        outcome.reliability, outcome.ciw95, outcome.annual_downtime_hours
    );
    let _ = writeln!(
        out,
        "{} plans explored in {:?}; power diversity {}/{}",
        outcome.plans_assessed,
        outcome.search_time,
        power_diversity(&t, &outcome.plan),
        t.power_supplies().len()
    );
    Ok(out)
}

/// `recloud search --workers N [--stream] [--iters I]` — the
/// population-based parallel annealer, in process. `--iters` gives every
/// chain a deterministic iteration budget (the answer becomes a pure
/// function of seed/workers/iters); without it every chain runs the
/// wall-clock `--budget-ms`. `--stream` renders each chain's best-plan
/// improvements as trajectory lines.
fn search_parallel(p: &Parsed, workers: usize) -> Result<String, CliError> {
    use recloud::search::{
        ChainEvent, HolisticObjective, Objective, ParallelSearchConfig, ParallelSearcher,
        ReliabilityObjective, SearchBudget, SearchConfig,
    };
    let t = build_topology(p)?;
    let seed = p.u64_or("seed", 1)?;
    let rounds = p.usize_or("rounds", 10_000)?;
    let iters = p.usize_or("iters", 0)?;
    let (label, spec) = build_spec(p)?;
    let budget = if iters > 0 {
        SearchBudget::Iterations(iters)
    } else {
        SearchBudget::WallClock(Duration::from_millis(p.u64_or("budget-ms", 2_000)?))
    };
    let rules = if p.has("distinct-racks") {
        PlacementRules::distinct_racks()
    } else {
        PlacementRules::none()
    };
    let base = SearchConfig { budget, rounds, rules, ..SearchConfig::paper_default(seed) };
    let mut config = ParallelSearchConfig::new(workers, base);
    config.exchange_every = p.usize_or("exchange-every", config.exchange_every)?;
    let workload = p.has("multi-objective").then(|| WorkloadMap::paper_default(&t, seed));
    let objective: Box<dyn Objective + Sync> = match &workload {
        Some(w) => Box::new(HolisticObjective::new(0.5, 0.5, w.clone())),
        None => Box::new(ReliabilityObjective),
    };
    let model = FaultModel::paper_default(&t, seed);
    let searcher = ParallelSearcher::new(&t, model);

    let events: std::sync::Mutex<Vec<ChainEvent>> = std::sync::Mutex::new(Vec::new());
    let sink = |e: ChainEvent| events.lock().unwrap().push(e);
    let on_event: Option<&(dyn Fn(ChainEvent) + Sync)> =
        if p.has("stream") { Some(&sink) } else { None };
    let outcome = searcher.search(&spec, objective.as_ref(), &config, workload.as_ref(), on_event);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "app: {label}{}; {workers} annealing chains (exchange every {} ticks)",
        if p.has("multi-objective") { " (holistic objective)" } else { "" },
        config.exchange_every,
    );
    if p.has("stream") {
        let mut events = events.into_inner().unwrap();
        events.sort_by(|a, b| (a.chain, a.iteration).cmp(&(b.chain, b.iteration)));
        for e in &events {
            let _ = writeln!(
                out,
                "  [chain {}] iter {:>6}  M {:.5}  R {:.5}  T {:.3}",
                e.chain, e.iteration, e.measure, e.reliability, e.temperature
            );
        }
    }
    let best = &outcome.best;
    for (i, &h) in best.best_plan.hosts_of(0).iter().enumerate() {
        let _ = writeln!(out, "  instance {i}: {h} (pod {})", t.pod_of(h));
    }
    let _ = writeln!(
        out,
        "reliability {:.5} (± {:.1e}); chain {} won",
        best.best_reliability, best.best_ciw95, outcome.winner
    );
    let _ = writeln!(
        out,
        "{} plans explored across {} chains in {:?}; power diversity {}/{}",
        outcome.combined.plans_assessed,
        workers,
        outcome.elapsed,
        power_diversity(&t, &best.best_plan),
        t.power_supplies().len()
    );
    Ok(out)
}

/// `recloud search --addr HOST:PORT [--stream]` — run the parallel search
/// on a live daemon over RCS1 `SearchStream`, rendering `SearchEvent`
/// frames as they arrive.
fn search_remote(p: &Parsed) -> Result<String, CliError> {
    use recloud_server::protocol::{Preset, SearchRequest};
    use recloud_server::Client;
    let addr = p.str_or("addr", "127.0.0.1:7070");
    if p.get("topology").is_some() {
        return Err(CliError::Invalid(
            "--addr serves preset scales only; --topology is a local-search flag".into(),
        ));
    }
    let scale = p.str_or("scale", "tiny");
    let preset = Preset::from_name(&scale).ok_or_else(|| CliError::BadValue {
        flag: "scale".into(),
        value: scale.clone(),
        expected: "tiny|small|medium|large|xl",
    })?;
    let workers = p.u32_or("workers", 2)?;
    let iters = p.u32_or("iters", 0)?;
    let request = SearchRequest {
        preset,
        rounds: p.u32_or("rounds", 10_000)?,
        seed: p.u64_or("seed", 1)?,
        k: p.u32_or("k", 4)?,
        n: p.u32_or("n", 5)?,
        budget_ms: p.u32_or("budget-ms", 2_000)?,
    };
    let mut client = Client::connect(&addr)
        .map_err(|e| CliError::Invalid(format!("cannot connect to {addr}: {e}")))?;
    client
        .set_timeout(Some(Duration::from_secs(300)))
        .map_err(|e| CliError::Invalid(format!("set timeout: {e}")))?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "app: {}-of-{} on {scale} preset at {addr}; {workers} chains",
        request.k, request.n
    );
    let stream = p.has("stream");
    let mut improvements = 0u64;
    let resp = client
        .search_streaming(request, workers, iters, |e| {
            improvements += 1;
            if stream {
                let _ = writeln!(
                    out,
                    "  [chain {}] iter {:>6}  M {:.5}  R {:.5}  T {:.3}",
                    e.chain, e.iteration, e.measure, e.reliability, e.temperature
                );
            }
        })
        .map_err(|e| CliError::Invalid(format!("search stream: {e}")))?;
    let _ = writeln!(out, "  hosts: {:?}", resp.hosts);
    let _ = writeln!(
        out,
        "reliability {:.5} (± {:.1e}); {} plans explored, {improvements} streamed improvements",
        resp.reliability, resp.ciw95, resp.plans_assessed
    );
    Ok(out)
}

/// `recloud assess --addr HOST:PORT [--stream]` — run the assessment on
/// a live daemon over RCS1, with end-to-end tracing: the connection is
/// armed with a `TraceContext` frame before the request so the server
/// records its work (queue wait, cache lookup, worker execution,
/// per-chunk kernel spans, store append) under this client's root span,
/// and the client's own spans (connect, request, one per streamed
/// Partial) are shipped back with `TraceUpload` afterwards — one causal
/// tree, fetchable with `recloud trace`.
fn assess_remote(p: &Parsed) -> Result<String, CliError> {
    use recloud_obs::trace::{self, CLIENT_ID_BASE};
    use recloud_server::loadgen::first_hosts;
    use recloud_server::protocol::{AssessRequest, Preset, TraceSpan};
    use recloud_server::Client;
    let addr = p.str_or("addr", "127.0.0.1:7070");
    if p.get("topology").is_some() {
        return Err(CliError::Invalid(
            "--addr serves preset scales only; --topology is a local-assess flag".into(),
        ));
    }
    let scale = p.str_or("scale", "tiny");
    let preset = Preset::from_name(&scale).ok_or_else(|| CliError::BadValue {
        flag: "scale".into(),
        value: scale.clone(),
        expected: "tiny|small|medium|large|xl",
    })?;
    let k = p.u32_or("k", 4)?;
    let n = p.u32_or("n", 5)?;
    if k == 0 || k > n {
        return Err(CliError::Invalid(format!("need 1 <= k <= n (got k={k}, n={n})")));
    }
    let request = AssessRequest {
        preset,
        rounds: p.u32_or("rounds", 10_000)?,
        seed: p.u64_or("seed", 1)?,
        k,
        n,
        assignments: vec![first_hosts(preset, n as usize)],
    };

    // Client-originated spans join the server's via the shared trace id;
    // ids allocated from CLIENT_ID_BASE cannot collide with the server's
    // (base 0). `| 1` keeps clear of the reserved id 0.
    let tracer = recloud_obs::tracer();
    let trace_id = trace::now_us() | 1;
    tracer.begin(trace_id, CLIENT_ID_BASE);
    let root = tracer.start(trace_id, 0, "client.request");

    let connect_start = trace::now_us();
    let mut client = Client::connect(&addr)
        .map_err(|e| CliError::Invalid(format!("cannot connect to {addr}: {e}")))?;
    tracer.record(trace_id, root, "client.connect", connect_start, trace::now_us(), 0, 0);
    client
        .set_timeout(Some(Duration::from_secs(300)))
        .map_err(|e| CliError::Invalid(format!("set timeout: {e}")))?;
    client.set_trace(trace_id, root).map_err(|e| CliError::Invalid(format!("arm trace: {e}")))?;

    let mut out = String::new();
    let _ = writeln!(out, "app: {k}-of-{n} on {scale} preset at {addr}");
    let a = if p.has("stream") {
        let cadence = p.u32_or("cadence", 4)?.max(1);
        let mut partials = 0u64;
        let (a, _stopped) = client
            .assess_streaming(request, cadence, |partial| {
                partials += 1;
                let at = trace::now_us();
                tracer.record(
                    trace_id,
                    root,
                    "client.partial",
                    at,
                    at,
                    partial.rounds_done,
                    partials,
                );
                let _ = writeln!(
                    out,
                    "  partial {:>3}: {:>9}/{} rounds  R {:.5}  CIW {:.2e}",
                    partials, partial.rounds_done, partial.rounds_total, partial.score, partial.ciw
                );
                std::ops::ControlFlow::Continue(())
            })
            .map_err(|e| CliError::Invalid(format!("assess stream: {e}")))?;
        a
    } else {
        client.assess(request).map_err(|e| CliError::Invalid(format!("assess: {e}")))?
    };
    tracer.end(trace_id, root);

    // Ship the client's side of the tree; the server absorbs it into the
    // trace (its own side already finished when the reply was sent).
    if let Some((spans, _dropped)) = tracer.spans(trace_id) {
        let wire: Vec<TraceSpan> = spans
            .iter()
            .map(|s| TraceSpan {
                id: s.id,
                parent: s.parent,
                kind: s.kind.to_string(),
                start_us: s.start_us,
                end_us: s.end_us,
                v0: s.v0,
                v1: s.v1,
            })
            .collect();
        let _ = client.trace_upload(trace_id, wire);
    }

    let _ = writeln!(
        out,
        "reliability {:.5} (95% CI width {:.2e}) over {} rounds{}",
        a.score,
        4.0 * a.variance.sqrt(),
        a.rounds,
        if a.cached { " [cached]" } else { "" }
    );
    let _ = writeln!(out, "trace {trace_id}; fetch: recloud trace --addr {addr} --id {trace_id}");
    Ok(out)
}

/// `recloud trace [--addr HOST:PORT] [--id X] [--chrome out.json]` —
/// fetch an assembled span tree from a live daemon and render it.
/// `--id 0` (the default) asks for the most recently finished trace;
/// `--chrome` additionally writes Chrome trace-event JSON (load in
/// `chrome://tracing` or ui.perfetto.dev).
pub fn trace(p: &Parsed) -> Result<String, CliError> {
    use recloud_server::Client;
    let addr = p.str_or("addr", "127.0.0.1:7070");
    let id = p.u64_or("id", 0)?;
    let mut client = Client::connect(&addr)
        .map_err(|e| CliError::Invalid(format!("cannot connect to {addr}: {e}")))?;
    client
        .set_timeout(Some(Duration::from_secs(30)))
        .map_err(|e| CliError::Invalid(format!("set timeout: {e}")))?;
    let t = client.trace_dump(id).map_err(|e| CliError::Invalid(format!("trace dump: {e}")))?;
    if t.trace_id == 0 {
        return Err(CliError::Invalid(if id == 0 {
            "no finished trace on the server yet (run e.g. `recloud assess --addr … --stream` first)"
                .into()
        } else {
            format!("trace {id} not found on the server (evicted or never recorded)")
        }));
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace {}: {} spans{}",
        t.trace_id,
        t.spans.len(),
        if t.dropped > 0 { format!(" ({} dropped)", t.dropped) } else { String::new() }
    );
    render_span_tree(&t.spans, &mut out);
    if let Some(path) = p.get("chrome") {
        let json = chrome_trace_json(&t.spans);
        std::fs::write(path, &json).map_err(|e| CliError::Invalid(format!("write {path}: {e}")))?;
        let _ = writeln!(out, "chrome trace written to {path}");
    }
    Ok(out)
}

/// Renders spans as an indented forest ordered by start time, offsets
/// relative to the earliest span. Spans whose parent is absent (dropped
/// past capacity, or a mid-trace dump) surface as extra roots rather
/// than disappearing.
fn render_span_tree(spans: &[recloud_server::TraceSpan], out: &mut String) {
    use std::collections::{HashMap, HashSet};
    let ids: HashSet<u32> = spans.iter().map(|s| s.id).collect();
    let mut children: HashMap<u32, Vec<usize>> = HashMap::new();
    let mut roots: Vec<usize> = Vec::new();
    for (i, s) in spans.iter().enumerate() {
        if s.parent != 0 && ids.contains(&s.parent) {
            children.entry(s.parent).or_default().push(i);
        } else {
            roots.push(i);
        }
    }
    let by_start = |&i: &usize| (spans[i].start_us, spans[i].id);
    roots.sort_by_key(by_start);
    for v in children.values_mut() {
        v.sort_by_key(by_start);
    }
    let base = spans.iter().map(|s| s.start_us).min().unwrap_or(0);
    // Depth-first with an explicit stack; children pushed in reverse so
    // the earliest-started child prints first.
    let mut stack: Vec<(usize, usize)> = roots.iter().rev().map(|&i| (i, 0)).collect();
    while let Some((i, depth)) = stack.pop() {
        let s = &spans[i];
        let dur = if s.end_us == 0 {
            "open".to_string()
        } else {
            format!("{} us", s.end_us.saturating_sub(s.start_us))
        };
        let tags = if s.v0 != 0 || s.v1 != 0 {
            format!("  [v0={} v1={}]", s.v0, s.v1)
        } else {
            String::new()
        };
        let _ = writeln!(
            out,
            "  {:indent$}{:<16} +{} us  {}{}",
            "",
            s.kind,
            s.start_us.saturating_sub(base),
            dur,
            tags,
            indent = depth * 2
        );
        if let Some(kids) = children.get(&s.id) {
            for &k in kids.iter().rev() {
                stack.push((k, depth + 1));
            }
        }
    }
}

/// Chrome trace-event JSON: one "X" (complete) event per span with
/// microsecond timestamps relative to the earliest span, client spans on
/// tid 2 and server spans on tid 1, span ids and tags in `args`.
fn chrome_trace_json(spans: &[recloud_server::TraceSpan]) -> String {
    use recloud_obs::trace::CLIENT_ID_BASE;
    let base = spans.iter().map(|s| s.start_us).min().unwrap_or(0);
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let end = if s.end_us == 0 { s.start_us } else { s.end_us };
        let tid = if s.id >= CLIENT_ID_BASE { 2 } else { 1 };
        let _ = write!(
            out,
            "{{\"name\":{},\"cat\":\"recloud\",\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\
             \"ts\":{},\"dur\":{},\"args\":{{\"id\":{},\"parent\":{},\"v0\":{},\"v1\":{}}}}}",
            json_quote(&s.kind),
            s.start_us.saturating_sub(base),
            end.saturating_sub(s.start_us).max(1),
            s.id,
            s.parent,
            s.v0,
            s.v1
        );
    }
    out.push_str("]}");
    out
}

/// Minimal JSON string quoting for span kinds (matches the repo's other
/// hand-rolled JSON emitters).
fn json_quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// `recloud compare`.
pub fn compare(p: &Parsed) -> Result<String, CliError> {
    let t = build_topology(p)?;
    let seed = p.u64_or("seed", 1)?;
    let rounds = p.usize_or("rounds", 10_000)?;
    let n_candidates = p.usize_or("candidates", 4)?;
    if n_candidates == 0 {
        return Err(CliError::Invalid("--candidates must be at least 1".into()));
    }
    let (label, spec) = build_spec(p)?;
    let model = FaultModel::paper_default(&t, seed);
    let mut rng = Rng::new(seed);
    let plans: Vec<DeploymentPlan> =
        (0..n_candidates).map(|_| DeploymentPlan::random(&spec, t.hosts(), &mut rng)).collect();
    let mut assessor = Assessor::new(&t, model);
    let cmp = compare_plans(&mut assessor, &spec, &plans, rounds, seed);
    let mut out = String::new();
    let _ = writeln!(out, "app: {label}; ranking {n_candidates} candidate plans:");
    let _ = writeln!(out, "  rank  plan  reliability      ciw95  tied-with-best");
    for (rank, r) in cmp.ranking.iter().enumerate() {
        let _ = writeln!(
            out,
            "  #{:<4} {:>4}  {:>10.5}  {:>9.2e}  {}",
            rank + 1,
            r.input_index,
            r.assessment.estimate.score,
            r.assessment.estimate.ciw95(),
            if r.tied_with_best { "yes" } else { "no" }
        );
    }
    let winners = cmp.statistical_winners();
    let _ = writeln!(
        out,
        "statistically indistinguishable winners: {winners:?} (95% intervals overlap)"
    );
    Ok(out)
}

/// `recloud whatif`.
pub fn whatif(p: &Parsed) -> Result<String, CliError> {
    let t = build_topology(p)?;
    let seed = p.u64_or("seed", 1)?;
    let (label, spec) = build_spec(p)?;
    let plan = plan_from_flags(p, &t, &spec, seed)?;
    let model = FaultModel::paper_default(&t, seed);

    // Parse --fail kind:ordinal[,...].
    let fail_spec = p
        .get("fail")
        .ok_or_else(|| CliError::Invalid("whatif needs --fail <kind:ordinal>[,...]".into()))?;
    let mut injector = FaultInjector::new();
    let mut names = Vec::new();
    for item in fail_spec.split(',') {
        let (kind, ord) = item.split_once(':').ok_or_else(|| CliError::BadValue {
            flag: "fail".into(),
            value: item.into(),
            expected: "kind:ordinal (e.g. power:0)",
        })?;
        let ord: u32 = ord.parse().map_err(|_| CliError::BadValue {
            flag: "fail".into(),
            value: item.into(),
            expected: "kind:ordinal with integer ordinal",
        })?;
        let found = t
            .components()
            .iter()
            .find(|c| c.kind.tag() == kind && c.ordinal == ord)
            .ok_or_else(|| CliError::Invalid(format!("no component '{kind}{ord}'")))?;
        injector.fail(found.id);
        names.push(found.name());
    }

    // One injected round through the full pipeline.
    let mut raw = recloud::sampling::BitMatrix::new(model.num_events(), 1);
    injector.apply(&mut raw);
    let mut collapsed = recloud::sampling::BitMatrix::new(model.num_topology_components(), 1);
    model.collapse_into(&raw, &mut collapsed);
    let mut router = recloud::routing::make_router(&t);
    router.begin_round(&collapsed, 0);
    let mut checker = recloud::assess::StructureChecker::new(&spec, &plan);
    let survives = checker.round_reliable(router.as_mut(), &collapsed, 0);

    let dead_hosts = t.hosts().iter().filter(|h| collapsed.get(h.index(), 0)).count();
    let mut alive_instances = 0usize;
    let mut total = 0usize;
    for c in 0..plan.num_components() {
        for &h in plan.hosts_of(c) {
            total += 1;
            if router.external_reaches(&collapsed, h) {
                alive_instances += 1;
            }
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "app: {label}");
    let _ = writeln!(out, "forced failed: {}", names.join(", "));
    let _ = writeln!(
        out,
        "blast radius: {dead_hosts} of {} hosts down (incl. correlated failures)",
        t.num_hosts()
    );
    let _ = writeln!(out, "plan instances still border-reachable: {alive_instances}/{total}");
    let _ = writeln!(
        out,
        "verdict: the plan {} this failure scenario",
        if survives { "SURVIVES" } else { "DOES NOT SURVIVE" }
    );
    Ok(out)
}

/// `recloud sensitivity`: conditional reliability per power supply.
pub fn sensitivity(p: &Parsed) -> Result<String, CliError> {
    let t = build_topology(p)?;
    let seed = p.u64_or("seed", 1)?;
    let rounds = p.usize_or("rounds", 10_000)?;
    let (label, spec) = build_spec(p)?;
    let plan = plan_from_flags(p, &t, &spec, seed)?;
    let model = FaultModel::paper_default(&t, seed);
    let mut assessor = Assessor::new(&t, model);
    let report = recloud::assess::dependency_sensitivity(
        &mut assessor,
        &spec,
        &plan,
        t.power_supplies(),
        rounds,
        seed,
    );
    let mut out = String::new();
    let _ = writeln!(out, "app: {label}; baseline reliability {:.5}", report.baseline);
    let _ = writeln!(out, "  event     R | event down   blast radius");
    for r in &report.rows {
        let name = t.component(r.event).name();
        let _ = writeln!(
            out,
            "  {name:<8}        {:>8.5}   {:>12}",
            r.conditional_reliability, r.blast_radius
        );
    }
    let critical = report.critical_events();
    if critical.is_empty() {
        let _ = writeln!(out, "no single dependency takes the plan below 50% reliability");
    } else {
        let names: Vec<String> = critical.iter().map(|&c| t.component(c).name()).collect();
        let _ = writeln!(out, "CRITICAL single points of catastrophe: {}", names.join(", "));
    }
    Ok(out)
}

/// `recloud blast`: blast radius of every shared dependency.
pub fn blast(p: &Parsed) -> Result<String, CliError> {
    let t = build_topology(p)?;
    let seed = p.u64_or("seed", 1)?;
    let model = FaultModel::paper_default(&t, seed);
    let mut out = String::new();
    let _ = writeln!(out, "blast radius per power supply (components failing together):");
    for &supply in t.power_supplies() {
        let radius = model.blast_radius(supply);
        let hosts = radius.iter().filter(|c| t.component(**c).kind == ComponentKind::Host).count();
        let switches = radius.iter().filter(|c| t.component(**c).kind.is_switch()).count();
        let _ = writeln!(
            out,
            "  {:<8} {:>6} components ({hosts} hosts, {switches} switches)",
            t.component(supply).name(),
            radius.len()
        );
    }
    Ok(out)
}

/// `recloud dot`: Graphviz export of the topology.
pub fn dot(p: &Parsed) -> Result<String, CliError> {
    let t = build_topology(p)?;
    let opts = recloud::topology::DotOptions {
        switches_only: p.has("switches-only"),
        ..Default::default()
    };
    Ok(recloud::topology::to_dot(&t, &opts))
}

/// `recloud availability`: continuous-time renewal simulation of a plan.
pub fn availability(p: &Parsed) -> Result<String, CliError> {
    let t = build_topology(p)?;
    let seed = p.u64_or("seed", 1)?;
    let (label, spec) = build_spec(p)?;
    let plan = plan_from_flags(p, &t, &spec, seed)?;
    let model = FaultModel::paper_default(&t, seed);
    let years = p.usize_or("years", 50)?;
    if years == 0 {
        return Err(CliError::Invalid("--years must be at least 1".into()));
    }
    let mttr: f64 = p.f64_opt("mttr-hours")?.unwrap_or(8.0);

    // Static assessment for comparison.
    let mut assessor = Assessor::new(&t, model.clone());
    let stat = assessor.assess(&spec, &plan, 50_000, seed);

    let sim = recloud_availsim::AvailabilitySimulator::new(&t, model, mttr);
    let report = sim.simulate(
        &spec,
        &plan,
        recloud_availsim::SimParams { horizon_hours: years as f64 * 8766.0, seed },
    );
    let mut out = String::new();
    let _ = writeln!(out, "app: {label}; {years} simulated years, MTTR {mttr} h");
    let _ = writeln!(
        out,
        "static reliability score:  {:.5} (sampled, ± {:.1e})",
        stat.estimate.score,
        stat.estimate.ciw95()
    );
    let _ = writeln!(out, "dynamic availability:      {:.5}", report.availability());
    let _ = writeln!(
        out,
        "outages: {} total ({:.2}/year), mean {:.1} h, max {:.1} h",
        report.outages,
        report.outages_per_year(),
        report.mean_outage_hours(),
        report.max_outage_hours()
    );
    let _ = writeln!(
        out,
        "annual downtime: {:.1} h (static model implies {:.1} h)",
        report.annual_downtime_hours(),
        stat.estimate.annual_downtime_hours()
    );
    Ok(out)
}

/// `recloud serve` — run the placement-as-a-service daemon until a
/// `Shutdown` frame arrives. The listening line is printed *eagerly* (and
/// optionally mirrored into `--port-file`) so scripts can discover an
/// ephemeral port before the call blocks.
pub fn serve(p: &Parsed) -> Result<String, CliError> {
    use recloud_server::{PollerKind, Server, ServerConfig};
    let defaults = ServerConfig::default();
    let poller = match p.str_or("poller", "auto").as_str() {
        "auto" => PollerKind::Auto,
        "scan" => PollerKind::Scan,
        value => {
            return Err(CliError::BadValue {
                flag: "poller".into(),
                value: value.into(),
                expected: "auto|scan",
            });
        }
    };
    let config = ServerConfig {
        workers: p.usize_or("workers", defaults.workers)?,
        queue_capacity: p.usize_or("queue", defaults.queue_capacity)?,
        cache_capacity: p.usize_or("cache", defaults.cache_capacity)?,
        read_timeout: defaults.read_timeout,
        store_dir: p.get("store").map(std::path::PathBuf::from),
        peer: p.get("peer").map(str::to_string),
        store_config: defaults.store_config,
        tenant_budget: p.usize_opt("tenant-budget")?,
        compact_after: p.u64_opt("compact-after-ms")?.map(Duration::from_millis),
        poller,
    };
    if config.workers == 0 {
        return Err(CliError::Invalid("--workers must be at least 1".into()));
    }
    let port = p.u32_or("port", 7070)?;
    if port > u16::MAX as u32 {
        return Err(CliError::Invalid(format!("--port {port} does not fit a TCP port")));
    }
    let server = Server::bind(("127.0.0.1", port as u16), config)
        .map_err(|e| CliError::Invalid(format!("bind failed: {e}")))?;
    let addr = server.local_addr();
    println!("recloud-server listening on {addr}");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    if let Some(path) = p.get("port-file") {
        std::fs::write(path, addr.port().to_string())
            .map_err(|e| CliError::Invalid(format!("cannot write --port-file: {e}")))?;
    }
    let s = server.run();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "served {} requests: {} completed, {} cache hits / {} misses",
        s.received, s.completed, s.cache_hits, s.cache_misses
    );
    let _ = writeln!(
        out,
        "rejected {} as busy, dropped {} protocol offenders",
        s.busy_rejections, s.protocol_errors
    );
    Ok(out)
}

/// `recloud stats` — fetch a running daemon's instrument snapshot via a
/// `MetricsDump` frame and render it (or dump raw JSON with `--json`).
pub fn stats(p: &Parsed) -> Result<String, CliError> {
    use recloud_server::Client;
    let addr = p.str_or("addr", "127.0.0.1:7070");
    let mut client = Client::connect(&addr)
        .map_err(|e| CliError::Invalid(format!("cannot connect to {addr}: {e}")))?;
    client
        .set_timeout(Some(Duration::from_secs(30)))
        .map_err(|e| CliError::Invalid(format!("set timeout: {e}")))?;
    let m = client.metrics(0).map_err(|e| CliError::Invalid(format!("metrics dump: {e}")))?;
    if p.has("json") {
        return Ok(format!("{}\n", m.snapshot.to_json()));
    }
    let s = &m.snapshot;
    let mut out = String::new();
    let _ = writeln!(out, "instruments of {addr}:");
    let _ = writeln!(out, "  requests: {}", s.counter("server.requests_total").unwrap_or(0));
    let _ = writeln!(out, "  latency per request kind (us):");
    for (name, h) in &s.histograms {
        let Some(kind) = name.strip_prefix("server.latency_us.") else { continue };
        if h.count == 0 {
            let _ = writeln!(out, "    {kind:<8} (no requests)");
        } else {
            let _ = writeln!(
                out,
                "    {kind:<8} n={} p50={} p90={} p99={} max={}",
                h.count,
                h.p50(),
                h.p90(),
                h.p99(),
                h.max
            );
        }
    }
    let _ = writeln!(out, "  queue depth: {}", s.gauge("server.queue_depth").unwrap_or(0));
    let hits = s.counter("server.cache_hits_total").unwrap_or(0);
    let misses = s.counter("server.cache_misses_total").unwrap_or(0);
    let rate = if hits + misses > 0 { hits as f64 / (hits + misses) as f64 } else { 0.0 };
    let _ = writeln!(
        out,
        "  cache: {hits} hits / {misses} misses (hit rate {:.1}%), {} evictions",
        rate * 100.0,
        s.counter("server.cache_evictions_total").unwrap_or(0)
    );
    let _ = writeln!(out, "  cache bytes: {} resident", s.gauge("server.cache_bytes").unwrap_or(0));
    if s.counter("store.appended_total").is_some() {
        let _ = writeln!(
            out,
            "  store: {} appended, {} replayed, {} synced from peer, {} sync pulls served, {} bytes on disk",
            s.counter("store.appended_total").unwrap_or(0),
            s.counter("store.replayed_total").unwrap_or(0),
            s.counter("store.synced_total").unwrap_or(0),
            s.counter("store.sync_served_total").unwrap_or(0),
            s.gauge("store.bytes").unwrap_or(0)
        );
    }
    let _ = writeln!(
        out,
        "  busy rejections: {}, decode errors: {}",
        s.counter("server.busy_total").unwrap_or(0),
        s.counter("server.decode_errors_total").unwrap_or(0)
    );
    let extra: Vec<&str> = s
        .counters
        .iter()
        .map(|(n, _)| n.as_str())
        .filter(|n| !n.starts_with("server.") && !n.starts_with("store."))
        .collect();
    if !extra.is_empty() {
        let _ = writeln!(out, "  non-server counters: {}", extra.join(", "));
    }
    Ok(out)
}

/// `recloud journal` — fetch the newest `--tail N` journal events from a
/// running daemon and print them as JSON lines.
pub fn journal(p: &Parsed) -> Result<String, CliError> {
    use recloud_server::Client;
    let addr = p.str_or("addr", "127.0.0.1:7070");
    let tail = p.u32_or("tail", 64)?;
    let mut client = Client::connect(&addr)
        .map_err(|e| CliError::Invalid(format!("cannot connect to {addr}: {e}")))?;
    client
        .set_timeout(Some(Duration::from_secs(30)))
        .map_err(|e| CliError::Invalid(format!("set timeout: {e}")))?;
    let m = client.metrics(tail).map_err(|e| CliError::Invalid(format!("metrics dump: {e}")))?;
    let mut out = String::new();
    for event in &m.events {
        out.push_str(&event.to_json_line());
        out.push('\n');
    }
    if m.events.is_empty() {
        out.push_str("(journal is empty)\n");
    }
    Ok(out)
}

/// `recloud loadgen` — throw assessment load (or the CI smoke sequence)
/// at a running daemon.
pub fn loadgen(p: &Parsed) -> Result<String, CliError> {
    use recloud_server::protocol::Preset;
    use recloud_server::{run_load, LoadgenConfig};
    let addr = p.str_or("addr", "127.0.0.1:7070");
    if p.has("smoke") {
        // The stream smoke leaves the daemon running (so it can precede
        // the plain smoke, whose last step is a clean Shutdown).
        if p.has("stream") {
            // --connections turns it into the fleet gate: that many
            // persistent connections held open at once, with streaming
            // and cache hits proven mid-fleet.
            if p.get("connections").is_some() {
                let connections = p.usize_or("connections", 1_000)?;
                recloud_server::smoke_fleet(&addr, connections).map_err(CliError::Invalid)?;
                return Ok(format!(
                    "fleet smoke OK against {addr} ({connections} concurrent connections)\n"
                ));
            }
            recloud_server::smoke_stream(&addr).map_err(CliError::Invalid)?;
            return Ok(format!("stream smoke OK against {addr}\n"));
        }
        recloud_server::smoke(&addr).map_err(CliError::Invalid)?;
        return Ok(format!("smoke OK against {addr}\n"));
    }
    let scale = p.str_or("scale", "tiny");
    let preset = Preset::from_name(&scale).ok_or_else(|| CliError::BadValue {
        flag: "scale".into(),
        value: scale.clone(),
        expected: "tiny|small|medium|large|xl",
    })?;
    let config = LoadgenConfig {
        addr,
        requests: p.usize_or("requests", 1_000)?,
        connections: p.usize_or("connections", 4)?,
        preset,
        rounds: p.u32_or("rounds", 1_000)?,
        seed: p.u64_or("seed", 42)?,
        distinct_seeds: p.has("distinct-seeds"),
        stream: p.has("stream"),
        cadence: p.u32_or("cadence", 1)?,
        tenant: p.get("tenant").map(str::to_string),
    };
    let r = run_load(&config).map_err(|e| CliError::Invalid(format!("loadgen failed: {e}")))?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} ok ({} cached), {} busy, {} errors in {:.2?}",
        r.ok, r.cached, r.busy, r.errors, r.elapsed
    );
    if config.stream {
        let _ = writeln!(
            out,
            "streamed: {} partial frames at cadence {}",
            r.partials,
            config.cadence.max(1)
        );
    }
    let _ = writeln!(
        out,
        "throughput {:.0} req/s, latency p50 {} us / p95 {} us / p99 {} us",
        r.throughput_rps, r.p50_us, r.p95_us, r.p99_us
    );
    Ok(out)
}
