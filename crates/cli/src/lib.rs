#![warn(missing_docs)]

//! # recloud-cli
//!
//! Command-line front end for the reCloud deployment service. The binary
//! (`recloud`) is a thin shell around [`run`], which parses arguments,
//! executes one command and returns the rendered output — a design that
//! keeps the whole CLI unit-testable without spawning processes.
//!
//! ```text
//! recloud topo --scale small
//! recloud assess --scale tiny --k 4 --n 5 --rounds 10000
//! recloud search --scale tiny --k 4 --n 5 --budget-ms 1000 --multi-objective
//! recloud compare --scale tiny --k 2 --n 3 --candidates 5
//! recloud whatif --scale tiny --fail power:0 --k 4 --n 5
//! ```

pub mod args;
pub mod commands;

use args::{CliError, Parsed};

/// Parses `argv` (without the program name) and runs the command,
/// returning the output text.
pub fn run(argv: &[String]) -> Result<String, CliError> {
    let parsed = Parsed::parse(argv)?;
    match parsed.command.as_str() {
        "topo" => commands::topo(&parsed),
        "assess" => commands::assess(&parsed),
        "search" => commands::search(&parsed),
        "compare" => commands::compare(&parsed),
        "whatif" => commands::whatif(&parsed),
        "sensitivity" => commands::sensitivity(&parsed),
        "blast" => commands::blast(&parsed),
        "dot" => commands::dot(&parsed),
        "availability" => commands::availability(&parsed),
        "serve" => commands::serve(&parsed),
        "loadgen" => commands::loadgen(&parsed),
        "stats" => commands::stats(&parsed),
        "journal" => commands::journal(&parsed),
        "trace" => commands::trace(&parsed),
        "help" | "--help" | "-h" => Ok(usage().to_string()),
        other => Err(CliError::UnknownCommand(other.to_string())),
    }
}

/// The usage text.
pub fn usage() -> &'static str {
    "recloud — reliable application deployment in the cloud (CoNEXT '17 reproduction)

USAGE:
    recloud <command> [options]

COMMANDS:
    topo      describe a data-center topology
    assess    quantitatively assess a deployment plan (score ± error bound)
    search    search for a reliable deployment plan (simulated annealing)
    compare   rank candidate plans (the INDaaS service, with error bounds)
    whatif       inject component failures and re-check a plan
    sensitivity  conditional reliability per shared dependency
    blast        blast radius of every power supply
    dot          Graphviz export of the topology
    availability continuous-time renewal simulation (outage statistics)
    serve        run the placement-as-a-service daemon (binary protocol)
    loadgen      drive a running daemon (load measurement or --smoke)
    stats        read a running daemon's instruments (latency quantiles,
                 queue depth, cache hit rate; --json for raw snapshot)
    journal      print a running daemon's newest journal events as JSON lines
    trace        fetch a request's causal span tree from a running daemon
    help         show this text

COMMON OPTIONS:
    --scale <tiny|small|medium|large|xl> paper preset (default: tiny)
    --topology <fattree|leafspine|jellyfish|bcube|vl2>
                                        generator when not using --scale
    --k <int> --n <int>                 K-of-N redundancy (default: 4-of-5)
    --layers <int>                      use a layered app of this depth instead
    --rounds <int>                      route-and-check rounds (default: 10000)
    --seed <int>                        master seed (default: 1)

ASSESS OPTIONS:
    --stream                            drive chunk-by-chunk, printing running
                                        (R, CIW) progress lines
    --target-ciw <float>                with --stream: stop as soon as the 95%
                                        CI width shrinks to this
    --cadence <int>                     chunks per progress line (default: 4)
    --monte-carlo                       plain Monte Carlo instead of dagger
    --hosts <id,...>                    explicit plan host ids (else random)
    --addr <host:port>                  run on a live daemon instead (RCS1;
                                        preset scales only) — the round trip
                                        is traced end to end, client spans
                                        joining the server's in one tree

SEARCH OPTIONS:
    --budget-ms <int>                   search budget (default: 2000)
    --workers <int>                     parallel annealing chains (default: 1)
    --iters <int>                       deterministic per-chain iteration budget;
                                        overrides --budget-ms and makes the
                                        answer a pure function of the flags
    --exchange-every <int>              iterations between best-plan exchanges
                                        (0 = independent restarts)
    --stream                            print each chain's best-plan trajectory
                                        (one line per streamed improvement)
    --addr <host:port>                  run on a live daemon instead (RCS1
                                        SearchStream; preset scales only)
    --multi-objective                   Eq 7 holistic measure (reliability+load)
    --distinct-racks                    placement rule: one instance per rack

COMPARE OPTIONS:
    --candidates <int>                  number of random candidates (default: 4)

WHATIF OPTIONS:
    --fail <kind:ordinal>[,...]         components to force-fail, e.g.
                                        power:0,edge:3,host:17
    --hosts <id,...>                    explicit plan host ids (else random)

SERVE OPTIONS:
    --port <int>                        listen port, 0 = ephemeral (default: 7070)
    --port-file <path>                  write the bound port for scripts
    --workers <int> --queue <int>       worker pool size / admission bound
    --cache <int>                       result-cache entries (0 disables)
    --store <dir>                       append-only result store: replayed on
                                        boot to warm the cache, appended on
                                        every finished assessment
    --peer <host:port>                  pull cache entries from a running
                                        daemon on boot (RCS1 CacheSync)
    --tenant-budget <int>               per-tenant in-flight cap: an
                                        over-budget tenant gets Busy while
                                        other tenants are unaffected
    --compact-after-ms <int>            compact the store once its size/
                                        live-ratio thresholds hold this long
    --poller <auto|scan>                readiness backend (auto = epoll on
                                        Linux, scan = portable fallback)

LOADGEN OPTIONS:
    --addr <host:port>                  daemon address (default: 127.0.0.1:7070)
    --smoke                             run the CI smoke sequence and exit
                                        (with --stream: the streaming smoke,
                                        which leaves the daemon running)
    --stream                            AssessStream instead of AssessPlan;
                                        --cadence <int> chunks per Partial
    --requests <int> --connections <int>
    --distinct-seeds                    fresh seed per request (cache-miss mix)
    --tenant <id>                       introduce connections as this tenant
                                        (Hello frame; admission budgets and
                                        per-tenant metrics apply)
                                        with --smoke --stream, --connections
                                        runs the fleet gate instead: that many
                                        concurrent connections held open

STATS / JOURNAL OPTIONS:
    --addr <host:port>                  daemon address (default: 127.0.0.1:7070)
    --json                              stats: print the raw snapshot JSON
    --tail <int>                        journal: newest N events (default: 64)

TRACE OPTIONS:
    --addr <host:port>                  daemon address (default: 127.0.0.1:7070)
    --id <int>                          trace id (default: 0 = most recently
                                        finished trace)
    --chrome <path>                     also write Chrome trace-event JSON
                                        (chrome://tracing, ui.perfetto.dev)"
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_str(cmd: &str) -> Result<String, CliError> {
        let argv: Vec<String> = cmd.split_whitespace().map(String::from).collect();
        run(&argv)
    }

    #[test]
    fn help_prints_usage() {
        let out = run_str("help").unwrap();
        assert!(out.contains("USAGE"));
        assert!(out.contains("whatif"));
    }

    #[test]
    fn unknown_command_is_an_error() {
        let err = run_str("frobnicate").unwrap_err();
        assert!(matches!(err, CliError::UnknownCommand(_)));
        assert!(err.to_string().contains("frobnicate"));
    }

    #[test]
    fn empty_argv_is_an_error() {
        let err = run(&[]).unwrap_err();
        assert!(matches!(err, CliError::MissingCommand));
    }

    #[test]
    fn topo_summarizes_a_preset() {
        let out = run_str("topo --scale tiny").unwrap();
        assert!(out.contains("112 hosts"), "{out}");
        assert!(out.contains("fat-tree"));
    }

    #[test]
    fn topo_supports_other_generators() {
        let out = run_str("topo --topology leafspine").unwrap();
        assert!(out.contains("leaf-spine"), "{out}");
        let out = run_str("topo --topology bcube").unwrap();
        assert!(out.contains("BCube"), "{out}");
        let out = run_str("topo --topology vl2").unwrap();
        assert!(out.contains("VL2"), "{out}");
        let out = run_str("topo --topology jellyfish").unwrap();
        assert!(out.contains("Jellyfish"), "{out}");
    }

    #[test]
    fn assess_reports_score_and_bound() {
        let out = run_str("assess --scale tiny --k 2 --n 3 --rounds 2000 --seed 7").unwrap();
        assert!(out.contains("reliability"), "{out}");
        assert!(out.contains("95% CI"), "{out}");
        assert!(out.contains("downtime"), "{out}");
    }

    #[test]
    fn assess_accepts_explicit_hosts() {
        // In the tiny (k=8) fat-tree, hosts start after 16 core + 28 agg
        // + 28 edge switches, i.e. at id 72.
        let out = run_str("assess --scale tiny --k 1 --n 2 --rounds 500 --hosts 72,73").unwrap();
        assert!(out.contains("c72"), "{out}");
    }

    #[test]
    fn search_returns_a_plan() {
        let out = run_str("search --scale tiny --k 2 --n 3 --rounds 500 --budget-ms 150").unwrap();
        assert!(out.contains("plans explored"), "{out}");
        assert!(out.contains("instance 0"), "{out}");
    }

    #[test]
    fn search_with_rules_and_objective() {
        let out = run_str(
            "search --scale tiny --k 1 --n 2 --rounds 300 --budget-ms 100 \
             --multi-objective --distinct-racks",
        )
        .unwrap();
        assert!(out.contains("holistic"), "{out}");
    }

    #[test]
    fn parallel_search_is_deterministic_and_streams_trajectories() {
        let cmd = "search --scale tiny --k 2 --n 3 --rounds 400 --workers 3 --iters 25 --stream";
        let a = run_str(cmd).unwrap();
        let b = run_str(cmd).unwrap();
        // Everything but the wall-clock elapsed (after " in ") is a pure
        // function of (seed, workers, iters): trajectories, winner, plan.
        let stable = |s: &str| {
            s.lines().map(|l| l.split(" in ").next().unwrap().to_string()).collect::<Vec<_>>()
        };
        assert_eq!(stable(&a), stable(&b), "iteration budget makes the search reproducible");
        assert!(a.contains("3 annealing chains"), "{a}");
        assert!(a.contains("[chain "), "{a}");
        assert!(a.contains("won"), "{a}");
        assert!(a.contains("plans explored across 3 chains"), "{a}");
    }

    #[test]
    fn parallel_search_supports_rules_and_holistic_objective() {
        let out = run_str(
            "search --scale tiny --k 1 --n 2 --rounds 300 --workers 2 --iters 15 \
             --multi-objective --distinct-racks",
        )
        .unwrap();
        assert!(out.contains("holistic"), "{out}");
        assert!(out.contains("2 annealing chains"), "{out}");
    }

    #[test]
    fn parallel_search_validates_workers() {
        let err = run_str("search --scale tiny --workers 0").unwrap_err();
        assert!(err.to_string().contains("workers"), "{err}");
    }

    #[test]
    fn remote_search_rejects_generator_topologies() {
        let err = run_str("search --addr 127.0.0.1:1 --topology bcube").unwrap_err();
        assert!(err.to_string().contains("preset"), "{err}");
    }

    #[test]
    fn compare_ranks_candidates() {
        let out = run_str("compare --scale tiny --k 1 --n 2 --rounds 500 --candidates 3").unwrap();
        assert!(out.contains("rank"), "{out}");
        assert!(out.contains("#1"), "{out}");
    }

    #[test]
    fn whatif_injects_failures() {
        let out = run_str("whatif --scale tiny --k 4 --n 5 --fail power:0").unwrap();
        assert!(out.contains("forced failed"), "{out}");
        assert!(out.contains("power0"), "{out}");
    }

    #[test]
    fn streamed_assess_prints_progress_and_the_same_answer() {
        let plain = run_str("assess --scale tiny --k 2 --n 3 --rounds 6000 --seed 7").unwrap();
        let streamed =
            run_str("assess --scale tiny --k 2 --n 3 --rounds 6000 --seed 7 --stream --cadence 1")
                .unwrap();
        assert!(streamed.contains("chunk"), "{streamed}");
        assert!(streamed.contains("CIW"), "{streamed}");
        // The invariant the driver refactor guarantees: the streamed
        // final line is identical to the plain one.
        let final_line =
            |s: &str| s.lines().find(|l| l.starts_with("reliability")).map(String::from).unwrap();
        assert_eq!(final_line(&plain), final_line(&streamed));
    }

    #[test]
    fn streamed_assess_stops_at_target_ciw() {
        let out = run_str(
            "assess --scale tiny --k 2 --n 3 --rounds 100000 --seed 7 --stream --target-ciw 0.05",
        )
        .unwrap();
        assert!(out.contains("stopped early"), "{out}");
        assert!(!out.contains("over 100000 rounds"), "early stop must cover fewer rounds: {out}");
    }

    #[test]
    fn stream_flags_are_validated() {
        let err = run_str("assess --scale tiny --stream --target-ciw -0.5").unwrap_err();
        assert!(err.to_string().contains("target-ciw"));
        let err = run_str("assess --scale tiny --stream --target-ciw wide").unwrap_err();
        assert!(err.to_string().contains("wide"));
    }

    #[test]
    fn layered_app_flag() {
        let out = run_str("assess --scale tiny --k 1 --n 2 --layers 3 --rounds 300").unwrap();
        assert!(out.contains("3-layer"), "{out}");
    }

    #[test]
    fn bad_flag_value_is_reported() {
        let err = run_str("assess --scale nowhere").unwrap_err();
        assert!(err.to_string().contains("nowhere"));
        let err = run_str("assess --rounds abc").unwrap_err();
        assert!(err.to_string().contains("abc"));
    }
}

#[cfg(test)]
mod extension_tests {
    use super::*;

    fn run_str(cmd: &str) -> Result<String, CliError> {
        let argv: Vec<String> = cmd.split_whitespace().map(String::from).collect();
        run(&argv)
    }

    #[test]
    fn sensitivity_ranks_supplies() {
        let out = run_str("sensitivity --scale tiny --k 2 --n 3 --rounds 1000 --seed 3").unwrap();
        assert!(out.contains("baseline reliability"), "{out}");
        assert!(out.contains("blast radius"), "{out}");
        assert!(out.contains("power"), "{out}");
    }

    #[test]
    fn blast_lists_all_supplies() {
        let out = run_str("blast --scale tiny").unwrap();
        for i in 0..5 {
            assert!(out.contains(&format!("power{i}")), "{out}");
        }
        assert!(out.contains("hosts"), "{out}");
    }

    #[test]
    fn dot_emits_graphviz() {
        let out = run_str("dot --topology leafspine --switches-only").unwrap();
        assert!(out.starts_with("graph recloud {"), "{out}");
        assert!(!out.contains("shape=ellipse"), "hosts must be skipped");
    }

    #[test]
    fn availability_compares_static_and_dynamic() {
        let out = run_str("availability --scale tiny --k 1 --n 2 --years 2 --seed 5").unwrap();
        assert!(out.contains("static reliability score"), "{out}");
        assert!(out.contains("dynamic availability"), "{out}");
        assert!(out.contains("outages"), "{out}");
    }

    #[test]
    fn availability_validates_years() {
        let err = run_str("availability --scale tiny --years 0").unwrap_err();
        assert!(err.to_string().contains("years"));
    }
}

#[cfg(test)]
mod serve_tests {
    use super::*;
    use std::time::{Duration, Instant};

    #[test]
    fn serve_then_smoke_then_clean_shutdown() {
        let port_file =
            std::env::temp_dir().join(format!("recloud-serve-test-{}.port", std::process::id()));
        let _ = std::fs::remove_file(&port_file);
        let argv: Vec<String> =
            ["serve", "--port", "0", "--workers", "2", "--port-file", port_file.to_str().unwrap()]
                .iter()
                .map(|s| s.to_string())
                .collect();
        let handle = std::thread::spawn(move || run(&argv));

        let deadline = Instant::now() + Duration::from_secs(30);
        let port = loop {
            if let Ok(s) = std::fs::read_to_string(&port_file) {
                if let Ok(p) = s.trim().parse::<u16>() {
                    break p;
                }
            }
            assert!(Instant::now() < deadline, "server never wrote its port file");
            std::thread::sleep(Duration::from_millis(10));
        };

        let addr = format!("127.0.0.1:{port}");

        // Acceptance criterion: `recloud stats` against the live daemon
        // reports latency quantiles per request kind, the queue depth and
        // the cache hit rate — and `--json` yields the raw snapshot.
        let warm: Vec<String> = ["loadgen", "--addr", &addr, "--requests", "8", "--rounds", "200"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        run(&warm).unwrap();
        let stats_argv: Vec<String> =
            ["stats", "--addr", &addr].iter().map(|s| s.to_string()).collect();
        let stats_out = run(&stats_argv).unwrap();
        assert!(stats_out.contains("latency per request kind"), "{stats_out}");
        assert!(stats_out.contains("assess"), "{stats_out}");
        assert!(stats_out.contains("p50="), "{stats_out}");
        assert!(stats_out.contains("p99="), "{stats_out}");
        assert!(stats_out.contains("queue depth:"), "{stats_out}");
        assert!(stats_out.contains("hit rate"), "{stats_out}");
        let json_argv: Vec<String> =
            ["stats", "--addr", &addr, "--json"].iter().map(|s| s.to_string()).collect();
        let json_out = run(&json_argv).unwrap();
        assert!(json_out.starts_with("{\"counters\":{"), "{json_out}");
        assert!(json_out.contains("\"server.requests_total\":"), "{json_out}");
        assert!(json_out.contains("\"server.latency_us.assess\":{"), "{json_out}");
        let journal_argv: Vec<String> =
            ["journal", "--addr", &addr, "--tail", "16"].iter().map(|s| s.to_string()).collect();
        let journal_out = run(&journal_argv).unwrap();
        assert!(
            journal_out.contains("\"kind\"") || journal_out.contains("journal is empty"),
            "{journal_out}"
        );

        // Remote parallel search over RCS1 SearchStream: trajectory lines
        // arrive as SearchEvent frames, the summary carries the final plan.
        let search_argv: Vec<String> = [
            "search",
            "--addr",
            &addr,
            "--workers",
            "2",
            "--iters",
            "20",
            "--rounds",
            "400",
            "--k",
            "2",
            "--n",
            "3",
            "--stream",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let search_out = run(&search_argv).unwrap();
        assert!(search_out.contains("2 chains"), "{search_out}");
        assert!(search_out.contains("[chain "), "{search_out}");
        assert!(search_out.contains("streamed improvements"), "{search_out}");
        assert!(search_out.contains("hosts:"), "{search_out}");

        let loadgen_argv: Vec<String> =
            ["loadgen", "--smoke", "--addr", &addr].iter().map(|s| s.to_string()).collect();
        let smoke_out = run(&loadgen_argv).unwrap();
        assert!(smoke_out.contains("smoke OK"), "{smoke_out}");

        let summary = handle.join().unwrap().unwrap();
        assert!(summary.contains("cache hits"), "{summary}");
        assert!(summary.contains("0 protocol offenders"), "{summary}");
        let _ = std::fs::remove_file(&port_file);
    }

    #[test]
    fn serve_validates_flags() {
        let argv: Vec<String> = ["serve", "--workers", "0"].iter().map(|s| s.to_string()).collect();
        assert!(run(&argv).unwrap_err().to_string().contains("workers"));
        let argv: Vec<String> =
            ["serve", "--port", "70000"].iter().map(|s| s.to_string()).collect();
        assert!(run(&argv).unwrap_err().to_string().contains("port"));
    }

    #[test]
    fn loadgen_validates_scale_and_reports_connect_failures() {
        let argv: Vec<String> =
            ["loadgen", "--scale", "galactic"].iter().map(|s| s.to_string()).collect();
        assert!(run(&argv).unwrap_err().to_string().contains("galactic"));
        // Port 1 is privileged and unbound: connect must fail cleanly.
        let argv: Vec<String> = ["loadgen", "--addr", "127.0.0.1:1", "--requests", "1"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(run(&argv).unwrap_err().to_string().contains("loadgen failed"));
    }

    #[test]
    fn stats_and_journal_report_connect_failures() {
        let argv: Vec<String> =
            ["stats", "--addr", "127.0.0.1:1"].iter().map(|s| s.to_string()).collect();
        assert!(run(&argv).unwrap_err().to_string().contains("cannot connect"));
        let argv: Vec<String> =
            ["journal", "--addr", "127.0.0.1:1"].iter().map(|s| s.to_string()).collect();
        assert!(run(&argv).unwrap_err().to_string().contains("cannot connect"));
    }
}
