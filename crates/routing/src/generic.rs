//! Generic BFS route-and-check over the alive subgraph.
//!
//! Computes *physical* reachability: a path exists through alive nodes and
//! alive links, with no routing-protocol restrictions. This is the right
//! model for fabrics routed over arbitrary graphs (Jellyfish et al.) and
//! an upper bound for hierarchical protocols (see
//! [`crate::updown::UpDownRouter`] for the valley-free variant).
//!
//! Reachability from the external node is flood-filled lazily once per
//! round; host-to-host queries flood from the source host on demand and
//! memoize the visited set for the rest of the round, so assessing a
//! K-instance component costs at most K floods per round.
//!
//! All scratch (epoch-stamped visited arrays, queue) is allocated once at
//! router construction — per-round work is allocation-free, which keeps
//! the measured "context setup" honest.

use crate::Router;
use recloud_sampling::BitMatrix;
use recloud_topology::{ComponentId, Topology};

/// BFS-based router for arbitrary topologies.
pub struct GenericRouter {
    topology: Topology,
    round: usize,
    epoch: u32,
    /// Epoch-stamped visited array for "reachable from external".
    ext_visited: Vec<u32>,
    ext_done: bool,
    ext_alive: bool,
    /// Memoized per-source visited sets for host-to-host queries.
    flood_cache: Vec<(ComponentId, Vec<u32>)>,
    queue: Vec<u32>,
    /// Topology-static all-alive-world reachability from the external node
    /// (the verdict of every screened-out round), computed on first use.
    baseline_ext: Option<Vec<bool>>,
    /// All-alive-world visited sets per flood source, for
    /// [`Router::baseline_connects`].
    baseline_conn: Vec<(ComponentId, Vec<bool>)>,
}

impl GenericRouter {
    /// Creates a router for a topology (clones the topology's structure;
    /// routers are long-lived and reused across all rounds and plans).
    pub fn new(topology: &Topology) -> Self {
        let n = topology.num_components();
        GenericRouter {
            topology: topology.clone(),
            round: 0,
            epoch: 0,
            ext_visited: vec![0; n],
            ext_done: false,
            ext_alive: false,
            flood_cache: Vec::new(),
            queue: Vec::with_capacity(n),
            baseline_ext: None,
            baseline_conn: Vec::new(),
        }
    }

    /// Flood-fills the topology ignoring failure states (the all-alive
    /// world of screened-out rounds) and returns the visited set.
    fn alive_flood(&mut self, start: ComponentId, skip: Option<ComponentId>) -> Vec<bool> {
        let n = self.topology.num_components();
        let alive = BitMatrix::new(n, 1);
        let mut stamps = vec![0u32; n];
        Self::flood(&self.topology, &alive, 0, &mut self.queue, &mut stamps, 1, start, skip);
        stamps.into_iter().map(|s| s == 1).collect()
    }

    /// Flood-fills the alive subgraph from `start` into `visited`,
    /// stamping with the current epoch. `start` must be alive.
    #[allow(clippy::too_many_arguments)] // split borrows of self; grouping would force extra indirection
    fn flood(
        topology: &Topology,
        states: &BitMatrix,
        round: usize,
        queue: &mut Vec<u32>,
        visited: &mut [u32],
        epoch: u32,
        start: ComponentId,
        skip: Option<ComponentId>,
    ) {
        queue.clear();
        queue.push(start.0);
        visited[start.index()] = epoch;
        let mut head = 0;
        while head < queue.len() {
            let v = ComponentId(queue[head]);
            head += 1;
            for e in topology.graph().neighbors(v) {
                if let Some(link) = e.link_id() {
                    if states.get(link.index(), round) {
                        continue;
                    }
                }
                let to = e.to;
                if Some(to) == skip {
                    continue;
                }
                if visited[to.index()] == epoch || states.get(to.index(), round) {
                    continue;
                }
                visited[to.index()] = epoch;
                queue.push(to.0);
            }
        }
    }
}

impl Router for GenericRouter {
    fn begin_round(&mut self, states: &BitMatrix, round: usize) {
        assert_eq!(
            states.components(),
            self.topology.num_components(),
            "router expects the collapsed matrix (one row per topology component)"
        );
        self.round = round;
        self.epoch = self.epoch.wrapping_add(1).max(1);
        self.ext_done = false;
        self.flood_cache.clear();
    }

    fn external_reaches(&mut self, states: &BitMatrix, host: ComponentId) -> bool {
        if states.get(host.index(), self.round) {
            return false;
        }
        if !self.ext_done {
            let ext = self.topology.external();
            self.ext_alive = !states.get(ext.index(), self.round);
            if self.ext_alive {
                Self::flood(
                    &self.topology,
                    states,
                    self.round,
                    &mut self.queue,
                    &mut self.ext_visited,
                    self.epoch,
                    ext,
                    None,
                );
            }
            self.ext_done = true;
        }
        self.ext_alive && self.ext_visited[host.index()] == self.epoch
    }

    fn connects(&mut self, states: &BitMatrix, a: ComponentId, b: ComponentId) -> bool {
        if states.get(a.index(), self.round) || states.get(b.index(), self.round) {
            return false;
        }
        if a == b {
            return true;
        }
        let slot = match self.flood_cache.iter().position(|(s, _)| *s == a) {
            Some(i) => i,
            None => {
                let n = self.topology.num_components();
                self.flood_cache.push((a, vec![0; n]));
                let i = self.flood_cache.len() - 1;
                // East-west floods never hairpin through the external peer.
                let skip = Some(self.topology.external());
                Self::flood(
                    &self.topology,
                    states,
                    self.round,
                    &mut self.queue,
                    &mut self.flood_cache[i].1,
                    self.epoch,
                    a,
                    skip,
                );
                i
            }
        };
        // A cache slot found by position() is always from this round,
        // because begin_round clears the cache.
        self.flood_cache[slot].1[b.index()] == self.epoch
    }

    fn name(&self) -> &'static str {
        "generic-bfs"
    }

    fn baseline_external(&mut self, _states: &BitMatrix, host: ComponentId) -> bool {
        if self.baseline_ext.is_none() {
            let ext = self.topology.external();
            self.baseline_ext = Some(self.alive_flood(ext, None));
        }
        self.baseline_ext.as_ref().expect("filled above")[host.index()]
    }

    fn baseline_connects(&mut self, _states: &BitMatrix, a: ComponentId, b: ComponentId) -> bool {
        if a == b {
            return true;
        }
        if let Some((_, seen)) = self.baseline_conn.iter().find(|(s, _)| *s == a) {
            return seen[b.index()];
        }
        // East-west floods never hairpin through the external peer.
        let seen = self.alive_flood(a, Some(self.topology.external()));
        let hit = seen[b.index()];
        // The memo is bounded by the distinct sources a plan queries; cap
        // it defensively so adversarial query streams cannot balloon it.
        if self.baseline_conn.len() >= 128 {
            self.baseline_conn.clear();
        }
        self.baseline_conn.push((a, seen));
        hit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recloud_topology::{ComponentKind, LeafSpineParams, TopologyBuilder};

    /// ext -- sw1 -- h1 ; sw1 -- sw2 -- h2 (sw2 not border).
    fn chain() -> (Topology, ComponentId, ComponentId, ComponentId, ComponentId) {
        let mut b = TopologyBuilder::new();
        b.external();
        let sw1 = b.add(ComponentKind::BorderSwitch);
        let sw2 = b.add(ComponentKind::EdgeSwitch);
        let h1 = b.add(ComponentKind::Host);
        let h2 = b.add(ComponentKind::Host);
        b.connect(sw1, h1);
        b.connect(sw1, sw2);
        b.connect(sw2, h2);
        b.mark_border(sw1);
        let t = b.build();
        (t, sw1, sw2, h1, h2)
    }

    #[test]
    fn all_alive_reaches_everything() {
        let (t, _, _, h1, h2) = chain();
        let states = BitMatrix::new(t.num_components(), 1);
        let mut r = GenericRouter::new(&t);
        r.begin_round(&states, 0);
        assert!(r.external_reaches(&states, h1));
        assert!(r.external_reaches(&states, h2));
        assert!(r.connects(&states, h1, h2));
        assert!(r.connects(&states, h1, h1));
    }

    #[test]
    fn failed_host_is_unreachable_and_disconnected() {
        let (t, _, _, h1, h2) = chain();
        let mut states = BitMatrix::new(t.num_components(), 1);
        states.set(h1.index(), 0);
        let mut r = GenericRouter::new(&t);
        r.begin_round(&states, 0);
        assert!(!r.external_reaches(&states, h1));
        assert!(r.external_reaches(&states, h2));
        assert!(!r.connects(&states, h1, h2));
        assert!(!r.connects(&states, h1, h1));
    }

    #[test]
    fn failed_intermediate_switch_cuts_downstream() {
        let (t, _, sw2, h1, h2) = chain();
        let mut states = BitMatrix::new(t.num_components(), 1);
        states.set(sw2.index(), 0);
        let mut r = GenericRouter::new(&t);
        r.begin_round(&states, 0);
        assert!(r.external_reaches(&states, h1));
        assert!(!r.external_reaches(&states, h2));
        assert!(!r.connects(&states, h1, h2));
        assert!(r.connects(&states, h1, h1));
    }

    #[test]
    fn failed_border_switch_cuts_everything() {
        let (t, sw1, _, h1, h2) = chain();
        let mut states = BitMatrix::new(t.num_components(), 1);
        states.set(sw1.index(), 0);
        let mut r = GenericRouter::new(&t);
        r.begin_round(&states, 0);
        assert!(!r.external_reaches(&states, h1));
        assert!(!r.external_reaches(&states, h2));
        assert!(!r.connects(&states, h1, h2));
    }

    #[test]
    fn rounds_are_independent() {
        let (t, sw1, _, h1, _) = chain();
        let mut states = BitMatrix::new(t.num_components(), 2);
        states.set(sw1.index(), 0);
        let mut r = GenericRouter::new(&t);
        r.begin_round(&states, 0);
        assert!(!r.external_reaches(&states, h1));
        r.begin_round(&states, 1);
        assert!(r.external_reaches(&states, h1));
    }

    #[test]
    fn link_failures_cut_edges() {
        let mut b = TopologyBuilder::new();
        b.external();
        let sw = b.add(ComponentKind::BorderSwitch);
        b.mark_border(sw);
        let h = b.add(ComponentKind::Host);
        let link = b.connect_via_link(sw, h);
        let t = b.build();
        let mut states = BitMatrix::new(t.num_components(), 1);
        states.set(link.index(), 0);
        let mut r = GenericRouter::new(&t);
        r.begin_round(&states, 0);
        assert!(!r.external_reaches(&states, h));
    }

    #[test]
    fn symmetric_connects() {
        let t = LeafSpineParams::new(2, 3, 2).build();
        let mut states = BitMatrix::new(t.num_components(), 1);
        states.set(t.border_switches()[0].index(), 0);
        let mut r = GenericRouter::new(&t);
        r.begin_round(&states, 0);
        let h = t.hosts();
        assert_eq!(r.connects(&states, h[0], h[5]), r.connects(&states, h[5], h[0]));
        assert!(r.connects(&states, h[0], h[5]));
    }

    #[test]
    fn leafspine_loses_external_only_when_all_border_spines_fail() {
        let t = LeafSpineParams::new(3, 2, 2).border_spines(2).build();
        let h = t.hosts()[0];
        let mut states = BitMatrix::new(t.num_components(), 3);
        states.set(t.border_switches()[0].index(), 0);
        states.set(t.border_switches()[0].index(), 1);
        states.set(t.border_switches()[1].index(), 1);
        let mut r = GenericRouter::new(&t);
        r.begin_round(&states, 0);
        assert!(r.external_reaches(&states, h));
        r.begin_round(&states, 1);
        assert!(!r.external_reaches(&states, h));
        r.begin_round(&states, 2);
        assert!(r.external_reaches(&states, h));
    }
}
