//! Failure explanation: *why* is this host unreachable?
//!
//! Assessment answers "how often does the plan survive"; operators also
//! need the counterfactual for a concrete round (or a what-if injection):
//! which layer of the hierarchy severed the instance? The paper's related
//! work is full of after-the-fact localizers (Sherlock, NetPilot, Shrink);
//! reCloud can answer *before* deployment because it already simulates
//! the failure states.
//!
//! [`explain_unreachable`] dissects a fat-tree reachability failure into
//! the first broken layer along the up/down path; the diagnosis order
//! mirrors the analytic router's checks, so an explanation is returned
//! exactly when the router reports unreachable.

use crate::fattree::FatTreeRouter;
use crate::Router;
use recloud_sampling::BitMatrix;
use recloud_topology::{ComponentId, FatTreeMeta, Topology};

/// Diagnosis of an unreachable host in a fat-tree round.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Unreachable {
    /// The host itself is failed (directly or via its dependencies —
    /// e.g. its host-group power supply).
    HostFailed,
    /// The host's edge (ToR) switch is failed, cutting the whole rack.
    EdgeFailed {
        /// The failed edge switch.
        edge: ComponentId,
    },
    /// The host's pod has no alive aggregation switch in any group that
    /// still has an alive border path; lists the pod's alive agg groups.
    NoUplink {
        /// Groups with an alive agg switch in this pod.
        alive_agg_groups: Vec<u32>,
        /// Groups with an alive border switch and ≥ 1 alive core.
        alive_border_groups: Vec<u32>,
    },
}

impl std::fmt::Display for Unreachable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Unreachable::HostFailed => write!(f, "the host itself is failed"),
            Unreachable::EdgeFailed { edge } => {
                write!(f, "the rack's edge switch {edge} is failed")
            }
            Unreachable::NoUplink { alive_agg_groups, alive_border_groups } => write!(
                f,
                "no alive uplink: pod agg groups {alive_agg_groups:?} vs \
                 border-capable groups {alive_border_groups:?} are disjoint"
            ),
        }
    }
}

/// Explains why `host` is unreachable from the border switches in the
/// given round, or returns `None` if it is in fact reachable.
///
/// # Panics
/// Panics if the topology is not a fat-tree.
pub fn explain_unreachable(
    topology: &Topology,
    states: &BitMatrix,
    round: usize,
    host: ComponentId,
) -> Option<Unreachable> {
    let meta = *topology.fat_tree().expect("explain_unreachable requires a fat-tree");
    let failed = |c: ComponentId| states.get(c.index(), round);
    if failed(host) {
        return Some(Unreachable::HostFailed);
    }
    let pos = meta.host_position(host);
    let edge = meta.edge(pos.pod, pos.edge);
    if failed(edge) {
        return Some(Unreachable::EdgeFailed { edge });
    }
    let alive_agg_groups: Vec<u32> =
        (0..meta.half).filter(|&g| !failed(meta.agg(pos.pod, g))).collect();
    let alive_border_groups: Vec<u32> = (0..meta.half)
        .filter(|&g| !failed(meta.border(g)) && (0..meta.half).any(|j| !failed(meta.core(g, j))))
        .collect();
    let has_path = alive_agg_groups.iter().any(|g| alive_border_groups.contains(g));
    if !has_path {
        return Some(Unreachable::NoUplink { alive_agg_groups, alive_border_groups });
    }
    None
}

/// Sanity wrapper: diagnosis must agree with the analytic router.
/// Exposed for tests and debugging builds.
pub fn diagnose_consistently(
    topology: &Topology,
    states: &BitMatrix,
    round: usize,
    host: ComponentId,
) -> (bool, Option<Unreachable>) {
    let mut router = FatTreeRouter::new(topology);
    router.begin_round(states, round);
    let reachable = router.external_reaches(states, host);
    let explanation = explain_unreachable(topology, states, round, host);
    (reachable, explanation)
}

/// Re-export of the meta type used in diagnoses (convenience for callers
/// printing group indices).
pub type Meta = FatTreeMeta;

#[cfg(test)]
mod tests {
    use super::*;
    use recloud_sampling::{ExtendedDaggerSampler, Sampler};
    use recloud_topology::{ComponentKind, FatTreeParams};

    fn setup() -> (Topology, FatTreeMeta, BitMatrix) {
        let t = FatTreeParams::new(4).build();
        let m = *t.fat_tree().unwrap();
        let s = BitMatrix::new(t.num_components(), 1);
        (t, m, s)
    }

    #[test]
    fn healthy_host_has_no_explanation() {
        let (t, m, s) = setup();
        assert_eq!(explain_unreachable(&t, &s, 0, m.host(0, 0, 0)), None);
    }

    #[test]
    fn dead_host_diagnosed_first() {
        let (t, m, mut s) = setup();
        let h = m.host(0, 0, 0);
        s.set(h.index(), 0);
        s.set(m.edge(0, 0).index(), 0); // also dead, but host wins
        assert_eq!(explain_unreachable(&t, &s, 0, h), Some(Unreachable::HostFailed));
    }

    #[test]
    fn dead_edge_diagnosed() {
        let (t, m, mut s) = setup();
        s.set(m.edge(0, 0).index(), 0);
        assert_eq!(
            explain_unreachable(&t, &s, 0, m.host(0, 0, 0)),
            Some(Unreachable::EdgeFailed { edge: m.edge(0, 0) })
        );
    }

    #[test]
    fn uplink_diagnosis_lists_groups() {
        let (t, m, mut s) = setup();
        // Pod 0 keeps only agg group 0; group 0's border dies.
        s.set(m.agg(0, 1).index(), 0);
        s.set(m.border(0).index(), 0);
        let d = explain_unreachable(&t, &s, 0, m.host(0, 0, 0)).unwrap();
        match d {
            Unreachable::NoUplink { alive_agg_groups, alive_border_groups } => {
                assert_eq!(alive_agg_groups, vec![0]);
                assert_eq!(alive_border_groups, vec![1]);
            }
            other => panic!("wrong diagnosis {other:?}"),
        }
        // Pod 1 still gets out through group 1.
        assert_eq!(explain_unreachable(&t, &s, 0, m.host(1, 0, 0)), None);
    }

    #[test]
    fn diagnosis_agrees_with_router_on_random_failures() {
        let t = FatTreeParams::new(6).build();
        let rounds = 200;
        let mut states = BitMatrix::new(t.num_components(), rounds);
        let probs: Vec<f64> = t
            .components()
            .iter()
            .map(|c| if c.kind == ComponentKind::External { 0.0 } else { 0.1 })
            .collect();
        ExtendedDaggerSampler::seeded(3).sample_into(&probs, &mut states);
        for round in 0..rounds {
            for &h in t.hosts().iter().step_by(7) {
                let (reachable, explanation) = diagnose_consistently(&t, &states, round, h);
                assert_eq!(
                    reachable,
                    explanation.is_none(),
                    "round {round} host {h}: reachable={reachable}, explanation={explanation:?}"
                );
            }
        }
    }

    #[test]
    fn display_is_human_readable() {
        let (t, m, mut s) = setup();
        s.set(m.edge(0, 0).index(), 0);
        let d = explain_unreachable(&t, &s, 0, m.host(0, 0, 0)).unwrap();
        assert!(d.to_string().contains("edge switch"));
    }
}
