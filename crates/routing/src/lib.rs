#![warn(missing_docs)]

//! # recloud-routing
//!
//! The "route-and-check" step of reliability assessment (§3.2.1, Fig 2):
//! given the *effective* (fault-tree-collapsed) failure states of one
//! sampling round, decide which application hosts are reachable from the
//! border switches and which host pairs can reach each other.
//!
//! Three routers implement the [`Router`] trait:
//!
//! * [`fattree::FatTreeRouter`] — an analytic emulation of fat-tree
//!   up/down (valley-free) routing: per round it digests the switch tiers
//!   into core-group / border / per-pod aggregation masks, after which
//!   every reachability query is O(1) bit algebra. This is what makes
//!   10⁴-round assessment of a 27K-host data center take milliseconds.
//! * [`updown::UpDownRouter`] — protocol-faithful valley-free BFS driven
//!   by a hierarchy-level function. Same verdicts as the analytic router
//!   (property-tested against it), works on any leveled topology; used as
//!   the reference implementation and for leveled non-fat-tree fabrics.
//! * [`generic::GenericRouter`] — plain BFS over the alive subgraph:
//!   *physical* reachability, an upper bound on what any routing protocol
//!   can deliver. This is the right model for topologies routed by
//!   shortest-path/ECMP over arbitrary graphs (e.g. Jellyfish), and it
//!   honors per-cable link components.
//!
//! Swapping routers is the paper's "to work with another architecture,
//! only change this step's routing protocol" (§3.2.1). Per-round *context
//! setup* is an explicit step ([`Router::begin_round`]) because §4.2.3
//! attributes most of the per-plan cost to it.

pub mod explain;
pub mod fattree;
pub mod generic;
pub mod updown;

pub use explain::{explain_unreachable, Unreachable};
pub use fattree::FatTreeRouter;
pub use generic::GenericRouter;
pub use updown::UpDownRouter;

use recloud_sampling::{BitMatrix, WideWord};
use recloud_topology::{ComponentId, Topology, TopologyKind};

/// Reachability oracle for one sampling round — or, through the word and
/// wide APIs, for 64 or 256 rounds at a time.
///
/// Scalar protocol: call [`Router::begin_round`] with the collapsed state
/// matrix and a round index, then issue queries *against the same matrix
/// and round*. The matrix is passed by reference on every call so routers
/// can read states lazily without copying a 30K-component column per round.
///
/// Word protocol (the bit-sliced kernel): call [`Router::begin_word`] with
/// a word index `w`, then issue [`Router::external_reach_word`] /
/// [`Router::connects_word`] queries for the same `(states, w)`. Bit `r`
/// of a result word is the verdict for round `64·w + r`, bit-identical to
/// the scalar query on that round. Bits beyond the matrix's round count
/// are unspecified — callers mask with [`BitMatrix::word_mask`].
///
/// Wide protocol (the 256-lane kernel): call [`Router::begin_wide`] with a
/// wide-word index `ww`, then issue [`Router::external_reach_wide`] /
/// [`Router::connects_wide`] queries for the same `(states, ww)`. Lane `r`
/// of a result wide word is the verdict for round `256·ww + r`. The default
/// implementations decompose a wide word into its four 64-round subwords
/// through the word API, so every router gets the wide API for free and the
/// 64-bit path remains the degenerate width.
///
/// All protocols share router scratch: interleaving them is allowed only by
/// re-issuing the relevant `begin_*` call first.
pub trait Router {
    /// Installs the failure states of one round (the per-round context
    /// setup). `states` must be the *collapsed* matrix: one row per
    /// topology component, correlated failures already folded in.
    fn begin_round(&mut self, states: &BitMatrix, round: usize);

    /// True if `host` is alive and reachable from any border switch that
    /// itself peers with the external world (Fig 2's definition of an
    /// alive instance).
    fn external_reaches(&mut self, states: &BitMatrix, host: ComponentId) -> bool;

    /// True if alive hosts `a` and `b` can reach each other through alive
    /// network components (Fig 6's cross-component connectivity check).
    /// `connects(h, h)` is true iff `h` itself is alive.
    fn connects(&mut self, states: &BitMatrix, a: ComponentId, b: ComponentId) -> bool;

    /// Human-readable router name for reports.
    fn name(&self) -> &'static str;

    /// Installs the context for the 64 rounds of word `word` (the batched
    /// analogue of [`Router::begin_round`]). The default is a no-op:
    /// fallback word implementations re-derive any scalar context they
    /// need per round.
    fn begin_word(&mut self, _states: &BitMatrix, _word: usize) {}

    /// True when the word queries are answered natively in O(1) bit
    /// algebra rather than by a per-round fallback loop. Batched callers
    /// use this to decide between host-major word queries (native) and
    /// round-major screening (fallback).
    fn word_native(&self) -> bool {
        false
    }

    /// Screen mask for word `word`: bit r **clear** proves that round
    /// `64·w + r`'s verdicts equal the all-alive baseline, so the round
    /// can skip routing entirely. The default — OR of every component row,
    /// i.e. "anything failed at all" — is correct for every router because
    /// verdicts are a pure function of the round's states.
    fn screen_word(&mut self, states: &BitMatrix, word: usize) -> u64 {
        states.any_failed_word(word)
    }

    /// All-alive-world verdict of [`Router::external_reaches`] — what a
    /// screened-out (clean) round resolves to. The default derives it from
    /// a 1-round all-alive matrix through the scalar path; routers
    /// override to serve it from a topology-static cache. Clobbers scalar
    /// per-round context.
    fn baseline_external(&mut self, states: &BitMatrix, host: ComponentId) -> bool {
        let alive = BitMatrix::new(states.components(), 1);
        self.begin_round(&alive, 0);
        self.external_reaches(&alive, host)
    }

    /// All-alive-world verdict of [`Router::connects`]; same contract as
    /// [`Router::baseline_external`].
    fn baseline_connects(&mut self, states: &BitMatrix, a: ComponentId, b: ComponentId) -> bool {
        let alive = BitMatrix::new(states.components(), 1);
        self.begin_round(&alive, 0);
        self.connects(&alive, a, b)
    }

    /// 64-round batched [`Router::external_reaches`]: bit r of the result
    /// is the verdict for round `64·word + r`. The default falls back to
    /// the scalar query on the set bits of the screen mask — clean rounds
    /// shortcut to the all-alive verdict without any routing. Clobbers
    /// scalar per-round context.
    fn external_reach_word(&mut self, states: &BitMatrix, host: ComponentId, word: usize) -> u64 {
        let valid = states.word_mask(word);
        let screen = self.screen_word(states, word) & valid;
        let mut out = 0u64;
        if screen != valid && self.baseline_external(states, host) {
            out = valid & !screen;
        }
        let mut dirty = screen;
        while dirty != 0 {
            let r = dirty.trailing_zeros() as usize;
            dirty &= dirty - 1;
            self.begin_round(states, word * 64 + r);
            if self.external_reaches(states, host) {
                out |= 1 << r;
            }
        }
        out
    }

    /// 64-round batched [`Router::connects`]; same contract and default
    /// strategy as [`Router::external_reach_word`].
    fn connects_word(
        &mut self,
        states: &BitMatrix,
        a: ComponentId,
        b: ComponentId,
        word: usize,
    ) -> u64 {
        let valid = states.word_mask(word);
        let screen = self.screen_word(states, word) & valid;
        let mut out = 0u64;
        if screen != valid && self.baseline_connects(states, a, b) {
            out = valid & !screen;
        }
        let mut dirty = screen;
        while dirty != 0 {
            let r = dirty.trailing_zeros() as usize;
            dirty &= dirty - 1;
            self.begin_round(states, word * 64 + r);
            if self.connects(states, a, b) {
                out |= 1 << r;
            }
        }
        out
    }

    /// Installs the context for the 256 rounds of wide word `wide` (the
    /// 256-lane analogue of [`Router::begin_word`]). The default is a
    /// no-op: the fallback wide queries re-issue [`Router::begin_word`]
    /// per 64-round subword.
    fn begin_wide(&mut self, _states: &BitMatrix, _wide: usize) {}

    /// True when the wide queries are answered natively in 256-lane bit
    /// algebra rather than by the word-decomposition default.
    fn wide_native(&self) -> bool {
        false
    }

    /// Screen mask for wide word `wide` — the 256-lane analogue of
    /// [`Router::screen_word`]: a clear lane proves the round equals the
    /// all-alive baseline.
    fn screen_wide(&mut self, states: &BitMatrix, wide: usize) -> WideWord {
        states.any_failed_wide(wide)
    }

    /// 256-round batched [`Router::external_reaches`]: lane r of the
    /// result is the verdict for round `256·wide + r`. The default
    /// assembles the four 64-round subwords through the word API
    /// (re-issuing [`Router::begin_word`] per subword); alignment-padding
    /// subwords contribute zero lanes. Lanes beyond the round count are
    /// unspecified — callers mask with [`BitMatrix::wide_mask`].
    fn external_reach_wide(
        &mut self,
        states: &BitMatrix,
        host: ComponentId,
        wide: usize,
    ) -> WideWord {
        let mut out = WideWord::ZERO;
        for i in 0..WideWord::WORDS {
            let w = wide * WideWord::WORDS + i;
            if states.rounds_in_word(w) == 0 {
                break;
            }
            self.begin_word(states, w);
            out.set_word(i, self.external_reach_word(states, host, w));
        }
        out
    }

    /// 256-round batched [`Router::connects`]; same contract and default
    /// strategy as [`Router::external_reach_wide`].
    fn connects_wide(
        &mut self,
        states: &BitMatrix,
        a: ComponentId,
        b: ComponentId,
        wide: usize,
    ) -> WideWord {
        let mut out = WideWord::ZERO;
        for i in 0..WideWord::WORDS {
            let w = wide * WideWord::WORDS + i;
            if states.rounds_in_word(w) == 0 {
                break;
            }
            self.begin_word(states, w);
            out.set_word(i, self.connects_word(states, a, b, w));
        }
        out
    }
}

/// Picks the best router for a topology: analytic for fat-trees, generic
/// BFS for everything else.
pub fn make_router(topology: &Topology) -> Box<dyn Router + Send> {
    match topology.topology_kind() {
        TopologyKind::FatTree(_) => Box::new(FatTreeRouter::new(topology)),
        _ => Box::new(GenericRouter::new(topology)),
    }
}

#[cfg(test)]
mod agreement_tests {
    use super::*;
    use recloud_sampling::{ExtendedDaggerSampler, Rng, Sampler};
    use recloud_topology::{ComponentKind, FatTreeParams};

    fn random_states(t: &Topology, rounds: usize, p: f64, seed: u64) -> BitMatrix {
        let mut states = BitMatrix::new(t.num_components(), rounds);
        let probs: Vec<f64> = t
            .components()
            .iter()
            .map(|c| if c.kind == ComponentKind::External { 0.0 } else { p })
            .collect();
        ExtendedDaggerSampler::seeded(seed).sample_into(&probs, &mut states);
        states
    }

    /// The analytic router must agree with the valley-free reference BFS
    /// on every query — the key cross-validation of the analytic shortcut.
    #[test]
    fn analytic_agrees_with_updown_reference() {
        let t = FatTreeParams::new(6).build();
        let rounds = 400;
        let states = random_states(&t, rounds, 0.12, 77);
        let mut fast = FatTreeRouter::new(&t);
        let mut reference = UpDownRouter::for_fat_tree(&t);
        let mut rng = Rng::new(5);
        let hosts = t.hosts();
        for round in 0..rounds {
            fast.begin_round(&states, round);
            reference.begin_round(&states, round);
            for _ in 0..10 {
                let h = hosts[rng.next_below(hosts.len())];
                assert_eq!(
                    fast.external_reaches(&states, h),
                    reference.external_reaches(&states, h),
                    "round {round} host {h}"
                );
                let h2 = hosts[rng.next_below(hosts.len())];
                assert_eq!(
                    fast.connects(&states, h, h2),
                    reference.connects(&states, h, h2),
                    "round {round} pair {h}-{h2}"
                );
            }
        }
    }

    /// Physical reachability (generic BFS) upper-bounds valley-free
    /// reachability: whenever the protocol router says reachable, so must
    /// the physical one.
    #[test]
    fn physical_reachability_upper_bounds_protocol() {
        let t = FatTreeParams::new(4).build();
        let rounds = 300;
        let states = random_states(&t, rounds, 0.2, 13);
        let mut fast = FatTreeRouter::new(&t);
        let mut phys = GenericRouter::new(&t);
        for round in 0..rounds {
            fast.begin_round(&states, round);
            phys.begin_round(&states, round);
            for &h in t.hosts() {
                if fast.external_reaches(&states, h) {
                    assert!(phys.external_reaches(&states, h), "round {round} host {h}");
                }
            }
        }
    }

    /// Every router's word API must agree bit-for-bit with its own scalar
    /// verdicts — native bit algebra (analytic) and screened fallback
    /// (reference BFS routers) alike — including on a ragged tail word.
    #[test]
    fn word_api_agrees_with_scalar_for_every_router() {
        let t = FatTreeParams::new(4).build();
        let rounds = 150; // 2 full words + a 22-round tail
        let states = random_states(&t, rounds, 0.08, 3);
        let hosts = t.hosts();
        let probes: Vec<_> = hosts.iter().step_by(5).copied().collect();
        let routers: Vec<Box<dyn Router>> = vec![
            Box::new(FatTreeRouter::new(&t)),
            Box::new(UpDownRouter::for_fat_tree(&t)),
            Box::new(GenericRouter::new(&t)),
        ];
        for mut r in routers {
            let name = r.name();
            for w in 0..rounds.div_ceil(64) {
                let valid = states.word_mask(w);
                r.begin_word(&states, w);
                let reach: Vec<u64> =
                    probes.iter().map(|&h| r.external_reach_word(&states, h, w)).collect();
                r.begin_word(&states, w);
                let conn: Vec<u64> =
                    probes.iter().map(|&h| r.connects_word(&states, probes[0], h, w)).collect();
                for bit in 0..states.rounds_in_word(w) {
                    let round = w * 64 + bit;
                    r.begin_round(&states, round);
                    for (i, &h) in probes.iter().enumerate() {
                        assert_eq!(
                            (reach[i] >> bit) & 1 == 1,
                            r.external_reaches(&states, h),
                            "{name}: external round {round} host {h}"
                        );
                        assert_eq!(
                            (conn[i] >> bit) & 1 == 1,
                            r.connects(&states, probes[0], h),
                            "{name}: connects round {round} host {h}"
                        );
                    }
                }
                // Valid-bit masking must be harmless (callers mask anyway).
                for m in &reach {
                    let _ = m & valid;
                }
            }
        }
    }

    /// Every router's wide API must agree lane-for-lane with its own word
    /// verdicts — native 256-lane algebra (analytic) and the
    /// word-decomposition default (reference BFS routers) alike — across a
    /// full wide word plus a ragged tail.
    #[test]
    fn wide_api_agrees_with_word_for_every_router() {
        let t = FatTreeParams::new(4).build();
        let rounds = 300; // 1 full wide word + a 44-round tail
        let states = random_states(&t, rounds, 0.08, 21);
        let hosts = t.hosts();
        let probes: Vec<_> = hosts.iter().step_by(5).copied().collect();
        let routers: Vec<Box<dyn Router>> = vec![
            Box::new(FatTreeRouter::new(&t)),
            Box::new(UpDownRouter::for_fat_tree(&t)),
            Box::new(GenericRouter::new(&t)),
        ];
        for mut r in routers {
            let name = r.name();
            for ww in 0..states.wide_words_per_row() {
                let mask = states.wide_mask(ww);
                r.begin_wide(&states, ww);
                let screen = r.screen_wide(&states, ww);
                let reach: Vec<WideWord> =
                    probes.iter().map(|&h| r.external_reach_wide(&states, h, ww) & mask).collect();
                r.begin_wide(&states, ww);
                let conn: Vec<WideWord> = probes
                    .iter()
                    .map(|&h| r.connects_wide(&states, probes[0], h, ww) & mask)
                    .collect();
                for i in 0..WideWord::WORDS {
                    let w = ww * WideWord::WORDS + i;
                    let wmask = states.word_mask(w);
                    assert_eq!(screen.word(i), states.any_failed_word(w), "{name}: screen");
                    r.begin_word(&states, w);
                    for (j, &h) in probes.iter().enumerate() {
                        assert_eq!(
                            reach[j].word(i),
                            r.external_reach_word(&states, h, w) & wmask,
                            "{name}: external ww={ww} sub={i} host {h}"
                        );
                        assert_eq!(
                            conn[j].word(i),
                            r.connects_word(&states, probes[0], h, w) & wmask,
                            "{name}: connects ww={ww} sub={i} host {h}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn only_analytic_router_is_wide_native() {
        let t = FatTreeParams::new(4).build();
        assert!(FatTreeRouter::new(&t).wide_native());
        assert!(!UpDownRouter::for_fat_tree(&t).wide_native());
        assert!(!GenericRouter::new(&t).wide_native());
    }

    /// The screen mask may only clear a bit when the round is genuinely
    /// all-alive; set bits are allowed to be conservative.
    #[test]
    fn screen_word_is_sound() {
        let t = FatTreeParams::new(4).build();
        let rounds = 100;
        let states = random_states(&t, rounds, 0.02, 9);
        let mut r = GenericRouter::new(&t);
        for w in 0..rounds.div_ceil(64) {
            let screen = r.screen_word(&states, w);
            for bit in 0..states.rounds_in_word(w) {
                if (screen >> bit) & 1 == 0 {
                    let round = w * 64 + bit;
                    for c in 0..states.components() {
                        assert!(!states.get(c, round), "clean round {round} has a failure");
                    }
                }
            }
        }
    }

    #[test]
    fn only_analytic_router_is_word_native() {
        let t = FatTreeParams::new(4).build();
        assert!(FatTreeRouter::new(&t).word_native());
        assert!(!UpDownRouter::for_fat_tree(&t).word_native());
        assert!(!GenericRouter::new(&t).word_native());
    }

    #[test]
    fn make_router_picks_analytic_for_fat_tree() {
        let t = FatTreeParams::new(4).build();
        assert_eq!(make_router(&t).name(), "fat-tree-analytic");
        let ls = recloud_topology::LeafSpineParams::new(2, 2, 2).build();
        assert_eq!(make_router(&ls).name(), "generic-bfs");
    }
}
