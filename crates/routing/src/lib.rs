#![warn(missing_docs)]

//! # recloud-routing
//!
//! The "route-and-check" step of reliability assessment (§3.2.1, Fig 2):
//! given the *effective* (fault-tree-collapsed) failure states of one
//! sampling round, decide which application hosts are reachable from the
//! border switches and which host pairs can reach each other.
//!
//! Three routers implement the [`Router`] trait:
//!
//! * [`fattree::FatTreeRouter`] — an analytic emulation of fat-tree
//!   up/down (valley-free) routing: per round it digests the switch tiers
//!   into core-group / border / per-pod aggregation masks, after which
//!   every reachability query is O(1) bit algebra. This is what makes
//!   10⁴-round assessment of a 27K-host data center take milliseconds.
//! * [`updown::UpDownRouter`] — protocol-faithful valley-free BFS driven
//!   by a hierarchy-level function. Same verdicts as the analytic router
//!   (property-tested against it), works on any leveled topology; used as
//!   the reference implementation and for leveled non-fat-tree fabrics.
//! * [`generic::GenericRouter`] — plain BFS over the alive subgraph:
//!   *physical* reachability, an upper bound on what any routing protocol
//!   can deliver. This is the right model for topologies routed by
//!   shortest-path/ECMP over arbitrary graphs (e.g. Jellyfish), and it
//!   honors per-cable link components.
//!
//! Swapping routers is the paper's "to work with another architecture,
//! only change this step's routing protocol" (§3.2.1). Per-round *context
//! setup* is an explicit step ([`Router::begin_round`]) because §4.2.3
//! attributes most of the per-plan cost to it.

pub mod explain;
pub mod fattree;
pub mod generic;
pub mod updown;

pub use explain::{explain_unreachable, Unreachable};
pub use fattree::FatTreeRouter;
pub use generic::GenericRouter;
pub use updown::UpDownRouter;

use recloud_sampling::BitMatrix;
use recloud_topology::{ComponentId, Topology, TopologyKind};

/// Reachability oracle for one sampling round.
///
/// Protocol: call [`Router::begin_round`] with the collapsed state matrix
/// and a round index, then issue queries *against the same matrix and
/// round*. The matrix is passed by reference on every call so routers can
/// read states lazily without copying a 30K-component column per round.
pub trait Router {
    /// Installs the failure states of one round (the per-round context
    /// setup). `states` must be the *collapsed* matrix: one row per
    /// topology component, correlated failures already folded in.
    fn begin_round(&mut self, states: &BitMatrix, round: usize);

    /// True if `host` is alive and reachable from any border switch that
    /// itself peers with the external world (Fig 2's definition of an
    /// alive instance).
    fn external_reaches(&mut self, states: &BitMatrix, host: ComponentId) -> bool;

    /// True if alive hosts `a` and `b` can reach each other through alive
    /// network components (Fig 6's cross-component connectivity check).
    /// `connects(h, h)` is true iff `h` itself is alive.
    fn connects(&mut self, states: &BitMatrix, a: ComponentId, b: ComponentId) -> bool;

    /// Human-readable router name for reports.
    fn name(&self) -> &'static str;
}

/// Picks the best router for a topology: analytic for fat-trees, generic
/// BFS for everything else.
pub fn make_router(topology: &Topology) -> Box<dyn Router + Send> {
    match topology.topology_kind() {
        TopologyKind::FatTree(_) => Box::new(FatTreeRouter::new(topology)),
        _ => Box::new(GenericRouter::new(topology)),
    }
}

#[cfg(test)]
mod agreement_tests {
    use super::*;
    use recloud_sampling::{ExtendedDaggerSampler, Rng, Sampler};
    use recloud_topology::{ComponentKind, FatTreeParams};

    fn random_states(t: &Topology, rounds: usize, p: f64, seed: u64) -> BitMatrix {
        let mut states = BitMatrix::new(t.num_components(), rounds);
        let probs: Vec<f64> = t
            .components()
            .iter()
            .map(|c| if c.kind == ComponentKind::External { 0.0 } else { p })
            .collect();
        ExtendedDaggerSampler::seeded(seed).sample_into(&probs, &mut states);
        states
    }

    /// The analytic router must agree with the valley-free reference BFS
    /// on every query — the key cross-validation of the analytic shortcut.
    #[test]
    fn analytic_agrees_with_updown_reference() {
        let t = FatTreeParams::new(6).build();
        let rounds = 400;
        let states = random_states(&t, rounds, 0.12, 77);
        let mut fast = FatTreeRouter::new(&t);
        let mut reference = UpDownRouter::for_fat_tree(&t);
        let mut rng = Rng::new(5);
        let hosts = t.hosts();
        for round in 0..rounds {
            fast.begin_round(&states, round);
            reference.begin_round(&states, round);
            for _ in 0..10 {
                let h = hosts[rng.next_below(hosts.len())];
                assert_eq!(
                    fast.external_reaches(&states, h),
                    reference.external_reaches(&states, h),
                    "round {round} host {h}"
                );
                let h2 = hosts[rng.next_below(hosts.len())];
                assert_eq!(
                    fast.connects(&states, h, h2),
                    reference.connects(&states, h, h2),
                    "round {round} pair {h}-{h2}"
                );
            }
        }
    }

    /// Physical reachability (generic BFS) upper-bounds valley-free
    /// reachability: whenever the protocol router says reachable, so must
    /// the physical one.
    #[test]
    fn physical_reachability_upper_bounds_protocol() {
        let t = FatTreeParams::new(4).build();
        let rounds = 300;
        let states = random_states(&t, rounds, 0.2, 13);
        let mut fast = FatTreeRouter::new(&t);
        let mut phys = GenericRouter::new(&t);
        for round in 0..rounds {
            fast.begin_round(&states, round);
            phys.begin_round(&states, round);
            for &h in t.hosts() {
                if fast.external_reaches(&states, h) {
                    assert!(phys.external_reaches(&states, h), "round {round} host {h}");
                }
            }
        }
    }

    #[test]
    fn make_router_picks_analytic_for_fat_tree() {
        let t = FatTreeParams::new(4).build();
        assert_eq!(make_router(&t).name(), "fat-tree-analytic");
        let ls = recloud_topology::LeafSpineParams::new(2, 2, 2).build();
        assert_eq!(make_router(&ls).name(), "generic-bfs");
    }
}
