//! Valley-free (up/down) BFS — the protocol-faithful reference router.
//!
//! Hierarchical data-center routing never lets a packet descend and then
//! climb again ("no valleys"): it climbs monotonically to some level, turns
//! around once, and descends monotonically. This router performs BFS over
//! the state space (node, phase ∈ {climbing, descending}) driven by a
//! per-node *hierarchy level*, and therefore computes exactly what the
//! deployed routing protocol can deliver — unlike plain BFS, which also
//! finds physically-present-but-unroutable valley paths.
//!
//! For fat-trees the levels are host(0) < edge(1) < agg(2) < core(3) <
//! border(4) < external(5); [`UpDownRouter::for_fat_tree`] installs them.
//! Any other leveled fabric works through [`UpDownRouter::with_levels`].
//!
//! This router favors clarity over speed; the analytic
//! [`crate::FatTreeRouter`] is the production path and is property-tested
//! against this one.

use crate::Router;
use recloud_sampling::BitMatrix;
use recloud_topology::{ComponentId, ComponentKind, Topology, TopologyKind};

/// Level assigned to components that do not participate in routing.
pub const NON_NETWORK: u8 = u8::MAX;

/// Valley-free BFS router.
pub struct UpDownRouter {
    topology: Topology,
    levels: Vec<u8>,
    round: usize,
    epoch: u32,
    /// Stamp per (node, phase): phase 0 = climbing, 1 = descending.
    visited: [Vec<u32>; 2],
    /// Cached per-round "reachable from external" stamps.
    ext_visited: Vec<u32>,
    ext_done: bool,
    queue: Vec<(u32, u8)>,
    /// Topology-static all-alive-world reachability from the external node
    /// (the verdict of every screened-out round), computed on first use.
    baseline_ext: Option<Vec<bool>>,
    /// All-alive-world valley-free visited sets per flood source, for
    /// [`Router::baseline_connects`].
    baseline_conn: Vec<(ComponentId, Vec<bool>)>,
}

impl UpDownRouter {
    /// Builds a router with an explicit level per component.
    ///
    /// # Panics
    /// Panics if the level vector length mismatches the component count.
    pub fn with_levels(topology: &Topology, levels: Vec<u8>) -> Self {
        assert_eq!(levels.len(), topology.num_components(), "level vector shape");
        let n = topology.num_components();
        UpDownRouter {
            topology: topology.clone(),
            levels,
            round: 0,
            epoch: 0,
            visited: [vec![0; n], vec![0; n]],
            ext_visited: vec![0; n],
            ext_done: false,
            queue: Vec::new(),
            baseline_ext: None,
            baseline_conn: Vec::new(),
        }
    }

    /// Valley-free flood over the topology ignoring failure states (the
    /// all-alive world of screened-out rounds). Returns the union of both
    /// phases' visited sets. Clobbers scalar per-round context.
    fn alive_flood(&mut self, start: ComponentId, use_ext: bool) -> Vec<bool> {
        let n = self.topology.num_components();
        let alive = BitMatrix::new(n, 1);
        self.round = 0;
        self.epoch = self.epoch.wrapping_add(1).max(1);
        self.ext_done = false;
        self.flood(&alive, start, use_ext);
        let e = self.epoch;
        if use_ext {
            self.ext_visited.iter().map(|&s| s == e).collect()
        } else {
            (0..n).map(|i| self.visited[0][i] == e || self.visited[1][i] == e).collect()
        }
    }

    /// Standard fat-tree levels.
    ///
    /// # Panics
    /// Panics if the topology is not a fat-tree.
    pub fn for_fat_tree(topology: &Topology) -> Self {
        assert!(
            matches!(topology.topology_kind(), TopologyKind::FatTree(_)),
            "for_fat_tree requires a fat-tree topology"
        );
        let levels = topology
            .components()
            .iter()
            .map(|c| match c.kind {
                ComponentKind::Host => 0,
                ComponentKind::EdgeSwitch => 1,
                ComponentKind::AggSwitch => 2,
                ComponentKind::CoreSwitch => 3,
                ComponentKind::BorderSwitch => 4,
                ComponentKind::External => 5,
                _ => NON_NETWORK,
            })
            .collect();
        Self::with_levels(topology, levels)
    }

    /// Standard leaf-spine levels (host 0, leaf 1, spine 2, external 3).
    pub fn for_leaf_spine(topology: &Topology) -> Self {
        let levels = topology
            .components()
            .iter()
            .map(|c| match c.kind {
                ComponentKind::Host => 0,
                ComponentKind::EdgeSwitch => 1,
                ComponentKind::CoreSwitch => 2,
                ComponentKind::External => 3,
                _ => NON_NETWORK,
            })
            .collect();
        Self::with_levels(topology, levels)
    }

    /// Valley-free flood from `start` (must be alive), stamping `visited`
    /// (when `use_ext` is false) or `ext_visited` (when true, tracking only
    /// the descending phase from the external node).
    fn flood(&mut self, states: &BitMatrix, start: ComponentId, use_ext: bool) {
        let epoch = self.epoch;
        self.queue.clear();
        // Phase 0 = still allowed to climb; phase 1 = descending only.
        self.queue.push((start.0, 0));
        if use_ext {
            self.ext_visited[start.index()] = epoch;
        } else {
            self.visited[0][start.index()] = epoch;
        }
        let mut head = 0;
        while head < self.queue.len() {
            let (v_raw, phase) = self.queue[head];
            head += 1;
            let v = ComponentId(v_raw);
            let lv = self.levels[v.index()];
            for e in self.topology.graph().neighbors(v) {
                if let Some(link) = e.link_id() {
                    if states.get(link.index(), self.round) {
                        continue;
                    }
                }
                let w = e.to;
                if states.get(w.index(), self.round) {
                    continue;
                }
                let lw = self.levels[w.index()];
                if lw == NON_NETWORK {
                    continue;
                }
                // East-west traffic never hairpins through the external
                // peer; external participates only in external_reaches
                // floods (where it is the start node).
                if !use_ext && w == self.topology.external() {
                    continue;
                }
                let next_phase = if phase == 0 && lw > lv {
                    0 // keep climbing
                } else if lw < lv {
                    1 // turn (or keep) descending
                } else {
                    continue; // equal levels or climbing after descent: not valley-free
                };
                if use_ext {
                    // From external everything is descending; one stamp array.
                    if self.ext_visited[w.index()] != epoch {
                        self.ext_visited[w.index()] = epoch;
                        self.queue.push((w.0, next_phase));
                    }
                } else {
                    let stamps = &mut self.visited[next_phase as usize];
                    if stamps[w.index()] != epoch {
                        stamps[w.index()] = epoch;
                        self.queue.push((w.0, next_phase));
                    }
                }
            }
        }
    }
}

impl Router for UpDownRouter {
    fn begin_round(&mut self, states: &BitMatrix, round: usize) {
        assert_eq!(states.components(), self.topology.num_components(), "matrix shape");
        self.round = round;
        self.epoch = self.epoch.wrapping_add(1).max(1);
        self.ext_done = false;
    }

    fn external_reaches(&mut self, states: &BitMatrix, host: ComponentId) -> bool {
        if states.get(host.index(), self.round) {
            return false;
        }
        if !self.ext_done {
            let ext = self.topology.external();
            if !states.get(ext.index(), self.round) {
                self.flood(states, ext, true);
            }
            self.ext_done = true;
        }
        self.ext_visited[host.index()] == self.epoch
    }

    fn connects(&mut self, states: &BitMatrix, a: ComponentId, b: ComponentId) -> bool {
        if states.get(a.index(), self.round) || states.get(b.index(), self.round) {
            return false;
        }
        if a == b {
            return true;
        }
        // Each connects() query refloods (reference implementation; no
        // memoization). Bump the epoch so stale stamps cannot leak, then
        // redo the external flood marker.
        self.epoch = self.epoch.wrapping_add(1).max(1);
        self.ext_done = false;
        self.flood(states, a, false);
        self.visited[0][b.index()] == self.epoch || self.visited[1][b.index()] == self.epoch
    }

    fn name(&self) -> &'static str {
        "updown-bfs"
    }

    fn baseline_external(&mut self, _states: &BitMatrix, host: ComponentId) -> bool {
        if self.baseline_ext.is_none() {
            let ext = self.topology.external();
            self.baseline_ext = Some(self.alive_flood(ext, true));
        }
        self.baseline_ext.as_ref().expect("filled above")[host.index()]
    }

    fn baseline_connects(&mut self, _states: &BitMatrix, a: ComponentId, b: ComponentId) -> bool {
        if a == b {
            return true;
        }
        if let Some((_, seen)) = self.baseline_conn.iter().find(|(s, _)| *s == a) {
            return seen[b.index()];
        }
        let seen = self.alive_flood(a, false);
        let hit = seen[b.index()];
        if self.baseline_conn.len() >= 128 {
            self.baseline_conn.clear();
        }
        self.baseline_conn.push((a, seen));
        hit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recloud_topology::FatTreeParams;

    #[test]
    fn rejects_valley_paths() {
        // Break the direct spine for pod0<->pod1 but leave a physical
        // valley path through a third pod: up/down must say "no".
        let t = FatTreeParams::new(4).build();
        let m = *t.fat_tree().unwrap();
        let mut states = BitMatrix::new(t.num_components(), 1);
        // Pod 0 keeps only agg group 0; pod 1 keeps only agg group 1;
        // pod 2 keeps both (the potential valley relay).
        states.set(m.agg(0, 1).index(), 0);
        states.set(m.agg(1, 0).index(), 0);
        let mut r = UpDownRouter::for_fat_tree(&t);
        r.begin_round(&states, 0);
        // Physically: pod0 -> core(g0) -> agg(2,0) -> edge(2,x) -> agg(2,1)
        // -> core(g1) -> agg(1,1) -> pod1 exists, but it has a valley.
        assert!(!r.connects(&states, m.host(0, 0, 0), m.host(1, 0, 0)));
        // The generic router (physical reachability) disagrees — that is
        // exactly the difference between the two models.
        let mut phys = crate::GenericRouter::new(&t);
        phys.begin_round(&states, 0);
        assert!(phys.connects(&states, m.host(0, 0, 0), m.host(1, 0, 0)));
    }

    #[test]
    fn external_reaches_is_monotone_down() {
        let t = FatTreeParams::new(4).build();
        let m = *t.fat_tree().unwrap();
        let mut states = BitMatrix::new(t.num_components(), 1);
        // Kill border 0's entire core group; border 1 carries everything.
        for j in 0..m.half {
            states.set(m.core(0, j).index(), 0);
        }
        let mut r = UpDownRouter::for_fat_tree(&t);
        r.begin_round(&states, 0);
        for &h in t.hosts() {
            let pos = m.host_position(h);
            // Reachable iff pod keeps agg group 1 alive (it does: nothing
            // else failed).
            assert!(r.external_reaches(&states, h), "pod {}", pos.pod);
        }
    }

    #[test]
    fn same_rack_connectivity_survives_total_core_loss() {
        let t = FatTreeParams::new(4).build();
        let m = *t.fat_tree().unwrap();
        let mut states = BitMatrix::new(t.num_components(), 1);
        for g in 0..m.half {
            for j in 0..m.half {
                states.set(m.core(g, j).index(), 0);
            }
        }
        let mut r = UpDownRouter::for_fat_tree(&t);
        r.begin_round(&states, 0);
        assert!(r.connects(&states, m.host(0, 0, 0), m.host(0, 0, 1)));
        assert!(r.connects(&states, m.host(0, 0, 0), m.host(0, 1, 0))); // via agg
        assert!(!r.connects(&states, m.host(0, 0, 0), m.host(1, 0, 0))); // needs core
        assert!(!r.external_reaches(&states, m.host(0, 0, 0)));
    }

    #[test]
    fn interleaved_queries_stay_consistent() {
        // connects() refloods and bumps epochs; external queries before and
        // after must still answer identically within a round.
        let t = FatTreeParams::new(4).build();
        let m = *t.fat_tree().unwrap();
        let mut states = BitMatrix::new(t.num_components(), 1);
        states.set(m.edge(0, 0).index(), 0);
        let mut r = UpDownRouter::for_fat_tree(&t);
        r.begin_round(&states, 0);
        let h_cut = m.host(0, 0, 0);
        let h_ok = m.host(1, 0, 0);
        assert!(!r.external_reaches(&states, h_cut));
        assert!(r.connects(&states, h_ok, m.host(2, 0, 0)));
        assert!(!r.external_reaches(&states, h_cut));
        assert!(r.external_reaches(&states, h_ok));
    }
}

#[cfg(test)]
mod leafspine_tests {
    use super::*;
    use crate::GenericRouter;
    use recloud_sampling::{ExtendedDaggerSampler, Sampler};
    use recloud_topology::LeafSpineParams;

    /// On a full-mesh leaf-spine, every physical path is already
    /// valley-free (any alive spine connects any two alive leaves
    /// directly), so the two routers must agree exactly.
    #[test]
    fn leafspine_valley_free_equals_physical() {
        let t = LeafSpineParams::new(3, 6, 4).border_spines(2).build();
        let rounds = 300;
        let mut states = BitMatrix::new(t.num_components(), rounds);
        let probs: Vec<f64> = t
            .components()
            .iter()
            .map(|c| if c.kind == ComponentKind::External { 0.0 } else { 0.15 })
            .collect();
        ExtendedDaggerSampler::seeded(21).sample_into(&probs, &mut states);

        let mut vf = UpDownRouter::for_leaf_spine(&t);
        let mut phys = GenericRouter::new(&t);
        let hosts = t.hosts();
        for round in 0..rounds {
            vf.begin_round(&states, round);
            phys.begin_round(&states, round);
            for &h in hosts.iter().step_by(3) {
                assert_eq!(
                    vf.external_reaches(&states, h),
                    phys.external_reaches(&states, h),
                    "round {round} host {h}"
                );
            }
            let (a, b) = (hosts[0], hosts[hosts.len() - 1]);
            assert_eq!(vf.connects(&states, a, b), phys.connects(&states, a, b), "round {round}");
        }
    }

    #[test]
    fn leafspine_levels_reject_leaf_relay_valleys() {
        // Hand-built: two leaves that share only ONE spine; if that spine
        // dies, host1 cannot reach host2 even though both are alive.
        let t = LeafSpineParams::new(1, 2, 1).border_spines(1).build();
        let mut states = BitMatrix::new(t.num_components(), 1);
        states.set(t.border_switches()[0].index(), 0); // the only spine
        let mut vf = UpDownRouter::for_leaf_spine(&t);
        vf.begin_round(&states, 0);
        let h = t.hosts();
        assert!(!vf.connects(&states, h[0], h[1]));
        assert!(!vf.external_reaches(&states, h[0]));
    }
}
