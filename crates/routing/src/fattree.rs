//! Analytic fat-tree up/down routing (the fast path of route-and-check).
//!
//! Fat-tree routing is valley-free: a packet climbs host → edge → agg →
//! core, crosses at the top, and descends. Reachability under this
//! protocol therefore has closed form:
//!
//! * **external → host (p, e, s)**: the host and its edge switch are
//!   alive, and some *core group* g exists with `agg(p, g)` alive,
//!   `border(g)` alive, and at least one core switch in group g alive.
//! * **host ↔ host, same edge**: both hosts and the edge switch alive.
//! * **host ↔ host, same pod**: hosts and both edge switches alive, and
//!   some agg switch of the pod alive.
//! * **host ↔ host, cross-pod**: hosts and edge switches alive, and some
//!   group g with `agg(p₁, g)`, `agg(p₂, g)` and a core of group g alive.
//!
//! Per round we digest the switch tiers into three bit masks over core
//! groups — `core_group_alive`, `border_ok = border ∧ core_group_alive`,
//! and a lazily-computed per-pod `agg_mask` — after which every query is a
//! couple of AND operations. The per-round cost is O(#switches), not
//! O(#hosts): begin_round on the Large fabric touches ~2.9K bits.
//!
//! Verdict-equivalence with the valley-free reference BFS is enforced by
//! tests in `lib.rs` and by property tests.

use crate::Router;
use recloud_sampling::{BitMatrix, WideWord};
use recloud_topology::{ComponentId, FatTreeMeta, Topology};

/// O(1)-per-query router for fat-trees with a dedicated border pod.
pub struct FatTreeRouter {
    meta: FatTreeMeta,
    round: usize,
    /// Mask over core groups: group has ≥ 1 alive core switch.
    core_group_alive: u64,
    /// Mask over core groups: border(g) alive AND core group g alive.
    border_ok: u64,
    /// Lazily-computed per-pod agg masks, epoch-stamped.
    agg_mask: Vec<u64>,
    agg_stamp: Vec<u32>,
    epoch: u32,
    /// Word-protocol context (the bit-sliced kernel). Indexed by round
    /// within the current word: bit r of each mask is round 64·word + r.
    word: usize,
    /// Per core group g: some core of g alive (round-lane mask).
    core_any_w: Vec<u64>,
    /// Per core group g: border(g) alive AND some core of g alive.
    border_ok_w: Vec<u64>,
    /// Per (pod, group): agg(p, g) alive. Lazily filled per pod.
    agg_w: Vec<u64>,
    /// Per pod: OR over g of `agg_w[p][g] & border_ok_w[g]` — the rounds in
    /// which the pod has *some* externally-viable uplink group.
    pod_ext_w: Vec<u64>,
    /// Per pod: OR over g of `agg_w[p][g]` — some agg of the pod alive.
    pod_agg_any_w: Vec<u64>,
    pod_wstamp: Vec<u32>,
    wepoch: u32,
    /// Wide-protocol context (the 256-lane kernel) — same shapes as the
    /// word-protocol masks above, one [`WideWord`] lane per round of the
    /// current wide word.
    wide: usize,
    core_any_ww: Vec<WideWord>,
    border_ok_ww: Vec<WideWord>,
    agg_ww: Vec<WideWord>,
    pod_ext_ww: Vec<WideWord>,
    pod_agg_any_ww: Vec<WideWord>,
    pod_wwstamp: Vec<u32>,
    wwepoch: u32,
}

impl FatTreeRouter {
    /// Creates the router.
    ///
    /// # Panics
    /// Panics if the topology is not a fat-tree, or k > 128 (group masks
    /// are single u64 words; the paper's largest k is 48).
    pub fn new(topology: &Topology) -> Self {
        let meta = *topology.fat_tree().expect("FatTreeRouter requires a fat-tree topology");
        assert!(meta.half <= 64, "fat-tree k > 128 exceeds mask width");
        let pods = meta.host_pods as usize;
        let half = meta.half as usize;
        FatTreeRouter {
            meta,
            round: 0,
            core_group_alive: 0,
            border_ok: 0,
            agg_mask: vec![0; pods],
            agg_stamp: vec![0; pods],
            epoch: 0,
            word: 0,
            core_any_w: vec![0; half],
            border_ok_w: vec![0; half],
            agg_w: vec![0; pods * half],
            pod_ext_w: vec![0; pods],
            pod_agg_any_w: vec![0; pods],
            pod_wstamp: vec![0; pods],
            wepoch: 0,
            wide: 0,
            core_any_ww: vec![WideWord::ZERO; half],
            border_ok_ww: vec![WideWord::ZERO; half],
            agg_ww: vec![WideWord::ZERO; pods * half],
            pod_ext_ww: vec![WideWord::ZERO; pods],
            pod_agg_any_ww: vec![WideWord::ZERO; pods],
            pod_wwstamp: vec![0; pods],
            wwepoch: 0,
        }
    }

    #[inline]
    fn alive(states: &BitMatrix, c: ComponentId, round: usize) -> bool {
        !states.get(c.index(), round)
    }

    /// Round-lane "alive" mask of one component over the 64 rounds of
    /// `word`: bit r set iff the component is alive in round 64·word + r.
    /// Bits beyond the matrix's round count are set (stored tail bits are
    /// zero = alive); callers mask final verdicts.
    #[inline]
    fn alive_word(states: &BitMatrix, c: ComponentId, word: usize) -> u64 {
        !states.word(c.index(), word)
    }

    /// Fills the per-pod word-lane masks on first use within a word. Same
    /// laziness argument as [`FatTreeRouter::agg_mask_of`]: a plan touches
    /// a handful of pods, so most words read k/2 agg rows for ≤ N pods.
    #[inline]
    fn pod_words_of(&mut self, states: &BitMatrix, pod: u32) {
        let p = pod as usize;
        if self.pod_wstamp[p] == self.wepoch {
            return;
        }
        let half = self.meta.half as usize;
        let mut ext = 0u64;
        let mut any = 0u64;
        for g in 0..half {
            let agg = Self::alive_word(states, self.meta.agg(pod, g as u32), self.word);
            self.agg_w[p * half + g] = agg;
            ext |= agg & self.border_ok_w[g];
            any |= agg;
        }
        self.pod_ext_w[p] = ext;
        self.pod_agg_any_w[p] = any;
        self.pod_wstamp[p] = self.wepoch;
    }

    /// 256-lane "alive" mask of one component over the rounds of wide word
    /// `wide`; same tail-lane contract as [`FatTreeRouter::alive_word`].
    #[inline]
    fn alive_wide(states: &BitMatrix, c: ComponentId, wide: usize) -> WideWord {
        !states.wide_word(c.index(), wide)
    }

    /// Fills the per-pod wide-lane masks on first use within a wide word —
    /// the 256-lane mirror of [`FatTreeRouter::pod_words_of`].
    #[inline]
    fn pod_wides_of(&mut self, states: &BitMatrix, pod: u32) {
        let p = pod as usize;
        if self.pod_wwstamp[p] == self.wwepoch {
            return;
        }
        let half = self.meta.half as usize;
        let mut ext = WideWord::ZERO;
        let mut any = WideWord::ZERO;
        for g in 0..half {
            let agg = Self::alive_wide(states, self.meta.agg(pod, g as u32), self.wide);
            self.agg_ww[p * half + g] = agg;
            ext |= agg & self.border_ok_ww[g];
            any |= agg;
        }
        self.pod_ext_ww[p] = ext;
        self.pod_agg_any_ww[p] = any;
        self.pod_wwstamp[p] = self.wwepoch;
    }

    /// Per-pod agg mask, computed on first use in a round. Keeping this
    /// lazy matters: a plan only touches a handful of pods, so most rounds
    /// read k/2 agg bits for ≤ N pods instead of all (k−1)·k/2.
    #[inline]
    fn agg_mask_of(&mut self, states: &BitMatrix, pod: u32) -> u64 {
        let p = pod as usize;
        if self.agg_stamp[p] != self.epoch {
            let mut mask = 0u64;
            for g in 0..self.meta.half {
                if Self::alive(states, self.meta.agg(pod, g), self.round) {
                    mask |= 1 << g;
                }
            }
            self.agg_mask[p] = mask;
            self.agg_stamp[p] = self.epoch;
        }
        self.agg_mask[p]
    }
}

impl Router for FatTreeRouter {
    fn begin_round(&mut self, states: &BitMatrix, round: usize) {
        self.round = round;
        self.epoch = self.epoch.wrapping_add(1).max(1);
        let half = self.meta.half;
        let mut core_alive = 0u64;
        for g in 0..half {
            for j in 0..half {
                if Self::alive(states, self.meta.core(g, j), round) {
                    core_alive |= 1 << g;
                    break;
                }
            }
        }
        self.core_group_alive = core_alive;
        let mut border_ok = 0u64;
        for g in 0..half {
            if (core_alive >> g) & 1 == 1 && Self::alive(states, self.meta.border(g), round) {
                border_ok |= 1 << g;
            }
        }
        self.border_ok = border_ok;
    }

    fn external_reaches(&mut self, states: &BitMatrix, host: ComponentId) -> bool {
        debug_assert!(self.meta.is_host(host), "external_reaches takes a host id");
        if !Self::alive(states, host, self.round) {
            return false;
        }
        let pos = self.meta.host_position(host);
        if !Self::alive(states, self.meta.edge(pos.pod, pos.edge), self.round) {
            return false;
        }
        self.agg_mask_of(states, pos.pod) & self.border_ok != 0
    }

    fn connects(&mut self, states: &BitMatrix, a: ComponentId, b: ComponentId) -> bool {
        debug_assert!(self.meta.is_host(a) && self.meta.is_host(b), "connects takes host ids");
        if !Self::alive(states, a, self.round) || !Self::alive(states, b, self.round) {
            return false;
        }
        if a == b {
            return true;
        }
        let pa = self.meta.host_position(a);
        let pb = self.meta.host_position(b);
        if !Self::alive(states, self.meta.edge(pa.pod, pa.edge), self.round) {
            return false;
        }
        if pa.pod == pb.pod && pa.edge == pb.edge {
            return true; // same edge switch, already checked alive
        }
        if !Self::alive(states, self.meta.edge(pb.pod, pb.edge), self.round) {
            return false;
        }
        if pa.pod == pb.pod {
            return self.agg_mask_of(states, pa.pod) != 0;
        }
        let ma = self.agg_mask_of(states, pa.pod);
        let mb = self.agg_mask_of(states, pb.pod);
        ma & mb & self.core_group_alive != 0
    }

    fn name(&self) -> &'static str {
        "fat-tree-analytic"
    }

    /// Digests the switch tiers once per 64 rounds instead of once per
    /// round — the word-parallel analogue of [`Router::begin_round`], and
    /// the reason batched assessment re-reads ~64× fewer switch bits.
    fn begin_word(&mut self, states: &BitMatrix, word: usize) {
        self.word = word;
        self.wepoch = self.wepoch.wrapping_add(1).max(1);
        let half = self.meta.half;
        for g in 0..half {
            let mut any = 0u64;
            for j in 0..half {
                any |= Self::alive_word(states, self.meta.core(g, j), word);
                if any == !0 {
                    break; // every lane already covered
                }
            }
            self.core_any_w[g as usize] = any;
            self.border_ok_w[g as usize] =
                any & Self::alive_word(states, self.meta.border(g), word);
        }
    }

    fn word_native(&self) -> bool {
        true
    }

    fn external_reach_word(&mut self, states: &BitMatrix, host: ComponentId, word: usize) -> u64 {
        debug_assert!(self.meta.is_host(host), "external_reach_word takes a host id");
        debug_assert_eq!(word, self.word, "begin_word installs the word context");
        let pos = self.meta.host_position(host);
        self.pod_words_of(states, pos.pod);
        Self::alive_word(states, host, word)
            & Self::alive_word(states, self.meta.edge(pos.pod, pos.edge), word)
            & self.pod_ext_w[pos.pod as usize]
    }

    fn connects_word(
        &mut self,
        states: &BitMatrix,
        a: ComponentId,
        b: ComponentId,
        word: usize,
    ) -> u64 {
        debug_assert!(self.meta.is_host(a) && self.meta.is_host(b), "connects_word takes host ids");
        debug_assert_eq!(word, self.word, "begin_word installs the word context");
        let both = Self::alive_word(states, a, word) & Self::alive_word(states, b, word);
        if a == b {
            return both;
        }
        let pa = self.meta.host_position(a);
        let pb = self.meta.host_position(b);
        let ea = Self::alive_word(states, self.meta.edge(pa.pod, pa.edge), word);
        if pa.pod == pb.pod && pa.edge == pb.edge {
            return both & ea;
        }
        let eb = Self::alive_word(states, self.meta.edge(pb.pod, pb.edge), word);
        if pa.pod == pb.pod {
            self.pod_words_of(states, pa.pod);
            return both & ea & eb & self.pod_agg_any_w[pa.pod as usize];
        }
        self.pod_words_of(states, pa.pod);
        self.pod_words_of(states, pb.pod);
        let half = self.meta.half as usize;
        let (ia, ib) = (pa.pod as usize * half, pb.pod as usize * half);
        let mut cross = 0u64;
        for g in 0..half {
            cross |= self.agg_w[ia + g] & self.agg_w[ib + g] & self.core_any_w[g];
        }
        both & ea & eb & cross
    }

    /// Digests the switch tiers once per 256 rounds — the wide analogue of
    /// [`Router::begin_word`].
    fn begin_wide(&mut self, states: &BitMatrix, wide: usize) {
        self.wide = wide;
        self.wwepoch = self.wwepoch.wrapping_add(1).max(1);
        let half = self.meta.half;
        for g in 0..half {
            let mut any = WideWord::ZERO;
            for j in 0..half {
                any |= Self::alive_wide(states, self.meta.core(g, j), wide);
                if any.is_ones() {
                    break; // every lane already covered
                }
            }
            self.core_any_ww[g as usize] = any;
            self.border_ok_ww[g as usize] =
                any & Self::alive_wide(states, self.meta.border(g), wide);
        }
    }

    fn wide_native(&self) -> bool {
        true
    }

    fn external_reach_wide(
        &mut self,
        states: &BitMatrix,
        host: ComponentId,
        wide: usize,
    ) -> WideWord {
        debug_assert!(self.meta.is_host(host), "external_reach_wide takes a host id");
        debug_assert_eq!(wide, self.wide, "begin_wide installs the wide context");
        let pos = self.meta.host_position(host);
        self.pod_wides_of(states, pos.pod);
        Self::alive_wide(states, host, wide)
            & Self::alive_wide(states, self.meta.edge(pos.pod, pos.edge), wide)
            & self.pod_ext_ww[pos.pod as usize]
    }

    fn connects_wide(
        &mut self,
        states: &BitMatrix,
        a: ComponentId,
        b: ComponentId,
        wide: usize,
    ) -> WideWord {
        debug_assert!(self.meta.is_host(a) && self.meta.is_host(b), "connects_wide takes host ids");
        debug_assert_eq!(wide, self.wide, "begin_wide installs the wide context");
        let both = Self::alive_wide(states, a, wide) & Self::alive_wide(states, b, wide);
        if a == b {
            return both;
        }
        let pa = self.meta.host_position(a);
        let pb = self.meta.host_position(b);
        let ea = Self::alive_wide(states, self.meta.edge(pa.pod, pa.edge), wide);
        if pa.pod == pb.pod && pa.edge == pb.edge {
            return both & ea;
        }
        let eb = Self::alive_wide(states, self.meta.edge(pb.pod, pb.edge), wide);
        if pa.pod == pb.pod {
            self.pod_wides_of(states, pa.pod);
            return both & ea & eb & self.pod_agg_any_ww[pa.pod as usize];
        }
        self.pod_wides_of(states, pa.pod);
        self.pod_wides_of(states, pb.pod);
        let half = self.meta.half as usize;
        let (ia, ib) = (pa.pod as usize * half, pb.pod as usize * half);
        let mut cross = WideWord::ZERO;
        for g in 0..half {
            cross |= self.agg_ww[ia + g] & self.agg_ww[ib + g] & self.core_any_ww[g];
        }
        both & ea & eb & cross
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recloud_topology::FatTreeParams;

    fn setup(k: u32) -> (Topology, FatTreeMeta, BitMatrix) {
        let t = FatTreeParams::new(k).build();
        let m = *t.fat_tree().unwrap();
        let states = BitMatrix::new(t.num_components(), 1);
        (t, m, states)
    }

    #[test]
    fn all_alive_everything_reachable() {
        let (t, _, states) = setup(4);
        let mut r = FatTreeRouter::new(&t);
        r.begin_round(&states, 0);
        for &h in t.hosts() {
            assert!(r.external_reaches(&states, h));
        }
        let h = t.hosts();
        assert!(r.connects(&states, h[0], h[h.len() - 1]));
    }

    #[test]
    fn dead_edge_switch_cuts_its_rack_only() {
        let (t, m, mut states) = setup(4);
        states.set(m.edge(0, 0).index(), 0);
        let mut r = FatTreeRouter::new(&t);
        r.begin_round(&states, 0);
        for &h in t.hosts() {
            let pos = m.host_position(h);
            let expect = !(pos.pod == 0 && pos.edge == 0);
            assert_eq!(r.external_reaches(&states, h), expect, "{h}");
        }
    }

    #[test]
    fn pod_loses_external_when_all_its_aggs_die() {
        let (t, m, mut states) = setup(4);
        for g in 0..m.half {
            states.set(m.agg(1, g).index(), 0);
        }
        let mut r = FatTreeRouter::new(&t);
        r.begin_round(&states, 0);
        for &h in t.hosts() {
            let pos = m.host_position(h);
            assert_eq!(r.external_reaches(&states, h), pos.pod != 1, "{h}");
        }
        // And pod 1 hosts cannot reach other pods...
        let in_pod1 = m.host(1, 0, 0);
        let in_pod0 = m.host(0, 0, 0);
        assert!(!r.connects(&states, in_pod1, in_pod0));
        // ...but still talk within the pod? No: same-pod needs an agg too,
        // except under the same edge switch.
        let same_edge = m.host(1, 0, 1);
        assert!(r.connects(&states, in_pod1, same_edge));
        let other_edge = m.host(1, 1, 0);
        assert!(!r.connects(&states, in_pod1, other_edge));
    }

    #[test]
    fn all_borders_down_cuts_external_but_not_east_west() {
        let (t, m, mut states) = setup(4);
        for g in 0..m.half {
            states.set(m.border(g).index(), 0);
        }
        let mut r = FatTreeRouter::new(&t);
        r.begin_round(&states, 0);
        for &h in t.hosts() {
            assert!(!r.external_reaches(&states, h));
        }
        // Cross-pod traffic still flows through the cores.
        assert!(r.connects(&states, m.host(0, 0, 0), m.host(2, 1, 1)));
    }

    #[test]
    fn whole_core_group_must_die_to_matter() {
        let (t, m, mut states) = setup(4);
        // Kill one core of group 0: nothing changes (other member covers).
        states.set(m.core(0, 0).index(), 0);
        let mut r = FatTreeRouter::new(&t);
        r.begin_round(&states, 0);
        assert!(r.external_reaches(&states, m.host(0, 0, 0)));
        // Kill the whole group 0 *and* group 1's border: external dies
        // (group 0 has no cores; group 1 has no border).
        states.set(m.core(0, 1).index(), 0);
        states.set(m.border(1).index(), 0);
        r.begin_round(&states, 0);
        for &h in t.hosts() {
            assert!(!r.external_reaches(&states, h), "{h}");
        }
        // Cross-pod east-west still works through group 1 cores.
        assert!(r.connects(&states, m.host(0, 0, 0), m.host(1, 0, 0)));
    }

    #[test]
    fn cross_pod_needs_shared_alive_group() {
        let (t, m, mut states) = setup(4);
        // Pod 0 keeps only agg group 0; pod 1 keeps only agg group 1.
        states.set(m.agg(0, 1).index(), 0);
        states.set(m.agg(1, 0).index(), 0);
        let mut r = FatTreeRouter::new(&t);
        r.begin_round(&states, 0);
        // No shared group -> no cross-pod path (valley-free).
        assert!(!r.connects(&states, m.host(0, 0, 0), m.host(1, 0, 0)));
        // Both can still reach external through their own group.
        assert!(r.external_reaches(&states, m.host(0, 0, 0)));
        assert!(r.external_reaches(&states, m.host(1, 0, 0)));
        // And pod 0 <-> pod 2 still fine via group 0.
        assert!(r.connects(&states, m.host(0, 0, 0), m.host(2, 0, 0)));
    }

    #[test]
    fn larger_k_smoke() {
        let (t, _, states) = setup(8);
        let mut r = FatTreeRouter::new(&t);
        r.begin_round(&states, 0);
        for &h in t.hosts() {
            assert!(r.external_reaches(&states, h));
        }
    }

    /// Word lanes are independent: failures staged in different rounds of
    /// one word must each only affect their own bit.
    #[test]
    fn word_lanes_are_independent() {
        let (t, m, _) = setup(4);
        let mut states = BitMatrix::new(t.num_components(), 70);
        // Round 0: kill host's edge. Round 1: kill all of pod 0's aggs.
        // Round 5: kill group 0 cores + group 1 border. Round 64: kill the
        // host itself (exercises the second word).
        states.set(m.edge(0, 0).index(), 0);
        for g in 0..m.half {
            states.set(m.agg(0, g).index(), 1);
        }
        for j in 0..m.half {
            states.set(m.core(0, j).index(), 5);
        }
        states.set(m.border(1).index(), 5);
        let h = m.host(0, 0, 0);
        states.set(h.index(), 64);

        let mut r = FatTreeRouter::new(&t);
        r.begin_word(&states, 0);
        let reach = r.external_reach_word(&states, h, 0) & states.word_mask(0);
        assert_eq!(reach & 0b100011, 0, "rounds 0, 1, 5 must fail");
        assert_eq!(reach | 0b100011, !0, "all other rounds must succeed");
        r.begin_word(&states, 1);
        let reach1 = r.external_reach_word(&states, h, 1) & states.word_mask(1);
        assert_eq!(reach1, states.word_mask(1) & !1, "round 64 must fail");

        // Cross-pod connectivity: round 5's dead core group 0 still leaves
        // group 1 cores for east-west, so only rounds 0 and 1 cut it.
        r.begin_word(&states, 0);
        let conn = r.connects_word(&states, h, m.host(1, 0, 0), 0) & states.word_mask(0);
        assert_eq!(conn & 0b11, 0);
        assert_eq!(conn | 0b11, !0);
    }

    /// Wide lanes are independent across the full 256-lane span and across
    /// wide-word boundaries — the 256-lane mirror of
    /// `word_lanes_are_independent`.
    #[test]
    fn wide_lanes_are_independent() {
        let (t, m, _) = setup(4);
        let mut states = BitMatrix::new(t.num_components(), 300);
        // Failures staged one per lane region: round 0 (word 0), round 65
        // (word 1), round 130 (word 2), round 200 (word 3), round 256
        // (second wide word).
        states.set(m.edge(0, 0).index(), 0);
        for g in 0..m.half {
            states.set(m.agg(0, g).index(), 65);
        }
        for j in 0..m.half {
            states.set(m.core(0, j).index(), 130);
        }
        states.set(m.border(1).index(), 130);
        let h = m.host(0, 0, 0);
        states.set(h.index(), 200);
        states.set(h.index(), 256);

        let mut r = FatTreeRouter::new(&t);
        r.begin_wide(&states, 0);
        let reach = r.external_reach_wide(&states, h, 0) & states.wide_mask(0);
        let mut expect = WideWord::ONES;
        for lane in [0usize, 65, 130, 200] {
            expect.set_word(lane / 64, expect.word(lane / 64) & !(1u64 << (lane % 64)));
        }
        assert_eq!(reach, expect & states.wide_mask(0));
        r.begin_wide(&states, 1);
        let reach1 = r.external_reach_wide(&states, h, 1) & states.wide_mask(1);
        let mut expect1 = states.wide_mask(1);
        expect1.set_word(0, expect1.word(0) & !1); // round 256 = lane 0
        assert_eq!(reach1, expect1);

        // Cross-pod connectivity: round 130's dead core group 0 still
        // leaves group 1 cores for east-west, so only rounds 0, 65, 200 cut
        // it in the first wide word.
        r.begin_wide(&states, 0);
        let conn = r.connects_wide(&states, h, m.host(1, 0, 0), 0) & states.wide_mask(0);
        let mut cexpect = WideWord::ONES;
        for lane in [0usize, 65, 200] {
            cexpect.set_word(lane / 64, cexpect.word(lane / 64) & !(1u64 << (lane % 64)));
        }
        assert_eq!(conn, cexpect & states.wide_mask(0));
    }

    /// The native wide path must equal the four word queries it replaces.
    #[test]
    fn wide_equals_stacked_words() {
        let (t, m, _) = setup(4);
        let rounds = 257;
        let mut states = BitMatrix::new(t.num_components(), rounds);
        let mut rng = recloud_sampling::Rng::new(42);
        for c in 0..states.components() {
            for r in 0..rounds {
                if rng.next_below(12) == 0 {
                    states.set(c, r);
                }
            }
        }
        let mut r = FatTreeRouter::new(&t);
        let hosts = [m.host(0, 0, 0), m.host(0, 0, 1), m.host(1, 1, 0), m.host(2, 0, 1)];
        for ww in 0..states.wide_words_per_row() {
            r.begin_wide(&states, ww);
            let mask = states.wide_mask(ww);
            let reach: Vec<WideWord> =
                hosts.iter().map(|&h| r.external_reach_wide(&states, h, ww) & mask).collect();
            let conn: Vec<WideWord> =
                hosts.iter().map(|&h| r.connects_wide(&states, hosts[0], h, ww) & mask).collect();
            for i in 0..WideWord::WORDS {
                let w = ww * WideWord::WORDS + i;
                r.begin_word(&states, w);
                for (j, &h) in hosts.iter().enumerate() {
                    let rw = r.external_reach_word(&states, h, w) & states.word_mask(w);
                    assert_eq!(reach[j].word(i), rw, "reach ww={ww} sub={i} host={h}");
                    let cw = r.connects_word(&states, hosts[0], h, w) & states.word_mask(w);
                    assert_eq!(conn[j].word(i), cw, "conn ww={ww} sub={i} host={h}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "requires a fat-tree")]
    fn rejects_non_fat_tree() {
        let t = recloud_topology::LeafSpineParams::new(2, 2, 2).build();
        FatTreeRouter::new(&t);
    }
}
