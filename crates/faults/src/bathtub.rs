//! Bathtub-curve lifetime model (§3.2.2).
//!
//! "The failure probability of a component may vary during its lifetime,
//! normally following a 'bathtub curve' with more failures at the beginning
//! and the end of its lifecycle. reCloud can adjust p quickly to handle
//! such varying failure probabilities whenever they are available."
//!
//! We model the classic three-phase curve: an *infant-mortality* phase with
//! a multiplicatively elevated failure probability decaying linearly to the
//! useful-life baseline, a flat *useful-life* phase, and a *wear-out* phase
//! rising linearly to a terminal multiplier. Age is expressed as a fraction
//! of the design lifetime in `[0, 1]` (ages past 1 are clamped to the
//! terminal multiplier).

/// Piecewise-linear bathtub hazard multiplier.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BathtubCurve {
    /// Multiplier at age 0 (e.g. 5.0 = brand-new parts fail 5× as often).
    pub infant_multiplier: f64,
    /// Age fraction at which infant mortality has decayed to 1.0.
    pub infant_end: f64,
    /// Age fraction at which wear-out starts rising above 1.0.
    pub wearout_start: f64,
    /// Multiplier at age 1 (end of design lifetime).
    pub wearout_multiplier: f64,
}

impl Default for BathtubCurve {
    /// A conventional disk-like curve: 4× infant mortality decaying over
    /// the first 10% of life, flat until 70%, rising to 6× at end of life
    /// (shape consistent with Schroeder & Gibson's FAST '07 measurements).
    fn default() -> Self {
        BathtubCurve {
            infant_multiplier: 4.0,
            infant_end: 0.1,
            wearout_start: 0.7,
            wearout_multiplier: 6.0,
        }
    }
}

impl BathtubCurve {
    /// Validates the curve's shape.
    ///
    /// # Panics
    /// Panics when phases are out of order or multipliers are below 1
    /// (a bathtub never dips under the useful-life baseline).
    pub fn validate(&self) {
        assert!(self.infant_multiplier >= 1.0, "infant multiplier must be >= 1");
        assert!(self.wearout_multiplier >= 1.0, "wearout multiplier must be >= 1");
        assert!(
            0.0 < self.infant_end
                && self.infant_end < self.wearout_start
                && self.wearout_start < 1.0,
            "phases must satisfy 0 < infant_end < wearout_start < 1"
        );
    }

    /// The hazard multiplier at the given age fraction (clamped to [0, 1]).
    pub fn multiplier(&self, age_fraction: f64) -> f64 {
        self.validate();
        let a = age_fraction.clamp(0.0, 1.0);
        if a < self.infant_end {
            // Linear decay from infant_multiplier to 1.0.
            let t = a / self.infant_end;
            self.infant_multiplier + t * (1.0 - self.infant_multiplier)
        } else if a <= self.wearout_start {
            1.0
        } else {
            let t = (a - self.wearout_start) / (1.0 - self.wearout_start);
            1.0 + t * (self.wearout_multiplier - 1.0)
        }
    }

    /// Adjusts a baseline failure probability for a component of the given
    /// age, capped at 1.
    pub fn adjust(&self, baseline_p: f64, age_fraction: f64) -> f64 {
        assert!((0.0..=1.0).contains(&baseline_p), "baseline probability out of range");
        (baseline_p * self.multiplier(age_fraction)).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_is_a_bathtub() {
        let c = BathtubCurve::default();
        assert_eq!(c.multiplier(0.0), 4.0);
        assert!((c.multiplier(0.05) - 2.5).abs() < 1e-12); // halfway through decay
        assert_eq!(c.multiplier(0.1), 1.0);
        assert_eq!(c.multiplier(0.5), 1.0);
        assert_eq!(c.multiplier(0.7), 1.0);
        assert!(c.multiplier(0.85) > 1.0);
        assert_eq!(c.multiplier(1.0), 6.0);
    }

    #[test]
    fn ages_are_clamped() {
        let c = BathtubCurve::default();
        assert_eq!(c.multiplier(-3.0), 4.0);
        assert_eq!(c.multiplier(7.0), 6.0);
    }

    #[test]
    fn adjust_caps_at_one() {
        let c = BathtubCurve::default();
        assert_eq!(c.adjust(0.5, 1.0), 1.0); // 0.5 * 6 capped
        assert!((c.adjust(0.01, 0.5) - 0.01).abs() < 1e-12);
        assert!((c.adjust(0.01, 0.0) - 0.04).abs() < 1e-12);
    }

    #[test]
    fn multiplier_is_continuous_at_phase_boundaries() {
        let c = BathtubCurve::default();
        let eps = 1e-9;
        assert!((c.multiplier(c.infant_end - eps) - c.multiplier(c.infant_end + eps)).abs() < 1e-6);
        assert!(
            (c.multiplier(c.wearout_start - eps) - c.multiplier(c.wearout_start + eps)).abs()
                < 1e-6
        );
    }

    #[test]
    #[should_panic(expected = "phases must satisfy")]
    fn bad_phase_order_rejected() {
        BathtubCurve {
            infant_multiplier: 2.0,
            infant_end: 0.8,
            wearout_start: 0.5,
            wearout_multiplier: 2.0,
        }
        .multiplier(0.5);
    }
}
