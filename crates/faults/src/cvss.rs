//! CVSS-based failure-probability estimation for software components.
//!
//! §2.1: "such software failure probability could be ... estimated using
//! the publicly-available CVSS scores similar to [38, 58, 81]". Those works
//! (attack-graph analyses) convert a CVSS base score in `[0, 10]` into a
//! per-exposure compromise probability; we follow the same convention used
//! by Zhai et al. [81] for service risk ranking: the score is treated as a
//! *rate driver* and converted into an annual failure probability through
//! an exponential-exposure model,
//!
//! `p = 1 − exp(−λ · score / 10)`
//!
//! where `λ` calibrates how often a maximum-severity flaw (score 10) is
//! actually triggered per year. The default λ = 0.0105 maps score 10 to
//! ≈ 1% annual failure probability — consistent with §4.1's N(0.01, 0.001)
//! setting for non-switch components, so CVSS-derived software
//! probabilities are directly comparable to measured hardware ones.

/// Default exposure rate: a CVSS-10 component fails ≈ 1%/year.
pub const DEFAULT_LAMBDA: f64 = 0.0105;

/// Converts a CVSS base score into an annual failure probability using the
/// default exposure rate.
///
/// # Panics
/// Panics if the score is outside `[0, 10]`.
pub fn cvss_to_annual_probability(score: f64) -> f64 {
    cvss_to_annual_probability_with(score, DEFAULT_LAMBDA)
}

/// Converts a CVSS base score with a custom exposure rate λ.
///
/// # Panics
/// Panics if the score is outside `[0, 10]` or λ is negative.
pub fn cvss_to_annual_probability_with(score: f64, lambda: f64) -> f64 {
    assert!((0.0..=10.0).contains(&score), "CVSS base score must be in [0, 10]");
    assert!(lambda >= 0.0, "exposure rate must be non-negative");
    1.0 - (-lambda * score / 10.0).exp()
}

/// Aggregates several CVEs affecting one software component: the component
/// fails if *any* vulnerability is triggered (independence assumption, as
/// in the cited attack-graph work).
pub fn combined_cvss_probability(scores: &[f64]) -> f64 {
    let survive: f64 = scores.iter().map(|&s| 1.0 - cvss_to_annual_probability(s)).product();
    1.0 - survive
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_score_means_no_failures() {
        assert_eq!(cvss_to_annual_probability(0.0), 0.0);
    }

    #[test]
    fn max_score_calibrates_to_one_percent() {
        let p = cvss_to_annual_probability(10.0);
        assert!((p - 0.0104).abs() < 0.0005, "p={p}");
    }

    #[test]
    fn monotone_in_score() {
        let mut prev = -1.0;
        for s in 0..=10 {
            let p = cvss_to_annual_probability(s as f64);
            assert!(p > prev);
            prev = p;
        }
    }

    #[test]
    fn combination_exceeds_max_single() {
        let single = cvss_to_annual_probability(7.5);
        let combined = combined_cvss_probability(&[7.5, 7.5, 5.0]);
        assert!(combined > single);
        assert!(combined < 1.0);
    }

    #[test]
    fn combination_of_none_is_zero() {
        assert_eq!(combined_cvss_probability(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 10]")]
    fn out_of_range_score_rejected() {
        cvss_to_annual_probability(11.0);
    }
}
