#![warn(missing_docs)]

//! # recloud-faults
//!
//! Fault-model substrate for the reCloud reproduction.
//!
//! The paper's fault model (§2.1) has three ingredients, all owned here:
//!
//! 1. **Per-component failure probabilities** — measured in reality as
//!    `downtime / window`, synthesized here from the paper's §4.1 setting
//!    (switches ~ N(0.008, 0.001), everything else ~ N(0.01, 0.001),
//!    rounded to 4 decimals) — [`probability`]. A bathtub-curve lifetime
//!    model covers the paper's note that probabilities vary over a
//!    component's life — [`bathtub`]; CVSS-derived estimates cover software
//!    components whose probability cannot be measured — [`cvss`].
//! 2. **Fault trees over shared dependencies** (§3.2.3, Fig 5): OR/AND/
//!    K-of-N gates over basic events; multiple hosts' trees connect by
//!    referencing the same basic events — [`tree`].
//! 3. **The assembled [`FaultModel`]** — probabilities + dependency trees +
//!    auxiliary (non-topology) components such as shared OS images; it
//!    collapses raw sampled states into *effective* per-node states
//!    word-parallel, 64 rounds at a time — [`model`].
//!
//! A FIFL-style fault injector for tests and what-if analyses lives in
//! [`injection`].

pub mod bathtub;
pub mod cvss;
pub mod injection;
pub mod model;
pub mod probability;
pub mod templates;
pub mod trace;
pub mod tree;

pub use bathtub::BathtubCurve;
pub use cvss::cvss_to_annual_probability;
pub use injection::FaultInjector;
pub use model::FaultModel;
pub use probability::ProbabilityConfig;
pub use templates::{Fig5Events, Fig5Probabilities, Fig5Template};
pub use trace::DowntimeLog;
pub use tree::{FaultTree, FaultTreeBuilder};
