//! Trace-driven fault modeling: from downtime logs to the fault model.
//!
//! §2.1 grounds the whole system in measurement: "cloud providers can
//! measure each infrastructure component's downtime within a time window,
//! and in turn, each component's failure probability
//! `p = downtime / windowLength`". This module is that ingestion path —
//! what a real deployment would feed from its monitoring system instead
//! of the synthetic §4.1 distributions:
//!
//! * [`DowntimeLog`] records per-component down intervals over an
//!   observation window (overlapping intervals are merged, boundary
//!   clamping applied);
//! * [`DowntimeLog::probabilities`] derives the per-component failure
//!   probability vector the samplers consume;
//! * [`DowntimeLog::replay_round`] answers "was this component down at
//!   time t", enabling *replay assessment*: instead of sampling synthetic
//!   states, draw uniformly random time points from the observed window
//!   and check the plan against the recorded reality — a bootstrap over
//!   history that needs no independence assumption at all.

use recloud_sampling::{BitMatrix, Rng};
use recloud_topology::ComponentId;
use std::collections::BTreeMap;

/// Recorded down intervals per component over one observation window.
#[derive(Clone, Debug, Default)]
pub struct DowntimeLog {
    /// Observation window length (hours).
    window: f64,
    /// Per component: sorted, disjoint (start, end) down intervals.
    intervals: BTreeMap<u32, Vec<(f64, f64)>>,
}

impl DowntimeLog {
    /// A log over the given window length (hours).
    ///
    /// # Panics
    /// Panics unless the window is positive.
    pub fn new(window_hours: f64) -> Self {
        assert!(window_hours > 0.0, "observation window must be positive");
        DowntimeLog { window: window_hours, intervals: BTreeMap::new() }
    }

    /// The observation window length.
    pub fn window_hours(&self) -> f64 {
        self.window
    }

    /// Records one down interval `[start, end)` for a component; clamped
    /// to the window, merged with overlapping intervals.
    ///
    /// # Panics
    /// Panics if `end <= start` or the interval starts past the window.
    pub fn record(&mut self, c: ComponentId, start: f64, end: f64) {
        assert!(end > start, "empty or inverted interval [{start}, {end})");
        assert!(start < self.window, "interval starts beyond the window");
        let start = start.max(0.0);
        let end = end.min(self.window);
        let v = self.intervals.entry(c.0).or_default();
        v.push((start, end));
        // Normalize: sort + merge overlaps.
        v.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));
        let mut merged: Vec<(f64, f64)> = Vec::with_capacity(v.len());
        for &(s, e) in v.iter() {
            match merged.last_mut() {
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => merged.push((s, e)),
            }
        }
        *v = merged;
    }

    /// Total recorded downtime for a component.
    pub fn downtime_of(&self, c: ComponentId) -> f64 {
        self.intervals.get(&c.0).map(|v| v.iter().map(|(s, e)| e - s).sum()).unwrap_or(0.0)
    }

    /// True if the component was down at time `t`.
    pub fn down_at(&self, c: ComponentId, t: f64) -> bool {
        self.intervals.get(&c.0).is_some_and(|v| v.iter().any(|&(s, e)| t >= s && t < e))
    }

    /// The §2.1 probability vector: `p_i = downtime_i / window` for every
    /// component id in `0..n`.
    pub fn probabilities(&self, n: usize) -> Vec<f64> {
        (0..n).map(|i| self.downtime_of(ComponentId::from_index(i)) / self.window).collect()
    }

    /// Fills a state matrix by *replaying* the log: each round is a
    /// uniformly random time point in the window, and a component is
    /// failed in the round iff it was recorded down at that instant.
    /// Correlations present in history (simultaneous outages) are
    /// preserved exactly — no independence assumption.
    pub fn replay_into(&self, rng: &mut Rng, matrix: &mut BitMatrix) {
        matrix.clear();
        for round in 0..matrix.rounds() {
            let t = rng.next_f64() * self.window;
            for (&c, v) in &self.intervals {
                if v.iter().any(|&(s, e)| t >= s && t < e) {
                    matrix.set(c as usize, round);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u32) -> ComponentId {
        ComponentId(i)
    }

    #[test]
    fn downtime_accumulates_and_merges() {
        let mut log = DowntimeLog::new(100.0);
        log.record(c(1), 10.0, 20.0);
        log.record(c(1), 15.0, 25.0); // overlaps
        log.record(c(1), 50.0, 51.0);
        assert!((log.downtime_of(c(1)) - 16.0).abs() < 1e-12);
        assert_eq!(log.downtime_of(c(2)), 0.0);
    }

    #[test]
    fn probabilities_follow_eq_p_downtime_over_window() {
        let mut log = DowntimeLog::new(1_000.0);
        log.record(c(0), 0.0, 10.0); // p = 0.01
        log.record(c(2), 100.0, 150.0); // p = 0.05
        let ps = log.probabilities(3);
        assert!((ps[0] - 0.01).abs() < 1e-12);
        assert_eq!(ps[1], 0.0);
        assert!((ps[2] - 0.05).abs() < 1e-12);
    }

    #[test]
    fn down_at_boundaries() {
        let mut log = DowntimeLog::new(100.0);
        log.record(c(0), 10.0, 20.0);
        assert!(!log.down_at(c(0), 9.999));
        assert!(log.down_at(c(0), 10.0));
        assert!(log.down_at(c(0), 19.999));
        assert!(!log.down_at(c(0), 20.0));
    }

    #[test]
    fn intervals_clamped_to_window() {
        let mut log = DowntimeLog::new(100.0);
        log.record(c(0), 90.0, 250.0);
        assert!((log.downtime_of(c(0)) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn replay_preserves_marginals() {
        let mut log = DowntimeLog::new(1_000.0);
        log.record(c(0), 0.0, 100.0); // p = 0.1
        log.record(c(1), 500.0, 600.0); // p = 0.1
        let mut rng = Rng::new(5);
        let mut m = BitMatrix::new(2, 100_000);
        log.replay_into(&mut rng, &mut m);
        for i in 0..2 {
            let frac = m.row(i).count_ones() as f64 / 100_000.0;
            assert!((frac - 0.1).abs() < 0.01, "component {i}: {frac}");
        }
    }

    #[test]
    fn replay_preserves_observed_correlations() {
        // Two components down during the SAME hours: replay must produce
        // perfectly correlated states, which independent sampling never
        // would.
        let mut log = DowntimeLog::new(1_000.0);
        log.record(c(0), 200.0, 300.0);
        log.record(c(1), 200.0, 300.0);
        let mut rng = Rng::new(9);
        let mut m = BitMatrix::new(2, 50_000);
        log.replay_into(&mut rng, &mut m);
        for round in 0..50_000 {
            assert_eq!(m.get(0, round), m.get(1, round), "round {round}");
        }
    }

    #[test]
    fn replay_preserves_anti_correlations() {
        let mut log = DowntimeLog::new(1_000.0);
        log.record(c(0), 0.0, 500.0);
        log.record(c(1), 500.0, 1_000.0);
        let mut rng = Rng::new(9);
        let mut m = BitMatrix::new(2, 20_000);
        log.replay_into(&mut rng, &mut m);
        for round in 0..20_000 {
            assert_ne!(m.get(0, round), m.get(1, round), "round {round}");
        }
    }

    #[test]
    #[should_panic(expected = "inverted interval")]
    fn inverted_interval_rejected() {
        DowntimeLog::new(10.0).record(c(0), 5.0, 5.0);
    }

    #[test]
    #[should_panic(expected = "beyond the window")]
    fn interval_past_window_rejected() {
        DowntimeLog::new(10.0).record(c(0), 11.0, 12.0);
    }
}
