//! FIFL-style fault injection (§2.1 cites fault injection as one way to
//! obtain software failure behaviour; we also use it for deterministic
//! what-if analyses and tests).
//!
//! An injector post-processes a sampled state matrix: chosen components are
//! forced failed (in all rounds or a round range) or forced alive. Applied
//! *before* fault-tree collapsing, so forcing a power supply down exercises
//! the full correlated-failure path — e.g. "what happens to this deployment
//! plan if power supply 3 browns out?"

use recloud_sampling::BitMatrix;
use recloud_topology::ComponentId;
use std::ops::Range;

#[derive(Clone, Debug, PartialEq, Eq)]
enum Injection {
    FailAll(ComponentId),
    FailRange(ComponentId, Range<usize>),
    ReviveAll(ComponentId),
}

/// A reusable list of forced component states.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultInjector {
    injections: Vec<Injection>,
}

impl FaultInjector {
    /// No injections.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forces a component failed in every round.
    pub fn fail(&mut self, c: ComponentId) -> &mut Self {
        self.injections.push(Injection::FailAll(c));
        self
    }

    /// Forces a component failed in a round range (half-open).
    pub fn fail_rounds(&mut self, c: ComponentId, rounds: Range<usize>) -> &mut Self {
        self.injections.push(Injection::FailRange(c, rounds));
        self
    }

    /// Forces a component alive in every round (masking sampled failures).
    pub fn revive(&mut self, c: ComponentId) -> &mut Self {
        self.injections.push(Injection::ReviveAll(c));
        self
    }

    /// Number of registered injections.
    pub fn len(&self) -> usize {
        self.injections.len()
    }

    /// True if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.injections.is_empty()
    }

    /// Applies all injections to a raw sampled matrix, in registration
    /// order (later injections win on conflict).
    pub fn apply(&self, matrix: &mut BitMatrix) {
        for inj in &self.injections {
            match inj {
                Injection::FailAll(c) => {
                    for w in 0..matrix.words_per_row() {
                        matrix.set_word(c.index(), w, u64::MAX);
                    }
                }
                Injection::FailRange(c, range) => {
                    for r in range.clone() {
                        if r < matrix.rounds() {
                            matrix.set(c.index(), r);
                        }
                    }
                }
                Injection::ReviveAll(c) => {
                    for w in 0..matrix.words_per_row() {
                        matrix.set_word(c.index(), w, 0);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fail_all_sets_every_round() {
        let mut m = BitMatrix::new(2, 130);
        let mut inj = FaultInjector::new();
        inj.fail(ComponentId(1));
        inj.apply(&mut m);
        assert_eq!(m.row(1).count_ones(), 130);
        assert_eq!(m.row(0).count_ones(), 0);
    }

    #[test]
    fn fail_range_is_half_open_and_clamped() {
        let mut m = BitMatrix::new(1, 10);
        let mut inj = FaultInjector::new();
        inj.fail_rounds(ComponentId(0), 3..7);
        inj.fail_rounds(ComponentId(0), 9..25);
        inj.apply(&mut m);
        let failed: Vec<usize> = (0..10).filter(|&r| m.get(0, r)).collect();
        assert_eq!(failed, vec![3, 4, 5, 6, 9]);
    }

    #[test]
    fn revive_masks_previous_failures() {
        let mut m = BitMatrix::new(1, 64);
        m.set(0, 5);
        m.set(0, 50);
        let mut inj = FaultInjector::new();
        inj.revive(ComponentId(0));
        inj.apply(&mut m);
        assert_eq!(m.total_failures(), 0);
    }

    #[test]
    fn later_injection_wins() {
        let mut m = BitMatrix::new(1, 16);
        let mut inj = FaultInjector::new();
        inj.fail(ComponentId(0)).revive(ComponentId(0));
        inj.apply(&mut m);
        assert_eq!(m.total_failures(), 0);

        let mut m2 = BitMatrix::new(1, 16);
        let mut inj2 = FaultInjector::new();
        inj2.revive(ComponentId(0)).fail(ComponentId(0));
        inj2.apply(&mut m2);
        assert_eq!(m2.total_failures(), 16);
    }

    #[test]
    fn word_writes_respect_round_boundary() {
        // 70 rounds: the last word has 6 valid bits; fail-all must not
        // corrupt counts past the boundary.
        let mut m = BitMatrix::new(1, 70);
        let mut inj = FaultInjector::new();
        inj.fail(ComponentId(0));
        inj.apply(&mut m);
        assert_eq!(m.total_failures(), 70);
    }
}
