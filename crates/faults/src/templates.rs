//! Reusable dependency templates — the Fig 5 shape, automated.
//!
//! Fig 5's example host has *redundant* power supplies and *redundant*
//! rack cooling: the host only fails when **both** supplies (AND gate) or
//! both cooling units (AND gate) fail, while any software failure (OR
//! gate) is fatal. [`Fig5Template`] stamps that structure onto every host
//! of a topology, creating the auxiliary backup-supply and cooling events
//! and sharing them at the right granularity:
//!
//! * the *primary* supply is the topology's round-robin assignment (§4.1);
//! * one *backup* supply is shared per data center (the typical UPS bank);
//! * two cooling units are shared per rack (edge-switch host group);
//! * one OS image is shared per pod, one library fleet-wide.
//!
//! The result exercises every gate type through the normal assessment
//! path and gives examples/tests a realistic correlated-failure zoo.

use crate::model::FaultModel;
use crate::tree::FaultTreeBuilder;
use recloud_topology::{ComponentId, ComponentKind, SoftwareKind, Topology};
use std::collections::HashMap;

/// Probabilities for the auxiliary events a [`Fig5Template`] creates.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Fig5Probabilities {
    /// Backup power supply (UPS bank).
    pub backup_power: f64,
    /// Each rack cooling unit.
    pub cooling_unit: f64,
    /// Per-pod OS image.
    pub os_image: f64,
    /// Fleet-wide shared library.
    pub library: f64,
}

impl Default for Fig5Probabilities {
    /// Values in the §4.1 regime (≈1%/yr hardware, softer software).
    fn default() -> Self {
        Fig5Probabilities {
            backup_power: 0.01,
            cooling_unit: 0.01,
            os_image: 0.005,
            library: 0.002,
        }
    }
}

/// Ids of the auxiliary events one application of the template created.
#[derive(Clone, Debug)]
pub struct Fig5Events {
    /// The shared backup power supply.
    pub backup_power: ComponentId,
    /// Cooling unit pair per rack, keyed by the rack (edge switch) id.
    pub cooling: HashMap<ComponentId, (ComponentId, ComponentId)>,
    /// OS image per pod index.
    pub os_images: HashMap<u32, ComponentId>,
    /// The fleet-wide library.
    pub library: ComponentId,
}

/// Stamps the Fig 5 dependency structure onto every host of a topology.
#[derive(Clone, Copy, Debug, Default)]
pub struct Fig5Template {
    /// Event probabilities.
    pub probs: Fig5Probabilities,
}

impl Fig5Template {
    /// Applies the template: replaces each host's dependency tree with
    ///
    /// ```text
    /// host fails = (os OR library)                 -- software, OR-fatal
    ///            OR (primary power AND backup)     -- redundant power
    ///            OR (cooling1 AND cooling2)        -- redundant cooling
    /// ```
    ///
    /// The primary power is the host's existing §4.1 supply. Returns the
    /// created event ids.
    ///
    /// # Panics
    /// Panics if a host has no power supply assigned (templates build on
    /// top of the generators' round-robin assignment).
    pub fn apply(&self, topology: &Topology, model: &mut FaultModel) -> Fig5Events {
        let backup_power = model.add_auxiliary(
            ComponentKind::PowerSupply,
            "backup-power",
            self.probs.backup_power,
        );
        let library = model.add_auxiliary(
            ComponentKind::Software(SoftwareKind::Library),
            "fleet-library",
            self.probs.library,
        );
        let mut cooling: HashMap<ComponentId, (ComponentId, ComponentId)> = HashMap::new();
        let mut os_images: HashMap<u32, ComponentId> = HashMap::new();

        for &host in topology.hosts() {
            let primary = topology
                .power_of(host)
                .expect("Fig5 template requires the generator's power assignment");
            let rack = topology.rack_of(host);
            let (c1, c2) = *cooling.entry(rack).or_insert_with(|| {
                let a = model.add_auxiliary(
                    ComponentKind::CoolingUnit,
                    &format!("cooling-{rack}-a"),
                    self.probs.cooling_unit,
                );
                let b = model.add_auxiliary(
                    ComponentKind::CoolingUnit,
                    &format!("cooling-{rack}-b"),
                    self.probs.cooling_unit,
                );
                (a, b)
            });
            let pod = topology.pod_of(host);
            let os = *os_images.entry(pod).or_insert_with(|| {
                model.add_auxiliary(
                    ComponentKind::Software(SoftwareKind::Os),
                    &format!("os-pod-{pod}"),
                    self.probs.os_image,
                )
            });

            let mut b = FaultTreeBuilder::new();
            let os_leaf = b.basic(os);
            let lib_leaf = b.basic(library);
            let software = b.or(vec![os_leaf, lib_leaf]);
            let prim = b.basic(primary);
            let back = b.basic(backup_power);
            let power = b.and(vec![prim, back]);
            let cool1 = b.basic(c1);
            let cool2 = b.basic(c2);
            let cool = b.and(vec![cool1, cool2]);
            let root = b.or(vec![software, power, cool]);
            // Replace (not OR-attach): the template subsumes the plain
            // primary-power tree with its redundant version.
            model.set_tree(host, b.build(root));
        }
        Fig5Events { backup_power, cooling, os_images, library }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probability::ProbabilityConfig;
    use recloud_sampling::BitMatrix;
    use recloud_topology::FatTreeParams;

    fn setup() -> (Topology, FaultModel, Fig5Events) {
        let t = FatTreeParams::new(4).build();
        let mut m = FaultModel::new(&t, &ProbabilityConfig::PaperDefault, 1);
        let ev = Fig5Template::default().apply(&t, &mut m);
        (t, m, ev)
    }

    #[test]
    fn creates_the_right_event_population() {
        let (t, m, ev) = setup();
        // 1 backup + 1 library + 2 per rack + 1 OS per pod.
        let racks = t.count_kind(ComponentKind::EdgeSwitch);
        let pods = 3; // k=4 -> 3 host pods
        assert_eq!(m.aux_components().len(), 2 + 2 * racks + pods);
        assert_eq!(ev.cooling.len(), racks);
        assert_eq!(ev.os_images.len(), pods);
    }

    #[test]
    fn redundant_power_needs_both_supplies_down() {
        let (t, m, ev) = setup();
        let host = t.hosts()[0];
        let primary = t.power_of(host).unwrap();
        let mut raw = BitMatrix::new(m.num_events(), 3);
        // Round 0: only primary down -> host survives (backup carries).
        raw.set(primary.index(), 0);
        // Round 1: only backup down -> host survives.
        raw.set(ev.backup_power.index(), 1);
        // Round 2: both down -> host fails.
        raw.set(primary.index(), 2);
        raw.set(ev.backup_power.index(), 2);
        assert!(!m.effective_failed(&raw, host, 0));
        assert!(!m.effective_failed(&raw, host, 1));
        assert!(m.effective_failed(&raw, host, 2));
    }

    #[test]
    fn redundant_cooling_is_per_rack() {
        let (t, m, ev) = setup();
        let meta = t.fat_tree().unwrap();
        let h_in = meta.host(0, 0, 0);
        let h_same_rack = meta.host(0, 0, 1);
        let h_other_rack = meta.host(0, 1, 0);
        let rack = t.rack_of(h_in);
        let (c1, c2) = ev.cooling[&rack];
        let mut raw = BitMatrix::new(m.num_events(), 1);
        raw.set(c1.index(), 0);
        raw.set(c2.index(), 0);
        assert!(m.effective_failed(&raw, h_in, 0));
        assert!(m.effective_failed(&raw, h_same_rack, 0));
        assert!(!m.effective_failed(&raw, h_other_rack, 0));
    }

    #[test]
    fn os_image_is_per_pod_and_fatal_alone() {
        let (t, m, ev) = setup();
        let meta = t.fat_tree().unwrap();
        let os0 = ev.os_images[&0];
        let mut raw = BitMatrix::new(m.num_events(), 1);
        raw.set(os0.index(), 0);
        assert!(m.effective_failed(&raw, meta.host(0, 0, 0), 0));
        assert!(m.effective_failed(&raw, meta.host(0, 1, 1), 0));
        assert!(!m.effective_failed(&raw, meta.host(1, 0, 0), 0));
    }

    #[test]
    fn library_failure_is_fleet_wide() {
        let (t, m, ev) = setup();
        let mut raw = BitMatrix::new(m.num_events(), 1);
        raw.set(ev.library.index(), 0);
        for &h in t.hosts() {
            assert!(m.effective_failed(&raw, h, 0), "{h}");
        }
        // Switches are untouched by the host template.
        let meta = t.fat_tree().unwrap();
        assert!(!m.effective_failed(&raw, meta.edge(0, 0), 0));
    }

    #[test]
    fn template_lowers_single_supply_blast_radius() {
        // With the template, a single primary-supply failure no longer
        // kills any host (backup covers) — compare against the plain
        // §4.1 model.
        let t = FatTreeParams::new(4).build();
        let plain = FaultModel::paper_default(&t, 1);
        let (t2, templated, _ev) = setup();
        let host = t.hosts()[0];
        let supply = t.power_of(host).unwrap();
        let mut raw_plain = BitMatrix::new(plain.num_events(), 1);
        raw_plain.set(supply.index(), 0);
        assert!(plain.effective_failed(&raw_plain, host, 0));
        let mut raw_templated = BitMatrix::new(templated.num_events(), 1);
        raw_templated.set(t2.power_of(host).unwrap().index(), 0);
        assert!(!templated.effective_failed(&raw_templated, host, 0));
    }
}
