//! The assembled fault model: probabilities + dependency fault trees +
//! auxiliary dependency components.
//!
//! [`FaultModel`] is what the assessment pipeline consumes. It owns:
//!
//! * the failure-probability vector over all *sampled events* — every
//!   topology component plus any auxiliary components (e.g. a shared OS
//!   image that is not part of the physical topology);
//! * an optional fault tree per topology component, describing when that
//!   component fails *because of its dependencies* (§3.2.3). A component's
//!   effective state in a round is `own sampled state OR tree(deps)`.
//!
//! Collapsing raw sampled states into effective states is word-parallel
//! (64 rounds per operation) and is one of the two hot loops of
//! assessment; see [`FaultModel::collapse_into`].

use crate::probability::ProbabilityConfig;
use crate::tree::FaultTree;
use recloud_sampling::BitMatrix;
use recloud_topology::{ComponentId, ComponentKind, SoftwareKind, Topology};

/// An auxiliary sampled event that is not a topology component (shared OS
/// image, library version, room-level cooling, …).
#[derive(Clone, Debug, PartialEq)]
pub struct AuxComponent {
    /// Its id in the extended event space (≥ `Topology::num_components`).
    pub id: ComponentId,
    /// What it models.
    pub kind: ComponentKind,
    /// Free-form label for reports.
    pub label: String,
}

/// Probabilities and dependency structure for one topology.
#[derive(Clone, Debug)]
pub struct FaultModel {
    topo_components: usize,
    probs: Vec<f64>,
    aux: Vec<AuxComponent>,
    trees: Vec<Option<FaultTree>>,
}

impl FaultModel {
    /// Builds a model with the given probability assignment and **no**
    /// dependency trees (hosts and switches fail only by themselves).
    pub fn new(topology: &Topology, config: &ProbabilityConfig, seed: u64) -> Self {
        let probs = config.assign(topology, seed);
        FaultModel {
            topo_components: topology.num_components(),
            probs,
            aux: Vec::new(),
            trees: vec![None; topology.num_components()],
        }
    }

    /// The paper's §4.1 evaluation model: paper-default probabilities plus
    /// power-supply dependency trees for every switch and host.
    pub fn paper_default(topology: &Topology, seed: u64) -> Self {
        let mut m = FaultModel::new(topology, &ProbabilityConfig::PaperDefault, seed);
        m.attach_power_dependencies(topology);
        m
    }

    /// Total number of sampled events (topology components + auxiliaries).
    pub fn num_events(&self) -> usize {
        self.probs.len()
    }

    /// Number of topology components (= rows of a collapsed matrix).
    pub fn num_topology_components(&self) -> usize {
        self.topo_components
    }

    /// The probability vector over all events, indexable by raw id.
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// One event's probability.
    pub fn prob_of(&self, id: ComponentId) -> f64 {
        self.probs[id.index()]
    }

    /// Overrides one event's probability (e.g. a bathtub-curve update or a
    /// near-real-time monitoring feed; §3.2.2 notes reCloud "can adjust p
    /// quickly").
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1]`.
    pub fn set_prob(&mut self, id: ComponentId, p: f64) {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        self.probs[id.index()] = p;
    }

    /// Registered auxiliary components.
    pub fn aux_components(&self) -> &[AuxComponent] {
        &self.aux
    }

    /// Adds an auxiliary sampled event and returns its id.
    pub fn add_auxiliary(&mut self, kind: ComponentKind, label: &str, p: f64) -> ComponentId {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        let id = ComponentId::from_index(self.probs.len());
        self.probs.push(p);
        self.aux.push(AuxComponent { id, kind, label: label.to_owned() });
        id
    }

    /// The dependency tree of a topology component, if any.
    pub fn tree_of(&self, id: ComponentId) -> Option<&FaultTree> {
        self.trees[id.index()].as_ref()
    }

    /// Replaces a component's dependency tree.
    pub fn set_tree(&mut self, id: ComponentId, tree: FaultTree) {
        assert!(id.index() < self.topo_components, "trees attach to topology components");
        self.trees[id.index()] = Some(tree);
    }

    /// ORs another dependency tree into a component's existing tree (or
    /// installs it if none exists) — the "integrate new dependency feeds
    /// seamlessly" path.
    pub fn or_attach(&mut self, id: ComponentId, tree: FaultTree) {
        assert!(id.index() < self.topo_components, "trees attach to topology components");
        let slot = &mut self.trees[id.index()];
        *slot = Some(match slot.take() {
            Some(existing) => FaultTree::or_merge(&existing, &tree),
            None => tree,
        });
    }

    /// Attaches the topology's power assignment as dependency trees: every
    /// powered component fails when its supply fails (§4.1).
    pub fn attach_power_dependencies(&mut self, topology: &Topology) {
        for c in topology.components() {
            if let Some(supply) = topology.power_of(c.id) {
                self.or_attach(c.id, FaultTree::single(supply));
            }
        }
    }

    /// Attaches a shared software stack: `images` OS images are created as
    /// auxiliary events and assigned to hosts round-robin by rack, plus one
    /// shared library used by every host (the GitHub/Azure-style fleet-wide
    /// dependency). Returns the created event ids (images, then library).
    pub fn attach_shared_software(
        &mut self,
        topology: &Topology,
        images: usize,
        image_prob: f64,
        library_prob: f64,
    ) -> Vec<ComponentId> {
        assert!(images >= 1, "need at least one OS image");
        let mut ids = Vec::with_capacity(images + 1);
        for i in 0..images {
            ids.push(self.add_auxiliary(
                ComponentKind::Software(SoftwareKind::Os),
                &format!("os-image-{i}"),
                image_prob,
            ));
        }
        let lib = self.add_auxiliary(
            ComponentKind::Software(SoftwareKind::Library),
            "shared-library",
            library_prob,
        );
        ids.push(lib);
        for (idx, &h) in topology.hosts().iter().enumerate() {
            let image = ids[idx % images];
            self.or_attach(h, FaultTree::single(image));
            self.or_attach(h, FaultTree::single(lib));
        }
        ids
    }

    /// Effective failure state of a topology component in one round:
    /// its own sampled state OR its dependency tree.
    pub fn effective_failed(&self, raw: &BitMatrix, id: ComponentId, round: usize) -> bool {
        if raw.get(id.index(), round) {
            return true;
        }
        match &self.trees[id.index()] {
            Some(t) => t.eval(&|c: ComponentId| raw.get(c.index(), round)),
            None => false,
        }
    }

    /// The *blast radius* of one event: every topology component that
    /// fails when `event` (and nothing else) fails. Quantifies the
    /// correlated-failure exposure of shared dependencies — the paper's
    /// motivating outages (GitHub power, Azure storage) are exactly
    /// large-blast-radius events. DieHard-style failure domains fall out
    /// of grouping components by the events whose radius contains them.
    pub fn blast_radius(&self, event: ComponentId) -> Vec<ComponentId> {
        let mut raw = BitMatrix::new(self.num_events(), 1);
        raw.set(event.index(), 0);
        (0..self.topo_components)
            .map(ComponentId::from_index)
            .filter(|&c| self.effective_failed(&raw, c, 0))
            .collect()
    }

    /// Collapses raw sampled event states into effective per-component
    /// states, 256 rounds per operation: dependency trees are evaluated
    /// over [`recloud_sampling::WideWord`]s and written directly into the
    /// wide-aligned rows
    /// of `out`. `out` must have `num_topology_components()` rows and the
    /// same round count as `raw` (which makes their wide layouts match).
    ///
    /// After this call, downstream route-and-check only ever looks at
    /// `out`: all correlated-failure reasoning has been folded in.
    pub fn collapse_into(&self, raw: &BitMatrix, out: &mut BitMatrix) {
        assert_eq!(raw.components(), self.num_events(), "raw matrix shape mismatch");
        assert_eq!(out.components(), self.topo_components, "out matrix shape mismatch");
        assert_eq!(raw.rounds(), out.rounds(), "round count mismatch");
        let wides = raw.wide_words_per_row();
        for c in 0..self.topo_components {
            match &self.trees[c] {
                None => {
                    for ww in 0..wides {
                        out.set_wide_word(c, ww, raw.wide_word(c, ww));
                    }
                }
                Some(tree) => {
                    for ww in 0..wides {
                        let dep = tree.eval_wide(&|e: ComponentId| raw.wide_word(e.index(), ww));
                        out.set_wide_word(c, ww, raw.wide_word(c, ww) | dep);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recloud_sampling::{ExtendedDaggerSampler, Sampler};
    use recloud_topology::FatTreeParams;

    fn tiny_model() -> (Topology, FaultModel) {
        let t = FatTreeParams::new(4).build();
        let m = FaultModel::paper_default(&t, 1);
        (t, m)
    }

    #[test]
    fn paper_default_has_power_trees_everywhere() {
        let (t, m) = tiny_model();
        for c in t.components() {
            let has_tree = m.tree_of(c.id).is_some();
            let has_power = t.power_of(c.id).is_some();
            assert_eq!(has_tree, has_power, "{c}");
        }
        assert_eq!(m.num_events(), t.num_components());
    }

    #[test]
    fn power_failure_propagates_to_consumers() {
        let (t, m) = tiny_model();
        let host = t.hosts()[0];
        let supply = t.power_of(host).unwrap();
        let mut raw = BitMatrix::new(m.num_events(), 4);
        raw.set(supply.index(), 2);
        assert!(!m.effective_failed(&raw, host, 1));
        assert!(m.effective_failed(&raw, host, 2));
        // And to every other consumer of the same supply.
        for c in t.components() {
            if t.power_of(c.id) == Some(supply) {
                assert!(m.effective_failed(&raw, c.id, 2), "{c}");
            }
        }
    }

    #[test]
    fn collapse_matches_scalar_effective_failed() {
        let (t, mut m) = tiny_model();
        m.attach_shared_software(&t, 2, 0.01, 0.005);
        let mut raw = BitMatrix::new(m.num_events(), 200);
        ExtendedDaggerSampler::seeded(3).sample_into(m.probs(), &mut raw);
        let mut out = BitMatrix::new(m.num_topology_components(), 200);
        m.collapse_into(&raw, &mut out);
        for c in 0..m.num_topology_components() {
            for r in 0..200 {
                assert_eq!(
                    out.get(c, r),
                    m.effective_failed(&raw, ComponentId::from_index(c), r),
                    "component {c} round {r}"
                );
            }
        }
    }

    #[test]
    fn shared_software_connects_hosts() {
        let (t, mut m) = tiny_model();
        let ids = m.attach_shared_software(&t, 2, 0.01, 0.005);
        let lib = *ids.last().unwrap();
        let mut raw = BitMatrix::new(m.num_events(), 1);
        raw.set(lib.index(), 0);
        // A library failure fails *every* host — the fleet-wide correlated
        // failure the paper's motivating outages describe.
        for &h in t.hosts() {
            assert!(m.effective_failed(&raw, h, 0));
        }
        // But no switch.
        let m_meta = t.fat_tree().unwrap();
        assert!(!m.effective_failed(&raw, m_meta.edge(0, 0), 0));
    }

    #[test]
    fn aux_events_extend_probability_vector() {
        let (t, mut m) = tiny_model();
        let before = m.num_events();
        let id = m.add_auxiliary(ComponentKind::CoolingUnit, "room-cooling", 0.002);
        assert_eq!(id.index(), before);
        assert_eq!(m.num_events(), before + 1);
        assert_eq!(m.prob_of(id), 0.002);
        assert_eq!(m.num_topology_components(), t.num_components());
    }

    #[test]
    fn set_prob_validates_and_updates() {
        let (_t, mut m) = tiny_model();
        m.set_prob(ComponentId(0), 0.5);
        assert_eq!(m.prob_of(ComponentId(0)), 0.5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_prob_rejects_bad_values() {
        let (_t, mut m) = tiny_model();
        m.set_prob(ComponentId(0), 1.5);
    }

    #[test]
    fn or_attach_merges_trees() {
        let (t, mut m) = tiny_model();
        let host = t.hosts()[0];
        let aux = m.add_auxiliary(ComponentKind::CoolingUnit, "rack-cooling", 0.01);
        m.or_attach(host, FaultTree::single(aux));
        let mut raw = BitMatrix::new(m.num_events(), 1);
        raw.set(aux.index(), 0);
        assert!(m.effective_failed(&raw, host, 0));
        // The original power dependency still works.
        let mut raw2 = BitMatrix::new(m.num_events(), 1);
        raw2.set(t.power_of(host).unwrap().index(), 0);
        assert!(m.effective_failed(&raw2, host, 0));
    }

    #[test]
    fn external_never_fails_under_paper_default() {
        let (t, m) = tiny_model();
        assert_eq!(m.prob_of(t.external()), 0.0);
    }

    #[test]
    fn blast_radius_of_a_power_supply() {
        let (t, m) = tiny_model();
        let supply = t.power_supplies()[0];
        let radius = m.blast_radius(supply);
        // The supply itself fails, plus every consumer.
        assert!(radius.contains(&supply));
        for c in t.components() {
            let expect = c.id == supply || t.power_of(c.id) == Some(supply);
            assert_eq!(radius.contains(&c.id), expect, "{c}");
        }
        // With 5 supplies round-robin, roughly a fifth of the powered
        // components hang off each one.
        let powered = t.components().iter().filter(|c| t.power_of(c.id).is_some()).count();
        assert!(radius.len() > powered / 8, "radius too small: {}", radius.len());
    }

    #[test]
    fn blast_radius_of_an_independent_component_is_itself() {
        let (t, m) = tiny_model();
        let host = t.hosts()[0];
        let radius = m.blast_radius(host);
        assert_eq!(radius, vec![host]);
        // The external node fails nothing.
        assert_eq!(m.blast_radius(t.external()), vec![t.external()]);
    }
}
