//! Failure-probability assignment.
//!
//! Cloud providers measure each component's downtime within a window and
//! derive `p = downtime / windowLength` (§2.1). Lacking a production feed,
//! we reproduce the paper's evaluation setting (§4.1): every switch fails
//! with probability drawn from N(0.008, 0.001), every other fallible
//! component from N(0.01, 0.001), all rounded to four decimal places. The
//! external world never fails (it is the observer, not a component).
//!
//! §3.4 ("limited dependency information") is covered too: when no
//! probabilities are available, a uniform default keeps reCloud's
//! shared-dependency avoidance working, merely without calibrated numbers.

use recloud_sampling::rng::{normal_probability, Rng};
use recloud_topology::{ComponentKind, Topology};

/// How to assign per-component failure probabilities.
#[derive(Clone, Debug)]
pub enum ProbabilityConfig {
    /// The paper's §4.1 setting: switches ~ N(0.008, 0.001), all other
    /// fallible components ~ N(0.01, 0.001), rounded to 4 decimals.
    PaperDefault,
    /// Custom normal distributions per class.
    Normal {
        /// Mean/std for switches.
        switch: (f64, f64),
        /// Mean/std for everything else fallible.
        other: (f64, f64),
    },
    /// Every fallible component gets the same probability — the §3.4
    /// fallback when no measurements exist.
    Uniform(f64),
    /// Per-kind fixed values; kinds not listed fall back to `default`.
    PerKind {
        /// (kind, probability) table.
        table: Vec<(ComponentKind, f64)>,
        /// Probability for kinds not in the table.
        default: f64,
    },
}

impl ProbabilityConfig {
    /// Materializes the probability vector for a topology; index = raw
    /// component id. The `External` component always gets probability 0.
    ///
    /// Deterministic for a given `seed`.
    pub fn assign(&self, topology: &Topology, seed: u64) -> Vec<f64> {
        let mut rng = Rng::new(seed);
        topology
            .components()
            .iter()
            .map(|c| {
                if c.kind == ComponentKind::External {
                    return 0.0;
                }
                match self {
                    ProbabilityConfig::PaperDefault => {
                        if c.kind.is_switch() {
                            normal_probability(&mut rng, 0.008, 0.001)
                        } else {
                            normal_probability(&mut rng, 0.01, 0.001)
                        }
                    }
                    ProbabilityConfig::Normal { switch, other } => {
                        let (m, s) = if c.kind.is_switch() { *switch } else { *other };
                        normal_probability(&mut rng, m, s)
                    }
                    ProbabilityConfig::Uniform(p) => *p,
                    ProbabilityConfig::PerKind { table, default } => table
                        .iter()
                        .find(|(k, _)| *k == c.kind)
                        .map(|(_, p)| *p)
                        .unwrap_or(*default),
                }
            })
            .collect()
    }
}

/// Derives a failure probability from a measured downtime within a window
/// (§2.1: `p = downtime / windowLength`). Units cancel; both arguments must
/// use the same unit.
///
/// # Panics
/// Panics if `window` is not positive or `downtime` is negative or exceeds
/// the window.
pub fn downtime_ratio(downtime: f64, window: f64) -> f64 {
    assert!(window > 0.0, "window must be positive");
    assert!((0.0..=window).contains(&downtime), "downtime must lie within [0, window]");
    downtime / window
}

#[cfg(test)]
mod tests {
    use super::*;
    use recloud_topology::FatTreeParams;

    #[test]
    fn paper_default_distributions() {
        let t = FatTreeParams::new(8).build();
        let probs = ProbabilityConfig::PaperDefault.assign(&t, 42);
        assert_eq!(probs.len(), t.num_components());
        let mut sw = Vec::new();
        let mut other = Vec::new();
        for c in t.components() {
            let p = probs[c.id.index()];
            if c.kind == ComponentKind::External {
                assert_eq!(p, 0.0);
            } else if c.kind.is_switch() {
                sw.push(p);
            } else {
                other.push(p);
            }
        }
        let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean(&sw) - 0.008).abs() < 0.001, "switch mean {}", mean(&sw));
        assert!((mean(&other) - 0.01).abs() < 0.001, "other mean {}", mean(&other));
        // All rounded to 4 decimals.
        for &p in sw.iter().chain(other.iter()) {
            assert!((p * 10_000.0 - (p * 10_000.0).round()).abs() < 1e-9, "p={p}");
        }
    }

    #[test]
    fn assignment_is_deterministic() {
        let t = FatTreeParams::new(4).build();
        let a = ProbabilityConfig::PaperDefault.assign(&t, 7);
        let b = ProbabilityConfig::PaperDefault.assign(&t, 7);
        assert_eq!(a, b);
        let c = ProbabilityConfig::PaperDefault.assign(&t, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_covers_every_fallible_component() {
        let t = FatTreeParams::new(4).build();
        let probs = ProbabilityConfig::Uniform(0.02).assign(&t, 0);
        for c in t.components() {
            let expected = if c.kind == ComponentKind::External { 0.0 } else { 0.02 };
            assert_eq!(probs[c.id.index()], expected);
        }
    }

    #[test]
    fn per_kind_table_with_default() {
        let t = FatTreeParams::new(4).build();
        let cfg = ProbabilityConfig::PerKind {
            table: vec![(ComponentKind::Host, 0.05), (ComponentKind::PowerSupply, 0.002)],
            default: 0.01,
        };
        let probs = cfg.assign(&t, 0);
        for c in t.components() {
            let expected = match c.kind {
                ComponentKind::External => 0.0,
                ComponentKind::Host => 0.05,
                ComponentKind::PowerSupply => 0.002,
                _ => 0.01,
            };
            assert_eq!(probs[c.id.index()], expected, "{c}");
        }
    }

    #[test]
    fn downtime_ratio_basic() {
        // 8.8 hours of annual downtime (the popularity study's figure).
        let p = downtime_ratio(8.8, 365.25 * 24.0);
        assert!((p - 0.001).abs() < 0.0003);
    }

    #[test]
    #[should_panic(expected = "within")]
    fn downtime_ratio_rejects_excess() {
        downtime_ratio(2.0, 1.0);
    }
}
