//! Fault trees over shared dependencies (§3.2.3, Fig 5).
//!
//! A fault tree describes when a host or switch fails *because of its
//! dependencies*: the Fig 5 example reads "the host fails if the software,
//! the power or the cooling fails (OR); the software fails if the OS or the
//! library fails (OR); the power fails only if both redundant supplies
//! fail (AND); the cooling fails only if both cooling units fail (AND)".
//!
//! Leaves ("basic events") reference sampled components by id; two hosts'
//! trees that reference the same power-supply id are thereby *connected*,
//! which is exactly how the paper models correlated failures.
//!
//! Gates: OR, AND and the generalization K-of-N ("fails when at least k of
//! n children fail"; OR = 1-of-n, AND = n-of-n). Trees are DAG-shaped by
//! construction (children must be created before their parent), evaluated
//! either per-round or word-parallel (64 rounds per operation; the hot path
//! of assessment).

use recloud_sampling::{BitMatrix, WideWord};
use recloud_topology::ComponentId;

/// Index of a node within one [`FaultTree`].
pub type NodeId = u32;

/// One fault-tree node.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Node {
    /// Leaf: fails exactly when the referenced component's sampled state is
    /// failed in the round under evaluation.
    Basic(ComponentId),
    /// Fails when at least one child fails.
    Or(Vec<NodeId>),
    /// Fails only when all children fail.
    And(Vec<NodeId>),
    /// Fails when at least `k` children fail.
    KofN(u32, Vec<NodeId>),
}

/// An immutable fault tree. Build with [`FaultTreeBuilder`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultTree {
    nodes: Vec<Node>,
    root: NodeId,
}

impl FaultTree {
    /// Convenience: a tree that fails exactly when one component fails —
    /// the shape produced for a plain power dependency.
    pub fn single(event: ComponentId) -> Self {
        FaultTree { nodes: vec![Node::Basic(event)], root: 0 }
    }

    /// Number of nodes (gates + leaves).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the tree is a single leaf.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All basic events referenced, in first-appearance order, deduplicated.
    pub fn basic_events(&self) -> Vec<ComponentId> {
        let mut out = Vec::new();
        for n in &self.nodes {
            if let Node::Basic(c) = n {
                if !out.contains(c) {
                    out.push(*c);
                }
            }
        }
        out
    }

    /// Evaluates the tree for one round: `failed(c)` reports the sampled
    /// state of basic event `c`. Returns true when the tree (and hence the
    /// dependent host/switch) fails.
    pub fn eval(&self, failed: &dyn Fn(ComponentId) -> bool) -> bool {
        self.eval_node(self.root, failed)
    }

    fn eval_node(&self, id: NodeId, failed: &dyn Fn(ComponentId) -> bool) -> bool {
        match &self.nodes[id as usize] {
            Node::Basic(c) => failed(*c),
            Node::Or(ch) => ch.iter().any(|&c| self.eval_node(c, failed)),
            Node::And(ch) => ch.iter().all(|&c| self.eval_node(c, failed)),
            Node::KofN(k, ch) => {
                let mut fails = 0;
                for &c in ch {
                    if self.eval_node(c, failed) {
                        fails += 1;
                        if fails >= *k {
                            return true;
                        }
                    }
                }
                false
            }
        }
    }

    /// Word-parallel evaluation: computes the failure bits of 64 rounds at
    /// once. `word_of(c)` returns the 64-round word of component `c`'s raw
    /// sampled states. This is the assessment hot path.
    pub fn eval_word(&self, word_of: &dyn Fn(ComponentId) -> u64) -> u64 {
        self.eval_node_word(self.root, word_of)
    }

    fn eval_node_word(&self, id: NodeId, word_of: &dyn Fn(ComponentId) -> u64) -> u64 {
        match &self.nodes[id as usize] {
            Node::Basic(c) => word_of(*c),
            Node::Or(ch) => ch.iter().fold(0u64, |acc, &c| acc | self.eval_node_word(c, word_of)),
            Node::And(ch) => {
                ch.iter().fold(u64::MAX, |acc, &c| acc & self.eval_node_word(c, word_of))
            }
            Node::KofN(k, ch) => {
                // Bitwise thresholding: count failures per bit lane.
                let mut counts = [0u8; 64];
                for &c in ch {
                    let w = self.eval_node_word(c, word_of);
                    if w == 0 {
                        continue;
                    }
                    for (lane, count) in counts.iter_mut().enumerate() {
                        *count += ((w >> lane) & 1) as u8;
                    }
                }
                let mut out = 0u64;
                for (lane, &count) in counts.iter().enumerate() {
                    if u32::from(count) >= *k {
                        out |= 1u64 << lane;
                    }
                }
                out
            }
        }
    }

    /// Wide-parallel evaluation: computes the failure lanes of 256 rounds
    /// at once. `wide_of(c)` returns the 256-round wide word of component
    /// `c`'s raw sampled states — the 256-lane analogue of
    /// [`FaultTree::eval_word`].
    pub fn eval_wide(&self, wide_of: &dyn Fn(ComponentId) -> WideWord) -> WideWord {
        self.eval_node_wide(self.root, wide_of)
    }

    fn eval_node_wide(&self, id: NodeId, wide_of: &dyn Fn(ComponentId) -> WideWord) -> WideWord {
        match &self.nodes[id as usize] {
            Node::Basic(c) => wide_of(*c),
            Node::Or(ch) => {
                ch.iter().fold(WideWord::ZERO, |acc, &c| acc | self.eval_node_wide(c, wide_of))
            }
            Node::And(ch) => {
                ch.iter().fold(WideWord::ONES, |acc, &c| acc & self.eval_node_wide(c, wide_of))
            }
            Node::KofN(k, ch) => {
                // Bitwise thresholding: count failures per round lane.
                let mut counts = [0u8; WideWord::LANES];
                for &c in ch {
                    let w = self.eval_node_wide(c, wide_of);
                    if w.is_zero() {
                        continue;
                    }
                    for (lane, count) in counts.iter_mut().enumerate() {
                        *count += w.bit(lane) as u8;
                    }
                }
                let mut out = WideWord::ZERO;
                for (lane, &count) in counts.iter().enumerate() {
                    if u32::from(count) >= *k {
                        out.set_word(lane / 64, out.word(lane / 64) | 1u64 << (lane % 64));
                    }
                }
                out
            }
        }
    }

    /// Convenience evaluation against a sampled state matrix for one round.
    pub fn eval_matrix(&self, states: &BitMatrix, round: usize) -> bool {
        self.eval(&|c: ComponentId| states.get(c.index(), round))
    }

    /// Combines two trees under an OR gate: the result fails when either
    /// input fails. This is how additional dependency feeds are merged into
    /// an existing host/switch tree "seamlessly with no system changes"
    /// (§1) — e.g. power first, a software feed later.
    pub fn or_merge(a: &FaultTree, b: &FaultTree) -> FaultTree {
        let offset = a.nodes.len() as u32;
        let mut nodes = a.nodes.clone();
        for n in &b.nodes {
            nodes.push(match n {
                Node::Basic(c) => Node::Basic(*c),
                Node::Or(ch) => Node::Or(ch.iter().map(|c| c + offset).collect()),
                Node::And(ch) => Node::And(ch.iter().map(|c| c + offset).collect()),
                Node::KofN(k, ch) => Node::KofN(*k, ch.iter().map(|c| c + offset).collect()),
            });
        }
        let b_root = b.root + offset;
        let root = nodes.len() as u32;
        nodes.push(Node::Or(vec![a.root, b_root]));
        FaultTree { nodes, root }
    }
}

/// Incremental fault-tree constructor.
///
/// Children must be created before parents, which makes cycles impossible
/// by construction.
///
/// ```
/// use recloud_faults::FaultTreeBuilder;
/// use recloud_topology::ComponentId;
///
/// // Fig 5: host fails if software OR power OR cooling fails;
/// // software = os OR lib; power = ps1 AND ps2; cooling = c1 AND c2.
/// let (os, lib) = (ComponentId(100), ComponentId(101));
/// let (ps1, ps2) = (ComponentId(102), ComponentId(103));
/// let (c1, c2) = (ComponentId(104), ComponentId(105));
/// let mut b = FaultTreeBuilder::new();
/// let software = {
///     let (o, l) = (b.basic(os), b.basic(lib));
///     b.or(vec![o, l])
/// };
/// let power = {
///     let (p1, p2) = (b.basic(ps1), b.basic(ps2));
///     b.and(vec![p1, p2])
/// };
/// let cooling = {
///     let (x1, x2) = (b.basic(c1), b.basic(c2));
///     b.and(vec![x1, x2])
/// };
/// let root = b.or(vec![software, power, cooling]);
/// let tree = b.build(root);
/// // Both power supplies down, everything else up => host fails.
/// assert!(tree.eval(&|c| c == ps1 || c == ps2));
/// // One power supply down => host survives.
/// assert!(!tree.eval(&|c| c == ps1));
/// ```
#[derive(Clone, Debug, Default)]
pub struct FaultTreeBuilder {
    nodes: Vec<Node>,
}

impl FaultTreeBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, node: Node) -> NodeId {
        let id = NodeId::try_from(self.nodes.len()).expect("fault tree too large");
        self.nodes.push(node);
        id
    }

    fn check_children(&self, children: &[NodeId]) {
        assert!(!children.is_empty(), "a gate needs at least one child");
        let n = self.nodes.len() as u32;
        for &c in children {
            assert!(c < n, "child {c} does not exist yet (children before parents)");
        }
    }

    /// Adds a leaf referencing a sampled component.
    pub fn basic(&mut self, event: ComponentId) -> NodeId {
        self.push(Node::Basic(event))
    }

    /// Adds an OR gate (fails if any child fails).
    pub fn or(&mut self, children: Vec<NodeId>) -> NodeId {
        self.check_children(&children);
        self.push(Node::Or(children))
    }

    /// Adds an AND gate (fails only if all children fail) — the shape of
    /// redundant power/cooling in Fig 5.
    pub fn and(&mut self, children: Vec<NodeId>) -> NodeId {
        self.check_children(&children);
        self.push(Node::And(children))
    }

    /// Adds a K-of-N gate (fails when at least `k` children fail).
    ///
    /// # Panics
    /// Panics when `k` is 0 or exceeds the child count.
    pub fn k_of_n(&mut self, k: u32, children: Vec<NodeId>) -> NodeId {
        self.check_children(&children);
        assert!(
            k >= 1 && (k as usize) <= children.len(),
            "k must be in 1..=children ({} of {})",
            k,
            children.len()
        );
        self.push(Node::KofN(k, children))
    }

    /// Finalizes with the given root node.
    ///
    /// # Panics
    /// Panics if `root` was never created.
    pub fn build(self, root: NodeId) -> FaultTree {
        assert!((root as usize) < self.nodes.len(), "root node does not exist");
        FaultTree { nodes: self.nodes, root }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u32) -> ComponentId {
        ComponentId(i)
    }

    /// The Fig 5 host tree used across tests.
    fn fig5() -> FaultTree {
        let mut b = FaultTreeBuilder::new();
        let os = b.basic(c(0));
        let lib = b.basic(c(1));
        let software = b.or(vec![os, lib]);
        let ps1 = b.basic(c(2));
        let ps2 = b.basic(c(3));
        let power = b.and(vec![ps1, ps2]);
        let c1 = b.basic(c(4));
        let c2 = b.basic(c(5));
        let cooling = b.and(vec![c1, c2]);
        let root = b.or(vec![software, power, cooling]);
        b.build(root)
    }

    #[test]
    fn fig5_semantics() {
        let t = fig5();
        // Nothing failed -> host alive.
        assert!(!t.eval(&|_| false));
        // OS failed -> host fails (software is an OR branch).
        assert!(t.eval(&|x| x == c(0)));
        // One power supply failed -> host survives (AND).
        assert!(!t.eval(&|x| x == c(2)));
        // Both supplies failed -> host fails.
        assert!(t.eval(&|x| x == c(2) || x == c(3)));
        // Both cooling units failed -> host fails.
        assert!(t.eval(&|x| x == c(4) || x == c(5)));
        // Everything failed -> host fails.
        assert!(t.eval(&|_| true));
    }

    #[test]
    fn word_eval_matches_scalar_eval() {
        let t = fig5();
        // Assemble 64 random-ish failure words for the 6 basic events.
        let words: Vec<u64> = (0..6)
            .map(|i| 0x9E37_79B9_7F4A_7C15u64.rotate_left(i * 11) ^ (i as u64 * 0xABCD))
            .collect();
        let word = t.eval_word(&|x: ComponentId| words[x.index()]);
        for lane in 0..64 {
            let scalar = t.eval(&|x: ComponentId| (words[x.index()] >> lane) & 1 == 1);
            assert_eq!((word >> lane) & 1 == 1, scalar, "lane {lane}");
        }
    }

    #[test]
    fn k_of_n_gate() {
        let mut b = FaultTreeBuilder::new();
        let leaves: Vec<_> = (0..5).map(|i| b.basic(c(i))).collect();
        let root = b.k_of_n(3, leaves);
        let t = b.build(root);
        assert!(!t.eval(&|x| x.0 < 2)); // 2 of 5 failed
        assert!(t.eval(&|x| x.0 < 3)); // 3 of 5 failed
        assert!(t.eval(&|_| true));
    }

    #[test]
    fn k_of_n_word_eval_matches_scalar() {
        let mut b = FaultTreeBuilder::new();
        let leaves: Vec<_> = (0..7).map(|i| b.basic(c(i))).collect();
        let root = b.k_of_n(4, leaves);
        let t = b.build(root);
        let words: Vec<u64> =
            (0..7).map(|i| 0xDEAD_BEEF_CAFE_F00Du64.rotate_right(i * 7)).collect();
        let word = t.eval_word(&|x: ComponentId| words[x.index()]);
        for lane in 0..64 {
            let scalar = t.eval(&|x: ComponentId| (words[x.index()] >> lane) & 1 == 1);
            assert_eq!((word >> lane) & 1 == 1, scalar, "lane {lane}");
        }
    }

    #[test]
    fn wide_eval_matches_word_eval() {
        // fig5 (OR/AND mix) plus a K-of-N gate, both against 4 distinct
        // subwords per event so every lane region differs.
        let trees = vec![fig5(), {
            let mut b = FaultTreeBuilder::new();
            let leaves: Vec<_> = (0..7).map(|i| b.basic(c(i))).collect();
            let root = b.k_of_n(4, leaves);
            b.build(root)
        }];
        for t in trees {
            let wide_of = |x: ComponentId| {
                let base = 0x9E37_79B9_7F4A_7C15u64.rotate_left(x.0 * 13) ^ (x.0 as u64 * 0x5AA5);
                WideWord([base, base.rotate_left(17), !base, base.wrapping_mul(3)])
            };
            let wide = t.eval_wide(&wide_of);
            for i in 0..WideWord::WORDS {
                let word = t.eval_word(&|x: ComponentId| wide_of(x).word(i));
                assert_eq!(wide.word(i), word, "subword {i}");
            }
        }
    }

    #[test]
    fn single_tree() {
        let t = FaultTree::single(c(9));
        assert!(t.eval(&|x| x == c(9)));
        assert!(!t.eval(&|x| x == c(8)));
        assert_eq!(t.basic_events(), vec![c(9)]);
    }

    #[test]
    fn basic_events_deduplicated_in_order() {
        let mut b = FaultTreeBuilder::new();
        let x = b.basic(c(7));
        let y = b.basic(c(3));
        let x2 = b.basic(c(7));
        let root = b.or(vec![x, y, x2]);
        let t = b.build(root);
        assert_eq!(t.basic_events(), vec![c(7), c(3)]);
    }

    #[test]
    fn eval_matrix_reads_rounds() {
        let t = FaultTree::single(c(1));
        let mut m = BitMatrix::new(3, 10);
        m.set(1, 4);
        assert!(t.eval_matrix(&m, 4));
        assert!(!t.eval_matrix(&m, 5));
    }

    #[test]
    fn monotonicity_more_failures_never_unfail() {
        // For trees without negation, failing a superset of components can
        // never turn a failing tree into a surviving one.
        let t = fig5();
        let sets: Vec<Vec<u32>> = vec![vec![], vec![2], vec![2, 3], vec![0], vec![4, 5]];
        for s in &sets {
            let base = t.eval(&|x| s.contains(&x.0));
            for extra in 0..6u32 {
                let mut bigger = s.clone();
                bigger.push(extra);
                let more = t.eval(&|x| bigger.contains(&x.0));
                assert!(!base || more, "adding a failure un-failed the tree");
            }
        }
    }

    #[test]
    #[should_panic(expected = "children before parents")]
    fn forward_references_rejected() {
        let mut b = FaultTreeBuilder::new();
        b.or(vec![5]);
    }

    #[test]
    #[should_panic(expected = "at least one child")]
    fn empty_gate_rejected() {
        let mut b = FaultTreeBuilder::new();
        b.and(vec![]);
    }

    #[test]
    #[should_panic(expected = "k must be in")]
    fn bad_k_rejected() {
        let mut b = FaultTreeBuilder::new();
        let l = b.basic(c(0));
        b.k_of_n(2, vec![l]);
    }

    #[test]
    #[should_panic(expected = "root node does not exist")]
    fn bad_root_rejected() {
        FaultTreeBuilder::new().build(0);
    }
}
