//! Application structures (§2.2, §3.2.4).
//!
//! The simple scenario is K-of-N redundancy: N interchangeable instances,
//! at least K of which must be reachable from a border switch. Complex
//! applications add *components* (frontend, database, microservices …),
//! each with its own redundancy `N_Ci`, plus *connectivity requirements*
//! `K_{Ci,Cj}`: "the minimum number of deployed instances of Ci that need
//! to be reachable from component Cj", where Cj is another component or
//! the external world (Fig 6).
//!
//! Requirement graphs may be cyclic (microservice meshes); the assessment
//! engine evaluates them with a greatest-fixpoint cascade that reduces to
//! plain layer-by-layer evaluation on DAGs.

use std::fmt;

/// Index of a component within one [`ApplicationSpec`].
pub type CompIdx = usize;

/// Where a connectivity requirement originates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Source {
    /// The external world (border switches).
    External,
    /// Another application component's *active* instances.
    Component(CompIdx),
}

/// One connectivity requirement: at least `k` instances of `of` must be
/// reachable from `from`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Connectivity {
    /// The component whose instances are counted (Ci).
    pub of: CompIdx,
    /// The origin (Cj or the external world).
    pub from: Source,
    /// The minimum count K_{Ci,Cj} (≥ 1).
    pub k: u32,
}

/// One application component.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ComponentSpec {
    /// Human-readable name ("frontend", "db", "svc-3").
    pub name: String,
    /// Number of redundant instances to deploy (N_Ci ≥ 1).
    pub instances: u32,
}

/// A complete application description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ApplicationSpec {
    components: Vec<ComponentSpec>,
    requirements: Vec<Connectivity>,
}

impl ApplicationSpec {
    /// Starts an empty spec; add components and requirements, then use it.
    pub fn builder() -> SpecBuilder {
        SpecBuilder { components: Vec::new(), requirements: Vec::new() }
    }

    /// The paper's default scenario: one component, `n` instances, at
    /// least `k` reachable from the border switches (§2.2).
    ///
    /// # Panics
    /// Panics unless `1 ≤ k ≤ n`.
    pub fn k_of_n(k: u32, n: u32) -> Self {
        let mut b = Self::builder();
        let c = b.component("app", n);
        b.require_external(c, k);
        b.build()
    }

    /// A multi-layer application (§4.2.3): `layers` entries of (k, n);
    /// layer 0 must be reachable from the external world, each further
    /// layer from the previous one.
    ///
    /// # Panics
    /// Panics if `layers` is empty or any entry violates `1 ≤ k ≤ n`.
    pub fn layered(layers: &[(u32, u32)]) -> Self {
        assert!(!layers.is_empty(), "a layered app needs at least one layer");
        let mut b = Self::builder();
        let mut prev: Option<CompIdx> = None;
        for (i, &(k, n)) in layers.iter().enumerate() {
            let c = b.component(&format!("layer-{i}"), n);
            match prev {
                None => b.require_external(c, k),
                Some(p) => b.require(c, Source::Component(p), k),
            }
            prev = Some(c);
        }
        b.build()
    }

    /// A microservices application with the paper's "X-Y" structure
    /// (§4.2.3): `x` fully-meshed core components (every core must reach
    /// every other core), each with `y` supporting components reachable
    /// from their core; every component runs `n` instances with a
    /// K-requirement of `k`. Core 0 additionally serves external traffic.
    ///
    /// # Panics
    /// Panics unless `x ≥ 1` and `1 ≤ k ≤ n`.
    pub fn microservice(x: u32, y: u32, k: u32, n: u32) -> Self {
        assert!(x >= 1, "need at least one core component");
        let mut b = Self::builder();
        let cores: Vec<CompIdx> = (0..x).map(|i| b.component(&format!("core-{i}"), n)).collect();
        b.require_external(cores[0], k);
        for &ci in &cores {
            for &cj in &cores {
                if ci != cj {
                    b.require(ci, Source::Component(cj), k);
                }
            }
        }
        for (i, &core) in cores.iter().enumerate() {
            for j in 0..y {
                let s = b.component(&format!("svc-{i}-{j}"), n);
                b.require(s, Source::Component(core), k);
            }
        }
        b.build()
    }

    /// The components, indexable by [`CompIdx`].
    pub fn components(&self) -> &[ComponentSpec] {
        &self.components
    }

    /// The connectivity requirements.
    pub fn requirements(&self) -> &[Connectivity] {
        &self.requirements
    }

    /// Number of components.
    pub fn num_components(&self) -> usize {
        self.components.len()
    }

    /// Total instances across all components = number of hosts a plan
    /// must supply.
    pub fn total_instances(&self) -> usize {
        self.components.iter().map(|c| c.instances as usize).sum()
    }

    /// True if the requirement graph is acyclic (layered apps are; full
    /// meshes are not). Cyclic graphs are evaluated by fixpoint.
    pub fn is_dag(&self) -> bool {
        // Kahn's algorithm over component-to-component edges.
        let n = self.components.len();
        let mut indeg = vec![0usize; n];
        for r in &self.requirements {
            if let Source::Component(_) = r.from {
                indeg[r.of] += 1;
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut seen = 0;
        while let Some(v) = queue.pop() {
            seen += 1;
            for r in &self.requirements {
                if r.from == Source::Component(v) {
                    indeg[r.of] -= 1;
                    if indeg[r.of] == 0 {
                        queue.push(r.of);
                    }
                }
            }
        }
        seen == n
    }
}

impl fmt::Display for ApplicationSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "app[{} components, {} requirements]",
            self.components.len(),
            self.requirements.len()
        )
    }
}

/// Incremental [`ApplicationSpec`] constructor.
#[derive(Clone, Debug)]
pub struct SpecBuilder {
    components: Vec<ComponentSpec>,
    requirements: Vec<Connectivity>,
}

impl SpecBuilder {
    /// Adds a component with `instances` redundant instances.
    ///
    /// # Panics
    /// Panics if `instances` is 0.
    pub fn component(&mut self, name: &str, instances: u32) -> CompIdx {
        assert!(instances >= 1, "a component needs at least one instance");
        self.components.push(ComponentSpec { name: name.to_owned(), instances });
        self.components.len() - 1
    }

    /// Requires at least `k` instances of `of` reachable from `from`.
    ///
    /// # Panics
    /// Panics on dangling component indices or `k` outside
    /// `1..=instances(of)`.
    pub fn require(&mut self, of: CompIdx, from: Source, k: u32) {
        assert!(of < self.components.len(), "unknown component {of}");
        if let Source::Component(j) = from {
            assert!(j < self.components.len(), "unknown source component {j}");
            assert_ne!(j, of, "a component cannot require itself");
        }
        let n = self.components[of].instances;
        assert!(k >= 1 && k <= n, "k must be in 1..={n} (got {k})");
        self.requirements.push(Connectivity { of, from, k });
    }

    /// Shorthand for an external-reachability requirement.
    pub fn require_external(&mut self, of: CompIdx, k: u32) {
        self.require(of, Source::External, k);
    }

    /// Finalizes the spec.
    ///
    /// # Panics
    /// Panics if no component was added or no requirement constrains the
    /// application (an unconstrained app is trivially "reliable", which is
    /// always a caller bug).
    pub fn build(self) -> ApplicationSpec {
        assert!(!self.components.is_empty(), "an application needs at least one component");
        assert!(
            !self.requirements.is_empty(),
            "an application needs at least one connectivity requirement"
        );
        ApplicationSpec { components: self.components, requirements: self.requirements }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k_of_n_shape() {
        let s = ApplicationSpec::k_of_n(4, 5);
        assert_eq!(s.num_components(), 1);
        assert_eq!(s.total_instances(), 5);
        assert_eq!(s.requirements(), &[Connectivity { of: 0, from: Source::External, k: 4 }]);
        assert!(s.is_dag());
    }

    #[test]
    fn layered_chains_requirements() {
        let s = ApplicationSpec::layered(&[(1, 2), (1, 2), (2, 3)]);
        assert_eq!(s.num_components(), 3);
        assert_eq!(s.total_instances(), 7);
        assert_eq!(s.requirements().len(), 3);
        assert_eq!(s.requirements()[0].from, Source::External);
        assert_eq!(s.requirements()[1].from, Source::Component(0));
        assert_eq!(s.requirements()[2].from, Source::Component(1));
        assert_eq!(s.requirements()[2].k, 2);
        assert!(s.is_dag());
    }

    #[test]
    fn microservice_structure_counts() {
        // "10-20" = 10 cores + 10*20 supports = 210 components (§4.2.3).
        let s = ApplicationSpec::microservice(10, 20, 4, 5);
        assert_eq!(s.num_components(), 210);
        assert_eq!(s.total_instances(), 1050);
        // Core mesh: 10*9 directed edges + 200 support edges + 1 external.
        assert_eq!(s.requirements().len(), 90 + 200 + 1);
        assert!(!s.is_dag()); // the mesh is cyclic
    }

    #[test]
    fn small_microservice_is_cyclic_but_supports_hang_off() {
        let s = ApplicationSpec::microservice(2, 1, 1, 2);
        // cores 0,1 meshed; svc-0-0 from core0; svc-1-0 from core1.
        assert_eq!(s.num_components(), 4);
        assert!(!s.is_dag());
    }

    #[test]
    fn single_core_microservice_is_dag() {
        let s = ApplicationSpec::microservice(1, 3, 1, 2);
        assert!(s.is_dag());
        assert_eq!(s.num_components(), 4);
    }

    #[test]
    fn builder_validations() {
        let mut b = ApplicationSpec::builder();
        let fe = b.component("fe", 2);
        let db = b.component("db", 3);
        b.require_external(fe, 1);
        b.require(db, Source::Component(fe), 2);
        let s = b.build();
        assert_eq!(s.components()[1].name, "db");
        assert_eq!(s.requirements()[1].k, 2);
    }

    #[test]
    #[should_panic(expected = "k must be in")]
    fn k_above_n_rejected() {
        ApplicationSpec::k_of_n(6, 5);
    }

    #[test]
    #[should_panic(expected = "cannot require itself")]
    fn self_requirement_rejected() {
        let mut b = ApplicationSpec::builder();
        let c = b.component("a", 2);
        b.require(c, Source::Component(c), 1);
    }

    #[test]
    #[should_panic(expected = "at least one connectivity requirement")]
    fn unconstrained_app_rejected() {
        let mut b = ApplicationSpec::builder();
        b.component("a", 2);
        b.build();
    }

    #[test]
    #[should_panic(expected = "at least one instance")]
    fn zero_instances_rejected() {
        ApplicationSpec::builder().component("a", 0);
    }
}
