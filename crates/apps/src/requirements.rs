//! Developer-facing reliability requirements (§2.2).
//!
//! The developer hands the cloud provider four parameters: N (instances),
//! K (minimum alive), `R_desired` (target probability that K of N are
//! alive — alternatively phrased as acceptable annual downtime), and
//! `T_max` (maximum search time, "within minutes, not hours"). N and K
//! live in the [`crate::ApplicationSpec`]; this type carries the rest plus
//! the assessment budget.

use std::time::Duration;

/// Search/assessment requirements accompanying an application spec.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Requirements {
    /// Desired reliability score in `[0, 1]`. Use `1.0` to force the
    /// search to spend the whole budget (the paper's default evaluation
    /// setting, which can never be satisfied).
    pub r_desired: f64,
    /// Maximum search time `T_max`.
    pub t_max: Duration,
    /// Route-and-check rounds per plan assessment (paper default: 10⁴).
    pub rounds: usize,
}

impl Requirements {
    /// The paper's defaults: `R_desired = 1.0`, `T_max = 30 s`,
    /// 10⁴ rounds per assessment (§4.1).
    pub fn paper_default() -> Self {
        Requirements { r_desired: 1.0, t_max: Duration::from_secs(30), rounds: 10_000 }
    }

    /// Sets the desired reliability score.
    ///
    /// # Panics
    /// Panics outside `[0, 1]`.
    pub fn desired(mut self, r: f64) -> Self {
        assert!((0.0..=1.0).contains(&r), "R_desired must be in [0, 1]");
        self.r_desired = r;
        self
    }

    /// Expresses the target as acceptable annual downtime instead of a
    /// probability (§2.2's alternative formulation).
    pub fn max_annual_downtime_hours(self, hours: f64) -> Self {
        let r = recloud_sampling::estimator::downtime_to_reliability(hours);
        self.desired(r)
    }

    /// Sets the search budget.
    pub fn budget(mut self, t_max: Duration) -> Self {
        self.t_max = t_max;
        self
    }

    /// Sets the per-assessment round count.
    ///
    /// # Panics
    /// Panics if zero.
    pub fn rounds(mut self, rounds: usize) -> Self {
        assert!(rounds > 0, "need at least one assessment round");
        self.rounds = rounds;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let r = Requirements::paper_default();
        assert_eq!(r.r_desired, 1.0);
        assert_eq!(r.t_max, Duration::from_secs(30));
        assert_eq!(r.rounds, 10_000);
    }

    #[test]
    fn downtime_formulation() {
        let r = Requirements::paper_default().max_annual_downtime_hours(33.3);
        assert!((r.r_desired - 0.9962).abs() < 1e-4);
    }

    #[test]
    fn builder_chain() {
        let r = Requirements::paper_default()
            .desired(0.999)
            .budget(Duration::from_secs(5))
            .rounds(1_000);
        assert_eq!(r.r_desired, 0.999);
        assert_eq!(r.t_max, Duration::from_secs(5));
        assert_eq!(r.rounds, 1_000);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn bad_desired_rejected() {
        Requirements::paper_default().desired(1.2);
    }

    #[test]
    #[should_panic(expected = "at least one assessment round")]
    fn zero_rounds_rejected() {
        Requirements::paper_default().rounds(0);
    }
}
