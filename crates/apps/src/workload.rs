//! Per-host workload — the utility input of multi-objective search
//! (§3.3.3, §4.2.2).
//!
//! "A data center's resource utilization is typically low. To reflect
//! this, we apply a realistic setting where each host has a workload over
//! [0, 1] with the normal distribution N(0.2, 0.05)." Workload changes
//! over time (peak hours); reCloud's 30-second searches let it re-read
//! near-real-time values, which [`WorkloadMap::set`] models.

use recloud_sampling::Rng;
use recloud_topology::{ComponentId, Topology};

/// Workload fraction per host, indexed by raw component id.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadMap {
    load: Vec<f64>,
}

impl WorkloadMap {
    /// Draws the paper's N(0.2, 0.05) workload for every host,
    /// deterministically per seed. Non-host components get load 0.
    pub fn paper_default(topology: &Topology, seed: u64) -> Self {
        Self::normal(topology, 0.2, 0.05, seed)
    }

    /// Draws N(mean, std) per host, clamped to [0, 1].
    pub fn normal(topology: &Topology, mean: f64, std_dev: f64, seed: u64) -> Self {
        let mut rng = Rng::new(seed);
        let mut load = vec![0.0; topology.num_components()];
        for &h in topology.hosts() {
            load[h.index()] = rng.next_normal_with(mean, std_dev).clamp(0.0, 1.0);
        }
        WorkloadMap { load }
    }

    /// Uniform workload everywhere (useful to neutralize the utility term).
    pub fn uniform(topology: &Topology, value: f64) -> Self {
        assert!((0.0..=1.0).contains(&value), "workload must be in [0, 1]");
        let mut load = vec![0.0; topology.num_components()];
        for &h in topology.hosts() {
            load[h.index()] = value;
        }
        WorkloadMap { load }
    }

    /// Current load of a host.
    pub fn get(&self, host: ComponentId) -> f64 {
        self.load[host.index()]
    }

    /// Near-real-time update of one host's load.
    ///
    /// # Panics
    /// Panics outside [0, 1].
    pub fn set(&mut self, host: ComponentId, value: f64) {
        assert!((0.0..=1.0).contains(&value), "workload must be in [0, 1]");
        self.load[host.index()] = value;
    }

    /// Mean load over a set of hosts — the plan-level utility input.
    ///
    /// # Panics
    /// Panics on an empty host list.
    pub fn average<I: IntoIterator<Item = ComponentId>>(&self, hosts: I) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for h in hosts {
            sum += self.get(h);
            n += 1;
        }
        assert!(n > 0, "average workload over zero hosts");
        sum / n as f64
    }

    /// Hosts sorted ascending by load (ties by id) — what the
    /// common-practice baseline picks from ("least-loaded hosts").
    pub fn hosts_by_load(&self, topology: &Topology) -> Vec<ComponentId> {
        let mut hosts: Vec<ComponentId> = topology.hosts().to_vec();
        hosts.sort_by(|a, b| {
            self.get(*a).partial_cmp(&self.get(*b)).expect("workloads are finite").then(a.cmp(b))
        });
        hosts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recloud_topology::FatTreeParams;

    #[test]
    fn paper_default_moments() {
        let t = FatTreeParams::new(16).build();
        let w = WorkloadMap::paper_default(&t, 1);
        let loads: Vec<f64> = t.hosts().iter().map(|&h| w.get(h)).collect();
        let mean = loads.iter().sum::<f64>() / loads.len() as f64;
        assert!((mean - 0.2).abs() < 0.01, "mean {mean}");
        assert!(loads.iter().all(|&l| (0.0..=1.0).contains(&l)));
    }

    #[test]
    fn non_hosts_have_zero_load() {
        let t = FatTreeParams::new(4).build();
        let w = WorkloadMap::paper_default(&t, 1);
        assert_eq!(w.get(t.external()), 0.0);
        assert_eq!(w.get(t.border_switches()[0]), 0.0);
    }

    #[test]
    fn average_and_set() {
        let t = FatTreeParams::new(4).build();
        let mut w = WorkloadMap::uniform(&t, 0.5);
        let hs = &t.hosts()[..4];
        assert!((w.average(hs.iter().copied()) - 0.5).abs() < 1e-12);
        w.set(hs[0], 0.9);
        assert!((w.average(hs.iter().copied()) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn hosts_by_load_is_sorted_and_complete() {
        let t = FatTreeParams::new(4).build();
        let w = WorkloadMap::paper_default(&t, 9);
        let sorted = w.hosts_by_load(&t);
        assert_eq!(sorted.len(), t.num_hosts());
        for pair in sorted.windows(2) {
            assert!(w.get(pair[0]) <= w.get(pair[1]));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let t = FatTreeParams::new(4).build();
        assert_eq!(WorkloadMap::paper_default(&t, 3), WorkloadMap::paper_default(&t, 3));
        assert_ne!(WorkloadMap::paper_default(&t, 3), WorkloadMap::paper_default(&t, 4));
    }

    #[test]
    #[should_panic(expected = "zero hosts")]
    fn empty_average_panics() {
        let t = FatTreeParams::new(4).build();
        let w = WorkloadMap::uniform(&t, 0.1);
        w.average(std::iter::empty());
    }
}
