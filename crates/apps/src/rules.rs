//! Placement heuristics and resource constraints.
//!
//! §3.3.1 Step 1 allows the initial plan to "use any additional heuristics
//! such as 'no hosts from the same rack or pod'"; §3.3.3 lets the search
//! "quickly discard any generated deployment plans that do not satisfy
//! resource constraints". Both are [`PlacementRules`] here. The
//! common-practice baseline (§4.2.2) also places "each host in a different
//! rack", which it enforces through the same type.

use crate::plan::DeploymentPlan;
use crate::workload::WorkloadMap;
use recloud_topology::Topology;
use std::collections::HashMap;

/// Constraints a deployment plan must satisfy to be considered at all.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PlacementRules {
    /// Maximum instances per rack (edge switch), if bounded.
    pub max_per_rack: Option<u32>,
    /// Maximum instances per pod, if bounded.
    pub max_per_pod: Option<u32>,
    /// Reject hosts whose current workload exceeds this threshold, if set
    /// (a simple capacity constraint).
    pub max_host_load: Option<f64>,
}

impl Default for PlacementRules {
    /// No constraints.
    fn default() -> Self {
        PlacementRules { max_per_rack: None, max_per_pod: None, max_host_load: None }
    }
}

impl PlacementRules {
    /// No constraints (same as `Default`).
    pub fn none() -> Self {
        Self::default()
    }

    /// The classic anti-affinity heuristic: at most one instance per rack.
    pub fn distinct_racks() -> Self {
        PlacementRules { max_per_rack: Some(1), max_per_pod: None, max_host_load: None }
    }

    /// At most one instance per rack *and* per pod (the strongest §3.3.1
    /// heuristic).
    pub fn distinct_pods() -> Self {
        PlacementRules { max_per_rack: Some(1), max_per_pod: Some(1), max_host_load: None }
    }

    /// Adds a workload-capacity bound.
    pub fn with_max_load(mut self, load: f64) -> Self {
        assert!((0.0..=1.0).contains(&load), "load threshold must be in [0, 1]");
        self.max_host_load = Some(load);
        self
    }

    /// Checks a plan; `workload` is only consulted when a load bound is
    /// set. Returns `true` when the plan satisfies every rule.
    pub fn check(
        &self,
        plan: &DeploymentPlan,
        topology: &Topology,
        workload: Option<&WorkloadMap>,
    ) -> bool {
        if let Some(limit) = self.max_host_load {
            let w = workload.expect("load rule requires a workload map");
            if plan.all_hosts().any(|h| w.get(h) > limit) {
                return false;
            }
        }
        if self.max_per_rack.is_some() || self.max_per_pod.is_some() {
            let mut per_rack: HashMap<u32, u32> = HashMap::new();
            let mut per_pod: HashMap<u32, u32> = HashMap::new();
            for h in plan.all_hosts() {
                if let Some(max) = self.max_per_rack {
                    let c = per_rack.entry(topology.rack_of(h).0).or_insert(0);
                    *c += 1;
                    if *c > max {
                        return false;
                    }
                }
                if let Some(max) = self.max_per_pod {
                    let c = per_pod.entry(topology.pod_of(h)).or_insert(0);
                    *c += 1;
                    if *c > max {
                        return false;
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ApplicationSpec;
    use recloud_topology::FatTreeParams;

    #[test]
    fn none_accepts_anything() {
        let t = FatTreeParams::new(4).build();
        let spec = ApplicationSpec::k_of_n(1, 2);
        // Two hosts under the same edge switch.
        let m = t.fat_tree().unwrap();
        let plan = DeploymentPlan::new(&spec, vec![vec![m.host(0, 0, 0), m.host(0, 0, 1)]]);
        assert!(PlacementRules::none().check(&plan, &t, None));
    }

    #[test]
    fn distinct_racks_rejects_same_edge() {
        let t = FatTreeParams::new(4).build();
        let m = t.fat_tree().unwrap();
        let spec = ApplicationSpec::k_of_n(1, 2);
        let same_rack = DeploymentPlan::new(&spec, vec![vec![m.host(0, 0, 0), m.host(0, 0, 1)]]);
        let diff_rack = DeploymentPlan::new(&spec, vec![vec![m.host(0, 0, 0), m.host(0, 1, 0)]]);
        let rules = PlacementRules::distinct_racks();
        assert!(!rules.check(&same_rack, &t, None));
        assert!(rules.check(&diff_rack, &t, None));
    }

    #[test]
    fn distinct_pods_rejects_same_pod_different_rack() {
        let t = FatTreeParams::new(4).build();
        let m = t.fat_tree().unwrap();
        let spec = ApplicationSpec::k_of_n(1, 2);
        let same_pod = DeploymentPlan::new(&spec, vec![vec![m.host(0, 0, 0), m.host(0, 1, 0)]]);
        let diff_pod = DeploymentPlan::new(&spec, vec![vec![m.host(0, 0, 0), m.host(1, 0, 0)]]);
        let rules = PlacementRules::distinct_pods();
        assert!(!rules.check(&same_pod, &t, None));
        assert!(rules.check(&diff_pod, &t, None));
    }

    #[test]
    fn load_bound_uses_workload() {
        let t = FatTreeParams::new(4).build();
        let spec = ApplicationSpec::k_of_n(1, 2);
        let m = t.fat_tree().unwrap();
        let plan = DeploymentPlan::new(&spec, vec![vec![m.host(0, 0, 0), m.host(1, 0, 0)]]);
        let mut w = WorkloadMap::uniform(&t, 0.1);
        let rules = PlacementRules::none().with_max_load(0.5);
        assert!(rules.check(&plan, &t, Some(&w)));
        w.set(m.host(1, 0, 0), 0.9);
        assert!(!rules.check(&plan, &t, Some(&w)));
    }

    #[test]
    #[should_panic(expected = "requires a workload map")]
    fn load_rule_without_map_panics() {
        let t = FatTreeParams::new(4).build();
        let spec = ApplicationSpec::k_of_n(1, 1);
        let plan = DeploymentPlan::new(&spec, vec![vec![t.hosts()[0]]]);
        PlacementRules::none().with_max_load(0.5).check(&plan, &t, None);
    }
}
