//! Deployment plans and the annealing neighbor move.
//!
//! "A deployment plan specifies which hosts the application instances
//! should be deployed onto" (§2.2). A plan maps every application
//! component to a list of hosts, one per instance. All instance hosts are
//! distinct (the paper's plan space explicitly excludes doubled-up
//! instances).
//!
//! Plans support the two operations the search needs: random generation
//! (Step 1) and the *neighbor move* — "randomly replacing one host used in
//! the current deployment plan by a new, randomly chosen host" (Step 3).

use crate::spec::ApplicationSpec;
use recloud_sampling::Rng;
use recloud_topology::ComponentId;
use std::collections::HashSet;
use std::fmt;

/// A concrete placement of every application instance.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct DeploymentPlan {
    /// `assignments[c][i]` = host of instance `i` of component `c`.
    assignments: Vec<Vec<ComponentId>>,
}

impl DeploymentPlan {
    /// Builds a plan from explicit assignments and validates it against
    /// the spec: instance counts match and all hosts are distinct.
    ///
    /// # Panics
    /// Panics on shape mismatch or duplicated hosts.
    pub fn new(spec: &ApplicationSpec, assignments: Vec<Vec<ComponentId>>) -> Self {
        assert_eq!(assignments.len(), spec.num_components(), "plan must assign every component");
        for (c, comp) in spec.components().iter().enumerate() {
            assert_eq!(
                assignments[c].len(),
                comp.instances as usize,
                "component '{}' needs {} hosts",
                comp.name,
                comp.instances
            );
        }
        let mut seen = HashSet::new();
        for h in assignments.iter().flatten() {
            assert!(seen.insert(*h), "host {h} used twice in one plan");
        }
        DeploymentPlan { assignments }
    }

    /// Draws a uniformly random plan over the host pool (§3.3.1 Step 1).
    ///
    /// # Panics
    /// Panics if the pool is smaller than the total instance count.
    pub fn random(spec: &ApplicationSpec, pool: &[ComponentId], rng: &mut Rng) -> Self {
        let total = spec.total_instances();
        assert!(
            pool.len() >= total,
            "host pool ({}) smaller than total instances ({total})",
            pool.len()
        );
        let picks = rng.sample_distinct(pool.len(), total);
        let mut it = picks.into_iter().map(|i| pool[i]);
        let assignments = spec
            .components()
            .iter()
            .map(|c| (0..c.instances).map(|_| it.next().expect("sized above")).collect())
            .collect();
        DeploymentPlan { assignments }
    }

    /// The annealing neighbor move (§3.3.1 Step 3): replaces one uniformly
    /// chosen instance's host with a uniformly chosen *unused* host from
    /// the pool. Returns the new plan; `self` is untouched.
    ///
    /// # Panics
    /// Panics if the pool has no unused host.
    pub fn neighbor(&self, pool: &[ComponentId], rng: &mut Rng) -> Self {
        let total: usize = self.assignments.iter().map(|a| a.len()).sum();
        let mut target = rng.next_below(total);
        let used: HashSet<ComponentId> = self.all_hosts().collect();
        assert!(used.len() < pool.len(), "no unused host available for a neighbor move");
        let replacement = loop {
            let cand = pool[rng.next_below(pool.len())];
            if !used.contains(&cand) {
                break cand;
            }
        };
        let mut next = self.clone();
        for comp in &mut next.assignments {
            if target < comp.len() {
                comp[target] = replacement;
                return next;
            }
            target -= comp.len();
        }
        unreachable!("target index within total instance count");
    }

    /// Hosts of one component's instances.
    pub fn hosts_of(&self, component: usize) -> &[ComponentId] {
        &self.assignments[component]
    }

    /// All hosts used by the plan, in component order.
    pub fn all_hosts(&self) -> impl Iterator<Item = ComponentId> + '_ {
        self.assignments.iter().flatten().copied()
    }

    /// Total number of placed instances.
    pub fn total_instances(&self) -> usize {
        self.assignments.iter().map(|a| a.len()).sum()
    }

    /// Number of application components.
    pub fn num_components(&self) -> usize {
        self.assignments.len()
    }
}

impl fmt::Display for DeploymentPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "plan{{")?;
        for (c, hosts) in self.assignments.iter().enumerate() {
            if c > 0 {
                write!(f, "; ")?;
            }
            write!(f, "c{c}:")?;
            for (i, h) in hosts.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{h}")?;
            }
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recloud_topology::FatTreeParams;

    fn pool() -> (ApplicationSpec, Vec<ComponentId>) {
        let t = FatTreeParams::new(4).build();
        (ApplicationSpec::k_of_n(4, 5), t.hosts().to_vec())
    }

    #[test]
    fn random_plans_are_valid_and_distinct_hosts() {
        let (spec, pool) = pool();
        let mut rng = Rng::new(1);
        for _ in 0..50 {
            let p = DeploymentPlan::random(&spec, &pool, &mut rng);
            assert_eq!(p.total_instances(), 5);
            let hosts: HashSet<_> = p.all_hosts().collect();
            assert_eq!(hosts.len(), 5);
            for h in p.all_hosts() {
                assert!(pool.contains(&h));
            }
        }
    }

    #[test]
    fn neighbor_changes_exactly_one_instance() {
        let (spec, pool) = pool();
        let mut rng = Rng::new(2);
        let p = DeploymentPlan::random(&spec, &pool, &mut rng);
        for _ in 0..50 {
            let q = p.neighbor(&pool, &mut rng);
            let ph: Vec<_> = p.all_hosts().collect();
            let qh: Vec<_> = q.all_hosts().collect();
            let diff = ph.iter().zip(&qh).filter(|(a, b)| a != b).count();
            assert_eq!(diff, 1);
            // Replacement host is fresh.
            let qset: HashSet<_> = qh.iter().collect();
            assert_eq!(qset.len(), 5);
        }
    }

    #[test]
    fn neighbor_respects_multi_component_structure() {
        let t = FatTreeParams::new(4).build();
        let spec = ApplicationSpec::layered(&[(1, 2), (1, 3)]);
        let mut rng = Rng::new(3);
        let p = DeploymentPlan::random(&spec, t.hosts(), &mut rng);
        assert_eq!(p.hosts_of(0).len(), 2);
        assert_eq!(p.hosts_of(1).len(), 3);
        let q = p.neighbor(t.hosts(), &mut rng);
        assert_eq!(q.hosts_of(0).len(), 2);
        assert_eq!(q.hosts_of(1).len(), 3);
    }

    #[test]
    fn explicit_plan_validation() {
        let (spec, pool) = pool();
        let p = DeploymentPlan::new(&spec, vec![pool[..5].to_vec()]);
        assert_eq!(p.hosts_of(0), &pool[..5]);
    }

    #[test]
    #[should_panic(expected = "used twice")]
    fn duplicate_hosts_rejected() {
        let (spec, pool) = pool();
        let mut hosts = pool[..5].to_vec();
        hosts[4] = hosts[0];
        DeploymentPlan::new(&spec, vec![hosts]);
    }

    #[test]
    #[should_panic(expected = "needs 5 hosts")]
    fn wrong_instance_count_rejected() {
        let (spec, pool) = pool();
        DeploymentPlan::new(&spec, vec![pool[..4].to_vec()]);
    }

    #[test]
    #[should_panic(expected = "smaller than total instances")]
    fn small_pool_rejected() {
        let (spec, pool) = pool();
        let mut rng = Rng::new(4);
        DeploymentPlan::random(&spec, &pool[..3], &mut rng);
    }
}
