#![warn(missing_docs)]

//! # recloud-apps
//!
//! Application model for the reCloud reproduction.
//!
//! Developers describe *what* they need deployed; reCloud decides *where*.
//! This crate owns the "what" and the representation of the "where":
//!
//! * [`spec`] — application structures: plain K-of-N redundancy (§2.2),
//!   multi-layer applications and microservice meshes with per-component
//!   instance counts `N_Ci` and per-edge reachability requirements
//!   `K_{Ci,Cj}` (§3.2.4, Fig 6);
//! * [`plan`] — deployment plans (which host runs which instance), their
//!   validation, random generation and the neighbor move used by the
//!   simulated-annealing search (§3.3.1 Step 3);
//! * [`requirements`] — the four developer-facing parameters N, K,
//!   `R_desired`, `T_max` (§2.2), including the acceptable-annual-downtime
//!   formulation;
//! * [`workload`] — per-host workload (the §4.2.2 utility input,
//!   N(0.2, 0.05)) with near-real-time update support;
//! * [`rules`] — placement heuristics ("no two instances in the same
//!   rack/pod") and capacity constraints used both by reCloud's search and
//!   by the common-practice baseline.

pub mod plan;
pub mod requirements;
pub mod rules;
pub mod spec;
pub mod workload;

pub use plan::DeploymentPlan;
pub use requirements::Requirements;
pub use rules::PlacementRules;
pub use spec::{ApplicationSpec, CompIdx, Connectivity, Source};
pub use workload::WorkloadMap;
