//! From-scratch criterion-style micro-benchmark harness, replacing the
//! former `criterion` dev-dependency.
//!
//! Every bench target in `benches/` is `harness = false` and drives this
//! module from its own `fn main()`. The API deliberately mirrors the
//! criterion subset the benches were written against — groups,
//! [`BenchmarkId`], `bench_function` / `bench_with_input`, a [`Bencher`]
//! with `iter` — so a bench body reads identically under either harness.
//!
//! Measurement model: per benchmark, `warmup` untimed calls to settle
//! caches and branch predictors, then `samples` timed calls. The report is
//! the **median** and the **median absolute deviation** (MAD) of the
//! per-call times — both robust to the scheduling outliers that plague
//! shared CI boxes, unlike mean/stddev. Re-exports
//! [`black_box`](std::hint::black_box) so bench bodies can defeat
//! constant-folding without an external crate.
//!
//! Environment knobs (all optional):
//!
//! * `RECLOUD_BENCH_SAMPLES` — override every group's sample count;
//! * `RECLOUD_BENCH_WARMUP` — override the warmup call count.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Default timed samples per benchmark.
pub const DEFAULT_SAMPLES: usize = 10;
/// Default untimed warmup calls per benchmark.
pub const DEFAULT_WARMUP: usize = 2;

fn env_usize(key: &str) -> Option<usize> {
    std::env::var(key).ok()?.trim().parse().ok()
}

/// Top-level harness; hosts benchmark groups and the global configuration.
#[derive(Debug)]
pub struct Harness {
    samples_override: Option<usize>,
    warmup: usize,
    reported: usize,
}

impl Default for Harness {
    fn default() -> Self {
        Harness::new()
    }
}

impl Harness {
    /// A harness configured from the environment.
    pub fn new() -> Self {
        Harness {
            samples_override: env_usize("RECLOUD_BENCH_SAMPLES"),
            warmup: env_usize("RECLOUD_BENCH_WARMUP").unwrap_or(DEFAULT_WARMUP),
            reported: 0,
        }
    }

    /// Starts a named benchmark group (criterion's `benchmark_group`).
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> Group<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        Group { harness: self, name, samples: DEFAULT_SAMPLES }
    }

    /// Number of benchmarks reported so far.
    pub fn reported(&self) -> usize {
        self.reported
    }

    /// Prints the closing summary line. Call last in `fn main()`.
    pub fn finish(self) {
        println!("\n{} benchmark(s) complete", self.reported);
    }
}

/// A named group of related benchmarks sharing a sample count.
pub struct Group<'h> {
    harness: &'h mut Harness,
    name: String,
    samples: usize,
}

impl Group<'_> {
    /// Sets the timed sample count for subsequent benchmarks in this
    /// group (overridden globally by `RECLOUD_BENCH_SAMPLES`).
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        assert!(samples >= 1, "need at least one sample");
        self.samples = samples;
        self
    }

    fn effective_samples(&self) -> usize {
        self.harness.samples_override.unwrap_or(self.samples).max(1)
    }

    /// Runs one benchmark; `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`] exactly once with the body to measure.
    pub fn bench_function(&mut self, id: impl std::fmt::Display, f: impl FnMut(&mut Bencher)) {
        self.run(id.to_string(), f);
    }

    /// Runs one benchmark parameterized by `input` (criterion's
    /// `bench_with_input`).
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        self.run(id.to_string(), |b| f(b, input));
    }

    fn run(&mut self, label: String, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            warmup: self.harness.warmup,
            samples: self.effective_samples(),
            times: Vec::new(),
        };
        f(&mut bencher);
        assert!(
            !bencher.times.is_empty(),
            "benchmark '{}/{label}' never called Bencher::iter",
            self.name
        );
        let (median, mad) = median_mad(&mut bencher.times);
        println!(
            "{:<44} median {:>12}  mad {:>10}  ({} samples)",
            format!("{}/{label}", self.name),
            format_duration(median),
            format_duration(mad),
            bencher.times.len(),
        );
        self.harness.reported += 1;
    }

    /// Ends the group (kept for criterion parity; reporting is per-bench).
    pub fn finish(self) {}
}

/// Times one benchmark body. Handed to the bench closure by [`Group`].
pub struct Bencher {
    warmup: usize,
    samples: usize,
    times: Vec<Duration>,
}

impl Bencher {
    /// Runs `f` untimed `warmup` times, then timed `samples` times,
    /// recording one duration per call. The return value is passed through
    /// [`black_box`] so the computation cannot be optimized away.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        for _ in 0..self.warmup {
            black_box(f());
        }
        self.times.reserve(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            self.times.push(t0.elapsed());
        }
    }
}

/// A `function/parameter` benchmark label (criterion's `BenchmarkId`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Label with a function name and a displayed parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { function: function.into(), parameter: Some(parameter.to_string()) }
    }

    /// Label with no parameter part.
    pub fn from_name(function: impl Into<String>) -> Self {
        BenchmarkId { function: function.into(), parameter: None }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.parameter {
            Some(p) => write!(f, "{}/{p}", self.function),
            None => write!(f, "{}", self.function),
        }
    }
}

/// Median and median-absolute-deviation of a sample set. Sorts in place.
pub fn median_mad(times: &mut [Duration]) -> (Duration, Duration) {
    assert!(!times.is_empty(), "no samples");
    times.sort_unstable();
    let median = midpoint(times);
    let mut deviations: Vec<Duration> =
        times.iter().map(|&t| if t > median { t - median } else { median - t }).collect();
    deviations.sort_unstable();
    let mad = midpoint(&deviations);
    (median, mad)
}

fn midpoint(sorted: &[Duration]) -> Duration {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2
    }
}

/// Adaptive human-readable duration: ns → µs → ms → s.
pub fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_mad_odd_and_even() {
        let mut odd: Vec<Duration> = [5, 1, 9].iter().map(|&n| Duration::from_nanos(n)).collect();
        let (m, mad) = median_mad(&mut odd);
        assert_eq!(m, Duration::from_nanos(5));
        assert_eq!(mad, Duration::from_nanos(4));

        let mut even: Vec<Duration> =
            [2, 4, 6, 100].iter().map(|&n| Duration::from_nanos(n)).collect();
        let (m, mad) = median_mad(&mut even);
        assert_eq!(m, Duration::from_nanos(5));
        // Deviations: 3, 1, 1, 95 → sorted 1, 1, 3, 95 → midpoint 2.
        assert_eq!(mad, Duration::from_nanos(2));
    }

    #[test]
    fn median_is_robust_to_one_outlier() {
        let mut times: Vec<Duration> =
            [10, 10, 10, 10, 10_000].iter().map(|&n| Duration::from_nanos(n)).collect();
        let (m, _) = median_mad(&mut times);
        assert_eq!(m, Duration::from_nanos(10));
    }

    #[test]
    fn bencher_runs_warmup_plus_samples() {
        let mut h = Harness { samples_override: None, warmup: 3, reported: 0 };
        let calls = std::cell::Cell::new(0usize);
        {
            let mut g = h.benchmark_group("selftest");
            g.sample_size(5);
            g.bench_function("count-calls", |b| {
                b.iter(|| calls.set(calls.get() + 1));
            });
            g.finish();
        }
        assert_eq!(calls.get(), 3 + 5);
        assert_eq!(h.reported(), 1);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("dagger", "tiny").to_string(), "dagger/tiny");
        assert_eq!(BenchmarkId::from_name("solo").to_string(), "solo");
    }

    #[test]
    fn format_duration_picks_units() {
        assert_eq!(format_duration(Duration::from_nanos(500)), "500 ns");
        assert!(format_duration(Duration::from_micros(500)).ends_with("µs"));
        assert!(format_duration(Duration::from_millis(500)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(500)).ends_with(" s"));
    }

    #[test]
    #[should_panic(expected = "never called Bencher::iter")]
    fn forgetting_iter_is_an_error() {
        let mut h = Harness { samples_override: None, warmup: 0, reported: 0 };
        h.benchmark_group("bad").bench_function("noop", |_b| {});
    }
}
