//! One function per table/figure of the paper's evaluation (§4), plus the
//! ablations called out in DESIGN.md. Each prints a text table whose rows
//! mirror the corresponding plot's series.

use crate::{fmt_ms, paper_env, redundancy_specs, time_ms, TextTable, REDUNDANCY};
use recloud_apps::{ApplicationSpec, DeploymentPlan, WorkloadMap};
use recloud_assess::{Assessor, ParallelAssessor, SamplerKind};
use recloud_faults::{FaultModel, ProbabilityConfig};
use recloud_sampling::Rng;
use recloud_search::{
    enhanced_common_practice, DeltaRule, HolisticObjective, ReliabilityObjective, SearchBudget,
    SearchConfig, Searcher, TemperatureSchedule,
};
use recloud_topology::Scale;
use std::time::Duration;

/// Knobs shared by all reproduction runs.
#[derive(Clone, Copy, Debug)]
pub struct ReproOptions {
    /// Shrink scales/rounds so the full suite finishes in ~a minute.
    pub quick: bool,
    /// Use the paper's original 3–300 s search budgets in Figure 9
    /// (default: a geometrically equivalent 0.5–16 s sweep).
    pub paper_times: bool,
    /// Also bench the XL [64512] stress scale (k = 64, beyond Table 2) in
    /// `bench-assess`.
    pub xl: bool,
    /// Master seed.
    pub seed: u64,
}

impl Default for ReproOptions {
    fn default() -> Self {
        ReproOptions { quick: false, paper_times: false, xl: false, seed: 1 }
    }
}

fn scales(opts: &ReproOptions) -> Vec<Scale> {
    if opts.quick {
        vec![Scale::Tiny, Scale::Small]
    } else {
        Scale::ALL.to_vec()
    }
}

fn head(title: &str) {
    println!();
    println!("== {title} ==");
}

/// Table 2: component counts of the four data-center presets.
pub fn table2() {
    head("Table 2: Data center topologies with external connectivity");
    let mut t = TextTable::new(vec!["", "Tiny", "Small", "Medium", "Large"]);
    let topos: Vec<_> = Scale::ALL.iter().map(|s| s.build()).collect();
    use recloud_topology::ComponentKind as CK;
    type CountFn = Box<dyn Fn(&recloud_topology::Topology) -> usize>;
    let rows: Vec<(&str, CountFn)> = vec![
        ("# ports per switch", Box::new(|t| t.fat_tree().unwrap().k as usize)),
        ("# core switches", Box::new(|t| t.count_kind(CK::CoreSwitch))),
        ("# agg switches", Box::new(|t| t.count_kind(CK::AggSwitch))),
        ("# edge switches", Box::new(|t| t.count_kind(CK::EdgeSwitch))),
        ("# border switches", Box::new(|t| t.count_kind(CK::BorderSwitch))),
        ("# hosts", Box::new(|t| t.count_kind(CK::Host))),
        ("# power supplies", Box::new(|t| t.count_kind(CK::PowerSupply))),
    ];
    for (label, f) in rows {
        let mut cells = vec![label.to_string()];
        for topo in &topos {
            cells.push(f(topo).to_string());
        }
        t.row(cells);
    }
    t.print();
}

/// Figure 7: dagger vs Monte-Carlo sampling time across scales.
pub fn fig7(opts: &ReproOptions) {
    head("Figure 7: Dagger sampling vs Monte-Carlo sampling (state generation time)");
    let round_counts: &[usize] =
        if opts.quick { &[1_000, 10_000] } else { &[1_000, 10_000, 100_000] };
    let mut t = TextTable::new(vec!["scale", "rounds", "dagger", "monte-carlo", "speedup"]);
    for scale in scales(opts) {
        let (topo, model) = paper_env(scale, opts.seed);
        let mut dagger = Assessor::with_sampler(&topo, model.clone(), SamplerKind::ExtendedDagger);
        let mut mc = Assessor::with_sampler(&topo, model, SamplerKind::MonteCarlo);
        for &rounds in round_counts {
            let d = dagger.sampling_time(rounds, opts.seed).as_secs_f64() * 1e3;
            let m = mc.sampling_time(rounds, opts.seed).as_secs_f64() * 1e3;
            t.row(vec![
                scale.label(),
                format!("{rounds}"),
                fmt_ms(d),
                fmt_ms(m),
                format!("{:.1}x", m / d.max(1e-9)),
            ]);
        }
    }
    t.print();
}

/// Figure 8: 95% confidence-interval width vs sampling rounds.
pub fn fig8(opts: &ReproOptions) {
    head("Figure 8: Accuracy of deployment assessment (95% CI width vs rounds)");
    let scale = if opts.quick { Scale::Small } else { Scale::Large };
    println!("scale: {}", scale.label());
    let round_counts: &[usize] =
        if opts.quick { &[1_000, 3_000, 10_000] } else { &[1_000, 3_000, 10_000, 30_000, 100_000] };
    let (topo, model) = paper_env(scale, opts.seed);
    let mut assessor = Assessor::new(&topo, model);
    let mut t = TextTable::new(vec!["redundancy", "rounds", "reliability", "ciw95"]);
    for (label, spec) in redundancy_specs() {
        let mut rng = Rng::new(opts.seed);
        let plan = DeploymentPlan::random(&spec, topo.hosts(), &mut rng);
        for &rounds in round_counts {
            let a = assessor.assess(&spec, &plan, rounds, opts.seed);
            t.row(vec![
                label.clone(),
                format!("{rounds}"),
                format!("{:.5}", a.estimate.score),
                format!("{:.2e}", a.estimate.ciw95()),
            ]);
        }
    }
    t.print();
}

/// Figure 9: reCloud (multi-objective) vs enhanced common practice.
pub fn fig9(opts: &ReproOptions) {
    head("Figure 9: reCloud vs enhanced common practice (CP), multi-objective");
    let scale = if opts.quick { Scale::Small } else { Scale::Large };
    let budgets_s: Vec<f64> = if opts.paper_times {
        vec![3.0, 6.0, 15.0, 30.0, 60.0, 150.0, 300.0]
    } else if opts.quick {
        vec![0.5, 1.0, 2.0]
    } else {
        vec![0.5, 1.0, 2.0, 4.0, 8.0, 16.0]
    };
    println!("scale: {} (budgets scaled; see DESIGN.md substitution #4)", scale.label());
    let (topo, model) = paper_env(scale, opts.seed);
    let workload = WorkloadMap::paper_default(&topo, opts.seed);
    let rounds = if opts.quick { 2_000 } else { 10_000 };
    let mut t = TextTable::new(vec![
        "redundancy",
        "search budget",
        "reliability",
        "downtime h/yr",
        "plans",
        "sym-skips",
    ]);
    for (label, spec) in redundancy_specs() {
        // Enhanced common practice: negligible search time.
        let cp_plan = enhanced_common_practice(&topo, &workload, &spec);
        let mut assessor = Assessor::new(&topo, model.clone());
        let cp = assessor.assess(&spec, &cp_plan, rounds.max(50_000), opts.seed ^ 0xDEAD_BEEF);
        t.row(vec![
            label.clone(),
            "[CP]".into(),
            format!("{:.5}", cp.estimate.score),
            format!("{:.1}", cp.estimate.annual_downtime_hours()),
            "5".into(),
            "-".into(),
        ]);
        for &b in &budgets_s {
            let mut assessor = Assessor::new(&topo, model.clone());
            let mut searcher = Searcher::new(&mut assessor);
            let config = SearchConfig {
                budget: SearchBudget::WallClock(Duration::from_secs_f64(b)),
                rounds,
                ..SearchConfig::paper_default(opts.seed)
            };
            let obj = HolisticObjective::equal_weights(workload.clone());
            let out = searcher.search(&spec, &obj, &config, Some(&workload));
            // Independent validation assessment: the search's own best
            // score carries winner's-curse bias (it is a maximum over
            // noisy estimates), so re-assess the chosen plan on a fresh
            // sampling seed before reporting.
            let mut validator = Assessor::new(&topo, model.clone());
            let validated = validator.assess(
                &spec,
                &out.best_plan,
                rounds.max(50_000),
                opts.seed ^ 0xDEAD_BEEF,
            );
            t.row(vec![
                label.clone(),
                format!("{b}s"),
                format!("{:.5}", validated.estimate.score),
                format!("{:.1}", validated.estimate.annual_downtime_hours()),
                format!("{}", out.stats.plans_assessed),
                format!("{}", out.stats.symmetry_skips),
            ]);
        }
    }
    t.print();
}

fn time_per_plan(
    topo: &recloud_topology::Topology,
    model: &FaultModel,
    spec: &ApplicationSpec,
    rounds: usize,
    iters: usize,
    seed: u64,
) -> f64 {
    let mut assessor = Assessor::new(topo, model.clone());
    let mut searcher = Searcher::new(&mut assessor);
    let mut config = SearchConfig::iterations(iters, rounds, seed);
    config.use_symmetry = false; // "without the help of network transformations"
                                 // Full pipeline per plan (no shared-table shortcut), so the number is
                                 // comparable to the paper's per-plan evolve+assess cost.
    config.common_random_numbers = false;
    let (_out, ms) = time_ms(|| searcher.search(spec, &ReliabilityObjective, &config, None));
    ms / iters as f64
}

/// Figure 10: time to evolve + assess one plan, K-of-N settings.
pub fn fig10(opts: &ReproOptions) {
    head("Figure 10: Time to evolve and assess one deployment plan (single layer)");
    let rounds = if opts.quick { 2_000 } else { 10_000 };
    let iters = if opts.quick { 3 } else { 5 };
    let mut t = TextTable::new(vec!["scale", "redundancy", "ms/plan"]);
    for scale in scales(opts) {
        let (topo, model) = paper_env(scale, opts.seed);
        for &(k, n) in REDUNDANCY.iter() {
            let spec = ApplicationSpec::k_of_n(k, n);
            let ms = time_per_plan(&topo, &model, &spec, rounds, iters, opts.seed);
            t.row(vec![scale.label(), crate::redundancy_label(k, n), format!("{ms:.1}")]);
        }
    }
    t.print();
}

/// Figure 11: complex application structures (layers + microservices).
pub fn fig11(opts: &ReproOptions) {
    head("Figure 11: Complex application structures (time per plan)");
    let rounds = if opts.quick { 2_000 } else { 10_000 };
    let iters = if opts.quick { 2 } else { 3 };
    let mut structures: Vec<(String, ApplicationSpec)> = (1..=4)
        .map(|l| (format!("{l} layer(s)"), ApplicationSpec::layered(&vec![(4u32, 5u32); l])))
        .collect();
    for &(x, y) in &[(3u32, 5u32), (5, 10), (10, 20)] {
        structures
            .push((format!("microservice ({x}-{y})"), ApplicationSpec::microservice(x, y, 4, 5)));
    }
    let mut t = TextTable::new(vec!["scale", "structure", "instances", "ms/plan"]);
    for scale in scales(opts) {
        let (topo, model) = paper_env(scale, opts.seed);
        for (label, spec) in &structures {
            let total = spec.total_instances();
            if total > topo.num_hosts() {
                t.row(vec![
                    scale.label(),
                    label.clone(),
                    total.to_string(),
                    "n/a (exceeds hosts)".into(),
                ]);
                continue;
            }
            let ms = time_per_plan(&topo, &model, spec, rounds, iters, opts.seed);
            t.row(vec![scale.label(), label.clone(), total.to_string(), format!("{ms:.1}")]);
        }
    }
    t.print();
}

/// Figure 12: parallel execution (workers vs assessment time).
pub fn fig12(opts: &ReproOptions) {
    head("Figure 12: Parallel execution (time per deployment assessment)");
    let scale = if opts.quick { Scale::Small } else { Scale::Large };
    println!("scale: {}", scale.label());
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("hardware threads available: {cores}");
    if cores < 2 {
        println!("NOTE: on a single-core machine the worker pool can only exhibit the");
        println!("      overhead side of the paper's trade-off (serialization + context");
        println!("      setup); speedups require >= 2 cores. See EXPERIMENTS.md.");
    }
    let round_counts: &[usize] =
        if opts.quick { &[1_000, 10_000] } else { &[1_000, 10_000, 100_000] };
    let (topo, model) = paper_env(scale, opts.seed);
    let spec = ApplicationSpec::k_of_n(4, 5);
    let mut rng = Rng::new(opts.seed);
    let plan = DeploymentPlan::random(&spec, topo.hosts(), &mut rng);
    let mut t = TextTable::new(vec!["rounds", "workers", "time", "speedup vs 1"]);
    for &rounds in round_counts {
        let mut base_ms = 0.0f64;
        for workers in 1..=4usize {
            let engine = ParallelAssessor::new(&topo, model.clone(), workers);
            let (_a, ms) = time_ms(|| engine.assess(&spec, &plan, rounds, opts.seed));
            if workers == 1 {
                base_ms = ms;
            }
            t.row(vec![
                format!("{rounds}"),
                workers.to_string(),
                fmt_ms(ms),
                format!("{:.2}x", base_ms / ms.max(1e-9)),
            ]);
        }
    }
    t.print();
}

/// Ablation: Eq 5 log-ratio Δ vs classic absolute Δ.
pub fn ablation_delta(opts: &ReproOptions) {
    head("Ablation: acceptance delta rule (Eq 5 log-ratio vs classic absolute)");
    ablation_search(
        opts,
        |cfg, variant| {
            cfg.delta = if variant == 0 { DeltaRule::LogRatio } else { DeltaRule::Absolute };
        },
        &["log-ratio (paper)", "absolute (classic)"],
    );
}

/// Ablation: Eq 6 budget-linear temperature vs classic geometric cooling.
pub fn ablation_schedule(opts: &ReproOptions) {
    head("Ablation: temperature schedule (Eq 6 budget-linear vs geometric)");
    ablation_search(
        opts,
        |cfg, variant| {
            cfg.schedule = if variant == 0 {
                TemperatureSchedule::PaperLinear
            } else {
                TemperatureSchedule::classic()
            };
        },
        &["budget-linear (paper)", "geometric (classic)"],
    );
}

fn ablation_search(
    opts: &ReproOptions,
    mutate: impl Fn(&mut SearchConfig, usize),
    labels: &[&str],
) {
    let scale = if opts.quick { Scale::Tiny } else { Scale::Medium };
    let (topo, model) = paper_env(scale, opts.seed);
    let spec = ApplicationSpec::k_of_n(4, 5);
    let iters = if opts.quick { 20 } else { 60 };
    let rounds = if opts.quick { 1_000 } else { 4_000 };
    let seeds: &[u64] = &[11, 22, 33];
    let mut t = TextTable::new(vec!["variant", "seed", "best reliability", "worse accepted"]);
    for (variant, label) in labels.iter().enumerate() {
        for &seed in seeds {
            let mut assessor = Assessor::new(&topo, model.clone());
            let mut searcher = Searcher::new(&mut assessor);
            let mut config = SearchConfig::iterations(iters, rounds, seed);
            mutate(&mut config, variant);
            let out = searcher.search(&spec, &ReliabilityObjective, &config, None);
            t.row(vec![
                label.to_string(),
                seed.to_string(),
                format!("{:.5}", out.best_reliability),
                out.stats.worse_accepted.to_string(),
            ]);
        }
    }
    t.print();
}

/// Ablation: symmetry (network transformations) on vs off, in a
/// class-homogeneous world where symmetry has maximal leverage.
pub fn ablation_symmetry(opts: &ReproOptions) {
    head("Ablation: network-transformation symmetry check (homogeneous probabilities)");
    let scale = if opts.quick { Scale::Tiny } else { Scale::Medium };
    let topo = scale.build();
    let mut model = FaultModel::new(&topo, &ProbabilityConfig::Uniform(0.01), opts.seed);
    model.attach_power_dependencies(&topo);
    let spec = ApplicationSpec::k_of_n(4, 5);
    let iters = if opts.quick { 20 } else { 50 };
    let rounds = if opts.quick { 1_000 } else { 4_000 };
    let mut t =
        TextTable::new(vec!["symmetry", "plans assessed", "sym-skips", "elapsed", "reliability"]);
    for on in [true, false] {
        let mut assessor = Assessor::new(&topo, model.clone());
        let mut searcher = Searcher::new(&mut assessor);
        let mut config = SearchConfig::iterations(iters, rounds, opts.seed);
        config.use_symmetry = on;
        let (out, ms) = time_ms(|| searcher.search(&spec, &ReliabilityObjective, &config, None));
        t.row(vec![
            if on { "on (paper)" } else { "off" }.to_string(),
            out.stats.plans_assessed.to_string(),
            out.stats.symmetry_skips.to_string(),
            fmt_ms(ms),
            format!("{:.5}", out.best_reliability),
        ]);
    }
    t.print();
    println!("note: with symmetry on, equivalent neighbors are skipped without assessment;");
    println!("      the same iteration budget therefore covers more distinct plan shapes.");
}

/// Ablation: fault-tree reasoning on vs off — the correlated-failure
/// blind spot that motivates the paper.
pub fn ablation_fault_trees(opts: &ReproOptions) {
    head("Ablation: shared-dependency fault trees on vs off (same plan)");
    let scale = if opts.quick { Scale::Tiny } else { Scale::Medium };
    let topo = scale.build();
    let with = FaultModel::paper_default(&topo, opts.seed);
    let without = FaultModel::new(&topo, &ProbabilityConfig::PaperDefault, opts.seed);
    let rounds = if opts.quick { 10_000 } else { 50_000 };
    let mut t = TextTable::new(vec!["redundancy", "power deps", "reliability", "downtime h/yr"]);
    for (label, spec) in redundancy_specs() {
        let mut rng = Rng::new(opts.seed);
        let plan = DeploymentPlan::random(&spec, topo.hosts(), &mut rng);
        for (tag, model) in [("modeled", &with), ("ignored", &without)] {
            let mut assessor = Assessor::new(&topo, model.clone());
            let a = assessor.assess(&spec, &plan, rounds, opts.seed);
            t.row(vec![
                label.clone(),
                tag.to_string(),
                format!("{:.5}", a.estimate.score),
                format!("{:.1}", a.estimate.annual_downtime_hours()),
            ]);
        }
    }
    t.print();
    println!("note: ignoring shared power overestimates reliability — exactly the blind");
    println!("      spot reCloud exists to remove.");
}

/// One measured group of the route-and-check benchmark.
#[derive(Debug)]
pub struct AssessBenchGroup {
    /// Scale label ("Tiny", "Small", …).
    pub scale: String,
    /// "scalar" or "batched".
    pub mode: String,
    /// Median wall time of one cached-table assessment.
    pub median: Duration,
    /// Median absolute deviation of the samples.
    pub mad: Duration,
    /// Rounds routed-and-checked per second at the median.
    pub rounds_per_sec: f64,
    /// Resident bytes of the engine's reusable chunk arena (raw +
    /// collapsed scratch matrices) — the peak per-engine scratch
    /// footprint at this scale.
    pub arena_bytes: usize,
}

/// Benchmark of the route-and-check stage: scalar vs the 256-lane
/// wide-word kernel, on cached failure-state tables (so sampling and
/// collapse are paid once up front and the timed region is routing plus
/// checking only). Covers every Table 2 scale up to Large [27072], plus
/// the XL [64512] stress scale when `opts.xl` is set. Prints a table
/// and, when `json` is given, writes the results as a machine-readable
/// snapshot (see `BENCH_assess.json`).
pub fn bench_assess(opts: &ReproOptions, json: Option<&str>) {
    head("Bench: route-and-check, scalar vs 256-lane wide-word kernel");
    let rounds = 10_000usize;
    let samples: usize =
        std::env::var("RECLOUD_BENCH_SAMPLES").ok().and_then(|s| s.parse().ok()).unwrap_or(9);
    let spec_label = "4-of-5";
    let spec = ApplicationSpec::k_of_n(4, 5);
    let mut scales = if opts.quick { vec![Scale::Tiny, Scale::Small] } else { Scale::ALL.to_vec() };
    if opts.xl {
        scales.push(Scale::Xl);
    }
    println!("spec: {spec_label}, rounds: {rounds}, samples per group: {samples}");
    let mut groups: Vec<AssessBenchGroup> = Vec::new();
    let mut speedups: Vec<(String, f64)> = Vec::new();
    let mut t =
        TextTable::new(vec!["scale", "mode", "median", "mad", "rounds/s", "speedup", "arena"]);
    for scale in scales {
        let (topo, model) = paper_env(scale, opts.seed);
        let mut rng = Rng::new(opts.seed);
        let plan = DeploymentPlan::random(&spec, topo.hosts(), &mut rng);
        let mut medians = [Duration::ZERO; 2];
        for (mi, mode) in ["scalar", "batched"].iter().enumerate() {
            let mut assessor = Assessor::new(&topo, model.clone());
            assessor.set_batched(*mode == "batched");
            // Warm-up populates the table cache; timed runs are pure
            // route-and-check over the cached tables.
            assessor.assess(&spec, &plan, rounds, opts.seed);
            let mut times: Vec<Duration> = (0..samples)
                .map(|_| {
                    let t0 = std::time::Instant::now();
                    let a = assessor.assess(&spec, &plan, rounds, opts.seed);
                    assert_eq!(a.estimate.rounds, rounds as u64);
                    t0.elapsed()
                })
                .collect();
            let (median, mad) = crate::harness::median_mad(&mut times);
            medians[mi] = median;
            groups.push(AssessBenchGroup {
                scale: scale.label(),
                mode: mode.to_string(),
                median,
                mad,
                rounds_per_sec: rounds as f64 / median.as_secs_f64().max(1e-12),
                arena_bytes: assessor.arena_bytes(),
            });
        }
        let speedup = medians[0].as_secs_f64() / medians[1].as_secs_f64().max(1e-12);
        speedups.push((scale.label(), speedup));
        for g in &groups[groups.len() - 2..] {
            t.row(vec![
                g.scale.clone(),
                g.mode.clone(),
                fmt_ms(g.median.as_secs_f64() * 1e3),
                fmt_ms(g.mad.as_secs_f64() * 1e3),
                format!("{:.0}", g.rounds_per_sec),
                if g.mode == "batched" { format!("{speedup:.1}x") } else { "1.0x".to_string() },
                format!("{:.1} MB", g.arena_bytes as f64 / 1e6),
            ]);
        }
    }
    t.print();

    // Instrumentation overhead: the slowest benched scale re-timed with
    // instruments enabled vs disabled through the process-wide kill
    // switch. The assess layer records per *chunk*, never per round, so
    // the delta must stay within the ±2% acceptance band (noise can make
    // the raw difference slightly negative; that clamps to 0).
    let obs_overhead_pct = {
        let scale = if opts.quick { Scale::Small } else { Scale::Medium };
        let (topo, model) = paper_env(scale, opts.seed);
        let mut rng = Rng::new(opts.seed);
        let plan = DeploymentPlan::random(&spec, topo.hosts(), &mut rng);
        let mut assessor = Assessor::new(&topo, model);
        assessor.set_batched(true);
        assessor.assess(&spec, &plan, rounds, opts.seed); // warm the table cache

        // A single batched assessment is ~tens of microseconds, so one
        // timed call would drown the delta in scheduler jitter. Each
        // sample times a batch of calls, phases alternate so slow drift
        // (thermal, background load) hits both equally, and the minimum
        // is kept — interference only ever adds time, so the min is the
        // cleanest estimate of the true cost of each phase.
        const CALLS_PER_SAMPLE: u32 = 32;
        let mut time_batch = |enabled: bool| {
            recloud_obs::set_enabled(enabled);
            let t0 = std::time::Instant::now();
            for _ in 0..CALLS_PER_SAMPLE {
                assessor.assess(&spec, &plan, rounds, opts.seed);
            }
            t0.elapsed() / CALLS_PER_SAMPLE
        };
        let (mut on, mut off) = (Duration::MAX, Duration::MAX);
        for _ in 0..samples.max(15) {
            on = on.min(time_batch(true));
            off = off.min(time_batch(false));
        }
        recloud_obs::set_enabled(true);
        let pct = 100.0 * (on.as_secs_f64() - off.as_secs_f64()) / off.as_secs_f64().max(1e-12);
        println!(
            "instrumentation overhead ({}, batched): enabled {} vs disabled {} -> {:.2}%",
            scale.label(),
            fmt_ms(on.as_secs_f64() * 1e3),
            fmt_ms(off.as_secs_f64() * 1e3),
            pct
        );
        pct.max(0.0)
    };

    if let Some(path) = json {
        let instruments = recloud_obs::global().snapshot();
        let body = assess_bench_json(
            rounds,
            spec_label,
            samples,
            &groups,
            &speedups,
            obs_overhead_pct,
            &instruments,
        );
        std::fs::write(path, body).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {path}");
    }
}

/// Hand-rolled JSON encoding of the route-and-check benchmark results
/// (the workspace has no serde; the shape is pinned by a test).
fn assess_bench_json(
    rounds: usize,
    spec: &str,
    samples: usize,
    groups: &[AssessBenchGroup],
    speedups: &[(String, f64)],
    obs_overhead_pct: f64,
    instruments: &recloud_obs::MetricsSnapshot,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"benchmark\": \"assess-route-and-check\",\n");
    s.push_str(&format!("  \"rounds\": {rounds},\n"));
    s.push_str(&format!("  \"spec\": \"{spec}\",\n"));
    s.push_str(&format!("  \"samples\": {samples},\n"));
    s.push_str("  \"groups\": [\n");
    for (i, g) in groups.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"scale\": \"{}\", \"mode\": \"{}\", \"median_ns\": {}, \"mad_ns\": {}, \
             \"rounds_per_sec\": {:.1}, \"arena_bytes\": {}}}{}\n",
            g.scale,
            g.mode,
            g.median.as_nanos(),
            g.mad.as_nanos(),
            g.rounds_per_sec,
            g.arena_bytes,
            if i + 1 < groups.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"speedups\": [\n");
    for (i, (scale, x)) in speedups.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"scale\": \"{scale}\", \"batched_over_scalar\": {x:.2}}}{}\n",
            if i + 1 < speedups.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!("  \"obs_overhead_pct\": {obs_overhead_pct:.2},\n"));
    s.push_str(&format!("  \"instruments\": {}\n", instruments.to_json()));
    s.push_str("}\n");
    s
}

/// One measured phase of the serving benchmark.
pub struct ServeBenchPhase {
    /// "uncached" (fresh seed per request) or "cached" (identical requests).
    pub phase: &'static str,
    /// What the load generator measured.
    pub report: recloud_server::LoadReport,
}

/// One streaming-overhead measurement: the same uncached request mix run
/// over plain `AssessPlan` and over `AssessStream` at cadence 1 (a
/// `Partial` frame per chunk — the worst case for framing overhead).
pub struct StreamOverheadRow {
    /// Route-and-check rounds per request.
    pub rounds: u32,
    /// The plain (non-streamed) run.
    pub plain: recloud_server::LoadReport,
    /// The streamed run.
    pub streamed: recloud_server::LoadReport,
}

impl StreamOverheadRow {
    /// Throughput lost to streaming, percent of the plain rate.
    pub fn overhead_pct(&self) -> f64 {
        if self.plain.throughput_rps <= 0.0 {
            return 0.0;
        }
        100.0 * (1.0 - self.streamed.throughput_rps / self.plain.throughput_rps)
    }
}

/// One connection-count frontier measurement: a fleet of idle
/// connections is attached to the reactor, then the cached request mix
/// re-runs and records its tail latency. Flat p99 across fleet sizes is
/// the readiness-polling payoff — idle sockets cost the event loop a
/// table entry, not a thread.
pub struct ConnectionFrontierRow {
    /// Idle connections attached while the probe mix ran.
    pub connections: usize,
    /// The cached probe mix under that fleet.
    pub report: recloud_server::LoadReport,
}

/// The tenant-isolation measurement: a "hog" tenant saturating a budget
/// of one inflight request while a "victim" tenant replays its cached
/// mix. The hog absorbs `Busy` rejections; the victim's p99 should stay
/// near its solo baseline.
pub struct TenantIsolationRow {
    /// Per-tenant admission budget the daemon ran with.
    pub budget: usize,
    /// The victim mix with the daemon to itself.
    pub solo: recloud_server::LoadReport,
    /// The same victim mix while the hog saturated its budget.
    pub victim: recloud_server::LoadReport,
    /// The hog's own report (mostly `Busy`).
    pub hog: recloud_server::LoadReport,
}

/// One warm-start measurement: a store-backed daemon is populated with
/// distinct-seed entries, dropped, and restarted on the same log.
pub struct WarmStartRow {
    /// Distinct assessments written to the store before the restart.
    pub entries: usize,
    /// Wall-clock spent in `Server::bind` replaying the log.
    pub replay_ms: f64,
    /// `store.replayed_total` after the restart.
    pub replayed: u64,
    /// Fraction of the identical post-restart request mix served as hits.
    pub hit_rate: f64,
}

/// Bench: the placement-as-a-service daemon under client load — an
/// in-process server on an ephemeral port, hit first with a cache-miss
/// mix (every request a fresh master seed → every request runs the
/// assessor) and then with a cache-hit mix (identical requests → after
/// one miss the LRU cache answers everything). Prints a table and, with
/// `json`, writes `BENCH_serve.json`.
pub fn bench_serve(opts: &ReproOptions, json: Option<&str>) {
    use recloud_server::{Client, LoadgenConfig, Server, ServerConfig};
    head("Bench: placement-as-a-service daemon, uncached vs cached");
    let rounds = 1_000u32;
    let config =
        ServerConfig { workers: ServerConfig::default().workers.min(4), ..ServerConfig::default() };
    let server = Server::bind(("127.0.0.1", 0), config.clone()).expect("bind ephemeral port");
    let addr = server.local_addr().to_string();
    println!(
        "server: {addr}, {} workers, queue {}, cache {}",
        config.workers, config.queue_capacity, config.cache_capacity
    );
    let mut phases: Vec<ServeBenchPhase> = Vec::new();
    let mut overhead: Vec<StreamOverheadRow> = Vec::new();
    let mut frontier: Vec<ConnectionFrontierRow> = Vec::new();
    let mut instruments = recloud_obs::MetricsSnapshot::default();
    std::thread::scope(|scope| {
        scope.spawn(|| server.run());
        let base = LoadgenConfig {
            addr: addr.clone(),
            connections: 4,
            preset: recloud_server::Preset::Tiny,
            rounds,
            seed: opts.seed,
            ..LoadgenConfig::default()
        };
        let uncached = LoadgenConfig {
            requests: if opts.quick { 200 } else { 600 },
            distinct_seeds: true,
            ..base.clone()
        };
        phases.push(ServeBenchPhase {
            phase: "uncached",
            report: recloud_server::run_load(&uncached).expect("uncached phase"),
        });
        let cached = LoadgenConfig {
            requests: if opts.quick { 2_000 } else { 10_000 },
            distinct_seeds: false,
            ..base.clone()
        };
        phases.push(ServeBenchPhase {
            phase: "cached",
            report: recloud_server::run_load(&cached).expect("cached phase"),
        });
        // Streaming overhead: the same uncached mix plain vs streamed at
        // cadence 1. Distinct base seeds per run keep both sides out of
        // the result cache, so the comparison is pure framing cost.
        for case_rounds in [10_000u32, 100_000] {
            let requests = if opts.quick { 8 } else { 24 };
            let plain_cfg = LoadgenConfig {
                requests,
                rounds: case_rounds,
                distinct_seeds: true,
                seed: opts.seed ^ (case_rounds as u64),
                ..base.clone()
            };
            let stream_cfg = LoadgenConfig {
                stream: true,
                cadence: 1,
                seed: plain_cfg.seed ^ 0x5151_5151,
                ..plain_cfg.clone()
            };
            overhead.push(StreamOverheadRow {
                rounds: case_rounds,
                plain: recloud_server::run_load(&plain_cfg).expect("plain overhead phase"),
                streamed: recloud_server::run_load(&stream_cfg).expect("streamed overhead phase"),
            });
        }
        // Connection-count frontier: attach a fleet of idle clients,
        // then re-run the cached mix. The reactor polls the idle
        // sockets from its readiness table, so the probe's p99 should
        // barely move between 1 and 1000 attached connections.
        for fleet_size in [1usize, 64, 256, 1_000] {
            let mut fleet = Vec::with_capacity(fleet_size);
            for i in 0..fleet_size {
                let mut c = Client::connect(&addr).expect("frontier fleet connect");
                c.set_timeout(Some(Duration::from_secs(60))).expect("frontier fleet timeout");
                assert_eq!(c.ping(i as u64).expect("frontier fleet ping"), i as u64);
                fleet.push(c);
            }
            let probe = LoadgenConfig {
                requests: if opts.quick { 500 } else { 2_000 },
                distinct_seeds: false,
                ..base.clone()
            };
            frontier.push(ConnectionFrontierRow {
                connections: fleet_size,
                report: recloud_server::run_load(&probe).expect("frontier probe"),
            });
            drop(fleet);
        }
        let mut client = Client::connect(&addr).expect("metrics connection");
        instruments = client.metrics(0).expect("metrics frame").snapshot;
        client.shutdown().expect("shutdown frame");
    });
    // Warm start: populate a store-backed daemon with a distinct-seed
    // mix, drop it, time how long the restart spends replaying the log,
    // then replay the identical mix — every request should come back as
    // a hit without an assessor run.
    let store_dir = std::env::temp_dir().join(format!("recloud-bench-warm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let entries = if opts.quick { 100 } else { 400 };
    let store_config = ServerConfig { store_dir: Some(store_dir.clone()), ..config.clone() };
    let fill = LoadgenConfig {
        addr: String::new(), // patched per daemon below
        requests: entries,
        connections: 4,
        preset: recloud_server::Preset::Tiny,
        rounds,
        seed: opts.seed ^ 0x57a7_57a7,
        distinct_seeds: true,
        ..LoadgenConfig::default()
    };
    let populate = Server::bind(("127.0.0.1", 0), store_config.clone()).expect("bind store server");
    let addr = populate.local_addr().to_string();
    std::thread::scope(|scope| {
        scope.spawn(|| populate.run());
        recloud_server::run_load(&LoadgenConfig { addr: addr.clone(), ..fill.clone() })
            .expect("populate phase");
        let mut client = Client::connect(&addr).expect("populate connection");
        client.shutdown().expect("populate shutdown");
    });
    let replay_start = std::time::Instant::now();
    let warmed = Server::bind(("127.0.0.1", 0), store_config).expect("bind warmed server");
    let replay_ms = replay_start.elapsed().as_secs_f64() * 1e3;
    let addr = warmed.local_addr().to_string();
    let mut warm_start: Vec<WarmStartRow> = Vec::new();
    std::thread::scope(|scope| {
        scope.spawn(|| warmed.run());
        let report =
            recloud_server::run_load(&LoadgenConfig { addr: addr.clone(), ..fill.clone() })
                .expect("warm phase");
        let mut client = Client::connect(&addr).expect("warm connection");
        let snap = client.metrics(0).expect("warm metrics").snapshot;
        client.shutdown().expect("warm shutdown");
        warm_start.push(WarmStartRow {
            entries,
            replay_ms,
            replayed: snap.counter("store.replayed_total").unwrap_or(0),
            hit_rate: report.cached as f64 / report.ok.max(1) as f64,
        });
    });
    let _ = std::fs::remove_dir_all(&store_dir);
    // Tenant isolation: a daemon pinned to one inflight request per
    // tenant. The victim records a solo baseline, then replays the same
    // mix while a hog tenant floods distinct-seed long assessments —
    // the hog eats `Busy`, the victim's tail should barely move.
    let budget = 1usize;
    let tenant_config = ServerConfig { tenant_budget: Some(budget), ..config.clone() };
    let tenant_server = Server::bind(("127.0.0.1", 0), tenant_config).expect("bind tenant server");
    let addr = tenant_server.local_addr().to_string();
    let mut isolation: Option<TenantIsolationRow> = None;
    std::thread::scope(|scope| {
        scope.spawn(|| tenant_server.run());
        let victim = LoadgenConfig {
            addr: addr.clone(),
            requests: if opts.quick { 500 } else { 2_000 },
            connections: 2,
            preset: recloud_server::Preset::Tiny,
            rounds,
            seed: opts.seed ^ 0x7e4a_7e4a,
            tenant: Some("victim".into()),
            ..LoadgenConfig::default()
        };
        let solo = recloud_server::run_load(&victim).expect("victim solo phase");
        let hog = LoadgenConfig {
            requests: if opts.quick { 64 } else { 128 },
            connections: 4,
            rounds: if opts.quick { 50_000 } else { 100_000 },
            distinct_seeds: true,
            seed: opts.seed ^ 0x9099_9099,
            tenant: Some("hog".into()),
            ..victim.clone()
        };
        let hog_handle = scope.spawn(move || recloud_server::run_load(&hog).expect("hog phase"));
        std::thread::sleep(Duration::from_millis(50));
        let contended = recloud_server::run_load(&victim).expect("victim contended phase");
        let hog_report = hog_handle.join().expect("hog thread");
        let mut client = Client::connect(&addr).expect("tenant shutdown connection");
        client.shutdown().expect("tenant shutdown");
        isolation = Some(TenantIsolationRow { budget, solo, victim: contended, hog: hog_report });
    });
    let isolation = isolation.expect("tenant isolation row");
    let mut t = TextTable::new(vec!["phase", "ok", "cached", "busy", "req/s", "p50", "p95"]);
    for p in &phases {
        let r = &p.report;
        t.row(vec![
            p.phase.to_string(),
            r.ok.to_string(),
            r.cached.to_string(),
            r.busy.to_string(),
            format!("{:.0}", r.throughput_rps),
            format!("{} us", r.p50_us),
            format!("{} us", r.p95_us),
        ]);
    }
    t.print();
    let mut t =
        TextTable::new(vec!["rounds", "plain req/s", "stream req/s", "partials/req", "overhead"]);
    for row in &overhead {
        t.row(vec![
            row.rounds.to_string(),
            format!("{:.0}", row.plain.throughput_rps),
            format!("{:.0}", row.streamed.throughput_rps),
            format!("{:.0}", row.streamed.partials as f64 / row.streamed.ok.max(1) as f64),
            format!("{:.1}%", row.overhead_pct()),
        ]);
    }
    t.print();
    let mut t = TextTable::new(vec!["idle conns", "ok", "req/s", "p50", "p95", "p99"]);
    for row in &frontier {
        let r = &row.report;
        t.row(vec![
            row.connections.to_string(),
            r.ok.to_string(),
            format!("{:.0}", r.throughput_rps),
            format!("{} us", r.p50_us),
            format!("{} us", r.p95_us),
            format!("{} us", r.p99_us),
        ]);
    }
    t.print();
    println!(
        "tenant isolation (budget {}): victim p99 {} us solo -> {} us contended; \
         hog {} served / {} busy",
        isolation.budget,
        isolation.solo.p99_us,
        isolation.victim.p99_us,
        isolation.hog.ok,
        isolation.hog.busy
    );
    let hits = instruments.counter("server.cache_hits_total").unwrap_or(0);
    let misses = instruments.counter("server.cache_misses_total").unwrap_or(0);
    println!(
        "server cache: {hits} hits / {misses} misses (hit rate {:.1}%)",
        100.0 * hits as f64 / (hits + misses).max(1) as f64
    );
    for w in &warm_start {
        println!(
            "warm start: {} entries replayed in {:.1} ms ({} ops), post-restart hit rate {:.1}%",
            w.entries,
            w.replay_ms,
            w.replayed,
            100.0 * w.hit_rate
        );
    }
    if let Some(path) = json {
        let body = serve_bench_json(
            rounds,
            config.workers,
            &phases,
            &overhead,
            &frontier,
            &isolation,
            &warm_start,
            &instruments,
        );
        std::fs::write(path, body).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {path}");
    }
}

/// Hand-rolled JSON encoding of the serving benchmark (shape pinned by a
/// test, like `assess_bench_json`).
#[allow(clippy::too_many_arguments)]
fn serve_bench_json(
    rounds: u32,
    workers: usize,
    phases: &[ServeBenchPhase],
    overhead: &[StreamOverheadRow],
    frontier: &[ConnectionFrontierRow],
    isolation: &TenantIsolationRow,
    warm_start: &[WarmStartRow],
    instruments: &recloud_obs::MetricsSnapshot,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"benchmark\": \"serve\",\n");
    s.push_str("  \"preset\": \"Tiny\",\n");
    s.push_str(&format!("  \"rounds\": {rounds},\n"));
    s.push_str(&format!("  \"workers\": {workers},\n"));
    s.push_str("  \"phases\": [\n");
    for (i, p) in phases.iter().enumerate() {
        let r = &p.report;
        s.push_str(&format!(
            "    {{\"phase\": \"{}\", \"ok\": {}, \"cached\": {}, \"busy\": {}, \
             \"errors\": {}, \"throughput_rps\": {:.1}, \"p50_us\": {}, \"p95_us\": {}, \
             \"p99_us\": {}}}{}\n",
            p.phase,
            r.ok,
            r.cached,
            r.busy,
            r.errors,
            r.throughput_rps,
            r.p50_us,
            r.p95_us,
            r.p99_us,
            if i + 1 < phases.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"stream_overhead\": [\n");
    for (i, row) in overhead.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"rounds\": {}, \"plain_rps\": {:.1}, \"stream_rps\": {:.1}, \
             \"partials_per_request\": {:.1}, \"overhead_pct\": {:.2}}}{}\n",
            row.rounds,
            row.plain.throughput_rps,
            row.streamed.throughput_rps,
            row.streamed.partials as f64 / row.streamed.ok.max(1) as f64,
            row.overhead_pct(),
            if i + 1 < overhead.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"connection_frontier\": [\n");
    for (i, row) in frontier.iter().enumerate() {
        let r = &row.report;
        s.push_str(&format!(
            "    {{\"connections\": {}, \"ok\": {}, \"throughput_rps\": {:.1}, \
             \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}}}{}\n",
            row.connections,
            r.ok,
            r.throughput_rps,
            r.p50_us,
            r.p95_us,
            r.p99_us,
            if i + 1 < frontier.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"tenant_isolation\": {{\"budget\": {}, \"solo_p99_us\": {}, \
         \"contended_p99_us\": {}, \"victim_busy\": {}, \"hog_ok\": {}, \"hog_busy\": {}}},\n",
        isolation.budget,
        isolation.solo.p99_us,
        isolation.victim.p99_us,
        isolation.victim.busy,
        isolation.hog.ok,
        isolation.hog.busy
    ));
    s.push_str("  \"warm_start\": [\n");
    for (i, w) in warm_start.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"entries\": {}, \"replay_ms\": {:.2}, \"replayed_ops\": {}, \
             \"hit_rate\": {:.4}}}{}\n",
            w.entries,
            w.replay_ms,
            w.replayed,
            w.hit_rate,
            if i + 1 < warm_start.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    // Cache totals come from the instrument counters — the daemon-wide
    // source of truth the legacy StatsResponse duplicated.
    let hits = instruments.counter("server.cache_hits_total").unwrap_or(0);
    let misses = instruments.counter("server.cache_misses_total").unwrap_or(0);
    s.push_str(&format!(
        "  \"cache\": {{\"hits\": {hits}, \"misses\": {misses}, \"hit_rate\": {:.4}}},\n",
        hits as f64 / (hits + misses).max(1) as f64
    ));
    s.push_str(&format!("  \"instruments\": {}\n", instruments.to_json()));
    s.push_str("}\n");
    s
}

/// One chain-count group of the parallel-search benchmark.
pub struct SearchBenchGroup {
    /// Population size.
    pub chains: usize,
    /// Plans assessed across the whole population.
    pub plans: u64,
    /// Plans assessed per wall-clock second.
    pub plans_per_sec: f64,
    /// Best reliability the population reached.
    pub best_reliability: f64,
    /// Wall-clock of the whole search.
    pub elapsed: Duration,
}

/// Exchange-overhead measurement: the same deterministic iteration
/// budget run with best-plan exchange on (the default cadence) and off
/// (`exchange_every = 0`, independent restarts). The difference is the
/// pure cost of the coordinator rendezvous.
pub struct ExchangeOverhead {
    /// Population size of both runs.
    pub chains: usize,
    /// Per-chain iteration budget of both runs.
    pub iters: usize,
    /// Wall-clock with the default exchange cadence.
    pub with_exchange: Duration,
    /// Wall-clock with exchange disabled.
    pub without_exchange: Duration,
}

impl ExchangeOverhead {
    /// Rendezvous cost, percent of the exchange-free wall-clock. Noise
    /// can push the raw value slightly negative; that clamps to 0.
    pub fn overhead_pct(&self) -> f64 {
        let base = self.without_exchange.as_secs_f64().max(1e-12);
        (100.0 * (self.with_exchange.as_secs_f64() - base) / base).max(0.0)
    }
}

/// Bench: the population-based parallel annealer — plans assessed per
/// second at 1/2/4 chains under the same wall-clock budget, plus the
/// best-plan-exchange overhead at a fixed iteration budget. Prints a
/// table and, with `json`, writes `BENCH_search.json`. The 1→4 chain
/// scaling target (≥ 3×) needs ≥ 4 hardware threads; the recorded
/// available parallelism makes the snapshot interpretable either way
/// (same posture as Fig 12, see DESIGN.md).
pub fn bench_search(opts: &ReproOptions, json: Option<&str>) {
    use recloud_search::{ParallelSearchConfig, ParallelSearcher};
    head("Bench: population-based parallel annealing, plans/s by chain count");
    let rounds = if opts.quick { 1_000 } else { 2_000 };
    let budget_ms: u64 = if opts.quick { 250 } else { 1_000 };
    let spec_label = "2-of-3";
    let spec = ApplicationSpec::k_of_n(2, 3);
    let parallelism = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let (topo, model) = paper_env(Scale::Tiny, opts.seed);
    println!(
        "preset: Tiny, spec: {spec_label}, rounds: {rounds}, budget: {budget_ms} ms, \
         available parallelism: {parallelism}"
    );

    let mut groups: Vec<SearchBenchGroup> = Vec::new();
    for chains in [1usize, 2, 4] {
        let searcher = ParallelSearcher::new(&topo, model.clone());
        let base = SearchConfig {
            budget: SearchBudget::WallClock(Duration::from_millis(budget_ms)),
            rounds,
            ..SearchConfig::paper_default(opts.seed)
        };
        let config = ParallelSearchConfig::new(chains, base);
        let outcome = searcher.search(&spec, &ReliabilityObjective, &config, None, None);
        groups.push(SearchBenchGroup {
            chains,
            plans: outcome.combined.plans_assessed as u64,
            plans_per_sec: outcome.combined.plans_assessed as f64
                / outcome.elapsed.as_secs_f64().max(1e-9),
            best_reliability: outcome.best.best_reliability,
            elapsed: outcome.elapsed,
        });
    }
    let mut t = TextTable::new(vec!["chains", "plans", "plans/s", "best R", "elapsed", "vs 1"]);
    for g in &groups {
        t.row(vec![
            g.chains.to_string(),
            g.plans.to_string(),
            format!("{:.0}", g.plans_per_sec),
            format!("{:.5}", g.best_reliability),
            fmt_ms(g.elapsed.as_secs_f64() * 1e3),
            format!("{:.2}x", g.plans as f64 / groups[0].plans.max(1) as f64),
        ]);
    }
    t.print();
    let scaling = groups.last().unwrap().plans as f64 / groups[0].plans.max(1) as f64;
    println!(
        "4-chain over 1-chain plans: {scaling:.2}x (the >= 3x target needs >= 4 hardware \
         threads; this machine has {parallelism})"
    );

    // Exchange overhead: identical deterministic budgets, rendezvous on
    // vs off; the minimum of a few runs filters scheduler interference.
    let iters = if opts.quick { 150 } else { 400 };
    let exchange_samples = if opts.quick { 2 } else { 3 };
    let time_exchange = |exchange_every: usize| {
        let searcher = ParallelSearcher::new(&topo, model.clone());
        let base = SearchConfig {
            budget: SearchBudget::Iterations(iters),
            rounds,
            ..SearchConfig::paper_default(opts.seed)
        };
        let mut config = ParallelSearchConfig::new(4, base);
        config.exchange_every = exchange_every;
        (0..exchange_samples)
            .map(|_| searcher.search(&spec, &ReliabilityObjective, &config, None, None).elapsed)
            .min()
            .unwrap()
    };
    let exchange = ExchangeOverhead {
        chains: 4,
        iters,
        with_exchange: time_exchange(ParallelSearchConfig::DEFAULT_EXCHANGE_EVERY),
        without_exchange: time_exchange(0),
    };
    println!(
        "exchange overhead (4 chains, {iters} iters each): with {} vs without {} -> {:.1}%",
        fmt_ms(exchange.with_exchange.as_secs_f64() * 1e3),
        fmt_ms(exchange.without_exchange.as_secs_f64() * 1e3),
        exchange.overhead_pct()
    );

    if let Some(path) = json {
        let instruments = recloud_obs::global().snapshot();
        let body = search_bench_json(
            rounds,
            spec_label,
            budget_ms,
            parallelism,
            &groups,
            scaling,
            &exchange,
            &instruments,
        );
        std::fs::write(path, body).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {path}");
    }
}

/// Hand-rolled JSON encoding of the parallel-search benchmark (shape
/// pinned by a test, like `assess_bench_json`).
#[allow(clippy::too_many_arguments)]
fn search_bench_json(
    rounds: usize,
    spec: &str,
    budget_ms: u64,
    parallelism: usize,
    groups: &[SearchBenchGroup],
    scaling: f64,
    exchange: &ExchangeOverhead,
    instruments: &recloud_obs::MetricsSnapshot,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"benchmark\": \"search-parallel-annealing\",\n");
    s.push_str("  \"preset\": \"Tiny\",\n");
    s.push_str(&format!("  \"spec\": \"{spec}\",\n"));
    s.push_str(&format!("  \"rounds\": {rounds},\n"));
    s.push_str(&format!("  \"budget_ms\": {budget_ms},\n"));
    s.push_str(&format!("  \"available_parallelism\": {parallelism},\n"));
    s.push_str("  \"groups\": [\n");
    for (i, g) in groups.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"chains\": {}, \"plans\": {}, \"plans_per_sec\": {:.1}, \
             \"best_reliability\": {:.6}, \"elapsed_ms\": {:.1}}}{}\n",
            g.chains,
            g.plans,
            g.plans_per_sec,
            g.best_reliability,
            g.elapsed.as_secs_f64() * 1e3,
            if i + 1 < groups.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!("  \"scaling_4_over_1\": {scaling:.2},\n"));
    s.push_str(&format!(
        "  \"exchange\": {{\"chains\": {}, \"iters\": {}, \"with_exchange_ms\": {:.1}, \
         \"without_exchange_ms\": {:.1}, \"overhead_pct\": {:.2}}},\n",
        exchange.chains,
        exchange.iters,
        exchange.with_exchange.as_secs_f64() * 1e3,
        exchange.without_exchange.as_secs_f64() * 1e3,
        exchange.overhead_pct()
    ));
    s.push_str(&format!("  \"instruments\": {}\n", instruments.to_json()));
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assess_bench_json_shape_is_stable() {
        let groups = vec![
            AssessBenchGroup {
                scale: "Tiny".into(),
                mode: "scalar".into(),
                median: Duration::from_nanos(1_500),
                mad: Duration::from_nanos(20),
                rounds_per_sec: 100.0,
                arena_bytes: 123_456,
            },
            AssessBenchGroup {
                scale: "Tiny".into(),
                mode: "batched".into(),
                median: Duration::from_nanos(500),
                mad: Duration::from_nanos(10),
                rounds_per_sec: 300.0,
                arena_bytes: 123_456,
            },
        ];
        let speedups = vec![("Tiny".to_string(), 3.0)];
        let r = recloud_obs::Registry::new();
        r.counter("assess.rounds_total").add(20_000);
        r.histogram("assess.total_us").record(1_250);
        let body = assess_bench_json(10_000, "4-of-5", 9, &groups, &speedups, 0.37, &r.snapshot());
        assert!(body.starts_with("{\n"));
        assert!(body.ends_with("}\n"));
        assert!(body.contains("\"benchmark\": \"assess-route-and-check\""));
        assert!(body.contains("\"median_ns\": 1500"));
        assert!(body.contains("\"arena_bytes\": 123456"));
        assert!(body.contains("\"batched_over_scalar\": 3.00"));
        assert!(body.contains("\"obs_overhead_pct\": 0.37"));
        assert!(body.contains("\"instruments\": {\"counters\":{"));
        assert!(body.contains("\"assess.rounds_total\":20000"));
        assert!(body.contains("\"assess.total_us\":{\"count\":1"));
        // Balanced braces/brackets — the cheap no-serde well-formedness check.
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                body.matches(open).count(),
                body.matches(close).count(),
                "unbalanced {open}{close}"
            );
        }
        // Exactly one JSON object per group plus the two speedup/top objects.
        assert_eq!(body.matches("\"mode\"").count(), 2);
    }

    #[test]
    fn search_bench_json_shape_is_stable() {
        let groups = vec![
            SearchBenchGroup {
                chains: 1,
                plans: 420,
                plans_per_sec: 420.0,
                best_reliability: 0.999_25,
                elapsed: Duration::from_millis(1_000),
            },
            SearchBenchGroup {
                chains: 4,
                plans: 1_400,
                plans_per_sec: 1_400.0,
                best_reliability: 0.999_31,
                elapsed: Duration::from_millis(1_000),
            },
        ];
        let exchange = ExchangeOverhead {
            chains: 4,
            iters: 400,
            with_exchange: Duration::from_millis(210),
            without_exchange: Duration::from_millis(200),
        };
        let r = recloud_obs::Registry::new();
        r.counter("search.plans_assessed_total").add(1_820);
        let body =
            search_bench_json(2_000, "2-of-3", 1_000, 4, &groups, 3.33, &exchange, &r.snapshot());
        assert!(body.starts_with("{\n"));
        assert!(body.ends_with("}\n"));
        assert!(body.contains("\"benchmark\": \"search-parallel-annealing\""));
        assert!(body.contains("\"available_parallelism\": 4"));
        assert!(body.contains("\"chains\": 1, \"plans\": 420"));
        assert!(body.contains("\"scaling_4_over_1\": 3.33"));
        assert!(body.contains("\"with_exchange_ms\": 210.0"));
        assert!(body.contains("\"overhead_pct\": 5.00"));
        assert!(body.contains("\"search.plans_assessed_total\":1820"));
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                body.matches(open).count(),
                body.matches(close).count(),
                "unbalanced {open}{close}"
            );
        }
        assert_eq!(body.matches("\"chains\":").count(), 3, "two groups + the exchange block");
    }

    #[test]
    fn exchange_overhead_clamps_noise_to_zero() {
        let e = ExchangeOverhead {
            chains: 4,
            iters: 100,
            with_exchange: Duration::from_millis(95),
            without_exchange: Duration::from_millis(100),
        };
        assert_eq!(e.overhead_pct(), 0.0);
    }

    #[test]
    fn serve_bench_json_shape_is_stable() {
        let phases = vec![
            ServeBenchPhase {
                phase: "uncached",
                report: recloud_server::LoadReport {
                    sent: 600,
                    ok: 600,
                    cached: 0,
                    busy: 0,
                    errors: 0,
                    partials: 0,
                    elapsed: Duration::from_secs(1),
                    throughput_rps: 600.0,
                    p50_us: 1_500,
                    p95_us: 4_000,
                    p99_us: 6_000,
                },
            },
            ServeBenchPhase {
                phase: "cached",
                report: recloud_server::LoadReport {
                    sent: 10_000,
                    ok: 10_000,
                    cached: 9_999,
                    busy: 0,
                    errors: 0,
                    partials: 0,
                    elapsed: Duration::from_secs(1),
                    throughput_rps: 10_000.0,
                    p50_us: 80,
                    p95_us: 200,
                    p99_us: 300,
                },
            },
        ];
        let overhead = vec![StreamOverheadRow {
            rounds: 10_000,
            plain: recloud_server::LoadReport {
                sent: 24,
                ok: 24,
                throughput_rps: 200.0,
                ..Default::default()
            },
            streamed: recloud_server::LoadReport {
                sent: 24,
                ok: 24,
                partials: 96,
                throughput_rps: 190.0,
                ..Default::default()
            },
        }];
        let frontier = vec![
            ConnectionFrontierRow {
                connections: 1,
                report: recloud_server::LoadReport {
                    ok: 2_000,
                    throughput_rps: 9_000.0,
                    p50_us: 90,
                    p95_us: 210,
                    p99_us: 320,
                    ..Default::default()
                },
            },
            ConnectionFrontierRow {
                connections: 1_000,
                report: recloud_server::LoadReport {
                    ok: 2_000,
                    throughput_rps: 8_500.0,
                    p50_us: 95,
                    p95_us: 230,
                    p99_us: 410,
                    ..Default::default()
                },
            },
        ];
        let isolation = TenantIsolationRow {
            budget: 1,
            solo: recloud_server::LoadReport { ok: 2_000, p99_us: 300, ..Default::default() },
            victim: recloud_server::LoadReport { ok: 2_000, p99_us: 450, ..Default::default() },
            hog: recloud_server::LoadReport {
                ok: 30,
                busy: 98,
                p99_us: 120_000,
                ..Default::default()
            },
        };
        let warm_start =
            vec![WarmStartRow { entries: 400, replay_ms: 12.5, replayed: 400, hit_rate: 1.0 }];
        let r = recloud_obs::Registry::new();
        r.counter("server.requests_total").add(10_601);
        r.counter("server.cache_hits_total").add(9_999);
        r.counter("server.cache_misses_total").add(601);
        r.histogram("server.latency_us.assess").record(80);
        let body = serve_bench_json(
            1_000,
            4,
            &phases,
            &overhead,
            &frontier,
            &isolation,
            &warm_start,
            &r.snapshot(),
        );
        assert!(body.starts_with("{\n"));
        assert!(body.ends_with("}\n"));
        assert!(body.contains("\"benchmark\": \"serve\""));
        assert!(body.contains("\"phase\": \"uncached\""));
        assert!(body.contains("\"phase\": \"cached\""));
        assert!(body.contains("\"throughput_rps\": 10000.0"));
        assert!(body.contains(
            "{\"rounds\": 10000, \"plain_rps\": 200.0, \"stream_rps\": 190.0, \
             \"partials_per_request\": 4.0, \"overhead_pct\": 5.00}"
        ));
        assert!(body.contains(
            "{\"entries\": 400, \"replay_ms\": 12.50, \"replayed_ops\": 400, \"hit_rate\": 1.0000}"
        ));
        assert!(body.contains(
            "{\"connections\": 1000, \"ok\": 2000, \"throughput_rps\": 8500.0, \
             \"p50_us\": 95, \"p95_us\": 230, \"p99_us\": 410}"
        ));
        assert!(body.contains(
            "\"tenant_isolation\": {\"budget\": 1, \"solo_p99_us\": 300, \
             \"contended_p99_us\": 450, \"victim_busy\": 0, \"hog_ok\": 30, \"hog_busy\": 98}"
        ));
        assert!(body.contains("\"hits\": 9999"));
        assert!(body.contains("\"misses\": 601"));
        assert!(body.contains("\"instruments\": {\"counters\":{"));
        assert!(body.contains("\"server.requests_total\":10601"));
        assert!(body.contains("\"server.latency_us.assess\":{\"count\":1"));
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                body.matches(open).count(),
                body.matches(close).count(),
                "unbalanced {open}{close}"
            );
        }
        assert_eq!(body.matches("\"phase\"").count(), 2);
    }
}
