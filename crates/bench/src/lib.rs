//! Shared harness for the reproduction benchmarks.
//!
//! Everything the `repro` binary and the micro-benchmarks have in common:
//! the paper's evaluation environment (§4.1), the four K-of-N redundancy
//! settings, simple aligned-table printing, timing helpers, and the
//! from-scratch criterion-style bench harness ([`harness`]) that keeps the
//! workspace free of external dependencies.

pub mod figures;
pub mod harness;

use recloud_apps::ApplicationSpec;
use recloud_faults::FaultModel;
use recloud_topology::{Scale, Topology};
use std::time::Instant;

/// The §4.1 environment for one scale: fat-tree with border pod, five
/// power supplies wired round-robin, paper-default failure probabilities
/// with power dependency trees.
pub fn paper_env(scale: Scale, seed: u64) -> (Topology, FaultModel) {
    let topology = scale.build();
    let model = FaultModel::paper_default(&topology, seed);
    (topology, model)
}

/// The four redundancy settings of Figures 8–10: K-of-N.
pub const REDUNDANCY: [(u32, u32); 4] = [(1, 2), (2, 3), (4, 5), (8, 10)];

/// Label like "4-of-5 redundancy".
pub fn redundancy_label(k: u32, n: u32) -> String {
    format!("{k}-of-{n}")
}

/// Specs for the four redundancy settings.
pub fn redundancy_specs() -> Vec<(String, ApplicationSpec)> {
    REDUNDANCY
        .iter()
        .map(|&(k, n)| (redundancy_label(k, n), ApplicationSpec::k_of_n(k, n)))
        .collect()
}

/// Times a closure in milliseconds.
pub fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let v = f();
    (v, t0.elapsed().as_secs_f64() * 1e3)
}

/// Minimal aligned text table, printed in the paper's row/column style.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends one row.
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", c, width = widths[i]));
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats milliseconds compactly (µs under 1 ms, s above 10 000 ms).
pub fn fmt_ms(ms: f64) -> String {
    if ms < 1.0 {
        format!("{:.0} us", ms * 1e3)
    } else if ms < 10_000.0 {
        format!("{ms:.1} ms")
    } else {
        format!("{:.1} s", ms / 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_builds_for_tiny() {
        let (t, m) = paper_env(Scale::Tiny, 1);
        assert_eq!(t.num_hosts(), 112);
        assert_eq!(m.num_topology_components(), t.num_components());
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(vec!["a", "bbbb"]);
        t.row(vec!["1", "2"]);
        t.row(vec!["333", "4"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    fn fmt_ms_ranges() {
        assert_eq!(fmt_ms(0.5), "500 us");
        assert_eq!(fmt_ms(53.0), "53.0 ms");
        assert_eq!(fmt_ms(25_000.0), "25.0 s");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ragged_rows_rejected() {
        let mut t = TextTable::new(vec!["a"]);
        t.row(vec!["1", "2"]);
    }
}
