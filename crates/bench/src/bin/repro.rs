//! `repro` — regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run -p recloud-bench --release --bin repro -- all --quick
//! cargo run -p recloud-bench --release --bin repro -- fig7
//! cargo run -p recloud-bench --release --bin repro -- fig9 --paper-times
//! ```
//!
//! Subcommands: `table2`, `fig7` … `fig12`, `ablation-delta`,
//! `ablation-schedule`, `ablation-symmetry`, `ablation-fault-trees`,
//! `bench-assess`, `bench-serve`, `bench-search`, `all`. Flags:
//! `--quick` (small scales/rounds), `--xl` (bench-assess: add the
//! k = 64 XL stress scale), `--paper-times` (restore the 3–300 s
//! Figure 9 budgets), `--seed <n>`, `--json <path>` (the bench
//! subcommands: also write a machine-readable snapshot).

use recloud_bench::figures::{self, ReproOptions};
use std::process::ExitCode;

const USAGE: &str = "usage: repro <table2|fig7|fig8|fig9|fig10|fig11|fig12|\
ablation-delta|ablation-schedule|ablation-symmetry|ablation-fault-trees|\
bench-assess|bench-serve|bench-search|loadgen|all> [--quick] [--xl] [--paper-times] \
[--seed <n>] [--json <path>] [--addr <host:port>] [--smoke]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut command: Option<String> = None;
    let mut opts = ReproOptions::default();
    let mut json: Option<String> = None;
    let mut addr = String::from("127.0.0.1:7070");
    let mut smoke = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => opts.quick = true,
            "--xl" => opts.xl = true,
            "--paper-times" => opts.paper_times = true,
            "--smoke" => smoke = true,
            "--addr" => match it.next() {
                Some(a) => addr = a.clone(),
                None => {
                    eprintln!("--addr needs host:port\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--seed" => match it.next().and_then(|s| s.parse().ok()) {
                Some(s) => opts.seed = s,
                None => {
                    eprintln!("--seed needs an integer\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--json" => match it.next() {
                Some(p) => json = Some(p.clone()),
                None => {
                    eprintln!("--json needs a path\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            cmd if command.is_none() && !cmd.starts_with('-') => {
                command = Some(cmd.to_string());
            }
            other => {
                eprintln!("unknown argument '{other}'\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(command) = command else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    match command.as_str() {
        "table2" => figures::table2(),
        "fig7" => figures::fig7(&opts),
        "fig8" => figures::fig8(&opts),
        "fig9" => figures::fig9(&opts),
        "fig10" => figures::fig10(&opts),
        "fig11" => figures::fig11(&opts),
        "fig12" => figures::fig12(&opts),
        "ablation-delta" => figures::ablation_delta(&opts),
        "ablation-schedule" => figures::ablation_schedule(&opts),
        "ablation-symmetry" => figures::ablation_symmetry(&opts),
        "ablation-fault-trees" => figures::ablation_fault_trees(&opts),
        "bench-assess" => figures::bench_assess(&opts, json.as_deref()),
        "bench-serve" => figures::bench_serve(&opts, json.as_deref()),
        "bench-search" => figures::bench_search(&opts, json.as_deref()),
        "loadgen" => {
            if smoke {
                match recloud_server::smoke(&addr) {
                    Ok(()) => println!("smoke OK against {addr}"),
                    Err(e) => {
                        eprintln!("smoke failed: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            } else {
                let config = recloud_server::LoadgenConfig {
                    addr: addr.clone(),
                    seed: opts.seed,
                    ..recloud_server::LoadgenConfig::default()
                };
                match recloud_server::run_load(&config) {
                    Ok(r) => println!(
                        "{} ok ({} cached), {} busy, {} errors — {:.0} req/s, \
                         p50 {} us / p95 {} us",
                        r.ok, r.cached, r.busy, r.errors, r.throughput_rps, r.p50_us, r.p95_us
                    ),
                    Err(e) => {
                        eprintln!("loadgen failed: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
        }
        "all" => {
            figures::table2();
            figures::fig7(&opts);
            figures::fig8(&opts);
            figures::fig9(&opts);
            figures::fig10(&opts);
            figures::fig11(&opts);
            figures::fig12(&opts);
            figures::ablation_delta(&opts);
            figures::ablation_schedule(&opts);
            figures::ablation_symmetry(&opts);
            figures::ablation_fault_trees(&opts);
            figures::bench_assess(&opts, json.as_deref());
        }
        other => {
            eprintln!("unknown command '{other}'\n{USAGE}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
