//! Overhead bench for `recloud-obs`: cost of a counter increment,
//! histogram record, and journal append (per block of 1M ops), plus
//! the disabled (kill-switch) path — with an inline assertion that
//! none of them allocate, so instrumentation cannot silently regress
//! the bit-sliced kernel speedup.

use recloud_bench::harness::{black_box, Harness};
use recloud_obs::Registry;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

struct CountingAlloc;

// Per-thread allocation counter (const-initialized, no-Drop payload, so
// reading it inside the allocator neither allocates nor recurses).
thread_local! {
    static TL_ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        TL_ALLOCATIONS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        TL_ALLOCATIONS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Operations per timed block; the reported median is for the whole
/// block, so per-op cost is median / OPS.
const OPS: u64 = 1_000_000;

fn assert_alloc_free(label: &str, f: impl FnOnce()) {
    let before = TL_ALLOCATIONS.with(Cell::get);
    f();
    let allocated = TL_ALLOCATIONS.with(Cell::get) - before;
    assert_eq!(allocated, 0, "{label}: record path allocated {allocated} time(s)");
}

fn bench_obs(c: &mut Harness) {
    let mut group = c.benchmark_group(format!("obs_record ({OPS} ops per sample)"));
    group.sample_size(10);

    // Registration and kind interning happen once, outside the timed
    // and allocation-counted region — that is the handle-caching
    // contract every instrumented call site follows.
    let registry = Registry::new();
    let counter = registry.counter("bench.counter");
    let histogram = registry.histogram("bench.hist");
    let journal = registry.journal();
    let kind = journal.kind_id("bench.event");

    group.bench_function("counter_inc", |b| {
        b.iter(|| {
            assert_alloc_free("counter_inc", || {
                for _ in 0..OPS {
                    counter.inc();
                }
            });
            black_box(counter.value())
        });
    });

    group.bench_function("histogram_record", |b| {
        b.iter(|| {
            assert_alloc_free("histogram_record", || {
                for i in 0..OPS {
                    histogram.record(i);
                }
            });
            black_box(histogram.snapshot().count)
        });
    });

    group.bench_function("journal_record", |b| {
        b.iter(|| {
            assert_alloc_free("journal_record", || {
                for i in 0..OPS {
                    journal.record(kind, i, i, 0.5, 1.5);
                }
            });
            black_box(journal.recorded())
        });
    });

    recloud_obs::set_enabled(false);
    group.bench_function("disabled_counter_and_histogram", |b| {
        b.iter(|| {
            assert_alloc_free("disabled_record", || {
                for i in 0..OPS {
                    counter.inc();
                    histogram.record(i);
                }
            });
            black_box(counter.value())
        });
    });
    recloud_obs::set_enabled(true);

    group.finish();
    println!("obs bench: every record path allocation-free over {OPS} ops per sample");
}

fn main() {
    let mut harness = Harness::new();
    bench_obs(&mut harness);
    harness.finish();
}
