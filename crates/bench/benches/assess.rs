//! Micro-benchmark behind Figures 10 and 11: full assessment of one
//! deployment plan (sample → collapse → route-and-check) for a simple
//! K-of-N app and a layered app.

use recloud_apps::{ApplicationSpec, DeploymentPlan};
use recloud_assess::Assessor;
use recloud_bench::harness::{BenchmarkId, Harness};
use recloud_bench::paper_env;
use recloud_sampling::Rng;
use recloud_topology::Scale;

fn bench_assess(c: &mut Harness) {
    let mut group = c.benchmark_group("fig10_11_assess");
    group.sample_size(10);
    let rounds = 2_000;
    for scale in [Scale::Tiny, Scale::Small] {
        let (topo, model) = paper_env(scale, 1);

        let kofn = ApplicationSpec::k_of_n(4, 5);
        let mut rng = Rng::new(3);
        let plan = DeploymentPlan::random(&kofn, topo.hosts(), &mut rng);
        let mut assessor = Assessor::new(&topo, model.clone());
        group.bench_with_input(BenchmarkId::new("4-of-5", scale.to_string()), &plan, |b, plan| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                assessor.assess(&kofn, plan, rounds, seed)
            });
        });

        let layered = ApplicationSpec::layered(&[(4, 5), (4, 5)]);
        let plan2 = DeploymentPlan::random(&layered, topo.hosts(), &mut rng);
        let mut assessor2 = Assessor::new(&topo, model);
        group.bench_with_input(
            BenchmarkId::new("2-layers", scale.to_string()),
            &plan2,
            |b, plan2| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    assessor2.assess(&layered, plan2, rounds, seed)
                });
            },
        );
    }
    group.finish();
}

fn main() {
    let mut harness = Harness::new();
    bench_assess(&mut harness);
    harness.finish();
}
