//! Micro-benchmark behind Figure 9's machinery: one annealing iteration
//! (neighbor + assess + accept) and the symmetry checker.

use recloud_apps::{ApplicationSpec, DeploymentPlan};
use recloud_assess::Assessor;
use recloud_bench::harness::Harness;
use recloud_bench::paper_env;
use recloud_sampling::Rng;
use recloud_search::{ReliabilityObjective, SearchConfig, Searcher, SymmetryChecker};
use recloud_topology::Scale;

fn bench_search_iteration(c: &mut Harness) {
    let mut group = c.benchmark_group("fig9_search");
    group.sample_size(10);
    let (topo, model) = paper_env(Scale::Tiny, 1);
    let spec = ApplicationSpec::k_of_n(4, 5);

    group.bench_function("search_10_iters_tiny", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut assessor = Assessor::new(&topo, model.clone());
            let mut searcher = Searcher::new(&mut assessor);
            let config = SearchConfig::iterations(10, 500, seed);
            searcher.search(&spec, &ReliabilityObjective, &config, None)
        });
    });

    group.bench_function("symmetry_check", |b| {
        let checker = SymmetryChecker::new(&topo, &model);
        let mut rng = Rng::new(9);
        let plan = DeploymentPlan::random(&spec, topo.hosts(), &mut rng);
        let hosts: Vec<_> = plan.all_hosts().collect();
        let pool = topo.hosts();
        b.iter(|| {
            let old = hosts[0];
            let new = pool[rng.next_below(pool.len())];
            if new == old || hosts.contains(&new) {
                return false;
            }
            checker.equivalent_move(&hosts[1..], old, new)
        });
    });
    group.finish();
}

fn main() {
    let mut harness = Harness::new();
    bench_search_iteration(&mut harness);
    harness.finish();
}
