//! Micro-benchmark behind Figure 12: parallel vs serial assessment at
//! different round counts. The shape to look for: at small round counts,
//! worker setup + frame serialization dominate and parallelism does not
//! pay; at large round counts it does.

use recloud_apps::{ApplicationSpec, DeploymentPlan};
use recloud_assess::ParallelAssessor;
use recloud_bench::harness::{BenchmarkId, Harness};
use recloud_bench::paper_env;
use recloud_sampling::Rng;
use recloud_topology::Scale;

fn bench_parallel(c: &mut Harness) {
    let mut group = c.benchmark_group("fig12_parallel");
    group.sample_size(10);
    let (topo, model) = paper_env(Scale::Small, 1);
    let spec = ApplicationSpec::k_of_n(4, 5);
    let mut rng = Rng::new(2);
    let plan = DeploymentPlan::random(&spec, topo.hosts(), &mut rng);

    for rounds in [1_000usize, 20_000] {
        for workers in [1usize, 4] {
            let engine = ParallelAssessor::new(&topo, model.clone(), workers);
            group.bench_with_input(
                BenchmarkId::new(format!("w{workers}"), rounds),
                &rounds,
                |b, &rounds| {
                    let mut seed = 0u64;
                    b.iter(|| {
                        seed += 1;
                        engine.assess(&spec, &plan, rounds, seed)
                    });
                },
            );
        }
    }
    group.finish();
}

fn main() {
    let mut harness = Harness::new();
    bench_parallel(&mut harness);
    harness.finish();
}
