//! Micro-benchmark for the router ablation: analytic fat-tree router vs
//! valley-free reference BFS vs physical BFS, identical workload
//! (begin_round + 5 external queries + 4 pair queries per round).

use recloud_bench::harness::{BenchmarkId, Harness};
use recloud_bench::paper_env;
use recloud_routing::{FatTreeRouter, GenericRouter, Router, UpDownRouter};
use recloud_sampling::{BitMatrix, ExtendedDaggerSampler, Sampler};
use recloud_topology::Scale;

fn bench_routers(c: &mut Harness) {
    let mut group = c.benchmark_group("router_ablation");
    group.sample_size(10);
    let (topo, model) = paper_env(Scale::Small, 1);
    let rounds = 256;
    let mut states = BitMatrix::new(model.num_events(), rounds);
    ExtendedDaggerSampler::seeded(5).sample_into(model.probs(), &mut states);
    // The collapsed matrix has the same shape here because the paper-env
    // model adds no auxiliary events; collapse for correctness anyway.
    let mut collapsed = BitMatrix::new(model.num_topology_components(), rounds);
    model.collapse_into(&states, &mut collapsed);
    let hosts: Vec<_> = topo.hosts().iter().step_by(17).take(5).copied().collect();

    let mut run = |name: &str, router: &mut dyn Router| {
        group.bench_with_input(BenchmarkId::new(name, "small"), &collapsed, |b, states| {
            b.iter(|| {
                let mut alive = 0usize;
                for round in 0..rounds {
                    router.begin_round(states, round);
                    for &h in &hosts {
                        alive += router.external_reaches(states, h) as usize;
                    }
                    for pair in hosts.windows(2) {
                        alive += router.connects(states, pair[0], pair[1]) as usize;
                    }
                }
                alive
            });
        });
    };
    run("analytic", &mut FatTreeRouter::new(&topo));
    run("updown-bfs", &mut UpDownRouter::for_fat_tree(&topo));
    run("generic-bfs", &mut GenericRouter::new(&topo));
    group.finish();
}

fn main() {
    let mut harness = Harness::new();
    bench_routers(&mut harness);
    harness.finish();
}
