//! Micro-benchmark behind Figure 7: failure-state generation via extended
//! dagger sampling vs Monte-Carlo sampling, per data-center scale. The
//! `repro -- fig7` binary prints the full paper-style table; this bench
//! provides statistically solid per-call numbers on the small scales.

use recloud_bench::harness::{BenchmarkId, Harness};
use recloud_bench::paper_env;
use recloud_sampling::{BitMatrix, ExtendedDaggerSampler, MonteCarloSampler, Sampler};
use recloud_topology::Scale;

fn bench_sampling(c: &mut Harness) {
    let mut group = c.benchmark_group("fig7_sampling");
    group.sample_size(10);
    for scale in [Scale::Tiny, Scale::Small] {
        let (_topo, model) = paper_env(scale, 1);
        let probs = model.probs().to_vec();
        let rounds = 10_000;
        let mut matrix = BitMatrix::new(probs.len(), rounds);

        group.bench_with_input(
            BenchmarkId::new("dagger", scale.to_string()),
            &probs,
            |b, probs| {
                let mut sampler = ExtendedDaggerSampler::seeded(7);
                b.iter(|| sampler.sample_into(probs, &mut matrix));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("monte-carlo", scale.to_string()),
            &probs,
            |b, probs| {
                let mut sampler = MonteCarloSampler::seeded(7);
                b.iter(|| sampler.sample_into(probs, &mut matrix));
            },
        );
    }
    group.finish();
}

fn main() {
    let mut harness = Harness::new();
    bench_sampling(&mut harness);
    harness.finish();
}
