//! Result-cache and result-store benches: LRU churn at full capacity
//! (every insert evicts) across cache sizes, plus store append/replay
//! throughput — with an inline guard asserting eviction cost stays
//! sub-linear in capacity, so the O(n) eviction scan this replaced
//! cannot silently come back.

use recloud_bench::harness::{black_box, Harness};
use recloud_server::protocol::AssessResponse;
use recloud_server::ResultCache;
use recloud_store::{Entry, Op, Store, StoreConfig};
use std::time::Instant;

/// Inserts per timed block; the reported median is for the whole block.
const OPS: u64 = 100_000;

fn response(seed: u64) -> AssessResponse {
    AssessResponse {
        score: seed as f64 / u64::MAX as f64,
        variance: 1e-6,
        rounds: 1_000,
        successes: 990,
        cached: false,
    }
}

/// A cheap splitmix-style key stream: distinct keys, no allocation.
fn key(i: u64) -> u128 {
    let mut x = i.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    (x as u128) << 64 | i as u128
}

/// Mean nanoseconds per insert into a cache already at `capacity`, so
/// every insert evicts the LRU victim.
fn churn_ns_per_op(capacity: usize) -> f64 {
    let mut cache = ResultCache::new(capacity);
    for i in 0..capacity as u64 {
        cache.insert(key(i), response(i));
    }
    let start = Instant::now();
    for i in 0..OPS {
        cache.insert(key(capacity as u64 + i), response(i));
    }
    let elapsed = start.elapsed().as_nanos() as f64;
    black_box(cache.len());
    elapsed / OPS as f64
}

fn bench_cache(c: &mut Harness) {
    let mut group = c.benchmark_group(format!("result_cache ({OPS} ops per sample)"));
    group.sample_size(10);

    for capacity in [1_024usize, 65_536] {
        group.bench_function(format!("churn_at_capacity_{capacity}"), |b| {
            let mut cache = ResultCache::new(capacity);
            for i in 0..capacity as u64 {
                cache.insert(key(i), response(i));
            }
            let mut next = capacity as u64;
            b.iter(|| {
                for _ in 0..OPS {
                    cache.insert(key(next), response(next));
                    next += 1;
                }
                black_box(cache.len())
            });
        });
    }

    group.bench_function("hit_get_at_capacity_65536", |b| {
        let capacity = 65_536usize;
        let mut cache = ResultCache::new(capacity);
        for i in 0..capacity as u64 {
            cache.insert(key(i), response(i));
        }
        let mut i = 0u64;
        b.iter(|| {
            let mut hits = 0u64;
            for _ in 0..OPS {
                hits += cache.get(key(i % capacity as u64)).is_some() as u64;
                i += 1;
            }
            black_box(hits)
        });
    });

    group.finish();

    // The regression guard: a 64x larger cache must not cost anywhere
    // near 64x per evicting insert. The old linear scan scaled ~64x
    // here; the ordered index scales ~log(n). The 10x bound leaves room
    // for cache-hierarchy effects while still failing any O(n) return.
    let small = churn_ns_per_op(1_024);
    let large = churn_ns_per_op(65_536);
    let ratio = large / small.max(1e-9);
    println!("cache churn: {small:.0} ns/insert at 1k, {large:.0} ns/insert at 64k ({ratio:.1}x)");
    assert!(
        ratio < 10.0,
        "LRU eviction cost scaled {ratio:.1}x across a 64x capacity jump — \
         eviction has regressed toward a linear scan"
    );
}

fn bench_store(c: &mut Harness) {
    let mut group = c.benchmark_group("result_store (10k ops per sample)");
    group.sample_size(10);
    const STORE_OPS: u64 = 10_000;

    let dir = std::env::temp_dir().join(format!("recloud-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    group.bench_function("append_10k", |b| {
        let append_dir = dir.join("append");
        let _ = std::fs::remove_dir_all(&append_dir);
        let (mut store, _) = Store::open(&append_dir, StoreConfig::default()).unwrap();
        let mut next = 0u64;
        b.iter(|| {
            for _ in 0..STORE_OPS {
                let e = Entry {
                    key: key(next),
                    score: 0.5,
                    variance: 1e-6,
                    rounds: 1_000,
                    successes: 990,
                };
                store.append(&Op::Put(e)).unwrap();
                next += 1;
            }
            black_box(store.bytes())
        });
    });

    group.bench_function("replay_100k", |b| {
        let replay_dir = dir.join("replay");
        let _ = std::fs::remove_dir_all(&replay_dir);
        {
            let (mut store, _) = Store::open(&replay_dir, StoreConfig::default()).unwrap();
            for i in 0..100_000u64 {
                let e = Entry {
                    key: key(i),
                    score: 0.5,
                    variance: 1e-6,
                    rounds: 1_000,
                    successes: 990,
                };
                store.append(&Op::Put(e)).unwrap();
            }
        }
        b.iter(|| {
            let (_store, recovery) = Store::open(&replay_dir, StoreConfig::default()).unwrap();
            black_box(recovery.ops.len())
        });
    });

    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

fn main() {
    let mut harness = Harness::new();
    bench_cache(&mut harness);
    bench_store(&mut harness);
    harness.finish();
}
