//! Availability statistics a static reliability score cannot express.

/// Outcome of one availability simulation.
#[derive(Clone, Debug, PartialEq)]
pub struct AvailabilityReport {
    /// Simulated horizon (hours).
    pub horizon_hours: f64,
    /// Time the application requirement held (hours).
    pub up_hours: f64,
    /// Number of distinct outages (OK → FAIL transitions).
    pub outages: u64,
    /// Duration of each outage (hours), in occurrence order.
    pub outage_durations: Vec<f64>,
    /// Component up/down transitions processed.
    pub transitions: u64,
}

impl AvailabilityReport {
    /// Assembles a report (used by the simulator).
    ///
    /// # Panics
    /// Panics if uptime exceeds the horizon.
    pub fn new(
        horizon_hours: f64,
        up_hours: f64,
        outages: u64,
        outage_durations: Vec<f64>,
        transitions: u64,
    ) -> Self {
        assert!(
            up_hours <= horizon_hours + 1e-6,
            "uptime {up_hours} exceeds horizon {horizon_hours}"
        );
        AvailabilityReport { horizon_hours, up_hours, outages, outage_durations, transitions }
    }

    /// Long-run availability: up fraction of the horizon. This is the
    /// quantity the static pipeline's reliability score estimates.
    pub fn availability(&self) -> f64 {
        self.up_hours / self.horizon_hours
    }

    /// Mean outage duration in hours (0 if no outage completed).
    pub fn mean_outage_hours(&self) -> f64 {
        if self.outage_durations.is_empty() {
            0.0
        } else {
            self.outage_durations.iter().sum::<f64>() / self.outage_durations.len() as f64
        }
    }

    /// Longest observed outage in hours.
    pub fn max_outage_hours(&self) -> f64 {
        self.outage_durations.iter().copied().fold(0.0, f64::max)
    }

    /// Mean time between outage starts, in hours (infinite if fewer than
    /// one outage).
    pub fn mean_time_between_outages(&self) -> f64 {
        if self.outages == 0 {
            f64::INFINITY
        } else {
            self.horizon_hours / self.outages as f64
        }
    }

    /// Outages per simulated year (8766 h).
    pub fn outages_per_year(&self) -> f64 {
        self.outages as f64 * 8766.0 / self.horizon_hours
    }

    /// Downtime per simulated year, in hours — directly comparable to
    /// the paper's "33.3 hours of downtime per year" formulation.
    pub fn annual_downtime_hours(&self) -> f64 {
        (1.0 - self.availability()) * 8766.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AvailabilityReport {
        AvailabilityReport::new(1_000.0, 990.0, 4, vec![2.0, 3.0, 4.0, 1.0], 500)
    }

    #[test]
    fn availability_and_downtime() {
        let r = sample();
        assert!((r.availability() - 0.99).abs() < 1e-12);
        assert!((r.annual_downtime_hours() - 87.66).abs() < 1e-9);
    }

    #[test]
    fn outage_statistics() {
        let r = sample();
        assert!((r.mean_outage_hours() - 2.5).abs() < 1e-12);
        assert_eq!(r.max_outage_hours(), 4.0);
        assert!((r.mean_time_between_outages() - 250.0).abs() < 1e-12);
        assert!((r.outages_per_year() - 4.0 * 8.766).abs() < 1e-9);
    }

    #[test]
    fn no_outages_edge_cases() {
        let r = AvailabilityReport::new(100.0, 100.0, 0, vec![], 0);
        assert_eq!(r.availability(), 1.0);
        assert_eq!(r.mean_outage_hours(), 0.0);
        assert_eq!(r.max_outage_hours(), 0.0);
        assert_eq!(r.mean_time_between_outages(), f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "exceeds horizon")]
    fn overlong_uptime_rejected() {
        AvailabilityReport::new(10.0, 11.0, 0, vec![], 0);
    }
}
