//! Per-component alternating renewal processes.
//!
//! Each component alternates exponentially-distributed up and down
//! periods (the standard reliability-engineering model behind "annual
//! failure rate" numbers). The steady-state unavailability is
//! `p = MTTR / (MTBF + MTTR)`, which is how the simulator is matched to
//! the static model's per-component probability.

use recloud_sampling::Rng;

/// Failure/repair dynamics of one component.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ComponentProcess {
    /// Mean time between failures (mean length of an up period), in
    /// arbitrary but consistent time units (we use hours).
    pub mtbf: f64,
    /// Mean time to repair (mean length of a down period).
    pub mttr: f64,
}

impl ComponentProcess {
    /// A process with the given means.
    ///
    /// # Panics
    /// Panics unless both means are positive.
    pub fn new(mtbf: f64, mttr: f64) -> Self {
        assert!(mtbf > 0.0, "MTBF must be positive");
        assert!(mttr > 0.0, "MTTR must be positive");
        ComponentProcess { mtbf, mttr }
    }

    /// Derives a process whose steady-state unavailability equals `p`,
    /// given a repair time. This is the bridge from the paper's
    /// probabilities to dynamics: `p = MTTR / (MTBF + MTTR)` solved for
    /// MTBF.
    ///
    /// # Panics
    /// Panics unless `0 < p < 1` and `mttr > 0`.
    pub fn from_unavailability(p: f64, mttr: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "unavailability must be in (0, 1), got {p}");
        assert!(mttr > 0.0, "MTTR must be positive");
        let mtbf = mttr * (1.0 - p) / p;
        ComponentProcess { mtbf, mttr }
    }

    /// Steady-state unavailability `MTTR / (MTBF + MTTR)`.
    pub fn unavailability(&self) -> f64 {
        self.mttr / (self.mtbf + self.mttr)
    }

    /// Draws the length of the next up period (exponential with mean
    /// MTBF).
    #[inline]
    pub fn draw_uptime(&self, rng: &mut Rng) -> f64 {
        exponential(rng, self.mtbf)
    }

    /// Draws the length of the next down period (exponential with mean
    /// MTTR).
    #[inline]
    pub fn draw_downtime(&self, rng: &mut Rng) -> f64 {
        exponential(rng, self.mttr)
    }
}

/// Exponential deviate with the given mean (inverse-CDF method).
#[inline]
fn exponential(rng: &mut Rng, mean: f64) -> f64 {
    // 1 - u in (0, 1] keeps ln() finite.
    let u = 1.0 - rng.next_f64();
    -mean * u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unavailability_roundtrip() {
        let p = 0.01;
        let proc_ = ComponentProcess::from_unavailability(p, 8.0);
        assert!((proc_.unavailability() - p).abs() < 1e-12);
        assert!((proc_.mtbf - 8.0 * 99.0).abs() < 1e-9);
    }

    #[test]
    fn exponential_mean_is_right() {
        let mut rng = Rng::new(7);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| exponential(&mut rng, 42.0)).sum::<f64>() / n as f64;
        assert!((mean - 42.0).abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn draws_are_positive() {
        let p = ComponentProcess::new(100.0, 2.0);
        let mut rng = Rng::new(3);
        for _ in 0..10_000 {
            assert!(p.draw_uptime(&mut rng) > 0.0);
            assert!(p.draw_downtime(&mut rng) > 0.0);
        }
    }

    #[test]
    fn long_run_fraction_matches_steady_state() {
        // Simulate one component for a long horizon and compare the
        // down-time fraction to MTTR/(MTBF+MTTR).
        let proc_ = ComponentProcess::from_unavailability(0.05, 10.0);
        let mut rng = Rng::new(11);
        let mut t = 0.0;
        let mut down = 0.0;
        while t < 2_000_000.0 {
            t += proc_.draw_uptime(&mut rng);
            let d = proc_.draw_downtime(&mut rng);
            t += d;
            down += d;
        }
        let frac = down / t;
        assert!((frac - 0.05).abs() < 0.002, "down fraction {frac}");
    }

    #[test]
    #[should_panic(expected = "MTBF must be positive")]
    fn zero_mtbf_rejected() {
        ComponentProcess::new(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "unavailability must be in (0, 1)")]
    fn unit_p_rejected() {
        ComponentProcess::from_unavailability(1.0, 1.0);
    }
}
