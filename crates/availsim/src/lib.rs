#![warn(missing_docs)]

//! # recloud-availsim
//!
//! Continuous-time availability simulation — the dynamic counterpart of
//! the paper's static fault model.
//!
//! The paper abstracts each component into a *failure probability*
//! `p = downtime / windowLength` (§2.1) and assesses a plan by sampling
//! independent per-round states. That abstraction is exact for the
//! *steady-state availability* of an alternating renewal process: a
//! component that fails with rate `1/MTBF` and repairs with rate `1/MTTR`
//! is down a long-run fraction `p = MTTR / (MTBF + MTTR)` of the time.
//!
//! This crate builds the renewal process itself: an event-driven
//! simulator ([`sim`]) where every component alternates between up and
//! down periods drawn from exponential distributions, and the plan's
//! structure is re-checked at every transition that could matter. The
//! measured *availability* (fraction of simulated time the K-of-N or
//! structured requirement holds) must converge to the static pipeline's
//! *reliability score* when probabilities are matched — which is exactly
//! what the cross-validation tests assert. The simulator additionally
//! yields quantities the static model cannot express: outage counts,
//! outage durations, and time-between-outage statistics ([`report`]).

pub mod process;
pub mod report;
pub mod sim;

pub use process::ComponentProcess;
pub use report::AvailabilityReport;
pub use sim::{AvailabilitySimulator, SimParams};
