//! The event-driven availability simulator.
//!
//! Every fallible event (topology component or auxiliary dependency)
//! runs an alternating renewal process; a binary-heap event queue drives
//! the simulation from transition to transition. At each transition the
//! affected component's raw state flips, the fault-tree-dependent
//! effective states are incrementally recomputed (only the components
//! whose trees reference the flipped event), and the application's
//! structural requirement is re-checked. Time between transitions is
//! credited to up- or downtime according to the check before the
//! transition.
//!
//! This is the ground-truth *dynamic* model: the static pipeline's
//! reliability score must match the simulator's long-run availability
//! when per-component unavailabilities are matched (tests and the
//! cross-validation in `tests/` assert this).

use crate::process::ComponentProcess;
use crate::report::AvailabilityReport;
use recloud_apps::{ApplicationSpec, DeploymentPlan};
use recloud_assess::StructureChecker;
use recloud_faults::FaultModel;
use recloud_routing::make_router;
use recloud_sampling::{BitMatrix, Rng};
use recloud_topology::{ComponentId, Topology};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulation controls.
#[derive(Clone, Copy, Debug)]
pub struct SimParams {
    /// Simulated horizon, in hours. One year ≈ 8766; availabilities in
    /// the 99.9% range need many simulated years to show enough outages.
    pub horizon_hours: f64,
    /// Seed for all stochastic draws.
    pub seed: u64,
}

impl SimParams {
    /// One century of simulated operation — enough for stable statistics
    /// at ~1% component unavailability.
    pub fn default_horizon(seed: u64) -> Self {
        SimParams { horizon_hours: 100.0 * 8766.0, seed }
    }
}

/// Heap key: next transition time (finite, total-ordered).
#[derive(Clone, Copy, Debug, PartialEq)]
struct Time(f64);

impl Eq for Time {}

impl PartialOrd for Time {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Time {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("simulation times are finite")
    }
}

/// Continuous-time availability simulator over one fault model.
pub struct AvailabilitySimulator {
    topology: Topology,
    model: FaultModel,
    processes: Vec<Option<ComponentProcess>>,
    /// event id -> topology components whose fault tree references it.
    dependents: Vec<Vec<u32>>,
}

impl AvailabilitySimulator {
    /// Builds a simulator whose per-event steady-state unavailability
    /// matches the fault model's probabilities, with a uniform repair
    /// time (`mttr_hours`, e.g. 8 hours). Events with zero probability
    /// never fail.
    pub fn new(topology: &Topology, model: FaultModel, mttr_hours: f64) -> Self {
        let processes = model
            .probs()
            .iter()
            .map(|&p| {
                (p > 0.0).then(|| ComponentProcess::from_unavailability(p.min(0.999), mttr_hours))
            })
            .collect();
        let mut dependents = vec![Vec::new(); model.num_events()];
        for c in 0..model.num_topology_components() {
            if let Some(tree) = model.tree_of(ComponentId::from_index(c)) {
                for event in tree.basic_events() {
                    dependents[event.index()].push(c as u32);
                }
            }
        }
        AvailabilitySimulator { topology: topology.clone(), model, processes, dependents }
    }

    /// Runs the simulation for one deployment plan.
    pub fn simulate(
        &self,
        spec: &ApplicationSpec,
        plan: &DeploymentPlan,
        params: SimParams,
    ) -> AvailabilityReport {
        let mut rng = Rng::new(params.seed);
        let n_events = self.model.num_events();
        let mut raw = BitMatrix::new(n_events, 1);
        let mut collapsed = BitMatrix::new(self.model.num_topology_components(), 1);
        // All components start up; collapsed starts all-alive too.
        let mut router = make_router(&self.topology);
        let mut checker = StructureChecker::new(spec, plan);

        // Schedule every fallible event's first failure.
        let mut heap: BinaryHeap<Reverse<(Time, u32)>> = BinaryHeap::new();
        for (e, proc_) in self.processes.iter().enumerate() {
            if let Some(p) = proc_ {
                heap.push(Reverse((Time(p.draw_uptime(&mut rng)), e as u32)));
            }
        }

        let mut now = 0.0f64;
        let mut up_time = 0.0f64;
        let mut outages = 0u64;
        let mut outage_durations: Vec<f64> = Vec::new();
        let mut current_outage_start: Option<f64> = None;
        let mut transitions = 0u64;

        router.begin_round(&collapsed, 0);
        let mut ok = checker.round_reliable(router.as_mut(), &collapsed, 0);
        debug_assert!(ok, "an all-up world must satisfy the requirement");

        while let Some(Reverse((Time(t), e))) = heap.pop() {
            let t_clamped = t.min(params.horizon_hours);
            let dt = t_clamped - now;
            if ok {
                up_time += dt;
            }
            now = t_clamped;
            if t >= params.horizon_hours {
                break;
            }
            transitions += 1;

            // Flip the event's state and schedule its next transition.
            let was_down = raw.get(e as usize, 0);
            if was_down {
                raw.unset(e as usize, 0);
            } else {
                raw.set(e as usize, 0);
            }
            let proc_ = self.processes[e as usize].expect("only fallible events are scheduled");
            let next = if was_down {
                proc_.draw_uptime(&mut rng) // now up; next event is a failure
            } else {
                proc_.draw_downtime(&mut rng) // now down; next event is the repair
            };
            heap.push(Reverse((Time(now + next), e)));

            // Incrementally refresh effective states: the event itself
            // (when it is a topology component) plus every tree that
            // references it.
            if (e as usize) < self.model.num_topology_components() {
                self.refresh(&raw, &mut collapsed, e);
            }
            for &c in &self.dependents[e as usize] {
                self.refresh(&raw, &mut collapsed, c);
            }

            // Re-check the structure.
            router.begin_round(&collapsed, 0);
            let now_ok = checker.round_reliable(router.as_mut(), &collapsed, 0);
            if ok && !now_ok {
                outages += 1;
                current_outage_start = Some(now);
            } else if !ok && now_ok {
                if let Some(start) = current_outage_start.take() {
                    outage_durations.push(now - start);
                }
            }
            ok = now_ok;
        }
        // Horizon may end mid-state: credit the tail.
        if now < params.horizon_hours {
            if ok {
                up_time += params.horizon_hours - now;
            } else if let Some(start) = current_outage_start.take() {
                outage_durations.push(params.horizon_hours - start);
            }
        } else if let Some(start) = current_outage_start.take() {
            outage_durations.push(params.horizon_hours - start);
        }

        AvailabilityReport::new(
            params.horizon_hours,
            up_time,
            outages,
            outage_durations,
            transitions,
        )
    }

    fn refresh(&self, raw: &BitMatrix, collapsed: &mut BitMatrix, c: u32) {
        if self.model.effective_failed(raw, ComponentId(c), 0) {
            collapsed.set(c as usize, 0);
        } else {
            collapsed.unset(c as usize, 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recloud_apps::ApplicationSpec;
    use recloud_faults::ProbabilityConfig;
    use recloud_topology::{ComponentKind, FatTreeParams, TopologyBuilder};

    #[test]
    fn all_reliable_world_is_fully_available() {
        let t = FatTreeParams::new(4).build();
        let model = FaultModel::new(&t, &ProbabilityConfig::Uniform(0.0), 0);
        let sim = AvailabilitySimulator::new(&t, model, 8.0);
        let spec = ApplicationSpec::k_of_n(1, 2);
        let plan = DeploymentPlan::new(&spec, vec![t.hosts()[..2].to_vec()]);
        let r = sim.simulate(&spec, &plan, SimParams { horizon_hours: 10_000.0, seed: 1 });
        assert_eq!(r.availability(), 1.0);
        assert_eq!(r.outages, 0);
        assert_eq!(r.transitions, 0);
    }

    #[test]
    fn single_component_availability_matches_steady_state() {
        // One host behind a perfect switch: availability of a 1-of-1
        // plan = host's uptime fraction = 1 - p.
        let mut b = TopologyBuilder::new();
        b.external();
        let sw = b.add(ComponentKind::BorderSwitch);
        b.mark_border(sw);
        let h = b.add(ComponentKind::Host);
        b.connect(sw, h);
        let t = b.build();
        let mut model = FaultModel::new(&t, &ProbabilityConfig::Uniform(0.0), 0);
        model.set_prob(h, 0.05);
        let sim = AvailabilitySimulator::new(&t, model, 10.0);
        let spec = ApplicationSpec::k_of_n(1, 1);
        let plan = DeploymentPlan::new(&spec, vec![vec![h]]);
        let r = sim.simulate(&spec, &plan, SimParams { horizon_hours: 3_000_000.0, seed: 5 });
        assert!(
            (r.availability() - 0.95).abs() < 0.002,
            "availability {} vs 0.95",
            r.availability()
        );
        assert!(r.outages > 1_000, "outages {}", r.outages);
        // Mean outage duration ≈ MTTR.
        assert!((r.mean_outage_hours() - 10.0).abs() < 1.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let t = FatTreeParams::new(4).build();
        let model = FaultModel::paper_default(&t, 3);
        let sim = AvailabilitySimulator::new(&t, model, 8.0);
        let spec = ApplicationSpec::k_of_n(1, 2);
        let plan = DeploymentPlan::new(&spec, vec![t.hosts()[..2].to_vec()]);
        let p = SimParams { horizon_hours: 50_000.0, seed: 9 };
        let a = sim.simulate(&spec, &plan, p);
        let b = sim.simulate(&spec, &plan, p);
        assert_eq!(a.availability(), b.availability());
        assert_eq!(a.outages, b.outages);
    }

    #[test]
    fn correlated_power_outages_hit_both_hosts() {
        // Two hosts on one supply, 1-of-2 requirement: supply failures
        // bound availability above by 1 - p_supply even though hosts are
        // perfect.
        let mut b = TopologyBuilder::new();
        b.external();
        let sw = b.add(ComponentKind::BorderSwitch);
        b.mark_border(sw);
        let hosts = b.add_hosts(2);
        for &h in &hosts {
            b.connect(sw, h);
        }
        let p = b.add(ComponentKind::PowerSupply);
        b.draw_power(hosts[0], p);
        b.draw_power(hosts[1], p);
        let t = b.build();
        let mut model = FaultModel::new(&t, &ProbabilityConfig::Uniform(0.0), 0);
        model.set_prob(p, 0.04);
        model.attach_power_dependencies(&t);
        let sim = AvailabilitySimulator::new(&t, model, 12.0);
        let spec = ApplicationSpec::k_of_n(1, 2);
        let plan = DeploymentPlan::new(&spec, vec![hosts]);
        let r = sim.simulate(&spec, &plan, SimParams { horizon_hours: 2_000_000.0, seed: 2 });
        assert!(
            (r.availability() - 0.96).abs() < 0.003,
            "availability {} vs 0.96",
            r.availability()
        );
    }
}
