//! Worker-side assessment engines.
//!
//! Each worker thread owns one [`EnginePool`]: a map from topology preset
//! to a live `(Topology, Assessor)` pair. Building a topology and its
//! fault model is far more expensive than a Tiny assessment, so engines
//! persist across requests; when a request arrives with a different
//! master seed, [`Assessor::reseed`] swaps the fault model in place and
//! invalidates the table cache, which `recloud-assess` proves bit-exact
//! against a freshly constructed engine. That equivalence is the serving
//! contract: an `AssessPlan` answer must match what the CLI's
//! `recloud assess` path computes for the same `(preset, plan, rounds,
//! seed)` down to the last bit of the score.
//!
//! All request semantics live here rather than in the connection or
//! worker plumbing: spec/plan construction, topology-aware host
//! validation, and the dispatch to assess / compare / search.

use crate::protocol::{
    AssessRequest, AssessResponse, CompareEntry, CompareRequest, CompareResponse, Preset,
    SearchEventResponse, SearchRequest, SearchResponse,
};
use recloud::{DeployError, ReCloud};
use recloud_apps::{ApplicationSpec, DeploymentPlan, Requirements};
use recloud_assess::{compare_plans, Assessor, PartialEstimate, SamplerKind};
use recloud_faults::FaultModel;
use recloud_search::{
    ParallelSearchConfig, ParallelSearcher, ReliabilityObjective, SearchBudget, SearchConfig,
};
use recloud_topology::{ComponentId, ComponentKind, Topology};
use std::collections::{HashMap, HashSet};
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// The per-chain [`SearchConfig`] a SearchStream request describes: paper
/// defaults under the request's seed and rounds, with a deterministic
/// iteration budget when `iters > 0` (the streamed answer becomes a pure
/// function of `(seed, workers, iters)`) and the wall-clock `budget_ms`
/// otherwise. Public so tests and clients can reproduce the server's
/// search bit-for-bit.
pub fn stream_search_config(req: &SearchRequest, iters: u32) -> SearchConfig {
    let budget = if iters > 0 {
        SearchBudget::Iterations(iters as usize)
    } else {
        SearchBudget::WallClock(Duration::from_millis(req.budget_ms as u64))
    };
    SearchConfig { budget, rounds: req.rounds as usize, ..SearchConfig::paper_default(req.seed) }
}

/// Builds the application spec a request describes: one layer is a plain
/// K-of-N app, several layers share `(k, n)` per layer.
pub fn spec_for(k: u32, n: u32, layers: usize) -> ApplicationSpec {
    if layers <= 1 {
        ApplicationSpec::k_of_n(k, n)
    } else {
        ApplicationSpec::layered(&vec![(k, n); layers])
    }
}

/// The `(k, n)` shape of that spec, as the cache key wants it.
pub fn shape_for(k: u32, n: u32, layers: usize) -> Vec<(u32, u32)> {
    vec![(k, n); layers.max(1)]
}

/// Converts raw wire host ids into a [`DeploymentPlan`], rejecting
/// duplicate hosts (which `DeploymentPlan::new` would panic on — a panic
/// a network peer must never be able to trigger). Host ids are *not*
/// checked against a topology here; that needs the worker's engine and
/// happens in [`EnginePool::validate_hosts`].
pub fn build_plan(
    spec: &ApplicationSpec,
    assignments: &[Vec<u32>],
) -> Result<DeploymentPlan, String> {
    let mut seen = HashSet::new();
    for &h in assignments.iter().flatten() {
        if !seen.insert(h) {
            return Err(format!("host {h} is assigned twice in one plan"));
        }
    }
    Ok(DeploymentPlan::new(
        spec,
        assignments
            .iter()
            .map(|layer| layer.iter().map(|&h| ComponentId::from_index(h as usize)).collect())
            .collect(),
    ))
}

struct Slot {
    seed: u64,
    topology: Topology,
    assessor: Assessor,
}

/// Per-worker cache of live assessment engines, one per topology preset.
#[derive(Default)]
pub struct EnginePool {
    slots: HashMap<u8, Slot>,
}

impl EnginePool {
    /// An empty pool; engines materialize on first use.
    pub fn new() -> Self {
        EnginePool::default()
    }

    fn slot(&mut self, preset: Preset, seed: u64) -> &mut Slot {
        let slot = self.slots.entry(preset.tag()).or_insert_with(|| {
            let topology = preset.scale().build();
            let model = FaultModel::paper_default(&topology, seed);
            let assessor = Assessor::with_sampler(&topology, model, SamplerKind::ExtendedDagger);
            Slot { seed, topology, assessor }
        });
        if slot.seed != seed {
            slot.assessor.reseed(FaultModel::paper_default(&slot.topology, seed));
            slot.seed = seed;
        }
        slot
    }

    fn check_hosts(topology: &Topology, assignments: &[Vec<u32>]) -> Result<(), String> {
        for &h in assignments.iter().flatten() {
            if h as usize >= topology.num_components() {
                return Err(format!(
                    "id {h} is out of range (topology has {} components)",
                    topology.num_components()
                ));
            }
            let kind = topology.component(ComponentId::from_index(h as usize)).kind;
            if !matches!(kind, ComponentKind::Host) {
                return Err(format!("id {h} is a {kind:?}, not a host"));
            }
        }
        Ok(())
    }

    /// Validates raw host ids against a preset's topology without running
    /// anything. Materializes the preset's engine as a side effect.
    pub fn validate_hosts(
        &mut self,
        preset: Preset,
        seed: u64,
        assignments: &[Vec<u32>],
    ) -> Result<(), String> {
        let slot = self.slot(preset, seed);
        Self::check_hosts(&slot.topology, assignments)
    }

    /// Runs one assessment exactly as the CLI path would: paper-default
    /// fault model for `(preset topology, seed)`, extended dagger
    /// sampling, `rounds` route-and-check rounds.
    pub fn assess(
        &mut self,
        req: &AssessRequest,
        spec: &ApplicationSpec,
        plan: &DeploymentPlan,
    ) -> Result<AssessResponse, String> {
        let slot = self.slot(req.preset, req.seed);
        Self::check_hosts(&slot.topology, &req.assignments)?;
        let a = slot.assessor.assess(spec, plan, req.rounds as usize, req.seed);
        Ok(AssessResponse {
            score: a.estimate.score,
            variance: a.estimate.variance,
            rounds: a.estimate.rounds,
            successes: a.estimate.successes,
            cached: false,
        })
    }

    /// Streaming variant of [`EnginePool::assess`]: drives the shared
    /// [`AssessmentDriver`](recloud_assess::AssessmentDriver) through
    /// `Assessor::drive`, invoking `on_partial` once every `cadence` fed
    /// chunks, and checking `cancel` between chunks. Returns the final
    /// answer plus whether every chunk actually ran; a cancelled drive
    /// covers exactly the rounds fed so far, so a completed stream is
    /// bit-identical to the plain [`EnginePool::assess`] answer.
    pub fn assess_streaming(
        &mut self,
        req: &AssessRequest,
        spec: &ApplicationSpec,
        plan: &DeploymentPlan,
        cadence: u32,
        cancel: &AtomicBool,
        on_partial: &mut dyn FnMut(&PartialEstimate),
    ) -> Result<(AssessResponse, bool), String> {
        let slot = self.slot(req.preset, req.seed);
        Self::check_hosts(&slot.topology, &req.assignments)?;
        let cadence = cadence.max(1) as usize;
        let mut fed = 0usize;
        let driven =
            slot.assessor.drive(spec, plan, req.rounds as usize, req.seed, None, &mut |p| {
                fed += 1;
                if fed % cadence == 0 {
                    on_partial(p);
                }
                if cancel.load(Ordering::Acquire) {
                    ControlFlow::Break(())
                } else {
                    ControlFlow::Continue(())
                }
            });
        let e = driven.assessment.estimate;
        Ok((
            AssessResponse {
                score: e.score,
                variance: e.variance,
                rounds: e.rounds,
                successes: e.successes,
                cached: false,
            },
            driven.completed,
        ))
    }

    /// Ranks candidate plans with tie detection (§3.3's comparison
    /// primitive) on the shared engine.
    pub fn compare(
        &mut self,
        req: &CompareRequest,
        spec: &ApplicationSpec,
        plans: &[DeploymentPlan],
    ) -> Result<CompareResponse, String> {
        let slot = self.slot(req.preset, req.seed);
        Self::check_hosts(&slot.topology, &req.plans)?;
        let cmp = compare_plans(&mut slot.assessor, spec, plans, req.rounds as usize, req.seed);
        Ok(CompareResponse {
            ranking: cmp
                .ranking
                .iter()
                .map(|r| CompareEntry {
                    input_index: r.input_index as u32,
                    score: r.assessment.estimate.score,
                    ciw95: r.assessment.estimate.ciw95(),
                    tied_with_best: r.tied_with_best,
                })
                .collect(),
        })
    }

    /// Runs the simulated-annealing placement search server-side and
    /// returns the best plan found within the budget.
    pub fn search(&mut self, req: &SearchRequest) -> Result<SearchResponse, String> {
        let slot = self.slot(req.preset, req.seed);
        let spec = ApplicationSpec::k_of_n(req.k, req.n);
        if spec.total_instances() > slot.topology.hosts().len() {
            return Err(format!(
                "n={} exceeds the preset's {} hosts",
                req.n,
                slot.topology.hosts().len()
            ));
        }
        let service = ReCloud::paper_default(&slot.topology, req.seed);
        let requirements = Requirements::paper_default()
            .budget(Duration::from_millis(req.budget_ms as u64))
            .rounds(req.rounds as usize);
        let outcome = service.deploy_best_effort(&spec, &requirements).map_err(|e| match e {
            DeployError::RequirementsNotMet { best_reliability, .. } => {
                format!("search ended below target (best {best_reliability})")
            }
            other => format!("search failed: {other:?}"),
        })?;
        Ok(SearchResponse {
            reliability: outcome.reliability,
            ciw95: outcome.ciw95,
            plans_assessed: outcome.plans_assessed as u64,
            hosts: outcome.plan.hosts_of(0).iter().map(|h| h.index() as u32).collect(),
        })
    }

    /// Runs the population-based parallel annealing search (`workers`
    /// chains over one shared CRN table), forwarding every chain's
    /// best-plan improvements to `on_event` as they happen. The final
    /// answer is exactly [`ParallelSearcher::search`] under
    /// [`stream_search_config`] — streaming observes the search, it never
    /// changes it.
    pub fn search_streaming(
        &mut self,
        req: &SearchRequest,
        workers: u32,
        iters: u32,
        on_event: &(dyn Fn(SearchEventResponse) + Sync),
    ) -> Result<SearchResponse, String> {
        let slot = self.slot(req.preset, req.seed);
        let spec = ApplicationSpec::k_of_n(req.k, req.n);
        if spec.total_instances() > slot.topology.hosts().len() {
            return Err(format!(
                "n={} exceeds the preset's {} hosts",
                req.n,
                slot.topology.hosts().len()
            ));
        }
        let model = FaultModel::paper_default(&slot.topology, req.seed);
        let searcher =
            ParallelSearcher::with_sampler(&slot.topology, model, SamplerKind::ExtendedDagger);
        let config =
            ParallelSearchConfig::new(workers.max(1) as usize, stream_search_config(req, iters));
        let sink = |e: recloud_search::ChainEvent| {
            on_event(SearchEventResponse {
                chain: e.chain as u32,
                iteration: e.iteration as u64,
                elapsed_us: e.elapsed.as_micros() as u64,
                measure: e.measure,
                reliability: e.reliability,
                temperature: e.temperature,
            });
        };
        let outcome = searcher.search(&spec, &ReliabilityObjective, &config, None, Some(&sink));
        Ok(SearchResponse {
            reliability: outcome.best.best_reliability,
            ciw95: outcome.best.best_ciw95,
            plans_assessed: outcome.combined.plans_assessed as u64,
            hosts: outcome.best.best_plan.hosts_of(0).iter().map(|h| h.index() as u32).collect(),
        })
    }

    /// Engines currently materialized (for tests/introspection).
    pub fn engines(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_request(seed: u64, hosts: Vec<u32>) -> AssessRequest {
        AssessRequest {
            preset: Preset::Tiny,
            rounds: 2_000,
            seed,
            k: 2,
            n: hosts.len() as u32,
            assignments: vec![hosts],
        }
    }

    fn first_hosts(t: &Topology, n: usize) -> Vec<u32> {
        t.hosts()[..n].iter().map(|h| h.index() as u32).collect()
    }

    /// The serving contract: a pooled engine answers bit-identically to
    /// the CLI path (fresh model + fresh assessor), across seed changes.
    #[test]
    fn pool_matches_fresh_cli_path_bit_for_bit() {
        let topology = Preset::Tiny.scale().build();
        let hosts = first_hosts(&topology, 3);
        let mut pool = EnginePool::new();
        for seed in [11, 29, 11] {
            let req = tiny_request(seed, hosts.clone());
            let spec = spec_for(req.k, req.n, req.assignments.len());
            let plan = build_plan(&spec, &req.assignments).unwrap();
            let served = pool.assess(&req, &spec, &plan).unwrap();

            let model = FaultModel::paper_default(&topology, seed);
            let mut fresh = Assessor::with_sampler(&topology, model, SamplerKind::ExtendedDagger);
            let direct = fresh.assess(&spec, &plan, req.rounds as usize, seed);
            assert_eq!(served.score.to_bits(), direct.estimate.score.to_bits(), "seed {seed}");
            assert_eq!(served.variance.to_bits(), direct.estimate.variance.to_bits());
            assert_eq!(served.successes, direct.estimate.successes);
            assert_eq!(served.rounds, direct.estimate.rounds);
            assert!(!served.cached);
        }
        assert_eq!(pool.engines(), 1, "one preset touched, one engine kept");
    }

    #[test]
    fn invalid_hosts_are_errors_not_panics() {
        let topology = Preset::Tiny.scale().build();
        let mut pool = EnginePool::new();

        let switch = (0..topology.num_components() as u32)
            .find(|&i| {
                !matches!(
                    topology.component(ComponentId::from_index(i as usize)).kind,
                    ComponentKind::Host
                )
            })
            .unwrap();
        let hosts = first_hosts(&topology, 2);

        let out_of_range = tiny_request(1, vec![hosts[0], hosts[1], 9_999_999]);
        let spec = spec_for(2, 3, 1);
        let plan = build_plan(&spec, &out_of_range.assignments).unwrap();
        assert!(pool.assess(&out_of_range, &spec, &plan).unwrap_err().contains("out of range"));

        let on_switch = tiny_request(1, vec![hosts[0], hosts[1], switch]);
        let plan = build_plan(&spec, &on_switch.assignments).unwrap();
        assert!(pool.assess(&on_switch, &spec, &plan).unwrap_err().contains("not a host"));
    }

    #[test]
    fn duplicate_hosts_are_rejected_before_plan_construction() {
        let spec = spec_for(2, 3, 1);
        let err = build_plan(&spec, &[vec![72, 73, 72]]).unwrap_err();
        assert!(err.contains("twice"), "{err}");
    }

    #[test]
    fn compare_ranks_all_candidates() {
        let topology = Preset::Tiny.scale().build();
        let h = first_hosts(&topology, 4);
        let req = CompareRequest {
            preset: Preset::Tiny,
            rounds: 2_000,
            seed: 5,
            k: 1,
            n: 2,
            plans: vec![vec![h[0], h[1]], vec![h[2], h[3]]],
        };
        let spec = spec_for(req.k, req.n, 1);
        let plans: Vec<_> =
            req.plans.iter().map(|p| build_plan(&spec, std::slice::from_ref(p)).unwrap()).collect();
        let mut pool = EnginePool::new();
        let resp = pool.compare(&req, &spec, &plans).unwrap();
        assert_eq!(resp.ranking.len(), 2);
        let mut indices: Vec<_> = resp.ranking.iter().map(|e| e.input_index).collect();
        indices.sort_unstable();
        assert_eq!(indices, vec![0, 1]);
        assert!(resp.ranking[0].score >= resp.ranking[1].score, "ranked by descending score");
    }

    /// The streaming contract: a run-to-completion stream answers
    /// bit-identically to the plain assess path, its partials are
    /// monotone in rounds, and a pre-set cancel flag stops the drive
    /// short of the full round count.
    #[test]
    fn streamed_assess_matches_plain_and_honors_cancel() {
        let topology = Preset::Tiny.scale().build();
        let hosts = first_hosts(&topology, 3);
        let req = AssessRequest {
            preset: Preset::Tiny,
            rounds: 12_000,
            seed: 21,
            k: 2,
            n: 3,
            assignments: vec![hosts],
        };
        let spec = spec_for(req.k, req.n, req.assignments.len());
        let plan = build_plan(&spec, &req.assignments).unwrap();

        let mut pool = EnginePool::new();
        let plain = pool.assess(&req, &spec, &plan).unwrap();

        let mut partials = Vec::new();
        let cancel = AtomicBool::new(false);
        let mut fresh = EnginePool::new();
        let (streamed, completed) = fresh
            .assess_streaming(&req, &spec, &plan, 1, &cancel, &mut |p| partials.push(*p))
            .unwrap();
        assert!(completed);
        assert_eq!(streamed.score.to_bits(), plain.score.to_bits());
        assert_eq!(streamed.variance.to_bits(), plain.variance.to_bits());
        assert_eq!((streamed.rounds, streamed.successes), (plain.rounds, plain.successes));
        assert!(partials.len() >= 2, "12k rounds span several chunks");
        for pair in partials.windows(2) {
            assert!(pair[1].rounds_done > pair[0].rounds_done, "partials are monotone");
        }

        cancel.store(true, Ordering::Release);
        let (cut, completed) =
            fresh.assess_streaming(&req, &spec, &plan, 1, &cancel, &mut |_| {}).unwrap();
        assert!(!completed, "a pre-set cancel stops after the first chunk");
        assert!(cut.rounds < req.rounds as u64);
        assert!(cut.rounds > 0, "at least one chunk always runs");
    }

    /// The streamed parallel search is a pure function of
    /// `(seed, workers, iters)`: repeated runs agree bit-for-bit, every
    /// chain spends its full iteration budget, and the events carry
    /// in-range chain indices.
    #[test]
    fn streamed_search_is_deterministic_across_runs() {
        let mut pool = EnginePool::new();
        let req =
            SearchRequest { preset: Preset::Tiny, rounds: 600, seed: 17, k: 2, n: 3, budget_ms: 0 };
        let events = std::sync::Mutex::new(Vec::new());
        let a = pool.search_streaming(&req, 3, 25, &|e| events.lock().unwrap().push(e)).unwrap();
        let b = pool.search_streaming(&req, 3, 25, &|_| {}).unwrap();
        assert_eq!(a.reliability.to_bits(), b.reliability.to_bits());
        assert_eq!(a.ciw95.to_bits(), b.ciw95.to_bits());
        assert_eq!(a.hosts, b.hosts);
        assert_eq!(a.plans_assessed, b.plans_assessed);
        assert_eq!(a.plans_assessed, 3 * 25, "every chain spends its whole budget");
        let events = events.into_inner().unwrap();
        assert!(!events.is_empty());
        assert!(events.iter().all(|e| e.chain < 3));
        let topology = Preset::Tiny.scale().build();
        EnginePool::check_hosts(&topology, &[a.hosts.clone()]).unwrap();
    }

    #[test]
    fn search_returns_a_valid_plan() {
        let mut pool = EnginePool::new();
        let req = SearchRequest {
            preset: Preset::Tiny,
            rounds: 1_000,
            seed: 3,
            k: 2,
            n: 3,
            budget_ms: 150,
        };
        let resp = pool.search(&req).unwrap();
        assert_eq!(resp.hosts.len(), 3);
        assert!(resp.plans_assessed >= 1);
        assert!((0.0..=1.0).contains(&resp.reliability));
        let topology = Preset::Tiny.scale().build();
        EnginePool::check_hosts(&topology, &[resp.hosts.clone()]).unwrap();
    }
}
