//! The placement-as-a-service daemon.
//!
//! Thread topology (all scoped — no detached threads, no `Arc` juggling):
//!
//! ```text
//!                 ┌──────────────┐
//!  TCP clients ──▶│ accept loop  │── spawns one connection thread each
//!                 └──────────────┘
//!   connection threads: frame I/O, decode, validate, cache lookup
//!        │ admission control (depth < queue_capacity, else Busy)
//!        ▼
//!   bounded MPMC job queue (recloud::sync::channel + atomic depth)
//!        │                                    ▲ reply (oneshot channel)
//!        ▼                                    │
//!   worker pool (scoped_workers): EnginePool per worker ─────┘
//! ```
//!
//! Backpressure is explicit: a connection thread only enqueues after
//! winning a compare-exchange on the queue depth; at capacity the client
//! gets a `Busy` frame immediately instead of unbounded queueing — the
//! reCloud analogue of the paper's observation that assessment cost, not
//! connection count, is the scarce resource.
//!
//! Shutdown is graceful by construction: the `Shutdown` frame flips a
//! flag and self-connects to unblock `accept`; dropping the acceptor's
//! job sender lets the level-triggered queue drain, so every admitted
//! job still completes and answers before the worker pool exits, and the
//! scope guarantees every thread is joined before [`Server::run`]
//! returns.

use crate::cache::ResultCache;
use crate::client::Client;
use crate::engine::{build_plan, shape_for, spec_for, EnginePool};
use crate::protocol::{
    self, validate_shape, AssessRequest, AssessResponse, CacheSegmentResponse, CompareRequest,
    ErrorCode, MetricsResponse, PartialResponse, Request, Response, SearchEventResponse,
    SearchRequest, StatsResponse, TraceResponse, TraceSpan, MAX_FRAME_LEN, MAX_SYNC_ENTRIES,
};
use recloud::sync::{self, Receiver, Sender};
use recloud_apps::{ApplicationSpec, DeploymentPlan};
use recloud_assess::assessment_key;
use recloud_obs::{trace, Counter, Gauge, Histogram, KindId, Registry, SpanCtx, SpanRecord};
use recloud_store::{Entry as StoreEntry, Op as StoreOp, Store, StoreConfig};
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Tunables of one server instance.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Assessment worker threads.
    pub workers: usize,
    /// Admission-control bound on queued-but-unstarted jobs; at this
    /// depth new work is answered with `Busy`.
    pub queue_capacity: usize,
    /// Result-cache entries (0 disables caching).
    pub cache_capacity: usize,
    /// Poll interval for connection reads — bounds how long shutdown
    /// waits on an idle connection.
    pub read_timeout: Duration,
    /// Durable result store directory. `Some` makes every uncached
    /// assessment append to the spill log and replays the log into the
    /// cache on bind, before any connection is accepted.
    pub store_dir: Option<PathBuf>,
    /// Peer daemon address to warm-start from: on bind, a `CacheSync`
    /// request pulls the peer's hottest cache entries and adopts the
    /// missing ones (best effort — an unreachable peer is a warning,
    /// not a bind failure).
    pub peer: Option<String>,
    /// Durable-store tuning (segment rotation, auto-compaction
    /// thresholds); only consulted when `store_dir` is set.
    pub store_config: StoreConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2).min(8);
        ServerConfig {
            workers,
            queue_capacity: 64,
            cache_capacity: 4_096,
            read_timeout: Duration::from_millis(50),
            store_dir: None,
            peer: None,
            store_config: StoreConfig::default(),
        }
    }
}

/// Final counter snapshot returned by [`Server::run`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Requests received (all kinds).
    pub received: u64,
    /// Jobs completed by workers.
    pub completed: u64,
    /// Assessments answered from the result cache.
    pub cache_hits: u64,
    /// Assessments that had to run.
    pub cache_misses: u64,
    /// Requests turned away with `Busy`.
    pub busy_rejections: u64,
    /// Connections that spoke the protocol wrong.
    pub protocol_errors: u64,
}

#[derive(Default)]
struct Counters {
    received: AtomicU64,
    completed: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    busy_rejections: AtomicU64,
    protocol_errors: AtomicU64,
}

/// Request kinds that get their own latency histogram. `Shutdown` is
/// excluded — its "latency" is the drain, not a serving cost — and so is
/// `AssessCancel`, which has no reply frame. A `stream` sample is the
/// whole exchange, first partial to final frame.
const LATENCY_KINDS: [&str; 9] =
    ["ping", "assess", "search", "compare", "stats", "metrics", "stream", "search_stream", "sync"];

/// Per-server observability handles, backed by a private
/// [`Registry`] so concurrent servers (and tests) see isolated,
/// exactly-attributable numbers. [`Server::metrics`] merges this
/// registry with the process-wide one, so a `MetricsDump` frame also
/// carries the assess/search-layer instruments.
struct ServerInstruments {
    registry: Registry,
    requests_total: Arc<Counter>,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    cache_evictions: Arc<Counter>,
    busy_rejections: Arc<Counter>,
    decode_errors: Arc<Counter>,
    queue_depth: Arc<Gauge>,
    /// Streams whose drive was cancelled before every chunk ran (client
    /// cancel, client hangup, or shutdown).
    stream_cancelled: Arc<Counter>,
    /// Operations (`Put` + `Evict`) appended to the durable store.
    store_appended: Arc<Counter>,
    /// Operations replayed from the store into the cache at bind.
    store_replayed: Arc<Counter>,
    /// Entries adopted from a `--peer` CacheSync pull at bind.
    store_synced: Arc<Counter>,
    /// CacheSync requests this daemon answered for peers.
    sync_served: Arc<Counter>,
    /// Compaction passes the store ran (size-triggered and manual).
    store_compactions: Arc<Counter>,
    /// On-disk bytes across the store's segments.
    store_bytes: Arc<Gauge>,
    /// Accounting bytes resident in the result cache.
    cache_bytes: Arc<Gauge>,
    /// Wall-clock per served request, admission wait included, indexed
    /// like [`LATENCY_KINDS`].
    latency: [Arc<Histogram>; LATENCY_KINDS.len()],
    /// Journal event emitted when a connection closes: `v0` = frames
    /// decoded on it, `v1` = decode errors it produced.
    conn_close: KindId,
    /// Journal event emitted when a stream's drive is cancelled: `v0` =
    /// rounds done, `v1` = rounds the cancel saved.
    stream_cancel: KindId,
}

impl ServerInstruments {
    fn new() -> Self {
        let registry = Registry::new();
        let latency =
            LATENCY_KINDS.map(|kind| registry.histogram(&format!("server.latency_us.{kind}")));
        let conn_close = registry.journal().kind_id("conn.close");
        let stream_cancel = registry.journal().kind_id("stream.cancel");
        ServerInstruments {
            requests_total: registry.counter("server.requests_total"),
            cache_hits: registry.counter("server.cache_hits_total"),
            cache_misses: registry.counter("server.cache_misses_total"),
            cache_evictions: registry.counter("server.cache_evictions_total"),
            busy_rejections: registry.counter("server.busy_total"),
            decode_errors: registry.counter("server.decode_errors_total"),
            queue_depth: registry.gauge("server.queue_depth"),
            stream_cancelled: registry.counter("server.stream_cancelled_total"),
            store_appended: registry.counter("store.appended_total"),
            store_replayed: registry.counter("store.replayed_total"),
            store_synced: registry.counter("store.synced_total"),
            sync_served: registry.counter("store.sync_served_total"),
            store_compactions: registry.counter("store.compactions_total"),
            store_bytes: registry.gauge("store.bytes"),
            cache_bytes: registry.gauge("server.cache_bytes"),
            latency,
            conn_close,
            stream_cancel,
            registry,
        }
    }

    /// Index into [`ServerInstruments::latency`] for a decoded request,
    /// `None` for kinds without a latency histogram.
    fn latency_index(request: &Request) -> Option<usize> {
        match request {
            Request::Ping { .. } => Some(0),
            Request::AssessPlan(_) => Some(1),
            Request::SearchPlacement(_) => Some(2),
            Request::ComparePlans(_) => Some(3),
            Request::Stats => Some(4),
            Request::MetricsDump { .. } => Some(5),
            Request::AssessStream { .. } => Some(6),
            Request::SearchStream { .. } => Some(7),
            Request::CacheSync { .. } => Some(8),
            // Trace frames are connection-side bookkeeping (two of the
            // three don't even reply) — no latency histogram.
            Request::Shutdown
            | Request::AssessCancel
            | Request::TraceDump { .. }
            | Request::TraceContext { .. }
            | Request::TraceUpload { .. } => None,
        }
    }
}

enum JobKind {
    Assess {
        req: AssessRequest,
        spec: ApplicationSpec,
        plan: DeploymentPlan,
        key: u128,
    },
    Search(SearchRequest),
    Compare {
        req: CompareRequest,
        spec: ApplicationSpec,
        plans: Vec<DeploymentPlan>,
    },
    StreamAssess {
        req: AssessRequest,
        cadence: u32,
        spec: ApplicationSpec,
        plan: DeploymentPlan,
        key: u128,
        /// Shared with the connection thread; the engine checks it
        /// between chunks and stops feeding once set.
        cancel: Arc<AtomicBool>,
    },
    /// A streamed parallel search. No cancel flag: stopping an annealing
    /// population early would change its answer, so the drive always runs
    /// its full budget (the connection thread merely stops forwarding
    /// events when the client goes away).
    StreamSearch {
        req: SearchRequest,
        workers: u32,
        iters: u32,
    },
}

struct Job {
    kind: JobKind,
    reply: Sender<Response>,
    /// Trace context of a traced request — `span` is the server-side
    /// request span the worker's spans hang under.
    trace: Option<SpanCtx>,
    /// Open `queue.wait` span the worker closes on dequeue (0 = none).
    queue_span: u32,
}

/// One bound daemon; [`Server::run`] serves until a `Shutdown` frame.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    config: ServerConfig,
    counters: Counters,
    obs: ServerInstruments,
    cache: Mutex<ResultCache>,
    /// The durable spill log (`--store`); every uncached assessment is
    /// appended, evictions become tombstones.
    store: Option<Mutex<Store>>,
    depth: AtomicUsize,
    shutdown: AtomicBool,
}

impl Server {
    /// Binds the daemon (port 0 picks an ephemeral port — read it back
    /// with [`Server::local_addr`]).
    ///
    /// With [`ServerConfig::store_dir`] set, the spill log is opened
    /// (recovering its longest valid prefix) and replayed into the LRU
    /// cache *before* the bind returns — a restarted daemon accepts its
    /// first connection already warm. With [`ServerConfig::peer`] set,
    /// a `CacheSync` pull against the peer then adopts whatever hot
    /// entries this daemon is still missing; an unreachable peer only
    /// logs a warning.
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> std::io::Result<Server> {
        assert!(config.workers >= 1, "need at least one worker");
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let obs = ServerInstruments::new();
        let mut cache = ResultCache::new(config.cache_capacity);
        let mut store = match &config.store_dir {
            Some(dir) => {
                let (store, recovery) = Store::open(dir, config.store_config)?;
                for op in &recovery.ops {
                    match op {
                        StoreOp::Put(e) => {
                            cache.insert(e.key, entry_response(e));
                        }
                        StoreOp::Evict(key) => {
                            cache.remove(*key);
                        }
                    }
                    obs.store_replayed.inc();
                }
                obs.store_bytes.set(store.bytes() as i64);
                Some(store)
            }
            None => None,
        };
        if let Some(peer) = &config.peer {
            match pull_from_peer(peer, &mut cache, store.as_mut()) {
                Ok(adopted) => obs.store_synced.add(adopted),
                Err(e) => eprintln!("warning: cache sync with peer {peer} failed: {e}"),
            }
            if let Some(store) = &store {
                obs.store_bytes.set(store.bytes() as i64);
            }
        }
        obs.cache_bytes.set(cache.bytes() as i64);
        Ok(Server {
            listener,
            local_addr,
            config,
            counters: Counters::default(),
            obs,
            cache: Mutex::new(cache),
            store: store.map(Mutex::new),
            depth: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Serves until shut down; blocks the calling thread. Every admitted
    /// job completes and answers before this returns.
    pub fn run(&self) -> ServeSummary {
        let (job_tx, job_rx) = sync::channel::<Job>();
        std::thread::scope(|scope| {
            for _ in 0..self.config.workers {
                let rx = job_rx.clone();
                scope.spawn(move || self.worker_loop(rx));
            }
            drop(job_rx);
            loop {
                let stream = match self.listener.accept() {
                    Ok((stream, _)) => stream,
                    Err(_) => {
                        if self.shutdown.load(Ordering::Acquire) {
                            break;
                        }
                        continue;
                    }
                };
                if self.shutdown.load(Ordering::Acquire) {
                    break;
                }
                let tx = job_tx.clone();
                scope.spawn(move || self.serve_connection(stream, tx));
            }
            drop(job_tx);
        });
        self.summary()
    }

    /// Flips the shutdown flag and unblocks the accept loop. Usually
    /// triggered by a `Shutdown` frame; public for embedding tests.
    pub fn begin_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::AcqRel) {
            // A throwaway self-connection is the portable way to wake a
            // blocking accept() without platform-specific polling.
            let _ = TcpStream::connect(self.local_addr);
        }
    }

    fn summary(&self) -> ServeSummary {
        ServeSummary {
            received: self.counters.received.load(Ordering::Relaxed),
            completed: self.counters.completed.load(Ordering::Relaxed),
            cache_hits: self.counters.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.counters.cache_misses.load(Ordering::Relaxed),
            busy_rejections: self.counters.busy_rejections.load(Ordering::Relaxed),
            protocol_errors: self.counters.protocol_errors.load(Ordering::Relaxed),
        }
    }

    fn stats(&self) -> StatsResponse {
        let s = self.summary();
        StatsResponse {
            received: s.received,
            completed: s.completed,
            cache_hits: s.cache_hits,
            cache_misses: s.cache_misses,
            busy_rejections: s.busy_rejections,
            protocol_errors: s.protocol_errors,
            queued: self.depth.load(Ordering::Relaxed) as u32,
            capacity: self.config.queue_capacity as u32,
            workers: self.config.workers as u32,
        }
    }

    /// Builds a `MetricsDump` answer: the server's own instruments
    /// merged with the process-wide (assess/search) registry, plus the
    /// newest `journal_tail` events across both journals in timestamp
    /// order.
    fn metrics(&self, journal_tail: u32) -> MetricsResponse {
        let mut snapshot = self.obs.registry.snapshot();
        snapshot.merge(&recloud_obs::global().snapshot());
        let n = journal_tail as usize;
        let mut events = self.obs.registry.journal().tail(n);
        events.extend(recloud_obs::global().journal().tail(n));
        events.sort_by(|a, b| (a.ts_micros, a.seq).cmp(&(b.ts_micros, b.seq)));
        if events.len() > n {
            events.drain(..events.len() - n);
        }
        MetricsResponse { snapshot, events }
    }

    fn worker_loop(&self, rx: Receiver<Job>) {
        let mut pool = EnginePool::new();
        while let Ok(job) = rx.recv() {
            self.depth.fetch_sub(1, Ordering::AcqRel);
            self.obs.queue_depth.add(-1);
            // A traced job: close its queue.wait span and run the work
            // under a worker.exec span, so the driver's per-chunk spans
            // (read off the thread-local context) attach underneath.
            let exec = job.trace.map(|ctx| {
                trace::tracer().end(ctx.trace_id, job.queue_span);
                SpanCtx {
                    trace_id: ctx.trace_id,
                    span: trace::tracer().start(ctx.trace_id, ctx.span, "worker.exec"),
                }
            });
            let response = match exec {
                Some(ctx) => trace::with_current_span(ctx, || self.run_job(&job, &mut pool)),
                None => self.run_job(&job, &mut pool),
            };
            if let Some(ctx) = exec {
                trace::tracer().end(ctx.trace_id, ctx.span);
            }
            if !matches!(response, Response::Error { .. }) {
                self.counters.completed.fetch_add(1, Ordering::Relaxed);
            }
            let _ = job.reply.send(response);
        }
    }

    /// Executes one dequeued job on this worker's engine pool.
    fn run_job(&self, job: &Job, pool: &mut EnginePool) -> Response {
        match &job.kind {
            JobKind::Assess { req, spec, plan, key } => match pool.assess(req, spec, plan) {
                Ok(resp) => {
                    self.cache_finished_assessment(*key, resp);
                    Response::Assess(resp)
                }
                Err(message) => Response::Error { code: ErrorCode::Invalid, message },
            },
            JobKind::Search(req) => match pool.search(req) {
                Ok(resp) => Response::Search(resp),
                Err(message) => Response::Error { code: ErrorCode::Invalid, message },
            },
            JobKind::Compare { req, spec, plans } => match pool.compare(req, spec, plans) {
                Ok(resp) => Response::Compare(resp),
                Err(message) => Response::Error { code: ErrorCode::Invalid, message },
            },
            JobKind::StreamAssess { req, cadence, spec, plan, key, cancel } => {
                let reply = &job.reply;
                let streamed = pool.assess_streaming(req, spec, plan, *cadence, cancel, &mut |p| {
                    let _ = reply.send(Response::Partial(PartialResponse {
                        rounds_done: p.rounds_done,
                        rounds_total: p.rounds_total,
                        score: p.r,
                        ciw: p.ciw,
                    }));
                });
                match streamed {
                    Ok((resp, completed)) => {
                        if completed {
                            // Only completed drives reach the cache —
                            // and therefore the durable store: a spill
                            // log must never launder a cancelled
                            // partial result into a future hit.
                            self.cache_finished_assessment(*key, resp);
                        } else {
                            // A cancelled drive covers fewer rounds
                            // than `key` declares — caching it would
                            // poison every future full-rounds lookup,
                            // so the partial result stays out.
                            self.obs.stream_cancelled.inc();
                            self.obs.registry.journal().record(
                                self.obs.stream_cancel,
                                resp.rounds,
                                (req.rounds as u64).saturating_sub(resp.rounds),
                                0.0,
                                0.0,
                            );
                        }
                        Response::Assess(resp)
                    }
                    Err(message) => Response::Error { code: ErrorCode::Invalid, message },
                }
            }
            JobKind::StreamSearch { req, workers, iters } => {
                let reply = &job.reply;
                let sink = |e: SearchEventResponse| {
                    let _ = reply.send(Response::SearchEvent(e));
                };
                match pool.search_streaming(req, *workers, *iters, &sink) {
                    Ok(resp) => Response::Search(resp),
                    Err(message) => Response::Error { code: ErrorCode::Invalid, message },
                }
            }
        }
    }

    /// One uncached assessment finished: insert it into the LRU cache
    /// and mirror the transition into the durable store — a `Put` for
    /// the new entry, an `Evict` tombstone when the insert pushed out a
    /// victim. Lock order is cache before store, matching every other
    /// path that takes both.
    fn cache_finished_assessment(&self, key: u128, resp: AssessResponse) {
        let evicted = {
            let mut cache = self.cache.lock().unwrap();
            let evicted = cache.insert(key, resp);
            self.obs.cache_bytes.set(cache.bytes() as i64);
            evicted
        };
        if evicted.is_some() {
            self.obs.cache_evictions.inc();
        }
        if let Some(store) = &self.store {
            let span_start = recloud_obs::current_span().map(|_| trace::now_us());
            let mut store = store.lock().unwrap();
            let mut ops_appended = 0;
            let compactions_before = store.compactions();
            match store.append(&StoreOp::Put(response_entry(key, &resp))) {
                Ok(_) => ops_appended += 1,
                Err(e) => eprintln!("warning: store append failed: {e}"),
            }
            if let Some(victim) = evicted {
                match store.append(&StoreOp::Evict(victim)) {
                    Ok(_) => ops_appended += 1,
                    Err(e) => eprintln!("warning: store append failed: {e}"),
                }
            }
            let compacted = store.compactions() - compactions_before;
            if compacted > 0 {
                self.obs.store_compactions.add(compacted);
            }
            self.obs.store_appended.add(ops_appended);
            self.obs.store_bytes.set(store.bytes() as i64);
            if let (Some(ctx), Some(start_us)) = (recloud_obs::current_span(), span_start) {
                trace::tracer().record(
                    ctx.trace_id,
                    ctx.span,
                    "store.append",
                    start_us,
                    trace::now_us(),
                    ops_appended,
                    compacted,
                );
            }
        }
    }

    fn serve_connection(&self, mut stream: TcpStream, job_tx: Sender<Job>) {
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(self.config.read_timeout));
        let mut frames: u64 = 0;
        let mut decode_errors: u64 = 0;
        // Armed by a TraceContext frame; consumed by the next request.
        let mut trace_ctx: Option<(u64, u32)> = None;
        loop {
            match self.read_frame_polling(&mut stream) {
                FrameRead::Closed | FrameRead::ShuttingDown | FrameRead::Io => break,
                FrameRead::Oversized(len) => {
                    self.counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    decode_errors += 1;
                    self.obs.decode_errors.inc();
                    self.reply(
                        &mut stream,
                        &Response::Error {
                            code: ErrorCode::Oversized,
                            message: format!("frame length {len} exceeds {MAX_FRAME_LEN}"),
                        },
                    );
                    break;
                }
                FrameRead::HalfFrame => {
                    self.counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    decode_errors += 1;
                    self.obs.decode_errors.inc();
                    break;
                }
                FrameRead::Frame(payload) => {
                    self.counters.received.fetch_add(1, Ordering::Relaxed);
                    frames += 1;
                    let request = match Request::decode(payload.into()) {
                        Ok(request) => request,
                        Err(e) => {
                            self.counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                            decode_errors += 1;
                            self.obs.decode_errors.inc();
                            self.reply(
                                &mut stream,
                                &Response::Error {
                                    code: ErrorCode::Malformed,
                                    message: e.to_string(),
                                },
                            );
                            break;
                        }
                    };
                    self.obs.requests_total.inc();
                    let latency = ServerInstruments::latency_index(&request);
                    let started = Instant::now();
                    let keep = self.handle(request, &mut stream, &job_tx, &mut trace_ctx);
                    if let Some(i) = latency {
                        self.obs.latency[i].record(started.elapsed().as_micros() as u64);
                    }
                    if !keep {
                        break;
                    }
                }
            }
        }
        self.obs.registry.journal().record(self.obs.conn_close, frames, decode_errors, 0.0, 0.0);
    }

    /// Handles one decoded request; returns false to close the connection.
    ///
    /// The trace frames are connection-side: TraceContext arms `trace_ctx`
    /// for the connection's next request (fire-and-forget), TraceUpload
    /// absorbs the client's spans (fire-and-forget), TraceDump answers
    /// from the tracer. Any other request consumes the armed context and
    /// runs under a `server.request` span parented beneath the client's.
    fn handle(
        &self,
        request: Request,
        stream: &mut TcpStream,
        job_tx: &Sender<Job>,
        trace_ctx: &mut Option<(u64, u32)>,
    ) -> bool {
        if let Err(message) = validate_shape(&request) {
            return self.reply(stream, &Response::Error { code: ErrorCode::Invalid, message });
        }
        match request {
            Request::TraceContext { trace_id, parent_span } => {
                trace::tracer().begin(trace_id, 0);
                *trace_ctx = Some((trace_id, parent_span));
                return true;
            }
            Request::TraceUpload { trace_id, spans } => {
                let records: Vec<SpanRecord> = spans
                    .iter()
                    .map(|s| SpanRecord {
                        id: s.id,
                        parent: s.parent,
                        kind: recloud_obs::intern_kind(&s.kind),
                        start_us: s.start_us,
                        end_us: s.end_us,
                        v0: s.v0,
                        v1: s.v1,
                    })
                    .collect();
                trace::tracer().absorb(trace_id, &records);
                trace::tracer().finish(trace_id);
                return true;
            }
            Request::TraceDump { trace_id } => {
                let id = if trace_id == 0 {
                    trace::tracer().latest_finished().unwrap_or(0)
                } else {
                    trace_id
                };
                let resp = match trace::tracer().spans(id) {
                    Some((spans, dropped)) => TraceResponse {
                        trace_id: id,
                        dropped,
                        spans: spans
                            .iter()
                            .map(|s| TraceSpan {
                                id: s.id,
                                parent: s.parent,
                                kind: s.kind.to_string(),
                                start_us: s.start_us,
                                end_us: s.end_us,
                                v0: s.v0,
                                v1: s.v1,
                            })
                            .collect(),
                    },
                    None => TraceResponse::default(),
                };
                return self.reply(stream, &Response::Trace(resp));
            }
            other => {
                let traced = trace_ctx.take().map(|(trace_id, parent)| SpanCtx {
                    trace_id,
                    span: trace::tracer().start(trace_id, parent, "server.request"),
                });
                let keep = self.handle_inner(other, stream, job_tx, traced);
                if let Some(ctx) = traced {
                    trace::tracer().end(ctx.trace_id, ctx.span);
                    // Finish server-side too: TraceDump{0} finds the trace
                    // even when the client never uploads its own spans.
                    trace::tracer().finish(ctx.trace_id);
                }
                keep
            }
        }
    }

    /// Handles one non-trace request, possibly under a traced context
    /// (`traced.span` is the open `server.request` span).
    fn handle_inner(
        &self,
        request: Request,
        stream: &mut TcpStream,
        job_tx: &Sender<Job>,
        traced: Option<SpanCtx>,
    ) -> bool {
        let kind = match request {
            Request::Ping { token } => return self.reply(stream, &Response::Pong { token }),
            Request::Stats => return self.reply(stream, &Response::Stats(self.stats())),
            Request::MetricsDump { journal_tail } => {
                return self.reply(stream, &Response::Metrics(self.metrics(journal_tail)));
            }
            Request::Shutdown => {
                let completed = self.counters.completed.load(Ordering::Relaxed);
                self.reply(stream, &Response::ShutdownAck { completed });
                self.begin_shutdown();
                return false;
            }
            Request::AssessPlan(req) => {
                let (spec, plan, key) = match prepare_assess(&req) {
                    Ok(parts) => parts,
                    Err(response) => return self.reply(stream, &response),
                };
                if let Some(hit) = self.cache_lookup(key, traced) {
                    self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
                    self.obs.cache_hits.inc();
                    self.counters.completed.fetch_add(1, Ordering::Relaxed);
                    return self.reply(stream, &Response::Assess(hit));
                }
                self.counters.cache_misses.fetch_add(1, Ordering::Relaxed);
                self.obs.cache_misses.inc();
                JobKind::Assess { req, spec, plan, key }
            }
            Request::AssessStream { req, cadence } => {
                let (spec, plan, key) = match prepare_assess(&req) {
                    Ok(parts) => parts,
                    Err(response) => return self.reply(stream, &response),
                };
                if let Some(hit) = self.cache_lookup(key, traced) {
                    self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
                    self.obs.cache_hits.inc();
                    self.counters.completed.fetch_add(1, Ordering::Relaxed);
                    // A degenerate stream: the cached final frame with no
                    // partials — the answer is already known in full.
                    return self.reply(stream, &Response::Assess(hit));
                }
                self.counters.cache_misses.fetch_add(1, Ordering::Relaxed);
                self.obs.cache_misses.inc();
                let cancel = Arc::new(AtomicBool::new(false));
                let kind =
                    JobKind::StreamAssess { req, cadence, spec, plan, key, cancel: cancel.clone() };
                return self.dispatch_streaming(kind, stream, job_tx, &cancel, traced);
            }
            // A cancel with no stream in flight on this connection: the
            // race it guards against (final frame already sent when the
            // client decided to stop) makes it inherently best-effort, so
            // it is a silent no-op with no response frame.
            Request::AssessCancel => return true,
            // Served connection-side straight out of the cache — a peer
            // warming up must not cost this daemon any worker time.
            Request::CacheSync { max_entries } => {
                let entries = self.cache.lock().unwrap().recent(max_entries as usize);
                self.obs.sync_served.inc();
                return self
                    .reply(stream, &Response::CacheSegment(CacheSegmentResponse { entries }));
            }
            Request::SearchPlacement(req) => JobKind::Search(req),
            Request::SearchStream { req, workers, iters } => {
                // Search streams accept a mid-stream AssessCancel frame
                // without protocol error, but ignore it: the flag below is
                // never read by the search drive (stopping a population
                // early would change its answer).
                let cancel = Arc::new(AtomicBool::new(false));
                let kind = JobKind::StreamSearch { req, workers, iters };
                return self.dispatch_streaming(kind, stream, job_tx, &cancel, traced);
            }
            Request::ComparePlans(req) => {
                let spec = spec_for(req.k, req.n, 1);
                let mut plans = Vec::with_capacity(req.plans.len());
                for hosts in &req.plans {
                    match build_plan(&spec, std::slice::from_ref(hosts)) {
                        Ok(plan) => plans.push(plan),
                        Err(message) => {
                            return self.reply(
                                stream,
                                &Response::Error { code: ErrorCode::Invalid, message },
                            );
                        }
                    }
                }
                JobKind::Compare { req, spec, plans }
            }
            // Trace frames never reach here — `handle` consumes them.
            Request::TraceDump { .. }
            | Request::TraceContext { .. }
            | Request::TraceUpload { .. } => {
                return true;
            }
        };
        self.dispatch(kind, stream, job_tx, traced)
    }

    /// Cache probe, recorded as a `cache.lookup` span (`v0` = hit) when
    /// the request is traced.
    fn cache_lookup(&self, key: u128, traced: Option<SpanCtx>) -> Option<AssessResponse> {
        let start = traced.map(|_| trace::now_us());
        let hit = self.cache.lock().unwrap().get(key);
        if let (Some(ctx), Some(start_us)) = (traced, start) {
            trace::tracer().record(
                ctx.trace_id,
                ctx.span,
                "cache.lookup",
                start_us,
                trace::now_us(),
                hit.is_some() as u64,
                0,
            );
        }
        hit
    }

    /// Admission control: wins a compare-exchange on the queue depth or
    /// answers `Busy`. Returns the reply receiver once the job is queued,
    /// or the keep-connection verdict of the rejection/failure reply.
    fn enqueue(
        &self,
        kind: JobKind,
        stream: &mut TcpStream,
        job_tx: &Sender<Job>,
        traced: Option<SpanCtx>,
    ) -> Result<Receiver<Response>, bool> {
        let capacity = self.config.queue_capacity;
        let admitted = self
            .depth
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |d| {
                if d < capacity {
                    Some(d + 1)
                } else {
                    None
                }
            })
            .is_ok();
        if admitted {
            self.obs.queue_depth.add(1);
        } else {
            self.counters.busy_rejections.fetch_add(1, Ordering::Relaxed);
            self.obs.busy_rejections.inc();
            return Err(self.reply(
                stream,
                &Response::Busy {
                    queued: self.depth.load(Ordering::Relaxed) as u32,
                    capacity: capacity as u32,
                },
            ));
        }
        let (reply_tx, reply_rx) = sync::channel::<Response>();
        // The queue.wait span opens here and closes when a worker
        // dequeues the job — admission wait becomes visible in the tree.
        let queue_span = traced
            .map(|ctx| trace::tracer().start(ctx.trace_id, ctx.span, "queue.wait"))
            .unwrap_or(0);
        if job_tx.send(Job { kind, reply: reply_tx, trace: traced, queue_span }).is_err() {
            self.depth.fetch_sub(1, Ordering::AcqRel);
            self.obs.queue_depth.add(-1);
            return Err(self.reply(
                stream,
                &Response::Error {
                    code: ErrorCode::Internal,
                    message: "worker pool is gone".into(),
                },
            ));
        }
        Ok(reply_rx)
    }

    /// Admission control + enqueue + blocking wait for the worker reply.
    fn dispatch(
        &self,
        kind: JobKind,
        stream: &mut TcpStream,
        job_tx: &Sender<Job>,
        traced: Option<SpanCtx>,
    ) -> bool {
        let reply_rx = match self.enqueue(kind, stream, job_tx, traced) {
            Ok(rx) => rx,
            Err(keep) => return keep,
        };
        match reply_rx.recv() {
            Ok(response) => self.reply(stream, &response),
            Err(_) => self.reply(
                stream,
                &Response::Error {
                    code: ErrorCode::Internal,
                    message: "worker dropped the job".into(),
                },
            ),
        }
    }

    /// Streaming dispatch: same admission as [`Server::dispatch`], then a
    /// multiplexed wait — worker partials forward to the client as chunks
    /// are fed, while the socket is polled for a mid-stream
    /// `AssessCancel`. The worker always produces a final non-partial
    /// frame (cancelled drives answer over the rounds done so far), so
    /// this loop always terminates by draining to it.
    fn dispatch_streaming(
        &self,
        kind: JobKind,
        stream: &mut TcpStream,
        job_tx: &Sender<Job>,
        cancel: &AtomicBool,
        traced: Option<SpanCtx>,
    ) -> bool {
        let reply_rx = match self.enqueue(kind, stream, job_tx, traced) {
            Ok(rx) => rx,
            Err(keep) => return keep,
        };
        let mut inbound: Vec<u8> = Vec::new();
        let mut scratch = [0u8; 1024];
        let mut writable = true; // client socket still accepts frames
        let mut peer_open = true; // client socket still produces bytes
        let outcome = loop {
            // Opportunistic cancel poll: flip the socket non-blocking for
            // one read, then back, so partial-frame *writes* below stay
            // blocking (a slow reader must not look like a gone one). An
            // SO_RCVTIMEO-based poll would add its timer granularity to
            // every forwarded partial; this costs two fcntls instead.
            if peer_open {
                let _ = stream.set_nonblocking(true);
                let polled = stream.read(&mut scratch);
                let _ = stream.set_nonblocking(false);
                match polled {
                    Ok(0) => {
                        peer_open = false;
                        writable = false;
                        cancel.store(true, Ordering::Release);
                    }
                    Ok(n) => {
                        inbound.extend_from_slice(&scratch[..n]);
                        loop {
                            match take_frame(&mut inbound) {
                                TakenFrame::Incomplete => break,
                                TakenFrame::Oversized => {
                                    self.counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                                    self.obs.decode_errors.inc();
                                    peer_open = false;
                                    writable = false;
                                    cancel.store(true, Ordering::Release);
                                    break;
                                }
                                TakenFrame::Frame(payload) => {
                                    self.counters.received.fetch_add(1, Ordering::Relaxed);
                                    self.obs.requests_total.inc();
                                    match Request::decode(payload.into()) {
                                        Ok(Request::AssessCancel) => {
                                            cancel.store(true, Ordering::Release);
                                        }
                                        // Only AssessCancel is defined
                                        // mid-stream; anything else is a
                                        // protocol error that also stops
                                        // the drive.
                                        _ => {
                                            self.counters
                                                .protocol_errors
                                                .fetch_add(1, Ordering::Relaxed);
                                            self.obs.decode_errors.inc();
                                            peer_open = false;
                                            writable = false;
                                            cancel.store(true, Ordering::Release);
                                        }
                                    }
                                }
                            }
                        }
                    }
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut
                            || e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        peer_open = false;
                        writable = false;
                        cancel.store(true, Ordering::Release);
                    }
                }
            }
            if self.shutdown.load(Ordering::Acquire) {
                cancel.store(true, Ordering::Release);
            }
            // Block on the worker's reply channel: partials forward the
            // instant they are produced, and the 1 ms timeout only bounds
            // how stale the cancel/shutdown poll above can get.
            match reply_rx.recv_timeout(Duration::from_millis(1)) {
                Ok(mid @ (Response::Partial(_) | Response::SearchEvent(_))) => {
                    let start = traced.map(|_| trace::now_us());
                    if writable && !self.reply(stream, &mid) {
                        // Client gone: cancel the drive, keep draining so
                        // the worker finishes cleanly.
                        writable = false;
                        cancel.store(true, Ordering::Release);
                    }
                    if let (Some(ctx), Some(start_us)) = (traced, start) {
                        trace::tracer().record(
                            ctx.trace_id,
                            ctx.span,
                            "partial.emit",
                            start_us,
                            trace::now_us(),
                            writable as u64,
                            0,
                        );
                    }
                }
                Ok(response) => break Some(response),
                Err(sync::RecvTimeoutError::Timeout) => {}
                Err(sync::RecvTimeoutError::Disconnected) => break None,
            }
        };
        match outcome {
            Some(response) => writable && self.reply(stream, &response),
            None => {
                writable
                    && self.reply(
                        stream,
                        &Response::Error {
                            code: ErrorCode::Internal,
                            message: "worker dropped the job".into(),
                        },
                    )
            }
        }
    }

    fn reply(&self, stream: &mut TcpStream, response: &Response) -> bool {
        protocol::write_frame(stream, &response.encode()).is_ok()
    }

    /// Reads one frame, polling the shutdown flag across read timeouts so
    /// idle connections notice shutdown within `read_timeout`. Keeps
    /// partial-read state across timeouts, so a slow writer is fine — but
    /// a peer that disconnects mid-frame is a [`FrameRead::HalfFrame`]
    /// protocol error, and an oversized length prefix is rejected before
    /// any payload allocation.
    fn read_frame_polling(&self, stream: &mut TcpStream) -> FrameRead {
        let mut prefix = [0u8; 4];
        match self.read_exact_polling(stream, &mut prefix) {
            ReadExact::Done => {}
            ReadExact::CleanEof => return FrameRead::Closed,
            ReadExact::MidEof => return FrameRead::HalfFrame,
            ReadExact::ShuttingDown => return FrameRead::ShuttingDown,
            ReadExact::Io => return FrameRead::Io,
        }
        let len = u32::from_le_bytes(prefix) as usize;
        if len > MAX_FRAME_LEN {
            return FrameRead::Oversized(len);
        }
        let mut payload = vec![0u8; len];
        match self.read_exact_polling(stream, &mut payload) {
            ReadExact::Done => FrameRead::Frame(payload),
            ReadExact::CleanEof | ReadExact::MidEof => FrameRead::HalfFrame,
            ReadExact::ShuttingDown => FrameRead::ShuttingDown,
            ReadExact::Io => FrameRead::Io,
        }
    }

    fn read_exact_polling(&self, stream: &mut TcpStream, buf: &mut [u8]) -> ReadExact {
        let mut filled = 0;
        while filled < buf.len() {
            match stream.read(&mut buf[filled..]) {
                Ok(0) => {
                    return if filled == 0 { ReadExact::CleanEof } else { ReadExact::MidEof };
                }
                Ok(n) => filled += n,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if self.shutdown.load(Ordering::Acquire) {
                        return ReadExact::ShuttingDown;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return ReadExact::Io,
            }
        }
        ReadExact::Done
    }
}

/// A store entry rehydrated as the response it will answer with. The
/// `cached` flag is transient serving state, not part of the entry;
/// `ResultCache::get` forces it true on every hit anyway.
fn entry_response(e: &StoreEntry) -> AssessResponse {
    AssessResponse {
        score: e.score,
        variance: e.variance,
        rounds: e.rounds,
        successes: e.successes,
        cached: false,
    }
}

fn response_entry(key: u128, resp: &AssessResponse) -> StoreEntry {
    StoreEntry {
        key,
        score: resp.score,
        variance: resp.variance,
        rounds: resp.rounds,
        successes: resp.successes,
    }
}

/// Pulls the peer's hottest cache entries over one CacheSync exchange
/// and adopts every fingerprint this cache is missing, oldest first so
/// the peer's recency order is reproduced locally. Adopted entries are
/// also appended to the durable store (when there is one) — after a
/// sync, a restart no longer needs the peer. Returns how many entries
/// were adopted.
fn pull_from_peer(
    peer: &str,
    cache: &mut ResultCache,
    mut store: Option<&mut Store>,
) -> std::io::Result<u64> {
    let mut client = Client::connect(peer)?;
    let entries = client.cache_sync(MAX_SYNC_ENTRIES)?;
    let mut adopted = 0;
    for e in entries.iter().rev() {
        if cache.contains(e.key) {
            continue;
        }
        let resp = AssessResponse {
            score: e.score,
            variance: e.variance,
            rounds: e.rounds,
            successes: e.successes,
            cached: false,
        };
        let evicted = cache.insert(e.key, resp);
        if let Some(store) = store.as_deref_mut() {
            store.append(&StoreOp::Put(response_entry(e.key, &resp)))?;
            if let Some(victim) = evicted {
                store.append(&StoreOp::Evict(victim))?;
            }
        }
        adopted += 1;
    }
    Ok(adopted)
}

/// Spec, plan and cache key for an assess-family request; `Err` carries
/// the ready-to-send Invalid response.
fn prepare_assess(
    req: &AssessRequest,
) -> Result<(ApplicationSpec, DeploymentPlan, u128), Response> {
    let spec = spec_for(req.k, req.n, req.assignments.len());
    let plan = build_plan(&spec, &req.assignments)
        .map_err(|message| Response::Error { code: ErrorCode::Invalid, message })?;
    let key = assessment_key(
        req.preset.tag(),
        &shape_for(req.k, req.n, req.assignments.len()),
        &plan,
        req.rounds as u64,
        req.seed,
    );
    Ok((spec, plan, key))
}

enum TakenFrame {
    Frame(Vec<u8>),
    Oversized,
    Incomplete,
}

/// Extracts one complete length-prefixed frame from an incremental byte
/// buffer. The mid-stream cancel path reads the socket with a short
/// timeout, so frames arrive in arbitrary fragments and partial bytes
/// stay buffered across polls.
fn take_frame(buf: &mut Vec<u8>) -> TakenFrame {
    if buf.len() < 4 {
        return TakenFrame::Incomplete;
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len > MAX_FRAME_LEN {
        return TakenFrame::Oversized;
    }
    if buf.len() < 4 + len {
        return TakenFrame::Incomplete;
    }
    let payload = buf[4..4 + len].to_vec();
    buf.drain(..4 + len);
    TakenFrame::Frame(payload)
}

enum FrameRead {
    Frame(Vec<u8>),
    Closed,
    HalfFrame,
    Oversized(usize),
    ShuttingDown,
    Io,
}

enum ReadExact {
    Done,
    CleanEof,
    MidEof,
    ShuttingDown,
    Io,
}
